//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of proptest it uses: the `proptest!` macro, `prop_assert*`,
//! `prop_oneof!`, `Just`, `any`, range strategies, tuple strategies,
//! `prop::collection::vec`, `prop_flat_map`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, by design:
//! - Cases are sampled from a generator seeded deterministically from the
//!   test name and case index — every run explores the same inputs.
//! - No shrinking: a failing case panics with the assertion message and the
//!   case seed, which is enough to reproduce (the inputs are deterministic).
//! - `prop_assert!` is plain `assert!` (failures panic instead of returning
//!   `Err(TestCaseError)`).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
pub use rand::SeedableRng;

/// The RNG driving all strategy sampling.
pub type TestRng = StdRng;

/// Runtime configuration for a `proptest!` block (subset: case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Derives the per-case RNG seed from the test name and case index
/// (FNV-1a over the name, mixed with the index).
pub fn case_seed(test_name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// A source of random values of an associated type (subset of
/// `proptest::strategy::Strategy`; sampling only, no value trees/shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Feeds each sampled value through `f` to obtain a second strategy,
    /// then samples that (upstream `prop_flat_map`).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Maps each sampled value through `f` (upstream `prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform over the type's full domain (subset of `proptest::prelude::any`).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.gen()
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
    A.0, B.1, C.2, D.3, E.4
)(A.0, B.1, C.2, D.3, E.4, F.5)(
    A.0, B.1, C.2, D.3, E.4, F.5, G.6
)(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)(
    A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8
)(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9));

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let mid = self.base.sample(rng);
        (self.f)(mid).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// Uniform choice between alternative strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`; each sample picks one arm uniformly.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Collection strategies (subset: `vec` only).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// `Vec` strategy: a length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Mirror of the upstream `prop` module path (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Just, ProptestConfig, Strategy,
    };
}

/// Fails the current case. Unlike upstream this panics immediately
/// (no shrinking), which the libtest harness reports as a test failure.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding a common value type.
/// Upstream supports `weight => strategy` arms; this subset is unweighted.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(arms)
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its inputs `config.cases` times from a
/// deterministic per-test RNG and runs the body on each case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases as u64 {
                let seed = $crate::case_seed(stringify!($name), case);
                let mut rng =
                    <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(seed);
                let ($($pat,)+) = $crate::Strategy::sample(&strategies, &mut rng);
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<f32>> {
        prop::collection::vec(-1.0f32..1.0, 1..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in small_vec()) {
            prop_assert!(!v.is_empty() && v.len() < 20);
        }

        #[test]
        fn flat_map_threads_the_sampled_length(
            v in (2usize..6).prop_flat_map(|n| prop::collection::vec(0i32..5, n..=n)),
        ) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_picks_only_listed_arms(x in prop_oneof![Just(1i32), Just(2), 10i32..12]) {
            prop_assert!(x == 1 || x == 2 || x == 10 || x == 11);
        }

        #[test]
        fn one_tuple_pattern_binds((s, ) in ((0.0f32..2.0), )) {
            prop_assert!((0.0..2.0).contains(&s));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = crate::collection::vec(0u32..100, 5..10);
        let mut r1 = <crate::TestRng as crate::SeedableRng>::seed_from_u64(9);
        let mut r2 = <crate::TestRng as crate::SeedableRng>::seed_from_u64(9);
        assert_eq!(
            crate::Strategy::sample(&s, &mut r1),
            crate::Strategy::sample(&s, &mut r2)
        );
    }
}
