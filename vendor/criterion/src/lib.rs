//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of criterion its benches use: `Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up sizes the iteration
//! batch, then several timed batches run and the median ns/iter is printed as
//! a plain text line. No statistics engine, plots, or saved baselines — the
//! printed trajectory is meant to be diffed by eye or by grep.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(60);
const MEASURE: Duration = Duration::from_millis(240);
const SAMPLES: usize = 7;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    median_ns: Option<f64>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median wall-clock ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the budget elapses, tracking the per-iter cost
        // so the measurement batches amortize timer overhead.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch_budget = MEASURE.as_secs_f64() / SAMPLES as f64;
        let batch = ((batch_budget / per_iter.max(1e-9)) as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher { median_ns: None };
    f(&mut b);
    match b.median_ns {
        Some(ns) if ns >= 1e6 => println!("bench {id:<48} {:>12.3} ms/iter", ns / 1e6),
        Some(ns) if ns >= 1e3 => println!("bench {id:<48} {:>12.3} us/iter", ns / 1e3),
        Some(ns) => println!("bench {id:<48} {:>12.1} ns/iter", ns),
        None => println!("bench {id:<48}          (no iter() call)"),
    }
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Upstream parses CLI filters here; this subset runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group; benchmark ids are prefixed with `name/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&id.into().id, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark under this group's prefix.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.prefix, id.into().id), f);
        self
    }

    /// Like [`Self::bench_function`], passing `input` through to the body.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.prefix, id.into().id), |b| {
            f(b, input)
        });
        self
    }

    /// Upstream flushes group reports here; this subset prints eagerly.
    pub fn finish(self) {}
}

/// Declares a bench group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_median() {
        let mut b = Bencher { median_ns: None };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.median_ns.unwrap() > 0.0);
    }

    #[test]
    fn benchmark_id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("fwht", 65536).id, "fwht/65536");
    }
}
