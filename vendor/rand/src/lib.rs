//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the thin slice of `rand` it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — not bit-compatible with upstream
//! `StdRng` (ChaCha12), but every use in this workspace only requires a
//! deterministic, well-mixed stream, never a specific upstream sequence.
//!
//! Everything here is pure `std`, `no_unsafe`, and fully deterministic.

#![forbid(unsafe_code)]

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] — the subset of
/// `rand`'s `Standard` distribution this workspace uses.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Standard for i16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> i16 {
        (rng.next_u64() >> 48) as i16
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision (matches upstream).
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches upstream).
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from — the subset of `rand`'s `SampleRange`
/// used here: `Range` and `RangeInclusive` over the common numeric types.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits into `[0, bound)` without modulo bias (Lemire's
/// multiply-shift reduction, sans the rejection step: at 64→`bound` the bias
/// is at most `bound / 2^64`, far below anything observable here).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::from_rng(rng);
                let x = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the exclusive endpoint.
                if x < self.end {
                    x
                } else {
                    <$t>::max(self.start, <$t>::min(x, self.end - (self.end - self.start) * <$t>::EPSILON))
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u = <$t as Standard>::from_rng(rng);
                start + (end - start) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from a 64-bit seed (subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12) —
    /// this workspace never relies on the upstream sequence, only on
    /// determinism and statistical quality.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed through SplitMix64, per the xoshiro authors'
            // recommendation (avoids the all-zero state).
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0..=5u32);
            assert!(j <= 5);
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let n = rng.gen_range(-7i32..=7);
            assert!((-7..=7).contains(&n));
        }
    }

    #[test]
    fn range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p = {p}");
    }
}
