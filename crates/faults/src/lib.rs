//! # gcs-faults
//!
//! Deterministic fault injection for the collective transport, with
//! retry/backoff recovery — the testability layer behind the paper's
//! end-to-end-utility argument. A compression scheme's wall-clock win is
//! only real if the fabric carrying it survives real fabrics: lossy links,
//! transient stragglers, duplicated packets, dead workers. This crate makes
//! those conditions *reproducible* so the rest of the workspace can be
//! tested under them.
//!
//! * [`plan`] — [`FaultPlan`]: a seedable, **pure** function from
//!   `(seed, src, dst, seq, attempt)` to an injected fault, built on the
//!   same counter-based SplitMix64 as `gcs-tensor::rng`, so injection is
//!   independent of thread scheduling. Plus [`TrainFaultPlan`]: scheduled
//!   worker crashes for `gcs-ddp`'s degraded-training path.
//! * [`policy`] — [`RetryPolicy`]: bounded exponential backoff, per-frame
//!   attempt budgets, and the send/recv time budgets that guarantee every
//!   wait in a degraded cluster terminates.
//! * [`links`] — [`FaultyLinks`]: wraps `gcs-collectives`'
//!   `WorkerLinks` in a sequenced ack-and-resend protocol, injects the
//!   plan's faults on data frames, and recovers — or returns a typed
//!   `CollectiveError`. Implements `MessageLinks`, so the *same* collective
//!   worker bodies run over healthy or faulty fabric.
//! * [`chaos`] — the differential harness: run a real collective over
//!   [`FaultyLinks`] and compare bitwise against the sequential reference;
//!   exports `faults/*` counters and recovery-latency histograms.
//! * [`tcp`] — the socket carrier: [`FaultyLinks`] is generic over
//!   [`FrameTransport`], and [`TcpFrameLinks`] implements it over
//!   `gcs-collectives`' `TcpMesh`, so the same chaos suite reruns over real
//!   TCP connections (`run_chaos_tcp`) with process-realistic failure
//!   signatures (reset/EOF instead of dropped channel ends).

#![warn(missing_docs)]

pub mod chaos;
pub mod links;
pub mod plan;
pub mod policy;
pub mod tcp;

pub use chaos::{canned_inputs, run_chaos, run_chaos_tcp, ChaosOp, ChaosOutcome};
pub use links::{FaultStats, FaultyLinks, Frame, FrameTransport};
pub use plan::{CrashPoint, FaultPlan, Injection, TrainFaultPlan, WorkerCrash};
pub use policy::RetryPolicy;
pub use tcp::TcpFrameLinks;
