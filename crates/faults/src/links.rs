//! `FaultyLinks`: a lossy, delaying, crashing wrapper over the threaded
//! transport, with ack-and-resend recovery.
//!
//! ## Protocol
//!
//! Every logical message becomes a sequenced [`Frame::Data`]; the receiver
//! answers each accepted frame with [`Frame::Ack`]. The window is one frame
//! per directed link (stop-and-wait), but the ack wait is *deferred*: a
//! `send` transmits immediately and only settles the *previous* frame to
//! that peer, so the collective's natural send→recv pipelining is preserved
//! and the settle dependency chain terminates at the first frame instead of
//! deadlocking the ring. `flush` settles every outstanding frame before the
//! worker returns.
//!
//! Receivers dedup by sequence number (a retransmitted or duplicated frame
//! whose seq is already consumed is re-acked and discarded), which is what
//! makes recovered executions **bitwise identical** to fault-free ones: the
//! algorithm above the links observes exactly-once, in-order delivery no
//! matter what the plan injected. Both sides retransmit their own unacked
//! frames while waiting (the receiver too — that breaks the mutual-drop
//! stall where both ends of a pair lost their frame and each would otherwise
//! wait for the other), and every wait is bounded by the
//! [`RetryPolicy`](crate::RetryPolicy) budgets, so a degraded cluster ends
//! in a typed [`CollectiveError`] — never a deadlock.
//!
//! Faults apply to **data frames only**; acks ride unfaulted. Injecting ack
//! loss would add nothing the data-drop path doesn't already exercise
//! (the sender retransmits, the receiver dedups) but would let a sender
//! keep retrying into a peer that already consumed the frame and exited,
//! turning a completed collective into a spurious `PeerLost`.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use gcs_collectives::error::CollectiveError;
use gcs_collectives::transport::{MessageLinks, WorkerLinks};

use crate::plan::{FaultPlan, Injection};
use crate::policy::RetryPolicy;

/// Wire format of the faulty transport: sequenced data frames plus acks.
#[derive(Clone, Debug)]
pub enum Frame<T> {
    /// Sequenced payload frame.
    Data {
        /// Per-directed-link sequence number, starting at 0.
        seq: u64,
        /// The logical message.
        payload: Vec<T>,
    },
    /// Acknowledges consumption of `Data { seq }` on the reverse link.
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
}

/// The carrier a [`FaultyLinks`] injects faults *over*: anything that can
/// move [`Frame`]s point-to-point with bounded waits. Two implementations:
/// [`WorkerLinks<Frame<T>>`] (in-process channels, the original PR 5 shape)
/// and the TCP carrier in [`crate::tcp`] — so the same fault-injection
/// protocol, and the same chaos suite, runs over real sockets unchanged.
pub trait FrameTransport<T> {
    /// This worker's rank.
    fn rank(&self) -> usize;
    /// Cluster size.
    fn n(&self) -> usize;
    /// Ships one frame to `peer`.
    fn send_frame(&mut self, peer: usize, frame: Frame<T>) -> Result<(), CollectiveError>;
    /// Blocks up to `timeout` for at least one frame from `peer`.
    fn recv_frames(
        &mut self,
        peer: usize,
        timeout: Duration,
    ) -> Result<Vec<Frame<T>>, CollectiveError>;
    /// Non-blocking poll: `Ok(None)` when nothing from `peer` is queued.
    fn try_recv_frames(&mut self, peer: usize) -> Result<Option<Vec<Frame<T>>>, CollectiveError>;
}

impl<T: Send + 'static> FrameTransport<T> for WorkerLinks<Frame<T>> {
    fn rank(&self) -> usize {
        WorkerLinks::rank(self)
    }

    fn n(&self) -> usize {
        WorkerLinks::n(self)
    }

    fn send_frame(&mut self, peer: usize, frame: Frame<T>) -> Result<(), CollectiveError> {
        WorkerLinks::send(self, peer, vec![frame])
    }

    fn recv_frames(
        &mut self,
        peer: usize,
        timeout: Duration,
    ) -> Result<Vec<Frame<T>>, CollectiveError> {
        WorkerLinks::recv_timeout(self, peer, timeout)
    }

    fn try_recv_frames(&mut self, peer: usize) -> Result<Option<Vec<Frame<T>>>, CollectiveError> {
        WorkerLinks::try_recv(self, peer)
    }
}

/// Counters describing what a run injected and how the protocol coped.
/// Deterministic for a given plan and message schedule (latency samples are
/// wall-clock and vary, but the *counts* do not).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Data frames handed to `send` (excluding retransmissions).
    pub frames_sent: u64,
    /// Transmissions suppressed by the plan.
    pub injected_drops: u64,
    /// Transmissions delayed by the plan.
    pub injected_delays: u64,
    /// Transmissions duplicated by the plan.
    pub injected_dups: u64,
    /// Retransmissions performed by the recovery machinery.
    pub retries: u64,
    /// Frames that needed at least one retransmission and were then acked.
    pub recovered_frames: u64,
    /// Link operations that returned a [`CollectiveError`].
    pub aborted_ops: u64,
    /// Injected worker crashes observed (0 or 1 per worker).
    pub crashes: u64,
    /// Duplicate data frames discarded by the receiver's seq discipline.
    pub dups_discarded: u64,
    /// First-send→ack latency of each recovered frame, nanoseconds.
    pub recovery_latency_ns: Vec<u64>,
}

impl FaultStats {
    /// Total faults the plan injected into this worker's transmissions.
    pub fn injected(&self) -> u64 {
        self.injected_drops + self.injected_delays + self.injected_dups + self.crashes
    }

    /// Folds another worker's stats into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.frames_sent += other.frames_sent;
        self.injected_drops += other.injected_drops;
        self.injected_delays += other.injected_delays;
        self.injected_dups += other.injected_dups;
        self.retries += other.retries;
        self.recovered_frames += other.recovered_frames;
        self.aborted_ops += other.aborted_ops;
        self.crashes += other.crashes;
        self.dups_discarded += other.dups_discarded;
        self.recovery_latency_ns
            .extend_from_slice(&other.recovery_latency_ns);
    }
}

/// An unacked data frame awaiting settlement.
struct Pending<T> {
    seq: u64,
    payload: Vec<T>,
    /// Transmissions so far (1 after the initial send).
    attempts: u32,
    first_sent: Instant,
}

/// A worker's faulty view of the cluster: wraps a [`FrameTransport`]
/// carrying [`Frame`]s (in-process channels by default, TCP via
/// [`crate::tcp`]), injects the plan's faults on transmission, and recovers
/// via ack-and-resend under the policy's bounded backoff.
pub struct FaultyLinks<T, R = WorkerLinks<Frame<T>>> {
    inner: R,
    plan: FaultPlan,
    policy: RetryPolicy,
    /// Link operations performed (crash-trigger clock).
    ops: u64,
    crashed: bool,
    /// Next outgoing data seq, per peer.
    send_seq: Vec<u64>,
    /// Next expected incoming data seq, per peer.
    recv_seq: Vec<u64>,
    /// Outstanding unacked frame, per peer (window = 1).
    pending: Vec<Option<Pending<T>>>,
    /// Accepted in-order payloads not yet consumed by `recv`, per peer.
    inbox: Vec<VecDeque<Vec<T>>>,
    /// What happened so far.
    pub stats: FaultStats,
}

impl<T: Clone + Send + 'static, R: FrameTransport<T>> FaultyLinks<T, R> {
    /// Wraps `inner` with the given plan and policy.
    pub fn new(inner: R, plan: FaultPlan, policy: RetryPolicy) -> Self {
        let n = inner.n();
        FaultyLinks {
            inner,
            plan,
            policy,
            ops: 0,
            crashed: false,
            send_seq: vec![0; n],
            recv_seq: vec![0; n],
            pending: (0..n).map(|_| None).collect(),
            inbox: (0..n).map(|_| VecDeque::new()).collect(),
            stats: FaultStats::default(),
        }
    }

    /// Consumes the wrapper, returning its fault statistics.
    pub fn into_stats(self) -> FaultStats {
        self.stats
    }

    /// Advances the crash clock; returns the crash error once triggered.
    fn tick(&mut self) -> Result<(), CollectiveError> {
        let rank = self.inner.rank();
        if self.crashed {
            return Err(CollectiveError::WorkerCrashed { rank });
        }
        self.ops += 1;
        if self.plan.crashes(rank, self.ops) {
            self.crashed = true;
            self.stats.crashes += 1;
            self.stats.aborted_ops += 1;
            return Err(CollectiveError::WorkerCrashed { rank });
        }
        Ok(())
    }

    /// Transmits (or injects a fault into) one copy of a pending frame.
    fn transmit(&mut self, peer: usize) -> Result<(), CollectiveError> {
        let rank = self.inner.rank();
        let p = self.pending[peer]
            .as_mut()
            .expect("transmit without pending");
        let injection = self.plan.injection(rank, peer, p.seq, p.attempts);
        p.attempts += 1;
        let frame = Frame::Data {
            seq: p.seq,
            payload: p.payload.clone(),
        };
        match injection {
            Injection::Drop => {
                self.stats.injected_drops += 1;
                Ok(())
            }
            Injection::Delay(d) => {
                self.stats.injected_delays += 1;
                // Clamp so an injected delay can stretch, but never starve,
                // the ack window (a delay >= the ack timeout would alias
                // into a retransmission storm and hide the delay behavior).
                std::thread::sleep(d.min(self.policy.base_timeout / 4));
                self.send_data(peer, frame)
            }
            Injection::Duplicate => {
                self.stats.injected_dups += 1;
                self.send_data(peer, frame.clone())?;
                self.send_data(peer, frame)
            }
            Injection::Deliver => self.send_data(peer, frame),
        }
    }

    /// Sends a data frame, tolerating the exited-after-acking race: a peer
    /// that finished the collective drops its endpoints, but its buffered
    /// acks stay readable. If the send fails and a buffered ack settles the
    /// pending frame, nothing was actually lost.
    fn send_data(&mut self, peer: usize, frame: Frame<T>) -> Result<(), CollectiveError> {
        match self.inner.send_frame(peer, frame) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.try_drain(peer)?;
                if self.pending[peer].is_none() {
                    Ok(())
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Non-blocking drain of one peer's channel.
    fn try_drain(&mut self, peer: usize) -> Result<(), CollectiveError> {
        while let Ok(Some(frames)) = self.inner.try_recv_frames(peer) {
            for frame in frames {
                match frame {
                    Frame::Ack { seq } => self.on_ack(peer, seq),
                    Frame::Data { seq, payload } => self.on_data(peer, seq, payload)?,
                }
            }
        }
        Ok(())
    }

    /// Handles an ack from `peer`: settles the matching pending frame,
    /// ignores stale ones (retransmit races ack twice).
    fn on_ack(&mut self, peer: usize, seq: u64) {
        if let Some(p) = &self.pending[peer] {
            if p.seq == seq {
                let p = self.pending[peer].take().expect("checked above");
                if p.attempts > 1 {
                    self.stats.recovered_frames += 1;
                    self.stats
                        .recovery_latency_ns
                        .push(p.first_sent.elapsed().as_nanos() as u64);
                }
            }
        }
    }

    /// Handles a data frame from `peer`: accepts in-order frames (ack +
    /// enqueue), re-acks consumed duplicates, rejects future seqs (window-1
    /// cannot produce them; seeing one is a protocol bug, not a fault).
    fn on_data(&mut self, peer: usize, seq: u64, payload: Vec<T>) -> Result<(), CollectiveError> {
        use std::cmp::Ordering;
        match seq.cmp(&self.recv_seq[peer]) {
            Ordering::Equal => {
                self.recv_seq[peer] += 1;
                // Best-effort ack: a peer that vanished after sending will
                // surface as PeerLost on the next op that truly needs it.
                let _ = self.inner.send_frame(peer, Frame::Ack { seq });
                self.inbox[peer].push_back(payload);
                Ok(())
            }
            Ordering::Less => {
                self.stats.dups_discarded += 1;
                let _ = self.inner.send_frame(peer, Frame::Ack { seq });
                Ok(())
            }
            Ordering::Greater => Err(CollectiveError::Protocol {
                peer,
                detail: format!(
                    "data seq {seq} ahead of expected {} under window-1",
                    self.recv_seq[peer]
                ),
            }),
        }
    }

    /// Drains one incoming frame from `peer` within `timeout`.
    fn pump(&mut self, peer: usize, timeout: Duration) -> Result<(), CollectiveError> {
        let frames = self.inner.recv_frames(peer, timeout)?;
        for frame in frames {
            match frame {
                Frame::Ack { seq } => self.on_ack(peer, seq),
                Frame::Data { seq, payload } => self.on_data(peer, seq, payload)?,
            }
        }
        Ok(())
    }

    /// Non-blocking service pass over every *other* peer's channel: settles
    /// acks, stashes in-order data, re-acks duplicates. This is what keeps a
    /// worker responsive to the whole mesh while it blocks on one peer —
    /// without it, a cycle of workers each waiting on a dropped frame whose
    /// sender is itself blocked would stall until the recv budget expires
    /// (the classic ring livelock under correlated drops). A peer observed
    /// disconnected here is skipped: the loss surfaces on whichever blocking
    /// op actually needs that peer.
    fn drain_others(&mut self, focus: usize) -> Result<(), CollectiveError> {
        let rank = self.inner.rank();
        for p in 0..self.inner.n() {
            if p != rank && p != focus {
                self.try_drain(p)?;
            }
        }
        Ok(())
    }

    /// Retransmits the pending frame to `peer` (if a just-arrived ack
    /// hasn't already settled it), failing once the attempt budget is
    /// exhausted.
    fn retransmit_or_abort(&mut self, peer: usize) -> Result<(), CollectiveError> {
        self.try_drain(peer)?;
        let attempts = match self.pending[peer].as_ref() {
            Some(p) => p.attempts,
            None => return Ok(()), // settled by a buffered ack
        };
        if attempts >= self.policy.max_attempts {
            self.stats.aborted_ops += 1;
            return Err(CollectiveError::Timeout { peer, attempts });
        }
        self.stats.retries += 1;
        self.transmit(peer)
    }

    /// Blocks until the outstanding frame to `peer` (if any) is acked,
    /// retransmitting per policy. Keeps servicing every other peer's
    /// channel while it waits.
    fn settle(&mut self, peer: usize) -> Result<(), CollectiveError> {
        while let Some(p) = &self.pending[peer] {
            let wait = self.policy.timeout(p.attempts.saturating_sub(1));
            let deadline = Instant::now() + wait;
            loop {
                self.drain_others(peer)?;
                if self.pending[peer].is_none() {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    self.retransmit_or_abort(peer)?;
                    break;
                }
                // Cap the blocking slice so side traffic keeps being
                // serviced even while this peer's ack is in flight.
                let slice = (deadline - now).min(self.policy.base_timeout / 2);
                match self.pump(peer, slice) {
                    Ok(()) => {}
                    Err(CollectiveError::Timeout { .. }) => {}
                    Err(e) => {
                        self.stats.aborted_ops += 1;
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }
}

impl<T: Clone + Send + 'static, R: FrameTransport<T>> MessageLinks<T> for FaultyLinks<T, R> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    /// Transmits immediately after settling the *previous* frame to this
    /// peer (deferred stop-and-wait; see module docs).
    fn send(&mut self, peer: usize, data: Vec<T>) -> Result<(), CollectiveError> {
        self.tick()?;
        self.settle(peer)?;
        let seq = self.send_seq[peer];
        self.send_seq[peer] += 1;
        self.pending[peer] = Some(Pending {
            seq,
            payload: data,
            attempts: 0,
            first_sent: Instant::now(),
        });
        self.stats.frames_sent += 1;
        self.transmit(peer)
    }

    /// Returns the next in-order message from `peer`, waiting at most the
    /// policy's receive budget. While waiting it services every peer's
    /// channel, and on each silent slice it retransmits *all* of its own
    /// unacked frames — a blocked peer may be waiting on exactly one of
    /// them (mutual-drop and ring-cycle stalls).
    fn recv(&mut self, peer: usize) -> Result<Vec<T>, CollectiveError> {
        self.tick()?;
        let deadline = Instant::now() + self.policy.recv_budget();
        loop {
            self.drain_others(peer)?;
            if let Some(payload) = self.inbox[peer].pop_front() {
                return Ok(payload);
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.aborted_ops += 1;
                return Err(CollectiveError::Timeout {
                    peer,
                    attempts: self.policy.max_attempts,
                });
            }
            let slice = self.policy.timeout(0).min(deadline - now);
            match self.pump(peer, slice) {
                Ok(()) => {}
                Err(CollectiveError::Timeout { .. }) => {
                    // Nothing arrived in this slice: re-offer every unacked
                    // frame in case a blocked peer is waiting on one.
                    for p in 0..self.inner.n() {
                        if p != self.inner.rank() && self.pending[p].is_some() {
                            self.retransmit_or_abort(p)?;
                        }
                    }
                }
                Err(e) => {
                    self.stats.aborted_ops += 1;
                    return Err(e);
                }
            }
        }
    }

    /// Settles every outstanding frame before the worker returns.
    fn flush(&mut self) -> Result<(), CollectiveError> {
        if self.crashed {
            return Err(CollectiveError::WorkerCrashed {
                rank: self.inner.rank(),
            });
        }
        for peer in 0..self.inner.n() {
            if peer != self.inner.rank() {
                self.settle(peer)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_collectives::transport::ThreadedCluster;

    /// Two workers exchange a message each over a lossy pair; both must
    /// recover and the stats must show the injected drops.
    #[test]
    fn lossy_pair_recovers_via_retransmit() {
        // Seed chosen so at least one first transmission drops (asserted).
        let plan = FaultPlan::lossy(11, 0.5);
        let policy = RetryPolicy::fast_test();
        let cluster: ThreadedCluster<Frame<f32>> = ThreadedCluster::new(2);
        let results = cluster.run(move |rank, links| {
            let mut fl = FaultyLinks::new(links, plan.clone(), policy);
            let peer = 1 - rank;
            fl.send(peer, vec![rank as f32; 8])?;
            let got = fl.recv(peer)?;
            fl.flush()?;
            Ok::<(Vec<f32>, FaultStats), CollectiveError>((got, fl.into_stats()))
        });
        let mut merged = FaultStats::default();
        for (rank, r) in results.into_iter().enumerate() {
            let (got, stats) = r.expect("lossy pair should recover");
            assert_eq!(got, vec![(1 - rank) as f32; 8]);
            merged.merge(&stats);
        }
        assert_eq!(merged.frames_sent, 2);
        assert!(
            merged.injected_drops > 0,
            "plan injected nothing; pick another seed"
        );
        assert!(merged.recovered_frames >= 1);
        assert!(merged.retries >= merged.recovered_frames);
    }

    /// A crashed worker dies with a typed error and its peer times out or
    /// loses the link — nobody panics, nobody hangs.
    #[test]
    fn crash_yields_typed_errors_on_both_sides() {
        let plan = FaultPlan::healthy().with_crash(0, 0);
        let policy = RetryPolicy::fast_test();
        let cluster: ThreadedCluster<Frame<f32>> = ThreadedCluster::new(2);
        let t0 = Instant::now();
        let results = cluster.run(move |rank, links| {
            let mut fl = FaultyLinks::new(links, plan.clone(), policy);
            let peer = 1 - rank;
            fl.send(peer, vec![1.0])?;
            let got = fl.recv(peer)?;
            fl.flush()?;
            Ok::<Vec<f32>, CollectiveError>(got)
        });
        assert_eq!(results[0], Err(CollectiveError::WorkerCrashed { rank: 0 }));
        match &results[1] {
            Err(CollectiveError::Timeout { peer: 0, .. })
            | Err(CollectiveError::PeerLost { peer: 0 }) => {}
            other => panic!("expected timeout/peer-lost, got {other:?}"),
        }
        // Bounded: the survivor gave up within the policy's budgets.
        assert!(t0.elapsed() < policy.recv_budget() + policy.send_budget());
    }

    /// Duplicated frames are consumed exactly once.
    #[test]
    fn duplicates_are_discarded_by_seq_discipline() {
        let plan = FaultPlan {
            seed: 5,
            dup_p: 1.0,
            ..FaultPlan::healthy()
        };
        let policy = RetryPolicy::fast_test();
        let cluster: ThreadedCluster<Frame<f32>> = ThreadedCluster::new(2);
        let results = cluster.run(move |rank, links| {
            let mut fl = FaultyLinks::new(links, plan.clone(), policy);
            let peer = 1 - rank;
            let mut got = Vec::new();
            for k in 0..4 {
                fl.send(peer, vec![(rank * 10 + k) as f32])?;
                got.push(fl.recv(peer)?);
            }
            fl.flush()?;
            Ok::<(Vec<Vec<f32>>, FaultStats), CollectiveError>((got, fl.into_stats()))
        });
        for (rank, r) in results.into_iter().enumerate() {
            let (got, stats) = r.expect("dups must not break delivery");
            let expect: Vec<Vec<f32>> =
                (0..4).map(|k| vec![((1 - rank) * 10 + k) as f32]).collect();
            assert_eq!(got, expect);
            assert_eq!(stats.injected_dups, 4);
            assert_eq!(stats.dups_discarded, 4, "{stats:?}");
        }
    }
}
