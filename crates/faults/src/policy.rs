//! Retry, timeout, and backoff policy for lossy links.

use std::time::Duration;

/// Bounded-exponential-backoff retry policy for the ack-and-resend
/// protocol. One "attempt" is one transmission of a data frame; the sender
/// waits `timeout(attempt)` for the ack before retransmitting, and gives up
/// with `CollectiveError::Timeout` after `max_attempts` transmissions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total transmissions per frame (1 = no retries).
    pub max_attempts: u32,
    /// Ack wait after the first transmission.
    pub base_timeout: Duration,
    /// Multiplier applied per retry (bounded by `max_timeout`).
    pub backoff: f64,
    /// Hard cap on any single ack wait.
    pub max_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 10,
            base_timeout: Duration::from_millis(20),
            backoff: 2.0,
            max_timeout: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A tight policy for tests: small timeouts so unrecoverable plans fail
    /// fast, still orders of magnitude above in-process delivery latency.
    pub fn fast_test() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_timeout: Duration::from_millis(10),
            backoff: 1.5,
            max_timeout: Duration::from_millis(60),
        }
    }

    /// Ack wait before retransmission number `attempt` (0-based:
    /// `timeout(0)` follows the first transmission).
    ///
    /// Total for every input: the exponential `base * backoff^attempt` is
    /// evaluated in `f64` and can overflow to infinity (or go NaN for a
    /// zero base times an infinite scale) on pathological attempt counts —
    /// any non-finite or negative product clamps to `max_timeout` instead
    /// of panicking inside `Duration::from_secs_f64`.
    pub fn timeout(&self, attempt: u32) -> Duration {
        let scaled =
            self.base_timeout.as_secs_f64() * self.backoff.powi(attempt.min(1 << 16) as i32);
        // NaN and ±infinity clamp to the cap; comparing against the cap in
        // f64 (instead of round-tripping through `from_secs_f64`) keeps the
        // saturated wait bit-equal to `max_timeout`.
        if !scaled.is_finite() || scaled >= self.max_timeout.as_secs_f64() {
            return self.max_timeout;
        }
        if scaled <= 0.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(scaled)
    }

    /// Upper bound on the total time one frame may spend in retransmission
    /// before the sender gives up. Saturates at `Duration::MAX` — a
    /// pathological `max_attempts` must not overflow the sum (the old
    /// `Iterator::sum` panicked once `attempts * max_timeout` exceeded the
    /// `Duration` range).
    pub fn send_budget(&self) -> Duration {
        // Past the saturation point every timeout equals `max_timeout`, so
        // the tail is one multiply instead of up to `u32::MAX` iterations.
        // Non-growing backoffs and very slow growers bound the tail by the
        // current (respectively maximal) per-attempt wait the same way.
        const EXACT_ATTEMPTS: u32 = 4096;
        let mut total = Duration::ZERO;
        for a in 0..self.max_attempts {
            let t = self.timeout(a);
            if t == self.max_timeout || self.backoff <= 1.0 {
                return total.saturating_add(t.saturating_mul(self.max_attempts - a));
            }
            if a >= EXACT_ATTEMPTS {
                let rest = self.max_timeout.saturating_mul(self.max_attempts - a);
                return total.saturating_add(rest);
            }
            total = total.saturating_add(t);
        }
        total
    }

    /// How long a receiver waits for a data frame before concluding the
    /// sender is gone: the sender's full retry budget plus slack, so a
    /// receiver never gives up while its sender is still lawfully retrying.
    pub fn recv_budget(&self) -> Duration {
        self.send_budget()
            .saturating_add(self.base_timeout.saturating_mul(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_saturates() {
        let p = RetryPolicy::default();
        assert!(p.timeout(1) > p.timeout(0));
        assert!(p.timeout(2) > p.timeout(1));
        // Far attempts saturate at the cap instead of overflowing.
        assert_eq!(p.timeout(30), p.max_timeout);
        assert_eq!(p.timeout(31), p.timeout(30));
    }

    #[test]
    fn recv_budget_covers_send_budget() {
        for p in [RetryPolicy::default(), RetryPolicy::fast_test()] {
            assert!(p.recv_budget() > p.send_budget());
            assert!(p.send_budget() >= p.base_timeout * p.max_attempts);
        }
    }

    /// Regression: pathological policies used to overflow. `timeout()`
    /// panicked in `Duration::from_secs_f64` once `backoff^attempt` hit
    /// infinity, the budget sums panicked on `Duration` overflow, and a
    /// huge attempt index wrapped negative through `as i32` (collapsing the
    /// wait toward zero). All of them must clamp instead.
    #[test]
    fn pathological_policies_clamp_instead_of_overflowing() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_timeout: Duration::from_secs(u64::MAX / 2),
            backoff: f64::MAX,
            max_timeout: Duration::from_secs(u64::MAX / 2),
        };
        assert_eq!(p.timeout(0), p.max_timeout);
        assert_eq!(p.timeout(u32::MAX), p.max_timeout);
        assert_eq!(p.send_budget(), Duration::MAX);
        assert_eq!(p.recv_budget(), Duration::MAX);

        // Attempt indices past i32::MAX must not wrap the exponent negative.
        let d = RetryPolicy::default();
        assert_eq!(d.timeout(u32::MAX), d.max_timeout);

        // Zero base times an infinite scale is NaN in f64; the wait clamps.
        let z = RetryPolicy {
            base_timeout: Duration::ZERO,
            backoff: f64::INFINITY,
            ..RetryPolicy::default()
        };
        assert_eq!(z.timeout(1), z.max_timeout);

        // Slow growers and non-growing backoffs stay O(1)-ish and bounded.
        let slow = RetryPolicy {
            max_attempts: u32::MAX,
            backoff: 1.0 + 1e-9,
            ..RetryPolicy::default()
        };
        assert!(slow.send_budget() <= slow.max_timeout.saturating_mul(u32::MAX));
        let flat = RetryPolicy {
            max_attempts: 1_000_000,
            backoff: 1.0,
            ..RetryPolicy::default()
        };
        assert_eq!(flat.send_budget(), flat.base_timeout * 1_000_000);
    }
}
