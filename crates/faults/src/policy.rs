//! Retry, timeout, and backoff policy for lossy links.

use std::time::Duration;

/// Bounded-exponential-backoff retry policy for the ack-and-resend
/// protocol. One "attempt" is one transmission of a data frame; the sender
/// waits `timeout(attempt)` for the ack before retransmitting, and gives up
/// with `CollectiveError::Timeout` after `max_attempts` transmissions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total transmissions per frame (1 = no retries).
    pub max_attempts: u32,
    /// Ack wait after the first transmission.
    pub base_timeout: Duration,
    /// Multiplier applied per retry (bounded by `max_timeout`).
    pub backoff: f64,
    /// Hard cap on any single ack wait.
    pub max_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 10,
            base_timeout: Duration::from_millis(20),
            backoff: 2.0,
            max_timeout: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A tight policy for tests: small timeouts so unrecoverable plans fail
    /// fast, still orders of magnitude above in-process delivery latency.
    pub fn fast_test() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_timeout: Duration::from_millis(10),
            backoff: 1.5,
            max_timeout: Duration::from_millis(60),
        }
    }

    /// Ack wait before retransmission number `attempt` (0-based:
    /// `timeout(0)` follows the first transmission).
    pub fn timeout(&self, attempt: u32) -> Duration {
        let scaled = self.base_timeout.as_secs_f64() * self.backoff.powi(attempt as i32);
        Duration::from_secs_f64(scaled.min(self.max_timeout.as_secs_f64()))
    }

    /// Upper bound on the total time one frame may spend in retransmission
    /// before the sender gives up.
    pub fn send_budget(&self) -> Duration {
        (0..self.max_attempts).map(|a| self.timeout(a)).sum()
    }

    /// How long a receiver waits for a data frame before concluding the
    /// sender is gone: the sender's full retry budget plus slack, so a
    /// receiver never gives up while its sender is still lawfully retrying.
    pub fn recv_budget(&self) -> Duration {
        self.send_budget() + self.base_timeout * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_saturates() {
        let p = RetryPolicy::default();
        assert!(p.timeout(1) > p.timeout(0));
        assert!(p.timeout(2) > p.timeout(1));
        // Far attempts saturate at the cap instead of overflowing.
        assert_eq!(p.timeout(30), p.max_timeout);
        assert_eq!(p.timeout(31), p.timeout(30));
    }

    #[test]
    fn recv_budget_covers_send_budget() {
        for p in [RetryPolicy::default(), RetryPolicy::fast_test()] {
            assert!(p.recv_budget() > p.send_budget());
            assert!(p.send_budget() >= p.base_timeout * p.max_attempts);
        }
    }
}
