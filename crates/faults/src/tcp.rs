//! TCP carrier for the fault layer: [`Frame`]s over a real socket mesh.
//!
//! [`FaultyLinks`](crate::FaultyLinks) is generic over
//! [`FrameTransport`](crate::links::FrameTransport); this module supplies
//! the socket implementation so the *same* ack-and-resend protocol — and
//! the same chaos suite — runs over `gcs-collectives`' [`TcpMesh`] instead
//! of in-process channels. Injected faults stay deterministic (the plan is
//! a pure function of `(seed, src, dst, seq, attempt)`); only the carrier
//! underneath changes.
//!
//! ## Frame encoding
//!
//! One mesh frame per [`Frame`], tag-prefixed:
//!
//! ```text
//! Data: [0u8][seq: u64 LE][payload: elems × WireElem::BYTES, LE]
//! Ack:  [1u8][seq: u64 LE]
//! ```

use std::marker::PhantomData;
use std::time::Duration;

use gcs_collectives::error::CollectiveError;
use gcs_collectives::tcp::{decode_elems, TcpMesh, WireElem};

use crate::links::{Frame, FrameTransport};

const TAG_DATA: u8 = 0;
const TAG_ACK: u8 = 1;

/// A typed [`FrameTransport`] view over a borrowed [`TcpMesh`]: encodes
/// [`Frame`]s onto raw mesh frames. Borrowing (rather than owning) the mesh
/// lets elastic callers keep the mesh across rounds, exactly like
/// `TcpLinks`.
pub struct TcpFrameLinks<'m, T: WireElem> {
    mesh: &'m mut TcpMesh,
    _elem: PhantomData<T>,
}

impl<'m, T: WireElem> TcpFrameLinks<'m, T> {
    /// Wraps a mesh in a frame-carrier view.
    pub fn new(mesh: &'m mut TcpMesh) -> TcpFrameLinks<'m, T> {
        TcpFrameLinks {
            mesh,
            _elem: PhantomData,
        }
    }
}

fn encode_frame<T: WireElem>(frame: &Frame<T>) -> Vec<u8> {
    match frame {
        Frame::Data { seq, payload } => {
            let mut out = Vec::with_capacity(9 + payload.len() * T::BYTES);
            out.push(TAG_DATA);
            out.extend_from_slice(&seq.to_le_bytes());
            for v in payload {
                v.write_to(&mut out);
            }
            out
        }
        Frame::Ack { seq } => {
            let mut out = Vec::with_capacity(9);
            out.push(TAG_ACK);
            out.extend_from_slice(&seq.to_le_bytes());
            out
        }
    }
}

fn decode_frame<T: WireElem>(bytes: &[u8], peer: usize) -> Result<Frame<T>, CollectiveError> {
    let malformed = |detail: String| CollectiveError::Protocol { peer, detail };
    if bytes.len() < 9 {
        return Err(malformed(format!(
            "frame of {} bytes has no header",
            bytes.len()
        )));
    }
    let seq = u64::from_le_bytes([
        bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7], bytes[8],
    ]);
    match bytes[0] {
        TAG_DATA => Ok(Frame::Data {
            seq,
            payload: decode_elems(&bytes[9..], peer)?,
        }),
        TAG_ACK => {
            if bytes.len() != 9 {
                return Err(malformed(format!(
                    "ack frame carries {} stray bytes",
                    bytes.len() - 9
                )));
            }
            Ok(Frame::Ack { seq })
        }
        tag => Err(malformed(format!("unknown frame tag {tag}"))),
    }
}

impl<T: WireElem> FrameTransport<T> for TcpFrameLinks<'_, T> {
    fn rank(&self) -> usize {
        self.mesh.rank()
    }

    fn n(&self) -> usize {
        self.mesh.n()
    }

    fn send_frame(&mut self, peer: usize, frame: Frame<T>) -> Result<(), CollectiveError> {
        self.mesh.send_raw(peer, &encode_frame(&frame))
    }

    fn recv_frames(
        &mut self,
        peer: usize,
        timeout: Duration,
    ) -> Result<Vec<Frame<T>>, CollectiveError> {
        let raw = self.mesh.recv_raw_timeout(peer, timeout)?;
        Ok(vec![decode_frame(&raw, peer)?])
    }

    fn try_recv_frames(&mut self, peer: usize) -> Result<Option<Vec<Frame<T>>>, CollectiveError> {
        match self.mesh.try_recv_raw(peer)? {
            Some(raw) => Ok(Some(vec![decode_frame(&raw, peer)?])),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_encoding_roundtrips() {
        let data = Frame::Data {
            seq: 7,
            payload: vec![1.5f32, -0.0, f32::MAX],
        };
        let enc = encode_frame(&data);
        match decode_frame::<f32>(&enc, 0).expect("well-formed") {
            Frame::Data { seq, payload } => {
                assert_eq!(seq, 7);
                assert_eq!(payload.len(), 3);
                assert_eq!(payload[0], 1.5);
                assert_eq!(payload[1].to_bits(), (-0.0f32).to_bits());
                assert_eq!(payload[2], f32::MAX);
            }
            other => panic!("decoded {other:?}"),
        }
        let ack = Frame::Ack::<f32> { seq: 42 };
        let enc = encode_frame(&ack);
        assert!(matches!(
            decode_frame::<f32>(&enc, 0).expect("well-formed"),
            Frame::Ack { seq: 42 }
        ));
        assert!(decode_frame::<f32>(&[9, 0, 0], 0).is_err());
        assert!(decode_frame::<f32>(&[2, 0, 0, 0, 0, 0, 0, 0, 0], 0).is_err());
    }
}
