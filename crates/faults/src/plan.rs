//! Deterministic, seedable fault plans.
//!
//! A [`FaultPlan`] is a *pure function* from `(seed, src, dst, seq,
//! attempt)` to an [`Injection`], built on the same counter-based SplitMix64
//! derivation as `gcs-tensor::rng`. No mutable RNG state is threaded through
//! the transport, so the set of injected faults is independent of thread
//! scheduling: two runs with the same plan inject byte-for-byte the same
//! faults, which is what lets the chaos suite assert *bitwise* recovery.
//!
//! Including `attempt` in the derivation matters: a frame dropped on its
//! first transmission gets a fresh draw on each retransmission, so a lossy
//! link converges to delivery with probability `1 − drop_p^attempts` instead
//! of replaying the same drop forever.

use std::time::Duration;

use gcs_tensor::rng::splitmix64;

/// What happens to one transmission of one data frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injection {
    /// Frame goes through untouched.
    Deliver,
    /// Frame is silently lost on the wire; the sender's retry/ack machinery
    /// must recover it.
    Drop,
    /// Frame is held back for the given duration before delivery
    /// (a transient straggler on this link).
    Delay(Duration),
    /// Frame is delivered twice; together with retransmit races this is how
    /// out-of-order / duplicated arrivals reach the receiver, whose sequence
    /// discipline must dedup them.
    Duplicate,
}

/// Kills one worker after it has performed a number of link operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// Rank of the worker to kill.
    pub rank: usize,
    /// Number of link operations (sends + recvs) the worker completes
    /// before dying; `0` crashes it on its first operation.
    pub after_ops: u64,
}

/// A deterministic description of the faults a run injects.
///
/// Probabilities apply independently per data-frame transmission; delays are
/// drawn uniformly in `1..=max_delay_us` microseconds. Acks are never
/// faulted (see `links` module docs for why that keeps the protocol's
/// recovery obligations receiver-independent).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed of the counter RNG.
    pub seed: u64,
    /// Probability a data-frame transmission is dropped.
    pub drop_p: f64,
    /// Probability a data-frame transmission is delayed.
    pub delay_p: f64,
    /// Probability a data-frame transmission is duplicated.
    pub dup_p: f64,
    /// Upper bound on injected delay, microseconds.
    pub max_delay_us: u64,
    /// Optional worker crash.
    pub crash: Option<CrashPoint>,
}

impl FaultPlan {
    /// A plan that injects nothing (the identity wrapper).
    pub fn healthy() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_p: 0.0,
            delay_p: 0.0,
            dup_p: 0.0,
            max_delay_us: 0,
            crash: None,
        }
    }

    /// A lossy-link plan: drops with probability `drop_p`, no other faults.
    pub fn lossy(seed: u64, drop_p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_p,
            ..FaultPlan::healthy()
        }
    }

    /// A mixed degradation plan: drops, delays, and duplicates.
    pub fn degraded(seed: u64, drop_p: f64, delay_p: f64, dup_p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_p,
            delay_p,
            dup_p,
            max_delay_us: 300,
            ..FaultPlan::healthy()
        }
    }

    /// Adds a worker crash to the plan.
    pub fn with_crash(mut self, rank: usize, after_ops: u64) -> FaultPlan {
        self.crash = Some(CrashPoint { rank, after_ops });
        self
    }

    /// True if the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0 || self.delay_p > 0.0 || self.dup_p > 0.0 || self.crash.is_some()
    }

    /// The injection applied to transmission `attempt` of data frame `seq`
    /// on the directed link `src → dst`. Pure and deterministic.
    pub fn injection(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> Injection {
        if !(self.drop_p > 0.0 || self.delay_p > 0.0 || self.dup_p > 0.0) {
            return Injection::Deliver;
        }
        let link = ((src as u64) << 40) ^ ((dst as u64) << 20);
        let h = splitmix64(
            self.seed
                ^ splitmix64(link ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                ^ (attempt as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9),
        );
        let u = to_unit(h);
        if u < self.drop_p {
            Injection::Drop
        } else if u < self.drop_p + self.delay_p {
            let d = splitmix64(h);
            let us = 1 + d % self.max_delay_us.max(1);
            Injection::Delay(Duration::from_micros(us))
        } else if u < self.drop_p + self.delay_p + self.dup_p {
            Injection::Duplicate
        } else {
            Injection::Deliver
        }
    }

    /// Whether `rank` crashes at link-operation count `ops` under this plan.
    pub fn crashes(&self, rank: usize, ops: u64) -> bool {
        matches!(self.crash, Some(c) if c.rank == rank && ops > c.after_ops)
    }
}

/// Maps a 64-bit hash to `[0, 1)` with 53 bits of precision.
fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Fault schedule for a training run: which workers crash at which rounds.
/// Consumed by `gcs-ddp`'s engine, which renormalizes the ring over the
/// survivors and keeps training.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrainFaultPlan {
    /// Injected crashes, in any order.
    pub crashes: Vec<WorkerCrash>,
}

/// One injected worker crash during training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerCrash {
    /// Round at whose start the worker dies (before gradient computation).
    pub round: u64,
    /// Worker id at the time of the crash (post-renormalization ids if
    /// earlier crashes already shrank the ring).
    pub worker: usize,
}

impl TrainFaultPlan {
    /// A plan with a single crash.
    pub fn crash_at(round: u64, worker: usize) -> TrainFaultPlan {
        TrainFaultPlan {
            crashes: vec![WorkerCrash { round, worker }],
        }
    }

    /// Adds another crash to the plan.
    pub fn and_crash(mut self, round: u64, worker: usize) -> TrainFaultPlan {
        self.crashes.push(WorkerCrash { round, worker });
        self
    }

    /// Crashes scheduled for `round`, in plan order.
    pub fn crashes_at(&self, round: u64) -> impl Iterator<Item = WorkerCrash> + '_ {
        self.crashes
            .iter()
            .copied()
            .filter(move |c| c.round == round)
    }

    /// Total number of scheduled crashes.
    pub fn len(&self) -> usize {
        self.crashes.len()
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_is_deterministic() {
        let plan = FaultPlan::degraded(42, 0.3, 0.2, 0.1);
        for seq in 0..50 {
            for attempt in 0..4 {
                assert_eq!(
                    plan.injection(0, 1, seq, attempt),
                    plan.injection(0, 1, seq, attempt)
                );
            }
        }
    }

    #[test]
    fn injection_varies_across_links_seqs_and_attempts() {
        let plan = FaultPlan::lossy(7, 0.5);
        let mut kinds = std::collections::BTreeSet::new();
        for seq in 0..64 {
            kinds.insert(format!("{:?}", plan.injection(0, 1, seq, 0)));
        }
        assert!(kinds.len() > 1, "all 64 draws identical: {kinds:?}");
        // A dropped frame must get an independent draw on retry: over many
        // seqs, at least one first-attempt drop is followed by a delivery.
        let recovered = (0..256).any(|seq| {
            plan.injection(2, 3, seq, 0) == Injection::Drop
                && plan.injection(2, 3, seq, 1) == Injection::Deliver
        });
        assert!(recovered, "retries never re-draw");
    }

    #[test]
    fn empirical_rates_track_probabilities() {
        let plan = FaultPlan::degraded(3, 0.25, 0.25, 0.1);
        let n = 20_000;
        let mut drops = 0;
        let mut delays = 0;
        let mut dups = 0;
        for seq in 0..n {
            match plan.injection(1, 2, seq, 0) {
                Injection::Drop => drops += 1,
                Injection::Delay(d) => {
                    assert!(d >= Duration::from_micros(1));
                    assert!(d <= Duration::from_micros(plan.max_delay_us));
                    delays += 1;
                }
                Injection::Duplicate => dups += 1,
                Injection::Deliver => {}
            }
        }
        let f = |c: i32| c as f64 / n as f64;
        assert!((f(drops) - 0.25).abs() < 0.02, "drop rate {}", f(drops));
        assert!((f(delays) - 0.25).abs() < 0.02, "delay rate {}", f(delays));
        assert!((f(dups) - 0.1).abs() < 0.02, "dup rate {}", f(dups));
    }

    #[test]
    fn healthy_plan_always_delivers() {
        let plan = FaultPlan::healthy();
        assert!(!plan.is_active());
        for seq in 0..100 {
            assert_eq!(plan.injection(0, 1, seq, 0), Injection::Deliver);
        }
        assert!(!plan.crashes(0, 1_000_000));
    }

    #[test]
    fn crash_point_triggers_after_ops() {
        let plan = FaultPlan::healthy().with_crash(2, 5);
        assert!(!plan.crashes(2, 5));
        assert!(plan.crashes(2, 6));
        assert!(!plan.crashes(1, 100));
    }

    #[test]
    fn train_plan_filters_by_round() {
        let plan = TrainFaultPlan::crash_at(10, 3)
            .and_crash(10, 1)
            .and_crash(20, 0);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.crashes_at(10).count(), 2);
        assert_eq!(plan.crashes_at(20).count(), 1);
        assert_eq!(plan.crashes_at(11).count(), 0);
        assert!(TrainFaultPlan::default().is_empty());
    }
}
