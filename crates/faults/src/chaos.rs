//! Chaos harness: run real collectives over a faulty fabric and compare
//! against the sequential reference.
//!
//! This is the executable form of the layer's central claim: for any
//! recoverable [`FaultPlan`], a collective over [`FaultyLinks`] returns
//! **bitwise-identical** results to the fault-free reference in
//! `gcs-collectives::ops`, and for any unrecoverable plan it returns a typed
//! [`CollectiveError`] in bounded time — never a panic, never a deadlock.
//! The proptest suite in `tests/chaos_collectives.rs` drives this harness
//! over randomized (seed, plan, op) triples; `bench_report` runs it on a
//! canned plan to publish the `faults` section.

use std::sync::{Arc, Mutex};

use gcs_collectives::error::CollectiveError;
use gcs_collectives::reduce::F32Sum;
use gcs_collectives::tcp::{FleetWorker, Registry, TcpTimeouts};
use gcs_collectives::transport::{
    all_gather_worker, broadcast_worker, ring_all_reduce_worker, MessageLinks, ThreadedCluster,
};
use gcs_collectives::{all_gather, broadcast, ring_all_reduce};

use crate::links::{FaultStats, FaultyLinks, Frame};
use crate::plan::FaultPlan;
use crate::policy::RetryPolicy;
use crate::tcp::TcpFrameLinks;

/// Which collective a chaos run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosOp {
    /// Ring all-reduce with exact f32 summation.
    Ring,
    /// Broadcast from the given root.
    Broadcast {
        /// Root rank.
        root: usize,
    },
    /// All-gather (concatenation in rank order).
    AllGather,
}

/// Everything a chaos run produced: per-worker results plus merged stats.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Per-worker result, in rank order.
    pub results: Vec<Result<Vec<f32>, CollectiveError>>,
    /// Fault statistics merged across all workers.
    pub stats: FaultStats,
}

impl ChaosOutcome {
    /// True if every worker completed the collective.
    pub fn recovered(&self) -> bool {
        self.results.iter().all(|r| r.is_ok())
    }

    /// Number of workers that returned an error.
    pub fn aborted_workers(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }
}

/// Fault-free reference output for `op` over `inputs`: what every worker
/// must hold after a successful collective, in rank order.
pub fn reference(op: ChaosOp, inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
    match op {
        ChaosOp::Ring => {
            let mut bufs = inputs.to_vec();
            ring_all_reduce(&mut bufs, &F32Sum, 4.0);
            bufs
        }
        ChaosOp::Broadcast { root } => {
            let mut bufs = inputs.to_vec();
            broadcast(&mut bufs, root, 4.0);
            bufs
        }
        ChaosOp::AllGather => {
            let (out, _) = all_gather(inputs, 4.0);
            vec![out; inputs.len()]
        }
    }
}

/// Runs `op`'s worker body over any [`MessageLinks`] — the shared core of
/// the channel and socket chaos harnesses.
fn run_op<L: MessageLinks<f32>>(
    op: ChaosOp,
    links: &mut L,
    buf: Vec<f32>,
) -> Result<Vec<f32>, CollectiveError> {
    match op {
        ChaosOp::Ring => ring_all_reduce_worker(links, buf, &F32Sum, 4.0).map(|(b, _, _)| b),
        ChaosOp::Broadcast { root } => broadcast_worker(links, buf, root, 4.0).map(|(b, _, _)| b),
        ChaosOp::AllGather => all_gather_worker(links, buf, 4.0).map(|(b, _, _)| b),
    }
}

/// Runs `op` over a threaded cluster whose every link is wrapped in
/// [`FaultyLinks`] under `plan`/`policy`, merges per-worker stats, and
/// exports the `faults/*` counters to `gcs-metrics`.
pub fn run_chaos(
    op: ChaosOp,
    inputs: Vec<Vec<f32>>,
    plan: FaultPlan,
    policy: RetryPolicy,
) -> ChaosOutcome {
    let n = inputs.len();
    if let ChaosOp::Broadcast { root } = op {
        assert!(root < n, "run_chaos: root {root} out of range for n={n}");
    }
    let cluster: ThreadedCluster<Frame<f32>> = ThreadedCluster::new(n);
    let worker_results = cluster.run(move |rank, links| {
        let mut fl = FaultyLinks::new(links, plan.clone(), policy);
        let buf = inputs[rank].clone();
        let result = run_op(op, &mut fl, buf);
        (result, fl.into_stats())
    });
    let mut stats = FaultStats::default();
    let mut results = Vec::with_capacity(n);
    for (r, s) in worker_results {
        stats.merge(&s);
        results.push(r);
    }
    export_metrics(&stats, results.iter().filter(|r| r.is_err()).count());
    ChaosOutcome { results, stats }
}

/// [`run_chaos`] over real sockets: the same fault plan, policy, and worker
/// bodies, but every link is a TCP connection ([`TcpFrameLinks`] over a
/// registry-rendezvoused mesh). A worker that crashes (injected
/// `WorkerCrashed`) returns early and *drops its sockets* — so its peers
/// observe the loss the way a real fleet would (reset/EOF), not through a
/// shared-memory side channel. The chaos suite runs both harnesses and
/// asserts identical recovery semantics.
pub fn run_chaos_tcp(
    op: ChaosOp,
    inputs: Vec<Vec<f32>>,
    plan: FaultPlan,
    policy: RetryPolicy,
) -> ChaosOutcome {
    let n = inputs.len();
    if let ChaosOp::Broadcast { root } = op {
        assert!(
            root < n,
            "run_chaos_tcp: root {root} out of range for n={n}"
        );
    }
    let registry = Registry::spawn(n).expect("chaos registry bind");
    let addr = registry.addr();
    type WorkerSlot = Option<(Result<Vec<f32>, CollectiveError>, FaultStats)>;
    let inputs = Arc::new(inputs);
    let slots: Arc<Mutex<Vec<WorkerSlot>>> = Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    let mut handles = Vec::new();
    for _ in 0..n {
        let inputs = Arc::clone(&inputs);
        let slots = Arc::clone(&slots);
        let plan = plan.clone();
        handles.push(std::thread::spawn(move || {
            let mut worker =
                FleetWorker::join(addr, TcpTimeouts::fast_test()).expect("chaos worker join");
            let rs = worker.next_round(0).expect("chaos rendezvous");
            let mut fl =
                FaultyLinks::new(TcpFrameLinks::<f32>::new(worker.mesh_mut()), plan, policy);
            let result = run_op(op, &mut fl, inputs[rs.rank].clone());
            let stats = fl.into_stats();
            slots.lock().expect("chaos slots")[rs.rank] = Some((result, stats));
            // Graceful workers deregister; crashed/errored ones just drop
            // (sockets close, registry sees EOF) — like a real process exit.
            let _ = worker.leave();
        }));
    }
    for h in handles {
        h.join().expect("chaos tcp worker panicked");
    }
    registry.shutdown();
    let worker_results = Arc::try_unwrap(slots)
        .unwrap_or_else(|_| panic!("chaos slots still shared"))
        .into_inner()
        .expect("chaos slots");
    let mut stats = FaultStats::default();
    let mut results = Vec::with_capacity(n);
    for slot in worker_results {
        let (r, s) = slot.expect("chaos worker produced no result");
        stats.merge(&s);
        results.push(r);
    }
    export_metrics(&stats, results.iter().filter(|r| r.is_err()).count());
    ChaosOutcome { results, stats }
}

/// Publishes `faults/*` counters and recovery-latency samples for one run.
pub fn export_metrics(stats: &FaultStats, aborted_workers: usize) {
    gcs_metrics::counter_add("faults/injected_total", stats.injected() as f64);
    gcs_metrics::counter_add("faults/retried_total", stats.retries as f64);
    gcs_metrics::counter_add("faults/recovered_total", stats.recovered_frames as f64);
    gcs_metrics::counter_add("faults/aborted_total", aborted_workers as f64);
    gcs_metrics::counter_add("faults/crashed_total", stats.crashes as f64);
    for &ns in &stats.recovery_latency_ns {
        gcs_metrics::observe("faults/recovery_latency_ns", ns as f64);
    }
}

/// Deterministic per-worker input buffers for chaos and bench runs.
pub fn canned_inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|w| (0..len).map(|i| ((w * len + i) as f32).sin()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Healthy plan: all three collectives bitwise-match the reference and
    /// inject nothing.
    #[test]
    fn healthy_chaos_is_bitwise_identical() {
        for op in [
            ChaosOp::Ring,
            ChaosOp::Broadcast { root: 1 },
            ChaosOp::AllGather,
        ] {
            let inputs = canned_inputs(4, 23);
            let expect = reference(op, &inputs);
            let outcome = run_chaos(op, inputs, FaultPlan::healthy(), RetryPolicy::fast_test());
            assert!(outcome.recovered(), "{op:?}: {:?}", outcome.results);
            assert_eq!(outcome.stats.injected(), 0);
            for (rank, r) in outcome.results.iter().enumerate() {
                assert_eq!(r.as_ref().unwrap(), &expect[rank], "{op:?} rank {rank}");
            }
        }
    }

    /// Degraded-but-recoverable plan: recovery is exact, and the stats show
    /// the protocol actually worked for its result.
    #[test]
    fn degraded_ring_recovers_bitwise() {
        let inputs = canned_inputs(4, 31);
        let expect = reference(ChaosOp::Ring, &inputs);
        let plan = FaultPlan::degraded(99, 0.2, 0.1, 0.1);
        let outcome = run_chaos(ChaosOp::Ring, inputs, plan, RetryPolicy::fast_test());
        assert!(outcome.recovered(), "{:?}", outcome.results);
        for (rank, r) in outcome.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &expect[rank], "rank {rank}");
        }
        assert!(outcome.stats.injected() > 0, "plan injected nothing");
        assert!(
            outcome.stats.injected_drops == 0 || outcome.stats.recovered_frames > 0,
            "drops happened but nothing recovered: {:?}",
            outcome.stats
        );
    }

    /// Crash plan: the crashed rank reports `WorkerCrashed`, survivors get
    /// typed peer-failure errors, and the `aborted` count is honest.
    #[test]
    fn crashed_ring_aborts_with_typed_errors() {
        let inputs = canned_inputs(3, 17);
        let plan = FaultPlan::healthy().with_crash(1, 2);
        let outcome = run_chaos(ChaosOp::Ring, inputs, plan, RetryPolicy::fast_test());
        assert!(!outcome.recovered());
        assert_eq!(outcome.stats.crashes, 1);
        assert!(matches!(
            outcome.results[1],
            Err(CollectiveError::WorkerCrashed { rank: 1 })
        ));
        for (rank, r) in outcome.results.iter().enumerate() {
            if rank != 1 {
                if let Err(e) = r {
                    assert!(
                        e.is_peer_failure(),
                        "rank {rank}: expected peer failure, got {e:?}"
                    );
                }
            }
        }
        assert!(outcome.aborted_workers() >= 1);
    }

    /// The socket harness obeys the same contract as the channel harness:
    /// recoverable plans recover bitwise, crash plans end in typed errors.
    #[test]
    fn tcp_chaos_matches_channel_semantics() {
        let inputs = canned_inputs(3, 19);
        let expect = reference(ChaosOp::Ring, &inputs);
        let plan = FaultPlan::degraded(41, 0.15, 0.1, 0.1);
        let outcome = run_chaos_tcp(
            ChaosOp::Ring,
            inputs.clone(),
            plan,
            RetryPolicy::fast_test(),
        );
        assert!(outcome.recovered(), "{:?}", outcome.results);
        for (rank, r) in outcome.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &expect[rank], "rank {rank}");
        }

        let plan = FaultPlan::healthy().with_crash(1, 2);
        let outcome = run_chaos_tcp(ChaosOp::Ring, inputs, plan, RetryPolicy::fast_test());
        assert!(!outcome.recovered());
        assert_eq!(outcome.stats.crashes, 1);
        assert!(matches!(
            outcome.results[1],
            Err(CollectiveError::WorkerCrashed { rank: 1 })
        ));
        for (rank, r) in outcome.results.iter().enumerate() {
            if rank != 1 {
                if let Err(e) = r {
                    assert!(e.is_peer_failure(), "rank {rank}: {e:?}");
                }
            }
        }
    }

    /// Metrics capture: a chaos run publishes the faults/* counters.
    #[test]
    fn chaos_run_exports_fault_counters() {
        let (outcome, registry) = gcs_metrics::with_capture(|| {
            run_chaos(
                ChaosOp::Ring,
                canned_inputs(4, 19),
                FaultPlan::lossy(7, 0.25),
                RetryPolicy::fast_test(),
            )
        });
        assert!(outcome.recovered(), "{:?}", outcome.results);
        let injected = registry.counter("faults/injected_total").unwrap_or(0.0);
        assert_eq!(injected, outcome.stats.injected() as f64);
        assert_eq!(
            registry.counter("faults/aborted_total").unwrap_or(-1.0),
            0.0
        );
    }
}
