//! Open-loop tenant load generator and capacity sweep.
//!
//! Each simulated tenant is one client stream: it HELLOs its own
//! `(tenant, model)` state, then runs rounds whose *arrival* times follow
//! an open-loop schedule (`t0 + (k+1)/rate`, phase-shifted per tenant so
//! the fleet never beats in lockstep). Round latency is measured from the
//! scheduled arrival to fetch completion, so queueing delay under overload
//! is charged to the daemon — the open-loop property that makes the
//! capacity curve honest.
//!
//! Tenants are multiplexed over a bounded pool of driver threads (the
//! harness machine has far fewer cores than tenants); every driver keeps
//! its tenants' connections open concurrently, so `tenants` live sockets
//! are held against the daemon for the whole point.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcs_metrics::Histogram;

use crate::client::{ClientError, TenantClient};
use crate::proto::{splitmix64, SchemeSpec, TenantConfig};

/// One load point's shape.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent tenant streams.
    pub tenants: usize,
    /// Rounds per tenant.
    pub rounds: u64,
    /// Open-loop round arrival rate per tenant (Hz).
    pub rate_hz: f64,
    /// Model-size mix: tenant `i` uses `dims[i % dims.len()]`.
    pub dims: Vec<usize>,
    /// Driver threads multiplexing the tenant streams.
    pub drivers: usize,
    /// Base seed for configs and synthetic gradients.
    pub seed: u64,
    /// Per-request client deadline.
    pub deadline: Duration,
    /// Model id tenants declare. Each sweep point uses a fresh epoch so its
    /// tenants start from round 0 in fresh daemon state.
    pub model_epoch: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            tenants: 64,
            rounds: 3,
            rate_hz: 20.0,
            dims: vec![32, 64, 128],
            drivers: 16,
            seed: 0xA66D,
            deadline: Duration::from_secs(10),
            model_epoch: 1,
        }
    }
}

/// One measured point of the capacity curve.
#[derive(Clone, Debug)]
pub struct CapacityPoint {
    /// Concurrent tenant streams offered.
    pub tenants: usize,
    /// Open-loop per-tenant round rate (Hz).
    pub round_rate_hz: f64,
    /// Rounds offered per tenant.
    pub rounds_per_tenant: u64,
    /// Rounds that completed (submit folded + estimate fetched).
    pub completed: u64,
    /// Typed retryable rejects absorbed (backpressure events).
    pub rejects: u64,
    /// Rounds that failed outright (deadline or fatal reject).
    pub failed: u64,
    /// p50 of round latency (scheduled arrival → fetch done), nanoseconds.
    pub p50_ns: f64,
    /// p99 of the same, nanoseconds.
    pub p99_ns: f64,
    /// Wall-clock of the whole point, seconds.
    pub wall_s: f64,
    /// All streams connected and every offered round completed.
    pub sustained: bool,
}

/// The scheme mix tenants cycle through — all four families the daemon
/// serves, sized small enough for thousand-tenant sweeps.
pub fn scheme_mix(dim: usize) -> Vec<SchemeSpec> {
    let mut mix = vec![
        SchemeSpec::TopK {
            bits_x100: 200,
            error_feedback: true,
        },
        SchemeSpec::Thc { q: 4 },
        SchemeSpec::Qsgd { q: 4 },
    ];
    // PowerSGD needs a matrix shape; offer it whenever dim factors evenly.
    let rows = (1..=dim)
        .rev()
        .find(|r| dim.is_multiple_of(*r) && *r * *r <= dim);
    if let Some(rows) = rows {
        if rows > 1 {
            mix.push(SchemeSpec::PowerSgd {
                rank: 1,
                rows: rows as u32,
                cols: (dim / rows) as u32,
            });
        }
    }
    mix
}

/// The tenant config loadgen uses for stream `idx`.
pub fn tenant_config(cfg: &LoadgenConfig, idx: usize) -> TenantConfig {
    let dim = cfg.dims[idx % cfg.dims.len()];
    let mix = scheme_mix(dim);
    TenantConfig {
        tenant: idx as u64 + 1,
        model: cfg.model_epoch,
        dim,
        n_workers: 1,
        experiment_seed: cfg.seed ^ (idx as u64) << 17,
        scheme: mix[idx % mix.len()],
        fault: None,
    }
}

/// Deterministic synthetic gradient for `(seed, tenant, round, rank)`.
pub fn synth_grad(seed: u64, tenant: u64, round: u64, rank: usize, out: &mut [f32]) {
    let base = splitmix64(seed ^ tenant.wrapping_mul(0x9e37) ^ round.rotate_left(17) ^ rank as u64);
    for (i, x) in out.iter_mut().enumerate() {
        let h = splitmix64(base ^ (i as u64) << 1);
        *x = (h % 2048) as f32 / 1024.0 - 1.0;
    }
}

/// Runs one load point against a live daemon.
pub fn run_capacity_point(addr: SocketAddr, cfg: &LoadgenConfig) -> CapacityPoint {
    let t_start = Instant::now();
    let completed = Arc::new(AtomicU64::new(0));
    let rejects = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let drivers = cfg.drivers.max(1).min(cfg.tenants.max(1));
    let mut handles = Vec::new();
    for d in 0..drivers {
        let cfg = cfg.clone();
        let completed = Arc::clone(&completed);
        let rejects = Arc::clone(&rejects);
        let failed = Arc::clone(&failed);
        handles.push(
            std::thread::Builder::new()
                .name(format!("loadgen-{d}"))
                .stack_size(256 * 1024)
                .spawn(move || drive(addr, &cfg, d, drivers, &completed, &rejects, &failed))
                .expect("spawn driver"),
        );
    }
    let mut hist = Histogram::new();
    let mut connect_failures = 0u64;
    for h in handles {
        let (h2, conn_fail) = h.join().expect("driver panicked");
        hist.merge(&h2);
        connect_failures += conn_fail;
    }
    let offered = cfg.tenants as u64 * cfg.rounds;
    let done = completed.load(Ordering::Relaxed);
    CapacityPoint {
        tenants: cfg.tenants,
        round_rate_hz: cfg.rate_hz,
        rounds_per_tenant: cfg.rounds,
        completed: done,
        rejects: rejects.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        p50_ns: hist.p50().unwrap_or(0.0),
        p99_ns: hist.p99().unwrap_or(0.0),
        wall_s: t_start.elapsed().as_secs_f64(),
        sustained: done == offered && connect_failures == 0,
    }
}

/// One driver thread: owns tenants `idx ≡ driver (mod drivers)`, keeps all
/// their connections open, and fires rounds at the earliest-due stream.
fn drive(
    addr: SocketAddr,
    cfg: &LoadgenConfig,
    driver: usize,
    drivers: usize,
    completed: &AtomicU64,
    rejects: &AtomicU64,
    failed: &AtomicU64,
) -> (Histogram, u64) {
    struct Stream {
        client: TenantClient,
        tcfg: TenantConfig,
        next_round: u64,
        phase: Duration,
        done: bool,
        grad: Vec<f32>,
        out: Vec<f32>,
    }
    let mut hist = Histogram::new();
    let mut connect_failures = 0u64;
    let mut streams = Vec::new();
    for idx in (driver..cfg.tenants).step_by(drivers) {
        let tcfg = tenant_config(cfg, idx);
        match TenantClient::connect(addr, &tcfg, cfg.deadline) {
            Ok(client) => {
                // Spread arrivals across the period so tenants do not beat
                // in phase.
                let phase =
                    Duration::from_secs_f64((idx % 101) as f64 / 101.0 / cfg.rate_hz.max(1e-6));
                streams.push(Stream {
                    client,
                    grad: vec![0.0; tcfg.dim],
                    out: Vec::with_capacity(tcfg.dim),
                    tcfg,
                    next_round: 0,
                    phase,
                    done: cfg.rounds == 0,
                });
            }
            Err(_) => connect_failures += 1,
        }
    }
    let t0 = Instant::now();
    let period = Duration::from_secs_f64(1.0 / cfg.rate_hz.max(1e-6));
    loop {
        // Earliest-due unfinished stream.
        let mut best: Option<(usize, Duration)> = None;
        for (i, s) in streams.iter().enumerate() {
            if s.done {
                continue;
            }
            let due = s.phase + period.mul_f64(s.next_round as f64 + 1.0);
            if best.map(|(_, b)| due < b).unwrap_or(true) {
                best = Some((i, due));
            }
        }
        let Some((i, due)) = best else { break };
        let now = t0.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        let s = &mut streams[i];
        let round = s.next_round;
        synth_grad(cfg.seed, s.tcfg.tenant, round, 0, &mut s.grad);
        match s.client.run_round(round, 0, &s.grad, &mut s.out) {
            Ok(absorbed) => {
                rejects.fetch_add(absorbed, Ordering::Relaxed);
                completed.fetch_add(1, Ordering::Relaxed);
                // Open-loop latency: scheduled arrival → fetch complete,
                // so time spent queued behind the daemon counts.
                let latency = t0.elapsed().saturating_sub(due);
                hist.record(latency.as_nanos() as f64);
            }
            Err(_) => {
                // This stream is broken; charge all its remaining rounds.
                failed.fetch_add(cfg.rounds - round, Ordering::Relaxed);
                s.done = true;
                continue;
            }
        }
        s.next_round += 1;
        if s.next_round >= cfg.rounds {
            s.done = true;
        }
    }
    for s in streams {
        let _ = s.client.bye();
    }
    (hist, connect_failures)
}

/// Runs one point per tenant count (rate, rounds, and mix fixed), in the
/// given order — the BENCH `aggd` capacity curve.
pub fn capacity_sweep(
    addr: SocketAddr,
    tenant_counts: &[usize],
    base: &LoadgenConfig,
) -> Vec<CapacityPoint> {
    tenant_counts
        .iter()
        .enumerate()
        .map(|(i, &tenants)| {
            let mut cfg = base.clone();
            cfg.tenants = tenants;
            cfg.model_epoch = base.model_epoch + i as u64;
            run_capacity_point(addr, &cfg)
        })
        .collect()
}

/// Differential conformance probe: for every scheme family, runs a few
/// rounds through a live daemon and a standalone twin instance, and
/// reports whether every estimate was bitwise identical. The BENCH `aggd`
/// section records this as its `conformant` flag.
pub fn conformance_probe(addr: SocketAddr, dim: usize, rounds: u64) -> bool {
    use gcs_core::scheme::RoundContext;
    for (fam_idx, spec) in [
        (
            0u64,
            SchemeSpec::TopK {
                bits_x100: 200,
                error_feedback: true,
            },
        ),
        (1, SchemeSpec::Thc { q: 4 }),
        (2, SchemeSpec::Qsgd { q: 4 }),
        (
            3,
            SchemeSpec::PowerSgd {
                rank: 2,
                rows: 8,
                cols: (dim / 8) as u32,
            },
        ),
    ] {
        let tcfg = TenantConfig {
            tenant: 0xC0DE + fam_idx,
            model: 7,
            dim,
            n_workers: 2,
            experiment_seed: 99,
            scheme: spec,
            fault: None,
        };
        let mut reference = match spec.build(2, dim) {
            Ok(s) => s,
            Err(_) => return false,
        };
        let deadline = Duration::from_secs(10);
        let Ok(mut c0) = TenantClient::connect(addr, &tcfg, deadline) else {
            return false;
        };
        let Ok(mut c1) = TenantClient::connect(addr, &tcfg, deadline) else {
            return false;
        };
        let mut g0 = vec![0.0f32; dim];
        let mut g1 = vec![0.0f32; dim];
        let mut out = Vec::with_capacity(dim);
        for round in 0..rounds {
            synth_grad(7, tcfg.tenant, round, 0, &mut g0);
            synth_grad(7, tcfg.tenant, round, 1, &mut g1);
            if c0.submit(round, 0, &g0).is_err() {
                return false;
            }
            if c1.submit(round, 1, &g1).is_err() {
                return false;
            }
            let mut ok = false;
            for _ in 0..1000 {
                match c0.fetch_into(round, &mut out) {
                    Ok(()) => {
                        ok = true;
                        break;
                    }
                    Err(ClientError::Rejected(r)) if r.code.retryable() => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => return false,
                }
            }
            if !ok {
                return false;
            }
            let want = reference
                .aggregate_round(&[g0.clone(), g1.clone()], &RoundContext::new(99, round))
                .mean_estimate;
            if out != want {
                return false;
            }
        }
    }
    true
}
