//! Aggregation-as-a-service: a multi-tenant parameter-server daemon.
//!
//! The paper argues gradient compression must be judged by end-to-end
//! utility under realistic deployment conditions. The condition this crate
//! models is *many concurrent training jobs contending for one aggregation
//! service* — the "millions of users" proxy: thousands of small tenants,
//! each running its own compression scheme (TopK / THC / QSGD / PowerSGD),
//! sharing one daemon's shards, queues, and NIC.
//!
//! The stack, bottom to top:
//!
//! * [`proto`] — the framed session protocol (HELLO/SUBMIT/FETCH/BYE, typed
//!   REJECT/RETRY-AFTER) layered on the collectives `FramedStream`;
//! * [`state`] — per-tenant aggregation state with in-order round folding
//!   through the pooled `aggregate_round_into` seam (bitwise identical to a
//!   standalone run, steady-state allocation-free);
//! * [`daemon`] — the sharded daemon: admission control, bounded queues
//!   everywhere, per-tenant metric registries aggregated through the fleet
//!   plane and served on the Prometheus scrape path;
//! * [`client`] — the synchronous tenant client;
//! * [`loadgen`] — the open-loop load generator and capacity sweep behind
//!   the `gcs_loadgen` binary and the BENCH `aggd` section.

pub mod client;
pub mod daemon;
pub mod loadgen;
pub mod proto;
pub mod state;

pub use client::{ClientError, TenantClient};
pub use daemon::{AggDaemon, AggdConfig};
pub use loadgen::{
    capacity_sweep, conformance_probe, run_capacity_point, synth_grad, tenant_config,
    CapacityPoint, LoadgenConfig,
};
pub use proto::{Reject, RejectCode, SchemeSpec, TenantConfig, TenantFaultSpec};
pub use state::{FetchVerdict, SubmitVerdict, TenantState};
