//! Wire protocol of the aggregation daemon: tenant sessions speak
//! `u32`-length-prefixed frames (the collectives [`FramedStream`] framing)
//! whose payloads start with a one-byte tag. A session opens with the
//! 4-byte magic [`AGGD_MAGIC`] so the daemon's single listener can sniff
//! framed tenants apart from Prometheus `GET ` scrapes, exactly like the
//! fleet telemetry plane.
//!
//! Every client request receives exactly one reply frame — an `*_OK` tag or
//! a typed [`Reject`]. Nothing is ever dropped silently: backpressure is a
//! `REJECT` with a non-zero `retry_after_ms`, protocol violations are a
//! `REJECT` followed by session close.
//!
//! [`FramedStream`]: gcs_collectives::FramedStream

/// Session magic written immediately after connect, before the first frame.
pub const AGGD_MAGIC: [u8; 4] = *b"GCSA";

/// Tenant → daemon: declare `(tenant, model)` config and admit the session.
pub const T_HELLO: u8 = 0x01;
/// Tenant → daemon: one worker's gradient for one round.
pub const T_SUBMIT: u8 = 0x02;
/// Tenant → daemon: request the folded estimate of one round.
pub const T_FETCH: u8 = 0x03;
/// Tenant → daemon: orderly goodbye.
pub const T_BYE: u8 = 0x04;
/// Daemon → tenant: session admitted; carries the owning shard index.
pub const T_HELLO_OK: u8 = 0x81;
/// Daemon → tenant: the submit was folded into its round.
pub const T_SUBMIT_OK: u8 = 0x82;
/// Daemon → tenant: the round's aggregated estimate.
pub const T_FETCH_OK: u8 = 0x83;
/// Daemon → tenant: goodbye acknowledged; the daemon closes after this.
pub const T_BYE_OK: u8 = 0x84;
/// Daemon → tenant: typed rejection (see [`RejectCode`]).
pub const T_REJECT: u8 = 0x7f;

/// Most workers a single tenant may declare (ranks fit one presence mask).
pub const MAX_WORKERS: usize = 64;

/// Why the daemon refused a request. The numeric value is the wire byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectCode {
    /// The owning shard's job queue is full — retry after the hinted delay.
    QueueFull = 1,
    /// This tenant is over its own bound (pending-round window or in-flight
    /// reply cap) — retry after the hinted delay. Other tenants are not.
    TenantBusy = 2,
    /// Admission control refused the HELLO (tenant cap, dim cap, bad
    /// scheme config).
    AdmissionDenied = 3,
    /// A second HELLO for the same `(tenant, model)` declared a different
    /// config.
    ConfigMismatch = 4,
    /// Malformed, oversized, or out-of-protocol frame. The session closes
    /// right after this reply.
    BadFrame = 5,
    /// The tenant's own fault plan injected a failure for this submit.
    FaultInjected = 6,
    /// The requested round's estimate was already evicted from the bounded
    /// retention ring, or the round predates the fold cursor.
    Evicted = 7,
    /// The requested round has not folded yet — poll again after the hint.
    NotReady = 8,
}

impl RejectCode {
    /// Wire byte → code.
    pub fn from_u8(b: u8) -> Option<RejectCode> {
        Some(match b {
            1 => RejectCode::QueueFull,
            2 => RejectCode::TenantBusy,
            3 => RejectCode::AdmissionDenied,
            4 => RejectCode::ConfigMismatch,
            5 => RejectCode::BadFrame,
            6 => RejectCode::FaultInjected,
            7 => RejectCode::Evicted,
            8 => RejectCode::NotReady,
            _ => return None,
        })
    }

    /// Stable lowercase label (metric names, logs, REJECT details).
    pub fn as_str(self) -> &'static str {
        match self {
            RejectCode::QueueFull => "queue_full",
            RejectCode::TenantBusy => "tenant_busy",
            RejectCode::AdmissionDenied => "admission_denied",
            RejectCode::ConfigMismatch => "config_mismatch",
            RejectCode::BadFrame => "bad_frame",
            RejectCode::FaultInjected => "fault_injected",
            RejectCode::Evicted => "evicted",
            RejectCode::NotReady => "not_ready",
        }
    }

    /// True when the same request may lawfully succeed later.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            RejectCode::QueueFull | RejectCode::TenantBusy | RejectCode::NotReady
        )
    }
}

/// A decoded REJECT reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reject {
    /// Why.
    pub code: RejectCode,
    /// Suggested client backoff; 0 means "do not retry".
    pub retry_after_ms: u32,
    /// Human-readable context.
    pub detail: String,
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (retry_after_ms={}): {}",
            self.code.as_str(),
            self.retry_after_ms,
            self.detail
        )
    }
}

/// Per-tenant deterministic fault plan, declared at HELLO. Faults are a
/// pure function of `(seed, round, rank)` so a run is exactly replayable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantFaultSpec {
    /// Plan seed.
    pub seed: u64,
    /// Reject roughly one in `reject_period` submits with
    /// [`RejectCode::FaultInjected`]; 0 disables injection.
    pub reject_period: u32,
    /// Daemon closes every session of this tenant when a submit for this
    /// round arrives (a server-visible tenant crash). `u64::MAX` = never.
    pub crash_round: u64,
}

impl TenantFaultSpec {
    /// True when the plan injects a fault for this `(round, rank)` submit.
    pub fn rejects(&self, round: u64, rank: usize) -> bool {
        if self.reject_period == 0 {
            return false;
        }
        let h = splitmix64(self.seed ^ round.wrapping_mul(0x9e37_79b9) ^ (rank as u64) << 32);
        h.is_multiple_of(self.reject_period as u64)
    }
}

/// Which compression scheme a tenant runs, with just enough parameters to
/// rebuild a bit-identical instance on the shard (and in the standalone
/// conformance reference).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeSpec {
    /// `TopK::with_bits(bits, n, error_feedback)`.
    TopK {
        /// Nominal bits per coordinate (×100, so the wire stays integral).
        bits_x100: u32,
        /// Enable error feedback.
        error_feedback: bool,
    },
    /// `Thc::baseline(q, n)`.
    Thc {
        /// Quantization bits.
        q: u32,
    },
    /// `Qsgd::new(q, n)`.
    Qsgd {
        /// Quantization bits.
        q: u32,
    },
    /// `PowerSgd::new(rank, vec![(rows, cols)], n)`; requires
    /// `rows * cols == dim`.
    PowerSgd {
        /// Approximation rank.
        rank: u32,
        /// Matrix rows.
        rows: u32,
        /// Matrix cols.
        cols: u32,
    },
}

impl SchemeSpec {
    /// Family label for metrics and BENCH rows.
    pub fn family(&self) -> &'static str {
        match self {
            SchemeSpec::TopK { .. } => "topk",
            SchemeSpec::Thc { .. } => "thc",
            SchemeSpec::Qsgd { .. } => "qsgd",
            SchemeSpec::PowerSgd { .. } => "powersgd",
        }
    }

    /// Builds the scheme instance, validating parameters against `dim`.
    pub fn build(
        &self,
        n_workers: usize,
        dim: usize,
    ) -> Result<Box<dyn gcs_core::scheme::CompressionScheme + Send>, String> {
        use gcs_core::schemes::literature::Qsgd;
        use gcs_core::schemes::powersgd::PowerSgd;
        use gcs_core::schemes::thc::Thc;
        use gcs_core::schemes::topk::TopK;
        match *self {
            SchemeSpec::TopK {
                bits_x100,
                error_feedback,
            } => {
                if !(1..=3200).contains(&bits_x100) {
                    return Err(format!("topk bits_x100={bits_x100} out of range"));
                }
                Ok(Box::new(TopK::with_bits(
                    bits_x100 as f64 / 100.0,
                    n_workers,
                    error_feedback,
                )))
            }
            SchemeSpec::Thc { q } => {
                if !(2..=16).contains(&q) {
                    return Err(format!("thc q={q} out of range"));
                }
                Ok(Box::new(Thc::baseline(q, n_workers)))
            }
            SchemeSpec::Qsgd { q } => {
                if !(1..=8).contains(&q) {
                    return Err(format!("qsgd q={q} out of range"));
                }
                Ok(Box::new(Qsgd::new(q, n_workers)))
            }
            SchemeSpec::PowerSgd { rank, rows, cols } => {
                if rank == 0 || rows == 0 || cols == 0 {
                    return Err("powersgd rank/rows/cols must be positive".into());
                }
                if rows as usize * cols as usize != dim {
                    return Err(format!("powersgd {rows}x{cols} != dim {dim}"));
                }
                Ok(Box::new(PowerSgd::new(
                    rank,
                    vec![(rows as usize, cols as usize)],
                    n_workers,
                )))
            }
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            SchemeSpec::TopK {
                bits_x100,
                error_feedback,
            } => {
                out.push(1);
                put_u64(out, bits_x100 as u64);
                out.push(u8::from(error_feedback));
            }
            SchemeSpec::Thc { q } => {
                out.push(2);
                put_u64(out, q as u64);
            }
            SchemeSpec::Qsgd { q } => {
                out.push(3);
                put_u64(out, q as u64);
            }
            SchemeSpec::PowerSgd { rank, rows, cols } => {
                out.push(4);
                put_u64(out, rank as u64);
                put_u64(out, rows as u64);
                put_u64(out, cols as u64);
            }
        }
    }

    fn decode(c: &mut Cursor<'_>) -> Result<SchemeSpec, String> {
        Ok(match c.u8()? {
            1 => SchemeSpec::TopK {
                bits_x100: c.u64()? as u32,
                error_feedback: c.u8()? != 0,
            },
            2 => SchemeSpec::Thc { q: c.u64()? as u32 },
            3 => SchemeSpec::Qsgd { q: c.u64()? as u32 },
            4 => SchemeSpec::PowerSgd {
                rank: c.u64()? as u32,
                rows: c.u64()? as u32,
                cols: c.u64()? as u32,
            },
            t => return Err(format!("unknown scheme tag {t}")),
        })
    }
}

/// Everything a HELLO declares about one `(tenant, model)` job.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantConfig {
    /// Tenant id (one training job owner).
    pub tenant: u64,
    /// Model id within the tenant.
    pub model: u64,
    /// Gradient dimension.
    pub dim: usize,
    /// Workers submitting per round (1..=[`MAX_WORKERS`]).
    pub n_workers: usize,
    /// Seed threaded into every `RoundContext` — the same seed a standalone
    /// run of the scheme would use, so estimates are bit-comparable.
    pub experiment_seed: u64,
    /// The compression scheme this tenant runs.
    pub scheme: SchemeSpec,
    /// Optional deterministic fault plan.
    pub fault: Option<TenantFaultSpec>,
}

impl TenantConfig {
    /// The daemon's state key.
    pub fn key(&self) -> (u64, u64) {
        (self.tenant, self.model)
    }
}

/// SplitMix64 — the same mixer the fault and data-generation layers use.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends raw little-endian `f32`s.
pub fn put_f32s(out: &mut Vec<u8>, data: &[f32]) {
    out.reserve(data.len() * 4);
    for &x in data {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Bounds-checked forward reader over one frame payload.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "frame truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let n = self.u64()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| format!("bad utf8: {e}"))
    }

    /// Decodes the remaining bytes as exactly `expect` little-endian `f32`s
    /// into `out` (cleared first; reuses its capacity).
    pub fn f32s_into(&mut self, expect: usize, out: &mut Vec<f32>) -> Result<(), String> {
        let b = self.take(expect * 4)?;
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ));
        }
        out.clear();
        out.reserve(expect);
        for ch in b.chunks_exact(4) {
            out.push(f32::from_le_bytes(ch.try_into().expect("4 bytes")));
        }
        Ok(())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// ---------------------------------------------------------------------------
// Message encode/decode
// ---------------------------------------------------------------------------

/// Encodes a HELLO payload into `out` (cleared first).
pub fn encode_hello(out: &mut Vec<u8>, cfg: &TenantConfig) {
    out.clear();
    out.push(T_HELLO);
    put_u64(out, cfg.tenant);
    put_u64(out, cfg.model);
    put_u64(out, cfg.dim as u64);
    put_u64(out, cfg.n_workers as u64);
    put_u64(out, cfg.experiment_seed);
    cfg.scheme.encode(out);
    match cfg.fault {
        None => out.push(0),
        Some(f) => {
            out.push(1);
            put_u64(out, f.seed);
            put_u64(out, f.reject_period as u64);
            put_u64(out, f.crash_round);
        }
    }
}

/// Decodes a HELLO payload (tag already consumed).
pub fn decode_hello(c: &mut Cursor<'_>) -> Result<TenantConfig, String> {
    let tenant = c.u64()?;
    let model = c.u64()?;
    let dim = c.u64()? as usize;
    let n_workers = c.u64()? as usize;
    let experiment_seed = c.u64()?;
    let scheme = SchemeSpec::decode(c)?;
    let fault = match c.u8()? {
        0 => None,
        1 => Some(TenantFaultSpec {
            seed: c.u64()?,
            reject_period: c.u64()? as u32,
            crash_round: c.u64()?,
        }),
        f => return Err(format!("bad fault flag {f}")),
    };
    Ok(TenantConfig {
        tenant,
        model,
        dim,
        n_workers,
        experiment_seed,
        scheme,
        fault,
    })
}

/// Encodes a SUBMIT payload into `out` (cleared first).
pub fn encode_submit(out: &mut Vec<u8>, round: u64, rank: usize, grad: &[f32]) {
    out.clear();
    out.push(T_SUBMIT);
    put_u64(out, round);
    put_u64(out, rank as u64);
    put_f32s(out, grad);
}

/// Encodes a FETCH payload into `out` (cleared first).
pub fn encode_fetch(out: &mut Vec<u8>, round: u64) {
    out.clear();
    out.push(T_FETCH);
    put_u64(out, round);
}

/// Encodes a BYE payload into `out` (cleared first).
pub fn encode_bye(out: &mut Vec<u8>) {
    out.clear();
    out.push(T_BYE);
}

/// Appends a HELLO_OK frame body to `out`.
pub fn encode_hello_ok(out: &mut Vec<u8>, shard: usize) {
    out.push(T_HELLO_OK);
    put_u64(out, shard as u64);
}

/// Appends a SUBMIT_OK frame body to `out`.
pub fn encode_submit_ok(out: &mut Vec<u8>, round: u64) {
    out.push(T_SUBMIT_OK);
    put_u64(out, round);
}

/// Appends a FETCH_OK frame body to `out`.
pub fn encode_fetch_ok(out: &mut Vec<u8>, round: u64, estimate: &[f32]) {
    out.push(T_FETCH_OK);
    put_u64(out, round);
    put_f32s(out, estimate);
}

/// Appends a BYE_OK frame body to `out`.
pub fn encode_bye_ok(out: &mut Vec<u8>) {
    out.push(T_BYE_OK);
}

/// Appends a REJECT frame body to `out`.
pub fn encode_reject(out: &mut Vec<u8>, code: RejectCode, retry_after_ms: u32, detail: &str) {
    out.push(T_REJECT);
    out.push(code as u8);
    put_u64(out, retry_after_ms as u64);
    put_str(out, detail);
}

/// Decodes a REJECT payload (tag already consumed).
pub fn decode_reject(c: &mut Cursor<'_>) -> Result<Reject, String> {
    let code_b = c.u8()?;
    let code = RejectCode::from_u8(code_b).ok_or_else(|| format!("bad reject code {code_b}"))?;
    let retry_after_ms = c.u64()? as u32;
    let detail = c.str()?;
    Ok(Reject {
        code,
        retry_after_ms,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let cfg = TenantConfig {
            tenant: 7,
            model: 9,
            dim: 128,
            n_workers: 4,
            experiment_seed: 0xdead_beef,
            scheme: SchemeSpec::PowerSgd {
                rank: 2,
                rows: 16,
                cols: 8,
            },
            fault: Some(TenantFaultSpec {
                seed: 3,
                reject_period: 5,
                crash_round: 11,
            }),
        };
        let mut buf = Vec::new();
        encode_hello(&mut buf, &cfg);
        let mut c = Cursor::new(&buf[1..]);
        assert_eq!(decode_hello(&mut c).unwrap(), cfg);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn reject_round_trips_and_truncation_is_typed() {
        let mut buf = Vec::new();
        encode_reject(&mut buf, RejectCode::QueueFull, 5, "shard 3 full");
        let mut c = Cursor::new(&buf[1..]);
        let r = decode_reject(&mut c).unwrap();
        assert_eq!(r.code, RejectCode::QueueFull);
        assert_eq!(r.retry_after_ms, 5);
        assert!(RejectCode::QueueFull.retryable());
        assert!(!RejectCode::BadFrame.retryable());

        let mut short = Cursor::new(&buf[1..4]);
        assert!(decode_reject(&mut short).is_err());
    }

    #[test]
    fn fault_plan_is_deterministic() {
        let f = TenantFaultSpec {
            seed: 42,
            reject_period: 3,
            crash_round: u64::MAX,
        };
        let a: Vec<bool> = (0..64).map(|r| f.rejects(r, 0)).collect();
        let b: Vec<bool> = (0..64).map(|r| f.rejects(r, 0)).collect();
        assert_eq!(a, b);
        assert!(
            a.iter().any(|&x| x),
            "period 3 should fire within 64 rounds"
        );
        assert!(!a.iter().all(|&x| x), "period 3 must not fire every round");
    }
}
