//! Per-tenant aggregation state, owned exclusively by one shard thread.
//!
//! A tenant's rounds fold strictly in order (`next_round` is the cursor):
//! compression schemes are stateful (error feedback, PowerSGD warm factors),
//! so the shard must feed them the same round sequence a standalone run
//! would — that in-order discipline is what makes daemon estimates bitwise
//! identical to `aggregate_round` called in a loop, which the conformance
//! suite pins.
//!
//! Memory is bounded and steady-state allocation-free by construction:
//! * at most [`MAX_PENDING_ROUNDS`] partially-submitted rounds are buffered
//!   (per-rank gradient slots preallocated at HELLO); a submit beyond the
//!   window is a typed `TenantBusy` reject — backpressure, not growth;
//! * folded estimates live in a [`RESULT_RETAIN`]-deep ring of reused
//!   buffers; older rounds answer `Evicted`;
//! * the fold itself runs through the pooled `aggregate_round_into` seam
//!   with one reused [`AggregationOutcome`], so a warm round performs zero
//!   heap events (pinned in `tests/alloc_budget.rs`).

use std::time::Instant;

use gcs_core::scheme::{AggregationOutcome, CompressionScheme, RoundContext};
use gcs_metrics::Registry;

use crate::proto::{RejectCode, TenantConfig, MAX_WORKERS};

/// Most rounds a tenant may have partially submitted (in-flight) at once.
pub const MAX_PENDING_ROUNDS: usize = 4;

/// Folded estimates retained per tenant before eviction.
pub const RESULT_RETAIN: usize = 4;

/// Backoff hint handed to tenants that outrun their own window.
pub const BUSY_RETRY_MS: u32 = 2;

/// Poll hint for fetches of rounds that have not folded yet.
pub const NOT_READY_RETRY_MS: u32 = 1;

/// One partially-submitted round: per-rank gradient slots plus a presence
/// mask.
struct PendingRound {
    round: u64,
    mask: u64,
    grads: Vec<Vec<f32>>,
    t0: Instant,
    active: bool,
}

/// One retained folded estimate.
struct ResultSlot {
    round: u64,
    data: Vec<f32>,
    valid: bool,
}

/// What a submit did.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitVerdict {
    /// Gradient accepted; `folded` rounds (possibly zero) completed as a
    /// result — the fold cursor is now `next_round()`.
    Accepted {
        /// Number of rounds folded by this submit.
        folded: u64,
    },
    /// Typed refusal: `(code, retry_after_ms)`.
    Rejected(RejectCode, u32),
    /// The tenant's fault plan says its sessions crash now.
    Crash,
}

/// What a fetch found.
#[derive(Debug, PartialEq, Eq)]
pub enum FetchVerdict {
    /// Estimate copied into the caller's buffer.
    Ready,
    /// Round not folded yet — poll again.
    NotReady,
    /// Round folded long ago and its slot was reused.
    Evicted,
}

/// All daemon-side state of one `(tenant, model)` job.
pub struct TenantState {
    cfg: TenantConfig,
    scheme: Box<dyn CompressionScheme + Send>,
    next_round: u64,
    pending: Vec<PendingRound>,
    results: Vec<ResultSlot>,
    outcome: AggregationOutcome,
    full_mask: u64,
    reg: Registry,
    names: MetricNames,
}

/// Preformatted per-tenant metric names — formatted once at HELLO so the
/// warm path never builds a `String`.
struct MetricNames {
    round_ns: String,
    rounds: String,
    wire_bytes: String,
    rejects: String,
    faults: String,
    queue_depth: String,
}

impl TenantState {
    /// Builds the state for one admitted tenant: constructs the scheme and
    /// preallocates every buffer the warm path touches.
    pub fn new(cfg: TenantConfig) -> Result<TenantState, String> {
        if cfg.dim == 0 {
            return Err("dim must be positive".into());
        }
        if !(1..=MAX_WORKERS).contains(&cfg.n_workers) {
            return Err(format!(
                "n_workers={} outside 1..={MAX_WORKERS}",
                cfg.n_workers
            ));
        }
        let scheme = cfg.scheme.build(cfg.n_workers, cfg.dim)?;
        let pending = (0..MAX_PENDING_ROUNDS)
            .map(|_| PendingRound {
                round: 0,
                mask: 0,
                grads: vec![vec![0.0; cfg.dim]; cfg.n_workers],
                t0: Instant::now(),
                active: false,
            })
            .collect();
        let results = (0..RESULT_RETAIN)
            .map(|_| ResultSlot {
                round: 0,
                data: Vec::with_capacity(cfg.dim),
                valid: false,
            })
            .collect();
        let prefix = format!("aggd/tenant/{}:{}", cfg.tenant, cfg.model);
        let names = MetricNames {
            round_ns: format!("{prefix}/round_ns"),
            rounds: format!("{prefix}/rounds_total"),
            wire_bytes: format!("{prefix}/wire_bytes_total"),
            rejects: format!("{prefix}/rejects_total"),
            faults: format!("{prefix}/faults_total"),
            queue_depth: format!("{prefix}/queue_depth"),
        };
        let full_mask = if cfg.n_workers == 64 {
            u64::MAX
        } else {
            (1u64 << cfg.n_workers) - 1
        };
        let mut reg = Registry::new();
        // Touch every counter so warm-path lookups never insert.
        reg.counter_add(&names.rounds, 0.0);
        reg.counter_add(&names.wire_bytes, 0.0);
        reg.counter_add(&names.rejects, 0.0);
        reg.counter_add(&names.faults, 0.0);
        reg.gauge_set(&names.queue_depth, 0.0);
        Ok(TenantState {
            cfg,
            scheme,
            next_round: 0,
            pending,
            results,
            outcome: AggregationOutcome::default(),
            full_mask,
            reg,
            names,
        })
    }

    /// The config declared at HELLO.
    pub fn config(&self) -> &TenantConfig {
        &self.cfg
    }

    /// The fold cursor: lowest round not yet folded.
    pub fn next_round(&self) -> u64 {
        self.next_round
    }

    /// This tenant's metric registry (merged into the shard snapshot).
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Counts a reject that the session layer issued on this tenant's
    /// behalf (queue-full, inflight cap) so per-tenant totals stay honest.
    pub fn note_reject(&mut self) {
        self.reg.counter_add(&self.names.rejects, 1.0);
    }

    /// One worker's gradient for `round`. `now` is injected by the caller
    /// (the shard thread) so tests can drive a deterministic clock.
    pub fn submit(&mut self, round: u64, rank: usize, data: &[f32], now: Instant) -> SubmitVerdict {
        if let Some(f) = self.cfg.fault {
            if round == f.crash_round {
                return SubmitVerdict::Crash;
            }
            if f.rejects(round, rank) {
                self.reg.counter_add(&self.names.faults, 1.0);
                self.reg.counter_add(&self.names.rejects, 1.0);
                return SubmitVerdict::Rejected(RejectCode::FaultInjected, 0);
            }
        }
        if rank >= self.cfg.n_workers || data.len() != self.cfg.dim {
            self.reg.counter_add(&self.names.rejects, 1.0);
            return SubmitVerdict::Rejected(RejectCode::BadFrame, 0);
        }
        if round < self.next_round {
            self.reg.counter_add(&self.names.rejects, 1.0);
            return SubmitVerdict::Rejected(RejectCode::Evicted, 0);
        }
        if round >= self.next_round + MAX_PENDING_ROUNDS as u64 {
            self.reg.counter_add(&self.names.rejects, 1.0);
            return SubmitVerdict::Rejected(RejectCode::TenantBusy, BUSY_RETRY_MS);
        }
        let slot = &mut self.pending[(round % MAX_PENDING_ROUNDS as u64) as usize];
        if !slot.active {
            slot.active = true;
            slot.round = round;
            slot.mask = 0;
            slot.t0 = now;
        }
        debug_assert_eq!(slot.round, round, "window slot collision");
        if slot.mask & (1 << rank) != 0 {
            self.reg.counter_add(&self.names.rejects, 1.0);
            return SubmitVerdict::Rejected(RejectCode::BadFrame, 0);
        }
        slot.grads[rank].copy_from_slice(data);
        slot.mask |= 1 << rank;
        // Frame-level accounting: tag + round + rank + payload + length
        // prefix, mirroring what actually crossed the wire.
        self.reg
            .counter_add(&self.names.wire_bytes, (21 + 4 * self.cfg.dim) as f64);
        let mut folded = 0u64;
        while self.fold_next(now) {
            folded += 1;
        }
        self.reg.gauge_set(
            &self.names.queue_depth,
            self.pending.iter().filter(|p| p.active).count() as f64,
        );
        SubmitVerdict::Accepted { folded }
    }

    /// Folds `next_round` if every rank has submitted it. Returns whether a
    /// fold happened.
    fn fold_next(&mut self, now: Instant) -> bool {
        let idx = (self.next_round % MAX_PENDING_ROUNDS as u64) as usize;
        let slot = &mut self.pending[idx];
        if !slot.active || slot.round != self.next_round || slot.mask != self.full_mask {
            return false;
        }
        let ctx = RoundContext::new(self.cfg.experiment_seed, slot.round);
        self.scheme
            .aggregate_round_into(&slot.grads, &ctx, &mut self.outcome);
        let res = &mut self.results[(slot.round % RESULT_RETAIN as u64) as usize];
        res.data.clear();
        res.data.extend_from_slice(&self.outcome.mean_estimate);
        res.round = slot.round;
        res.valid = true;
        slot.active = false;
        let elapsed_ns = now.saturating_duration_since(slot.t0).as_nanos() as f64;
        self.reg.observe(&self.names.round_ns, elapsed_ns);
        self.reg.counter_add(&self.names.rounds, 1.0);
        self.next_round += 1;
        true
    }

    /// Copies `round`'s folded estimate into `out` (cleared, capacity
    /// reused) if it is ready and still retained.
    pub fn fetch_into(&mut self, round: u64, out: &mut Vec<f32>) -> FetchVerdict {
        if round >= self.next_round {
            return FetchVerdict::NotReady;
        }
        let res = &self.results[(round % RESULT_RETAIN as u64) as usize];
        if !res.valid || res.round != round {
            self.reg.counter_add(&self.names.rejects, 1.0);
            return FetchVerdict::Evicted;
        }
        out.clear();
        out.extend_from_slice(&res.data);
        self.reg
            .counter_add(&self.names.wire_bytes, (13 + 4 * self.cfg.dim) as f64);
        FetchVerdict::Ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::SchemeSpec;

    fn cfg(n_workers: usize) -> TenantConfig {
        TenantConfig {
            tenant: 1,
            model: 1,
            dim: 32,
            n_workers,
            experiment_seed: 7,
            scheme: SchemeSpec::TopK {
                bits_x100: 200,
                error_feedback: true,
            },
            fault: None,
        }
    }

    fn grad(round: u64, rank: usize, dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|i| {
                let h = crate::proto::splitmix64(round ^ (rank as u64) << 20 ^ (i as u64) << 40);
                (h % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn in_order_folds_match_standalone() {
        let mut st = TenantState::new(cfg(2)).unwrap();
        let mut reference = cfg(2).scheme.build(2, 32).unwrap();
        let now = Instant::now();
        let mut out = Vec::with_capacity(32);
        for round in 0..6u64 {
            let g0 = grad(round, 0, 32);
            let g1 = grad(round, 1, 32);
            // Reverse rank order on odd rounds: arrival order must not
            // matter, only the fold order.
            if round % 2 == 0 {
                assert_eq!(
                    st.submit(round, 0, &g0, now),
                    SubmitVerdict::Accepted { folded: 0 }
                );
                assert_eq!(
                    st.submit(round, 1, &g1, now),
                    SubmitVerdict::Accepted { folded: 1 }
                );
            } else {
                assert_eq!(
                    st.submit(round, 1, &g1, now),
                    SubmitVerdict::Accepted { folded: 0 }
                );
                assert_eq!(
                    st.submit(round, 0, &g0, now),
                    SubmitVerdict::Accepted { folded: 1 }
                );
            }
            assert_eq!(st.fetch_into(round, &mut out), FetchVerdict::Ready);
            let want = reference
                .aggregate_round(&[g0, g1], &RoundContext::new(7, round))
                .mean_estimate;
            assert_eq!(out, want, "round {round} diverged");
        }
    }

    #[test]
    fn window_and_retention_bounds_are_typed() {
        let mut st = TenantState::new(cfg(2)).unwrap();
        let now = Instant::now();
        let g = grad(0, 0, 32);
        // Fill the window with partial rounds (rank 1 never arrives).
        for round in 0..MAX_PENDING_ROUNDS as u64 {
            assert_eq!(
                st.submit(round, 0, &g, now),
                SubmitVerdict::Accepted { folded: 0 }
            );
        }
        assert_eq!(
            st.submit(MAX_PENDING_ROUNDS as u64, 0, &g, now),
            SubmitVerdict::Rejected(RejectCode::TenantBusy, BUSY_RETRY_MS)
        );
        // Duplicate rank within a pending round.
        assert_eq!(
            st.submit(0, 0, &g, now),
            SubmitVerdict::Rejected(RejectCode::BadFrame, 0)
        );
        // Unready fetch is a poll, not a park.
        let mut out = Vec::new();
        assert_eq!(st.fetch_into(0, &mut out), FetchVerdict::NotReady);

        // Single-worker tenant: run past the retention ring and observe
        // eviction of the oldest round.
        let mut solo = TenantState::new(cfg(1)).unwrap();
        for round in 0..(RESULT_RETAIN as u64 + 2) {
            assert_eq!(
                solo.submit(round, 0, &g, now),
                SubmitVerdict::Accepted { folded: 1 }
            );
        }
        assert_eq!(solo.fetch_into(0, &mut out), FetchVerdict::Evicted);
        assert_eq!(
            solo.fetch_into(RESULT_RETAIN as u64 + 1, &mut out),
            FetchVerdict::Ready
        );
    }
}
