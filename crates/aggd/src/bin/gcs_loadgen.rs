//! Open-loop tenant load generator for the aggregation daemon.
//!
//! ```text
//! gcs_loadgen [--addr HOST:PORT] [--tenants N[,N...]] [--rounds R]
//!             [--rate HZ] [--dims D,D,...] [--drivers N] [--fast]
//! ```
//!
//! Without `--addr` an in-process daemon is spawned. `--tenants` takes a
//! comma-separated sweep; each point prints one line of the capacity curve
//! (tenants × round-rate vs p50/p99). Exits non-zero if any point failed
//! to sustain its offered load (a round never completed or a stream never
//! connected) — the CI smoke gate.

use std::net::SocketAddr;
use std::time::Duration;

use gcs_aggd::daemon::{AggDaemon, AggdConfig};
use gcs_aggd::loadgen::{capacity_sweep, LoadgenConfig};

fn main() {
    let mut sweep: Vec<usize> = vec![64];
    let mut cfg = LoadgenConfig::default();
    let mut addr: Option<SocketAddr> = None;
    let mut shards = AggdConfig::default().shards;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--addr" => {
                addr = Some(
                    val("--addr")
                        .parse()
                        .unwrap_or_else(|_| die("--addr must be HOST:PORT")),
                )
            }
            "--tenants" => sweep = parse_list(&val("--tenants")),
            "--rounds" => cfg.rounds = parse_num(&val("--rounds")),
            "--rate" => {
                cfg.rate_hz = val("--rate")
                    .parse()
                    .unwrap_or_else(|_| die("--rate must be a number"))
            }
            "--dims" => cfg.dims = parse_list(&val("--dims")),
            "--drivers" => cfg.drivers = parse_num(&val("--drivers")) as usize,
            "--shards" => shards = parse_num(&val("--shards")) as usize,
            "--fast" => {
                cfg.rounds = 3;
                cfg.rate_hz = 20.0;
                cfg.dims = vec![32, 64, 128];
            }
            "--help" | "-h" => {
                println!(
                    "usage: gcs_loadgen [--addr HOST:PORT] [--tenants N,N,...] [--rounds R] \
                     [--rate HZ] [--dims D,D,...] [--drivers N] [--shards N] [--fast]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    cfg.deadline = Duration::from_secs(30);

    // Self-hosted daemon unless a target was given.
    let local = if addr.is_none() {
        let daemon = AggDaemon::spawn(AggdConfig {
            shards,
            max_tenants: sweep.iter().copied().max().unwrap_or(64) * 2 + 64,
            ..AggdConfig::default()
        })
        .unwrap_or_else(|e| die(&format!("daemon spawn failed: {e}")));
        Some(daemon)
    } else {
        None
    };
    let target = addr.unwrap_or_else(|| local.as_ref().expect("local daemon").addr());

    println!("# aggd capacity curve against {target}");
    println!("# tenants rate_hz rounds completed rejects failed p50_ms p99_ms wall_s sustained");
    let points = capacity_sweep(target, &sweep, &cfg);
    let mut all_sustained = true;
    for p in &points {
        all_sustained &= p.sustained;
        println!(
            "{} {:.1} {} {} {} {} {:.3} {:.3} {:.2} {}",
            p.tenants,
            p.round_rate_hz,
            p.rounds_per_tenant,
            p.completed,
            p.rejects,
            p.failed,
            p.p50_ns / 1e6,
            p.p99_ns / 1e6,
            p.wall_s,
            p.sustained
        );
    }
    if !all_sustained {
        eprintln!("gcs_loadgen: offered load was not sustained");
        std::process::exit(1);
    }
}

fn parse_list<T: std::str::FromStr>(s: &str) -> Vec<T> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| die(&format!("bad list element {t}")))
        })
        .collect()
}

fn parse_num(s: &str) -> u64 {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad number {s}")))
}

fn die(msg: &str) -> ! {
    eprintln!("gcs_loadgen: {msg}");
    std::process::exit(2);
}
