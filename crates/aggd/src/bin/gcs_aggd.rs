//! Long-running aggregation daemon.
//!
//! ```text
//! gcs_aggd [--port P] [--shards N] [--io-threads N] [--max-tenants N]
//! ```
//!
//! Prints the bound address on stdout, then serves until killed. Tenants
//! speak the `GCSA` framed protocol; `GET /metrics` on the same port
//! returns the Prometheus exposition of every tenant's registry.

use gcs_aggd::daemon::{AggDaemon, AggdConfig};

fn main() {
    let mut cfg = AggdConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} needs a numeric value")))
        };
        match a.as_str() {
            "--port" => cfg.bind_port = val("--port") as u16,
            "--shards" => cfg.shards = val("--shards").max(1),
            "--io-threads" => cfg.io_threads = val("--io-threads").max(1),
            "--max-tenants" => cfg.max_tenants = val("--max-tenants").max(1),
            "--max-dim" => cfg.max_dim = val("--max-dim").max(1),
            "--help" | "-h" => {
                println!(
                    "usage: gcs_aggd [--port P] [--shards N] [--io-threads N] [--max-tenants N] [--max-dim N]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let daemon = AggDaemon::spawn(cfg).unwrap_or_else(|e| die(&format!("bind failed: {e}")));
    println!("{}", daemon.addr());
    // Serve forever; the daemon threads do all the work.
    loop {
        std::thread::park();
    }
}

fn die(msg: &str) -> ! {
    eprintln!("gcs_aggd: {msg}");
    std::process::exit(2);
}
