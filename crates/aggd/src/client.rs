//! Synchronous tenant client: one connection, one worker rank.
//!
//! Every request reads exactly one reply frame; retryable rejects
//! (`QueueFull`, `TenantBusy`, `NotReady`) surface as
//! [`ClientError::Rejected`] so callers decide their own backoff — except
//! the convenience [`TenantClient::run_round`], which retries them with the
//! daemon's hints until `deadline` and only fails on fatal codes.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use gcs_collectives::{FramedStream, RecvFail};

use crate::proto::{
    decode_reject, encode_bye, encode_fetch, encode_hello, encode_submit, Cursor, Reject,
    AGGD_MAGIC, T_BYE_OK, T_FETCH_OK, T_HELLO_OK, T_REJECT, T_SUBMIT_OK,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The daemon answered with a typed REJECT.
    Rejected(Reject),
    /// The connection closed (daemon shutdown, session crash plan, or
    /// post-reject close).
    Closed,
    /// No reply within the client's deadline.
    TimedOut,
    /// The daemon sent something this client cannot parse.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected(r) => write!(f, "rejected: {r}"),
            ClientError::Closed => write!(f, "connection closed"),
            ClientError::TimedOut => write!(f, "timed out"),
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
        }
    }
}

/// One worker's session with the daemon.
pub struct TenantClient {
    fs: FramedStream,
    deadline: Duration,
    enc: Vec<u8>,
}

impl TenantClient {
    /// Connects, writes the session magic, and completes the HELLO
    /// handshake for `cfg`.
    pub fn connect(
        addr: SocketAddr,
        cfg: &crate::proto::TenantConfig,
        deadline: Duration,
    ) -> Result<TenantClient, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, deadline)
            .map_err(|e| ClientError::Protocol(format!("connect: {e}")))?;
        use std::io::Write;
        let mut stream = stream;
        stream
            .write_all(&AGGD_MAGIC)
            .map_err(|_| ClientError::Closed)?;
        let mut client = TenantClient {
            fs: FramedStream::new(stream),
            deadline,
            enc: Vec::with_capacity(4 * cfg.dim + 128),
        };
        encode_hello(&mut client.enc, cfg);
        client.send_enc()?;
        match client.recv_reply()? {
            (T_HELLO_OK, _) => Ok(client),
            (tag, _) => Err(ClientError::Protocol(format!("hello got tag {tag:#x}"))),
        }
    }

    fn send_enc(&mut self) -> Result<(), ClientError> {
        self.fs
            .send_frame(&self.enc)
            .map_err(|_| ClientError::Closed)
    }

    /// Reads one reply frame; REJECTs become `Err(Rejected)`, other tags
    /// return `(tag, payload-after-tag)`.
    fn recv_reply(&mut self) -> Result<(u8, Vec<u8>), ClientError> {
        let frame = match self.fs.recv_frame(self.deadline) {
            Ok(f) => f,
            Err(RecvFail::Closed) => return Err(ClientError::Closed),
            Err(RecvFail::TimedOut) => return Err(ClientError::TimedOut),
            Err(RecvFail::Malformed(d)) => return Err(ClientError::Protocol(d)),
        };
        let mut c = Cursor::new(&frame);
        let tag = c.u8().map_err(ClientError::Protocol)?;
        if tag == T_REJECT {
            let r = decode_reject(&mut c).map_err(ClientError::Protocol)?;
            return Err(ClientError::Rejected(r));
        }
        Ok((tag, frame[1..].to_vec()))
    }

    /// Submits one worker gradient for `round`.
    pub fn submit(&mut self, round: u64, rank: usize, grad: &[f32]) -> Result<(), ClientError> {
        encode_submit(&mut self.enc, round, rank, grad);
        self.send_enc()?;
        match self.recv_reply()? {
            (T_SUBMIT_OK, body) => {
                let got = Cursor::new(&body).u64().map_err(ClientError::Protocol)?;
                if got != round {
                    return Err(ClientError::Protocol(format!(
                        "submit_ok for round {got}, wanted {round}"
                    )));
                }
                Ok(())
            }
            (tag, _) => Err(ClientError::Protocol(format!("submit got tag {tag:#x}"))),
        }
    }

    /// Fetches `round`'s folded estimate into `out` (single attempt — a
    /// not-yet-folded round is `Err(Rejected(NotReady))`).
    pub fn fetch_into(&mut self, round: u64, out: &mut Vec<f32>) -> Result<(), ClientError> {
        encode_fetch(&mut self.enc, round);
        self.send_enc()?;
        match self.recv_reply()? {
            (T_FETCH_OK, body) => {
                let mut c = Cursor::new(&body);
                let got = c.u64().map_err(ClientError::Protocol)?;
                if got != round {
                    return Err(ClientError::Protocol(format!(
                        "fetch_ok for round {got}, wanted {round}"
                    )));
                }
                if !c.remaining().is_multiple_of(4) {
                    return Err(ClientError::Protocol("ragged estimate payload".into()));
                }
                let n = c.remaining() / 4;
                c.f32s_into(n, out).map_err(ClientError::Protocol)?;
                Ok(())
            }
            (tag, _) => Err(ClientError::Protocol(format!("fetch got tag {tag:#x}"))),
        }
    }

    /// Submits and fetches one round, retrying retryable rejects with the
    /// daemon's backoff hints until the client deadline expires. Returns
    /// how many retryable rejects were absorbed.
    pub fn run_round(
        &mut self,
        round: u64,
        rank: usize,
        grad: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<u64, ClientError> {
        let t0 = Instant::now();
        let mut rejects = 0u64;
        loop {
            match self.submit(round, rank, grad) {
                Ok(()) => break,
                Err(ClientError::Rejected(r)) if r.code.retryable() => {
                    rejects += 1;
                    if t0.elapsed() > self.deadline {
                        return Err(ClientError::TimedOut);
                    }
                    std::thread::sleep(Duration::from_millis(u64::from(r.retry_after_ms.max(1))));
                }
                Err(e) => return Err(e),
            }
        }
        loop {
            match self.fetch_into(round, out) {
                Ok(()) => return Ok(rejects),
                Err(ClientError::Rejected(r)) if r.code.retryable() => {
                    rejects += 1;
                    if t0.elapsed() > self.deadline {
                        return Err(ClientError::TimedOut);
                    }
                    std::thread::sleep(Duration::from_millis(u64::from(r.retry_after_ms.max(1))));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Orderly goodbye; consumes the client.
    pub fn bye(mut self) -> Result<(), ClientError> {
        encode_bye(&mut self.enc);
        self.send_enc()?;
        match self.recv_reply()? {
            (T_BYE_OK, _) => Ok(()),
            (tag, _) => Err(ClientError::Protocol(format!("bye got tag {tag:#x}"))),
        }
    }

    /// Raw framed access, for tests that violate the protocol on purpose.
    pub fn raw_stream(&mut self) -> &mut FramedStream {
        &mut self.fs
    }
}
