//! The aggregation daemon: one listener, a pool of non-blocking session
//! I/O threads, and shard worker threads that exclusively own tenant state.
//!
//! Threading model (no locks anywhere on the request path):
//!
//! * the **accept thread** sniffs the 4-byte magic and hands `GCSA`
//!   sessions to an I/O thread round-robin; `GET ` connections get the
//!   Prometheus exposition of the fleet-aggregated per-tenant registries;
//! * each **I/O thread** owns its sessions outright and never blocks: it
//!   polls frames with `try_recv_frame`, forwards jobs to shards over
//!   *bounded* channels (`try_send` full ⇒ typed `QueueFull` reject), and
//!   drains reply queues into a bounded per-session write buffer flushed
//!   with non-blocking writes — a slow consumer throttles only itself
//!   (reads from its socket stop while its write buffer is full);
//! * each **shard thread** owns a disjoint set of `(tenant, model)` states
//!   keyed by hash, so round folding needs no synchronization at all —
//!   single-owner message passing is the "lock-free folding" discipline,
//!   and gradient buffers ride the job/reply messages so the warm path
//!   recycles them instead of allocating.
//!
//! Every queue in the pipeline is bounded: shard job queues by
//! [`AggdConfig::shard_queue`], per-session replies by
//! [`AggdConfig::max_inflight`], write buffers by the reply bound times the
//! frame size. Overload therefore surfaces as typed `REJECT`s with
//! retry-after hints, never as unbounded memory or silent drops.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gcs_collectives::{FramedStream, RecvFail};
use gcs_metrics::{FleetAggregator, Registry};

use crate::proto::{
    decode_hello, encode_bye_ok, encode_fetch_ok, encode_hello_ok, encode_reject, encode_submit_ok,
    splitmix64, Cursor, RejectCode, AGGD_MAGIC, T_BYE, T_FETCH, T_HELLO, T_SUBMIT,
};
use crate::state::{FetchVerdict, SubmitVerdict, TenantState, NOT_READY_RETRY_MS};

/// Daemon sizing and admission limits.
#[derive(Clone, Debug)]
pub struct AggdConfig {
    /// Shard worker threads (tenant states are hash-partitioned over them).
    pub shards: usize,
    /// Session I/O threads.
    pub io_threads: usize,
    /// Most `(tenant, model)` states admitted daemon-wide.
    pub max_tenants: usize,
    /// Largest gradient dimension a HELLO may declare.
    pub max_dim: usize,
    /// Depth of each shard's bounded job queue.
    pub shard_queue: usize,
    /// Most unanswered requests one session may have in flight.
    pub max_inflight: usize,
    /// Test hook: submits for this model id stall the owning shard for
    /// this many milliseconds, making queue-full backpressure reproducible.
    pub stall_ms_on_model: Option<(u64, u64)>,
    /// Loopback port to bind (0 = ephemeral).
    pub bind_port: u16,
}

impl Default for AggdConfig {
    fn default() -> AggdConfig {
        AggdConfig {
            shards: 2,
            io_threads: 2,
            max_tenants: 4096,
            max_dim: 1 << 16,
            shard_queue: 256,
            max_inflight: 16,
            stall_ms_on_model: None,
            bind_port: 0,
        }
    }
}

type Key = (u64, u64);
type ReplyTx = mpsc::Sender<Reply>;

/// Shard → session messages. Gradient buffers travel back inside replies
/// so sessions recycle them.
enum Reply {
    HelloOk {
        shard: usize,
    },
    SubmitOk {
        round: u64,
        buf: Vec<f32>,
    },
    FetchOk {
        round: u64,
        data: Vec<f32>,
    },
    Rejected {
        code: RejectCode,
        retry_after_ms: u32,
        buf: Option<Vec<f32>>,
    },
    /// The tenant's fault plan crashed its sessions: close without reply.
    Close,
}

/// Session → shard jobs.
enum ShardJob {
    Hello {
        cfg: crate::proto::TenantConfig,
        reply: ReplyTx,
    },
    Submit {
        key: Key,
        round: u64,
        rank: usize,
        buf: Vec<f32>,
        reply: ReplyTx,
    },
    Fetch {
        key: Key,
        round: u64,
        out: Vec<f32>,
        reply: ReplyTx,
    },
    Snapshot {
        reply: mpsc::Sender<Registry>,
    },
}

/// Daemon-wide counters surfaced in the scrape.
#[derive(Default)]
struct Stats {
    sessions_total: AtomicU64,
    scrapes_total: AtomicU64,
    malformed_total: AtomicU64,
    rejects_total: AtomicU64,
}

/// A running aggregation daemon. Dropping it shuts every thread down.
pub struct AggDaemon {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shards: Vec<SyncSender<ShardJob>>,
    stats: Arc<Stats>,
    threads: Vec<JoinHandle<()>>,
}

impl AggDaemon {
    /// Binds `127.0.0.1:0` and starts the accept, I/O, and shard threads.
    pub fn spawn(config: AggdConfig) -> std::io::Result<AggDaemon> {
        assert!(config.shards >= 1 && config.io_threads >= 1);
        let listener = TcpListener::bind(("127.0.0.1", config.bind_port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Stats::default());
        let mut threads = Vec::new();

        let mut shard_txs = Vec::new();
        for idx in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel::<ShardJob>(config.shard_queue);
            shard_txs.push(tx);
            let cfg = config.clone();
            let stop = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("aggd-shard-{idx}"))
                    .spawn(move || shard_main(idx, rx, cfg, stop))
                    .expect("spawn shard"),
            );
        }

        let mut io_txs = Vec::new();
        for idx in 0..config.io_threads {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            io_txs.push(tx);
            let cfg = config.clone();
            let stop = Arc::clone(&shutdown);
            let st = Arc::clone(&stats);
            let shards = shard_txs.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("aggd-io-{idx}"))
                    .spawn(move || io_main(rx, shards, cfg, stop, st))
                    .expect("spawn io"),
            );
        }

        {
            let stop = Arc::clone(&shutdown);
            let st = Arc::clone(&stats);
            let shards = shard_txs.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("aggd-accept".into())
                    .spawn(move || accept_main(listener, io_txs, shards, stop, st))
                    .expect("spawn accept"),
            );
        }

        Ok(AggDaemon {
            addr,
            shutdown,
            shards: shard_txs,
            stats,
            threads,
        })
    }

    /// The address tenants connect (and scrapers `GET /metrics`) to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fleet-aggregated registry: every shard's snapshot (each the
    /// merge of its tenants' registries) folded through the PR 8
    /// [`FleetAggregator`], plus daemon-level session counters.
    pub fn registry(&self) -> Registry {
        scrape_registry(&self.shards, &self.stats)
    }

    /// Prometheus text exposition of [`AggDaemon::registry`] — the same
    /// body the HTTP scrape path serves.
    pub fn prometheus(&self) -> String {
        self.registry().to_prometheus()
    }
}

impl Drop for AggDaemon {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

/// Routes a tenant key to its owning shard.
fn shard_of(key: Key, shards: usize) -> usize {
    (splitmix64(key.0 ^ key.1.rotate_left(32)) % shards as u64) as usize
}

// ---------------------------------------------------------------------------
// Accept thread + scrape path
// ---------------------------------------------------------------------------

fn accept_main(
    listener: TcpListener,
    io_txs: Vec<mpsc::Sender<TcpStream>>,
    shards: Vec<SyncSender<ShardJob>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<Stats>,
) {
    let mut next_io = 0usize;
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let mut magic = [0u8; 4];
                if stream.read_exact(&mut magic).is_err() {
                    stats.malformed_total.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if magic == AGGD_MAGIC {
                    stats.sessions_total.fetch_add(1, Ordering::Relaxed);
                    let _ = io_txs[next_io % io_txs.len()].send(stream);
                    next_io += 1;
                } else if &magic == b"GET " {
                    stats.scrapes_total.fetch_add(1, Ordering::Relaxed);
                    let shards = shards.clone();
                    let stats = Arc::clone(&stats);
                    // Scrapes are rare; a short-lived thread keeps the
                    // accept loop responsive while shards snapshot.
                    let _ = std::thread::Builder::new()
                        .name("aggd-scrape".into())
                        .spawn(move || serve_scrape(stream, &shards, &stats));
                } else {
                    stats.malformed_total.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn serve_scrape(mut stream: TcpStream, shards: &[SyncSender<ShardJob>], stats: &Stats) {
    // Drain the bounded request head so the client's write never blocks.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < 8192 && !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => break,
        }
    }
    let body = scrape_registry(shards, stats).to_prometheus();
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Collects one registry snapshot from every shard and folds them through
/// the fleet aggregator (each shard is a "fleet member"), then layers the
/// daemon's own counters on top.
fn scrape_registry(shards: &[SyncSender<ShardJob>], stats: &Stats) -> Registry {
    let mut agg = FleetAggregator::new();
    for (idx, shard) in shards.iter().enumerate() {
        let (tx, rx) = mpsc::channel();
        agg.on_join(idx as u64, 0, 0);
        // The job queue is bounded; retry briefly rather than block forever.
        let mut job = ShardJob::Snapshot { reply: tx };
        for _ in 0..200 {
            match shard.try_send(job) {
                Ok(()) => break,
                Err(TrySendError::Full(j)) => {
                    job = j;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(TrySendError::Disconnected(_)) => return Registry::new(),
            }
        }
        if let Ok(reg) = rx.recv_timeout(Duration::from_secs(2)) {
            agg.on_snapshot(idx as u64, idx as u64, 0, reg);
        }
    }
    let mut reg = agg.fleet_registry();
    reg.counter_add(
        "aggd/sessions_total",
        stats.sessions_total.load(Ordering::Relaxed) as f64,
    );
    reg.counter_add(
        "aggd/scrapes_total",
        stats.scrapes_total.load(Ordering::Relaxed) as f64,
    );
    reg.counter_add(
        "aggd/malformed_total",
        stats.malformed_total.load(Ordering::Relaxed) as f64,
    );
    reg.counter_add(
        "aggd/rejects_total",
        stats.rejects_total.load(Ordering::Relaxed) as f64,
    );
    reg
}

// ---------------------------------------------------------------------------
// Shard threads
// ---------------------------------------------------------------------------

fn shard_main(idx: usize, rx: Receiver<ShardJob>, cfg: AggdConfig, shutdown: Arc<AtomicBool>) {
    let mut tenants: HashMap<Key, TenantState> = HashMap::new();
    let max_tenants_here = cfg.max_tenants.div_ceil(cfg.shards);
    let mut jobs: u64 = 0;
    loop {
        let job = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(j) => j,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        jobs += 1;
        match job {
            ShardJob::Hello { cfg: tcfg, reply } => {
                let key = tcfg.key();
                let r = match tenants.get(&key) {
                    Some(st) if st.config() == &tcfg => Reply::HelloOk { shard: idx },
                    Some(_) => Reply::Rejected {
                        code: RejectCode::ConfigMismatch,
                        retry_after_ms: 0,
                        buf: None,
                    },
                    None if tenants.len() >= max_tenants_here => Reply::Rejected {
                        code: RejectCode::AdmissionDenied,
                        retry_after_ms: 0,
                        buf: None,
                    },
                    None => match TenantState::new(tcfg) {
                        Ok(st) => {
                            tenants.insert(key, st);
                            Reply::HelloOk { shard: idx }
                        }
                        Err(_) => Reply::Rejected {
                            code: RejectCode::AdmissionDenied,
                            retry_after_ms: 0,
                            buf: None,
                        },
                    },
                };
                let _ = reply.send(r);
            }
            ShardJob::Submit {
                key,
                round,
                rank,
                buf,
                reply,
            } => {
                if let Some((model, ms)) = cfg.stall_ms_on_model {
                    if key.1 == model {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
                let r = match tenants.get_mut(&key) {
                    None => Reply::Rejected {
                        code: RejectCode::BadFrame,
                        retry_after_ms: 0,
                        buf: Some(buf),
                    },
                    Some(st) => match st.submit(round, rank, &buf, Instant::now()) {
                        SubmitVerdict::Accepted { .. } => Reply::SubmitOk { round, buf },
                        SubmitVerdict::Rejected(code, retry_after_ms) => Reply::Rejected {
                            code,
                            retry_after_ms,
                            buf: Some(buf),
                        },
                        SubmitVerdict::Crash => Reply::Close,
                    },
                };
                let _ = reply.send(r);
            }
            ShardJob::Fetch {
                key,
                round,
                mut out,
                reply,
            } => {
                let r = match tenants.get_mut(&key) {
                    None => Reply::Rejected {
                        code: RejectCode::BadFrame,
                        retry_after_ms: 0,
                        buf: Some(out),
                    },
                    Some(st) => match st.fetch_into(round, &mut out) {
                        FetchVerdict::Ready => Reply::FetchOk { round, data: out },
                        FetchVerdict::NotReady => Reply::Rejected {
                            code: RejectCode::NotReady,
                            retry_after_ms: NOT_READY_RETRY_MS,
                            buf: Some(out),
                        },
                        FetchVerdict::Evicted => Reply::Rejected {
                            code: RejectCode::Evicted,
                            retry_after_ms: 0,
                            buf: Some(out),
                        },
                    },
                };
                let _ = reply.send(r);
            }
            ShardJob::Snapshot { reply } => {
                let mut reg = Registry::new();
                for st in tenants.values() {
                    reg.merge(st.registry());
                }
                reg.gauge_set("aggd/shard/tenants", tenants.len() as f64);
                reg.counter_add("aggd/shard/jobs_total", jobs as f64);
                let _ = reply.send(reg);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Session I/O threads
// ---------------------------------------------------------------------------

/// One tenant connection, owned by exactly one I/O thread.
struct Session {
    fs: FramedStream,
    /// Second handle to the same socket for non-blocking writes (the
    /// `FramedStream` side is only used for reads).
    wh: TcpStream,
    key: Option<Key>,
    shard: usize,
    dim: usize,
    reply_tx: ReplyTx,
    reply_rx: Receiver<Reply>,
    inflight: usize,
    /// Recycled gradient/estimate buffers (bounded by `max_inflight`).
    spare: Vec<Vec<f32>>,
    outbuf: Vec<u8>,
    written: usize,
    /// Close once the write buffer drains.
    closing: bool,
    dead: bool,
}

impl Session {
    fn new(stream: TcpStream) -> std::io::Result<Session> {
        let wh = stream.try_clone()?;
        let (reply_tx, reply_rx) = mpsc::channel();
        Ok(Session {
            fs: FramedStream::new(stream),
            wh,
            key: None,
            shard: 0,
            dim: 0,
            reply_tx,
            reply_rx,
            inflight: 0,
            spare: Vec::new(),
            outbuf: Vec::new(),
            written: 0,
            closing: false,
            dead: false,
        })
    }

    fn take_buf(&mut self) -> Vec<f32> {
        self.spare.pop().unwrap_or_default()
    }

    /// Appends one frame (length prefix + payload) built by `build` to the
    /// write buffer.
    fn push_frame(&mut self, build: impl FnOnce(&mut Vec<u8>)) {
        let len_at = self.outbuf.len();
        self.outbuf.extend_from_slice(&[0; 4]);
        build(&mut self.outbuf);
        let payload = (self.outbuf.len() - len_at - 4) as u32;
        self.outbuf[len_at..len_at + 4].copy_from_slice(&payload.to_le_bytes());
    }

    fn push_reject(&mut self, code: RejectCode, retry_after_ms: u32, detail: &'static str) {
        self.push_frame(|out| encode_reject(out, code, retry_after_ms, detail));
    }

    /// Non-blocking flush of the write buffer. Returns true if bytes moved.
    fn flush(&mut self) -> bool {
        if self.written == self.outbuf.len() {
            self.outbuf.clear();
            self.written = 0;
            if self.closing {
                self.dead = true;
            }
            return false;
        }
        let _ = self.wh.set_nonblocking(true);
        let mut moved = false;
        while self.written < self.outbuf.len() {
            match self.wh.write(&self.outbuf[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(k) => {
                    self.written += k;
                    moved = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.written == self.outbuf.len() {
            self.outbuf.clear();
            self.written = 0;
            if self.closing {
                self.dead = true;
            }
        }
        moved
    }
}

fn io_main(
    new_rx: Receiver<TcpStream>,
    shards: Vec<SyncSender<ShardJob>>,
    cfg: AggdConfig,
    shutdown: Arc<AtomicBool>,
    stats: Arc<Stats>,
) {
    let mut sessions: Vec<Session> = Vec::new();
    // A session may buffer one reply frame per in-flight request; cap the
    // write buffer so a slow consumer's memory is bounded by construction.
    let out_cap = |dim: usize| (cfg.max_inflight + 1) * (4 * dim.max(8) + 64);
    loop {
        while let Ok(stream) = new_rx.try_recv() {
            if let Ok(s) = Session::new(stream) {
                sessions.push(s);
            }
        }
        let mut worked = false;
        for s in &mut sessions {
            let cap = out_cap(s.dim);
            worked |= pump(s, &shards, &cfg, &stats, cap);
        }
        sessions.retain(|s| !s.dead);
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        if !worked {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// One poll pass over one session. Returns true if any work happened.
fn pump(
    s: &mut Session,
    shards: &[SyncSender<ShardJob>],
    cfg: &AggdConfig,
    stats: &Stats,
    out_cap: usize,
) -> bool {
    let mut worked = false;
    // 1. Drain shard replies into the write buffer while there is room.
    while s.inflight > 0 && s.outbuf.len() < out_cap {
        match s.reply_rx.try_recv() {
            Ok(reply) => {
                s.inflight -= 1;
                worked = true;
                match reply {
                    Reply::HelloOk { shard } => {
                        s.shard = shard;
                        s.push_frame(|out| encode_hello_ok(out, shard));
                    }
                    Reply::SubmitOk { round, buf } => {
                        s.spare.push(buf);
                        s.push_frame(|out| encode_submit_ok(out, round));
                    }
                    Reply::FetchOk { round, data } => {
                        s.push_frame(|out| encode_fetch_ok(out, round, &data));
                        s.spare.push(data);
                    }
                    Reply::Rejected {
                        code,
                        retry_after_ms,
                        buf,
                    } => {
                        if let Some(b) = buf {
                            s.spare.push(b);
                        }
                        stats.rejects_total.fetch_add(1, Ordering::Relaxed);
                        s.push_reject(code, retry_after_ms, code.as_str());
                    }
                    Reply::Close => {
                        s.closing = true;
                    }
                }
            }
            Err(_) => break,
        }
    }
    // 2. Flush pending output.
    worked |= s.flush();
    if s.dead || s.closing {
        return worked;
    }
    // 3. Read new frames only while this session is under its own bounds —
    //    a stuffed write buffer or full in-flight window stops *its* reads
    //    (TCP backpressure to that tenant), never anyone else's.
    if s.outbuf.len() >= out_cap {
        return worked;
    }
    if s.inflight >= cfg.max_inflight {
        // The window is reply-bounded; nudge the client with a typed busy
        // signal instead of silently stalling would double-count replies,
        // so just stop reading: in-flight replies will drain first.
        return worked;
    }
    match s.fs.try_recv_frame() {
        Ok(Some(frame)) => {
            worked = true;
            handle_frame(s, shards, cfg, stats, &frame);
        }
        Ok(None) => {}
        Err(RecvFail::Closed) | Err(RecvFail::TimedOut) => {
            s.dead = true;
        }
        Err(RecvFail::Malformed(_)) => {
            stats.malformed_total.fetch_add(1, Ordering::Relaxed);
            s.push_reject(RejectCode::BadFrame, 0, "malformed frame");
            s.closing = true;
        }
    }
    worked
}

fn handle_frame(
    s: &mut Session,
    shards: &[SyncSender<ShardJob>],
    cfg: &AggdConfig,
    stats: &Stats,
    frame: &[u8],
) {
    // Oversized frames are rejected before any decode: the bound is the
    // declared dim's submit payload, not the transport's 1 GiB ceiling.
    let frame_cap = 4 * cfg.max_dim + 128;
    if frame.len() > frame_cap {
        stats.rejects_total.fetch_add(1, Ordering::Relaxed);
        s.push_reject(RejectCode::BadFrame, 0, "frame exceeds session bound");
        s.closing = true;
        return;
    }
    let mut c = Cursor::new(frame);
    let tag = match c.u8() {
        Ok(t) => t,
        Err(_) => {
            s.push_reject(RejectCode::BadFrame, 0, "empty frame");
            s.closing = true;
            return;
        }
    };
    match tag {
        T_HELLO => {
            let tcfg = match decode_hello(&mut c) {
                Ok(t) => t,
                Err(_) => {
                    stats.rejects_total.fetch_add(1, Ordering::Relaxed);
                    s.push_reject(RejectCode::BadFrame, 0, "bad hello");
                    s.closing = true;
                    return;
                }
            };
            if tcfg.dim > cfg.max_dim {
                stats.rejects_total.fetch_add(1, Ordering::Relaxed);
                s.push_reject(RejectCode::AdmissionDenied, 0, "dim exceeds daemon cap");
                return;
            }
            if let Some(k) = s.key {
                if k != tcfg.key() {
                    stats.rejects_total.fetch_add(1, Ordering::Relaxed);
                    s.push_reject(RejectCode::BadFrame, 0, "session already bound");
                    return;
                }
            }
            s.key = Some(tcfg.key());
            s.dim = tcfg.dim;
            let shard = shard_of(tcfg.key(), shards.len());
            let reply = s.reply_tx.clone();
            forward(
                s,
                stats,
                &shards[shard],
                ShardJob::Hello { cfg: tcfg, reply },
            );
        }
        T_SUBMIT => {
            let Some(key) = s.key else {
                s.push_reject(RejectCode::BadFrame, 0, "submit before hello");
                s.closing = true;
                return;
            };
            let (round, rank) = match (c.u64(), c.u64()) {
                (Ok(r), Ok(k)) => (r, k as usize),
                _ => {
                    s.push_reject(RejectCode::BadFrame, 0, "bad submit header");
                    s.closing = true;
                    return;
                }
            };
            let mut buf = s.take_buf();
            if c.remaining() != 4 * s.dim || c.f32s_into(s.dim, &mut buf).is_err() {
                s.spare.push(buf);
                stats.rejects_total.fetch_add(1, Ordering::Relaxed);
                s.push_reject(RejectCode::BadFrame, 0, "payload size mismatch");
                s.closing = true;
                return;
            }
            let shard = shard_of(key, shards.len());
            let reply = s.reply_tx.clone();
            forward(
                s,
                stats,
                &shards[shard],
                ShardJob::Submit {
                    key,
                    round,
                    rank,
                    buf,
                    reply,
                },
            );
        }
        T_FETCH => {
            let Some(key) = s.key else {
                s.push_reject(RejectCode::BadFrame, 0, "fetch before hello");
                s.closing = true;
                return;
            };
            let round = match c.u64() {
                Ok(r) => r,
                Err(_) => {
                    s.push_reject(RejectCode::BadFrame, 0, "bad fetch header");
                    s.closing = true;
                    return;
                }
            };
            let out = s.take_buf();
            let shard = shard_of(key, shards.len());
            let reply = s.reply_tx.clone();
            forward(
                s,
                stats,
                &shards[shard],
                ShardJob::Fetch {
                    key,
                    round,
                    out,
                    reply,
                },
            );
        }
        T_BYE => {
            s.push_frame(encode_bye_ok);
            s.closing = true;
        }
        _ => {
            stats.rejects_total.fetch_add(1, Ordering::Relaxed);
            s.push_reject(RejectCode::BadFrame, 0, "unknown tag");
            s.closing = true;
        }
    }
}

/// Forwards a job over the bounded shard queue; a full queue becomes a
/// typed `QueueFull` reject with a retry hint (the shard is draining).
fn forward(s: &mut Session, stats: &Stats, shard: &SyncSender<ShardJob>, job: ShardJob) {
    match shard.try_send(job) {
        Ok(()) => s.inflight += 1,
        Err(TrySendError::Full(job)) => {
            // Recycle any gradient buffer riding the refused job.
            match job {
                ShardJob::Submit { buf, .. } => s.spare.push(buf),
                ShardJob::Fetch { out, .. } => s.spare.push(out),
                _ => {}
            }
            stats.rejects_total.fetch_add(1, Ordering::Relaxed);
            s.push_reject(RejectCode::QueueFull, 5, "shard queue full");
        }
        Err(TrySendError::Disconnected(_)) => {
            s.dead = true;
        }
    }
}
