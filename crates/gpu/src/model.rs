//! Workload profiles for the paper's two training tasks.
//!
//! A [`ModelProfile`] describes one DNN training job from the cost model's
//! point of view: gradient dimensionality `d`, the per-layer matrix shapes
//! (PowerSGD operates layer-wise), and the calibrated forward+backward
//! compute time per round.
//!
//! ## Calibration
//!
//! The per-round compute seconds are back-solved from the paper's Table 2
//! together with the network model's effective all-reduce bandwidth
//! (9.53 GB/s; see `gcs-netsim`): for each training precision,
//! `compute = 1/throughput − comm(FP16)`, cross-checked against the FP32-
//! communication rows. The resulting constants:
//!
//! | model | TF32 train | FP32 train |
//! |---|---|---|
//! | BERT-large (batch 4/GPU)  | 0.1926 s | 0.2069 s |
//! | VGG19 (batch 32/GPU)      | 0.0621 s | 0.0692 s |
//!
//! FP16 training compute is extrapolated (~15% faster than TF32, consistent
//! with mixed-precision speedups on attention/conv workloads); it is used
//! only by ablation benches, never by paper tables.

use crate::device::Precision;

/// One training workload's static description.
#[derive(Clone, Debug)]
pub struct ModelProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Total gradient coordinates `d`.
    pub params: u64,
    /// Per-layer matrix shapes `(rows, cols)` as PowerSGD sees them
    /// (conv kernels reshaped to `(out_channels, in_channels·k²)`).
    pub layer_shapes: Vec<(u64, u64)>,
    /// Per-worker batch size used by the paper.
    pub batch_per_worker: usize,
    /// Calibrated fwd+bwd+optimizer seconds per round at TF32 training math.
    pub compute_tf32: f64,
    /// Calibrated seconds per round at FP32 training math.
    pub compute_fp32: f64,
    /// Extrapolated seconds per round at FP16 training math.
    pub compute_fp16: f64,
}

/// Training (not communication) numeric precision — Table 2's first factor.
pub type TrainPrecision = Precision;

impl ModelProfile {
    /// Per-round compute seconds at the given training precision.
    pub fn compute_seconds(&self, p: TrainPrecision) -> f64 {
        match p {
            Precision::Tf32 => self.compute_tf32,
            Precision::Fp32 => self.compute_fp32,
            Precision::Fp16 => self.compute_fp16,
        }
    }

    /// Sum of `rows` over all layer matrices (drives Gram–Schmidt cost).
    pub fn total_rows(&self) -> u64 {
        self.layer_shapes.iter().map(|s| s.0).sum()
    }

    /// Total `(rows + cols) · r` values PowerSGD communicates per round at
    /// rank `r` (the P and Q factors).
    pub fn powersgd_values(&self, r: u32) -> u64 {
        self.layer_shapes
            .iter()
            .map(|&(rows, cols)| (rows + cols) * r as u64)
            .sum()
    }

    /// BERT-large for masked language modelling (345 M parameters), per the
    /// paper's setup: per-worker batch 4.
    pub fn bert_large() -> ModelProfile {
        let mut shapes: Vec<(u64, u64)> = vec![
            (30522, 1024), // token embeddings
            (512, 1024),   // position embeddings
        ];
        for _ in 0..24 {
            shapes.push((1024, 1024)); // Q
            shapes.push((1024, 1024)); // K
            shapes.push((1024, 1024)); // V
            shapes.push((1024, 1024)); // attention output
            shapes.push((4096, 1024)); // FFN up
            shapes.push((1024, 4096)); // FFN down
        }
        shapes.push((1024, 1024)); // pooler
        let params = shapes.iter().map(|&(r, c)| r * c).sum::<u64>() + 2_000_000; // biases/LN
        ModelProfile {
            name: "BERT-large",
            params,
            layer_shapes: shapes,
            batch_per_worker: 4,
            compute_tf32: 0.1926,
            compute_fp32: 0.2069,
            compute_fp16: 0.1650,
        }
    }

    /// VGG19 for TinyImageNet classification (144 M parameters), per-worker
    /// batch 32. Standard VGG19 head (the paper reports 144 M params, i.e.
    /// the ImageNet-shaped classifier).
    pub fn vgg19() -> ModelProfile {
        let convs: [(u64, u64); 16] = [
            (64, 27),
            (64, 576),
            (128, 576),
            (128, 1152),
            (256, 1152),
            (256, 2304),
            (256, 2304),
            (256, 2304),
            (512, 2304),
            (512, 4608),
            (512, 4608),
            (512, 4608),
            (512, 4608),
            (512, 4608),
            (512, 4608),
            (512, 4608),
        ];
        let mut shapes: Vec<(u64, u64)> = convs.to_vec();
        shapes.push((4096, 25088)); // fc1
        shapes.push((4096, 4096)); // fc2
        shapes.push((1000, 4096)); // fc3
        let params = shapes.iter().map(|&(r, c)| r * c).sum::<u64>() + 60_000; // biases
        ModelProfile {
            name: "VGG19",
            params,
            layer_shapes: shapes,
            batch_per_worker: 32,
            compute_tf32: 0.0621,
            compute_fp32: 0.0692,
            compute_fp16: 0.0530,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_the_paper() {
        let bert = ModelProfile::bert_large();
        // Paper: 345 M params.
        assert!(
            (bert.params as f64 - 345e6).abs() / 345e6 < 0.05,
            "bert params = {}",
            bert.params
        );
        let vgg = ModelProfile::vgg19();
        // Paper: 144 M params.
        assert!(
            (vgg.params as f64 - 144e6).abs() / 144e6 < 0.05,
            "vgg params = {}",
            vgg.params
        );
    }

    #[test]
    fn powersgd_bits_per_coordinate_near_table9() {
        // Table 9 reports b = 2.95 (BERT, r=64) and b = 1.36 (VGG, r=64)
        // with FP32-communicated P/Q factors.
        let bert = ModelProfile::bert_large();
        let b_bert = bert.powersgd_values(64) as f64 * 32.0 / bert.params as f64;
        assert!((b_bert - 2.95).abs() < 0.45, "bert b = {b_bert}");
        let vgg = ModelProfile::vgg19();
        let b_vgg = vgg.powersgd_values(64) as f64 * 32.0 / vgg.params as f64;
        assert!((b_vgg - 1.36).abs() < 0.25, "vgg b = {b_vgg}");
    }

    #[test]
    fn compute_seconds_ordering() {
        let m = ModelProfile::bert_large();
        assert!(m.compute_seconds(Precision::Fp16) < m.compute_seconds(Precision::Tf32));
        assert!(m.compute_seconds(Precision::Tf32) < m.compute_seconds(Precision::Fp32));
    }
}
