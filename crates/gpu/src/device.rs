//! Device specifications and presets.

/// Floating-point arithmetic precision of a kernel's math.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// IEEE binary32 on CUDA cores.
    Fp32,
    /// TensorFloat-32 on tensor cores (A100 default for FP32-typed matmul).
    Tf32,
    /// IEEE binary16 on tensor cores.
    Fp16,
}

/// An accelerator's achievable (not peak-datasheet) rates.
///
/// All rates are *achieved* figures for large DNN kernels, not marketing
/// peaks: real training reaches a modest fraction of peak flops, and
/// bandwidth-bound kernels reach 65–80% of peak HBM bandwidth. The A100
/// preset is tuned so that, combined with the network model, the paper's
/// Table 2 baseline round rates are approximately reproduced.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Achieved FP32 (CUDA core) flop rate, flops/s.
    pub fp32_flops: f64,
    /// Achieved TF32 (tensor core) flop rate, flops/s.
    pub tf32_flops: f64,
    /// Achieved FP16 (tensor core) flop rate, flops/s.
    pub fp16_flops: f64,
    /// Achieved HBM bandwidth for streaming kernels, bytes/s.
    pub mem_bandwidth: f64,
    /// Shared-memory capacity per thread block, bytes. Determines the
    /// largest FWHT block that can be rotated in a single kernel (§3.2.2).
    pub shared_mem_bytes: usize,
    /// Penalty multiplier applied to the byte traffic of kernels with
    /// non-coalesced / data-dependent access patterns (TopK selection,
    /// scatter-add, cross-block butterfly stages). Derived from the gap
    /// between streaming and random-access HBM throughput.
    pub non_coalesced_penalty: f64,
    /// Fixed cost of one serialized kernel step (launch + small reduction),
    /// seconds. Gram–Schmidt pays this once per column per matrix.
    pub serial_step_latency: f64,
    /// Achieved flop rate for low-occupancy, serialized linear algebra
    /// (per-column Gram–Schmidt arithmetic), flops/s. Far below
    /// [`Self::fp32_flops`] because each step is a skinny reduction.
    pub low_occupancy_flops: f64,
}

impl DeviceSpec {
    /// NVIDIA A100-SXM4-40GB, calibrated for this suite.
    ///
    /// Datasheet peaks are 19.5 TF FP32 / 156 TF TF32 / 312 TF FP16 and
    /// 1555 GB/s HBM; the achieved figures below are the fractions typical
    /// of real layers plus the calibration described in `EXPERIMENTS.md`.
    pub fn a100() -> DeviceSpec {
        DeviceSpec {
            name: "A100-SXM4-40GB",
            fp32_flops: 14.0e12,
            tf32_flops: 70.0e12,
            fp16_flops: 140.0e12,
            mem_bandwidth: 1.30e12,
            shared_mem_bytes: 48 * 1024,
            non_coalesced_penalty: 4.0,
            serial_step_latency: 6.0e-6,
            low_occupancy_flops: 5.0e10,
        }
    }

    /// NVIDIA V100-SXM2-32GB (no TF32; tensor cores for FP16 only). Used by
    /// ablations exploring older hardware where FP16's advantage is larger.
    pub fn v100() -> DeviceSpec {
        DeviceSpec {
            name: "V100-SXM2-32GB",
            fp32_flops: 10.0e12,
            tf32_flops: 10.0e12, // no TF32: falls back to FP32 rate
            fp16_flops: 80.0e12,
            mem_bandwidth: 0.80e12,
            shared_mem_bytes: 48 * 1024,
            non_coalesced_penalty: 4.0,
            serial_step_latency: 8.0e-6,
            low_occupancy_flops: 3.0e10,
        }
    }

    /// Achieved flop rate for a given precision.
    pub fn flops(&self, p: Precision) -> f64 {
        match p {
            Precision::Fp32 => self.fp32_flops,
            Precision::Tf32 => self.tf32_flops,
            Precision::Fp16 => self.fp16_flops,
        }
    }

    /// The largest power-of-two number of f32 elements that fits in shared
    /// memory — the paper's bound on the partial-rotation block size
    /// (`l'` such that `2^{l'} * 4 bytes <= shared`).
    pub fn shared_mem_block_log2(&self) -> usize {
        let elems = self.shared_mem_bytes / 4;
        if elems == 0 {
            0
        } else {
            (usize::BITS - 1 - elems.leading_zeros()) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_shared_block() {
        // 48 KiB / 4 B = 12288 floats -> largest power of two is 8192 = 2^13.
        assert_eq!(DeviceSpec::a100().shared_mem_block_log2(), 13);
    }

    #[test]
    fn precision_rates_ordered() {
        let d = DeviceSpec::a100();
        assert!(d.flops(Precision::Fp16) > d.flops(Precision::Tf32));
        assert!(d.flops(Precision::Tf32) > d.flops(Precision::Fp32));
    }
}
