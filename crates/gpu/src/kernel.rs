//! Kernel cost descriptions and roofline timing.

use crate::device::{DeviceSpec, Precision};

/// An abstract GPU kernel's resource demands.
///
/// Timing follows the roofline model: the kernel takes
/// `max(flop_time, memory_time) + serial_time`, where memory traffic is
/// multiplied by the device's non-coalesced penalty when
/// [`KernelCost::coalesced`] is false, and `serial_time` charges
/// [`DeviceSpec::serial_step_latency`] per serialized step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelCost {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved to/from HBM.
    pub bytes: f64,
    /// Whether HBM accesses are coalesced/streaming.
    pub coalesced: bool,
    /// Number of inherently serialized steps (dependent kernel launches).
    pub serial_steps: f64,
    /// Math precision (selects the flop rate).
    pub precision: Option<Precision>,
}

impl KernelCost {
    /// A kernel that does nothing.
    pub fn zero() -> KernelCost {
        KernelCost {
            coalesced: true,
            ..Default::default()
        }
    }

    /// A streaming (coalesced) kernel.
    pub fn streaming(flops: f64, bytes: f64) -> KernelCost {
        KernelCost {
            flops,
            bytes,
            coalesced: true,
            serial_steps: 1.0,
            precision: Some(Precision::Fp32),
        }
    }

    /// A kernel with data-dependent, non-coalesced accesses.
    pub fn scattered(flops: f64, bytes: f64) -> KernelCost {
        KernelCost {
            flops,
            bytes,
            coalesced: false,
            serial_steps: 1.0,
            precision: Some(Precision::Fp32),
        }
    }

    /// Accumulates another kernel's demands into this one (sequential
    /// composition).
    pub fn add(&mut self, other: KernelCost) {
        self.flops += other.flops;
        // Non-coalesced traffic is pre-multiplied at timing; track it by
        // folding the penalty into a "weighted bytes" scheme instead: we keep
        // it simple by storing the worst-case coalescing flag only when the
        // other kernel dominates traffic. For exactness, compose with
        // `seconds()` instead; `add` exists for coarse aggregation of
        // same-shaped kernels.
        self.coalesced = self.coalesced && other.coalesced;
        self.bytes += other.bytes;
        self.serial_steps += other.serial_steps;
        if self.precision.is_none() {
            self.precision = other.precision;
        }
    }

    /// Roofline execution time on `device`, in seconds.
    pub fn seconds(&self, device: &DeviceSpec) -> f64 {
        let rate = device.flops(self.precision.unwrap_or(Precision::Fp32));
        let flop_time = if self.flops > 0.0 {
            self.flops / rate
        } else {
            0.0
        };
        let penalty = if self.coalesced {
            1.0
        } else {
            device.non_coalesced_penalty
        };
        let mem_time = self.bytes * penalty / device.mem_bandwidth;
        flop_time.max(mem_time) + self.serial_steps * device.serial_step_latency
    }
}

/// Sums the execution time of a sequence of kernels (no overlap).
pub fn total_seconds(kernels: &[KernelCost], device: &DeviceSpec) -> f64 {
    kernels.iter().map(|k| k.seconds(device)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_kernel_times_by_bandwidth() {
        let d = DeviceSpec::a100();
        let k = KernelCost::streaming(0.0, 1.3e12); // exactly one second of traffic
        let t = k.seconds(&d);
        assert!((t - (1.0 + d.serial_step_latency)).abs() < 1e-9);
    }

    #[test]
    fn non_coalesced_pays_penalty() {
        let d = DeviceSpec::a100();
        let fast = KernelCost::streaming(0.0, 1e9).seconds(&d);
        let slow = KernelCost::scattered(0.0, 1e9).seconds(&d);
        let ratio = (slow - d.serial_step_latency) / (fast - d.serial_step_latency);
        assert!((ratio - d.non_coalesced_penalty).abs() < 1e-6);
    }

    #[test]
    fn compute_bound_kernel_times_by_flops() {
        let d = DeviceSpec::a100();
        let k = KernelCost {
            flops: d.fp32_flops, // one second of math
            bytes: 1.0,
            coalesced: true,
            serial_steps: 0.0,
            precision: Some(Precision::Fp32),
        };
        assert!((k.seconds(&d) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn serial_steps_dominate_tiny_kernels() {
        let d = DeviceSpec::a100();
        let k = KernelCost {
            flops: 100.0,
            bytes: 100.0,
            coalesced: true,
            serial_steps: 1000.0,
            precision: Some(Precision::Fp32),
        };
        let t = k.seconds(&d);
        assert!(t >= 1000.0 * d.serial_step_latency);
    }

    #[test]
    fn add_composes() {
        let mut a = KernelCost::streaming(10.0, 20.0);
        a.add(KernelCost::scattered(1.0, 2.0));
        assert_eq!(a.flops, 11.0);
        assert_eq!(a.bytes, 22.0);
        assert!(!a.coalesced);
        assert_eq!(a.serial_steps, 2.0);
    }
}
