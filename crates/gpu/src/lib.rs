//! # gcs-gpusim
//!
//! A roofline-style GPU cost model for distributed-training workloads.
//!
//! The paper's testbed measures wall-clock throughput on NVIDIA A100s; this
//! crate replaces the hardware with an analytic model. The design premise —
//! borne out by the paper's own profiling — is that every computational
//! overhead it identifies is explained by one of three effects:
//!
//! 1. **Memory-bound passes.** Elementwise kernels (quantize, chunk norms,
//!    scatter/gather) move `O(d)` bytes through HBM at the achievable memory
//!    bandwidth.
//! 2. **Locality penalties.** TopK selection and the cross-block stages of a
//!    large FWHT make non-coalesced / global-memory accesses
//!    (§3.1.1, §3.2.1); we charge a configurable penalty multiplier.
//! 3. **Serialization.** Gram–Schmidt orthogonalization proceeds column by
//!    column; each column costs a fixed launch/reduction latency regardless
//!    of width (§3.3). This is why PowerSGD's throughput collapses as the
//!    rank grows even though its flop count stays negligible.
//!
//! Model forward/backward times are *calibrated constants* (derived from the
//! paper's Table 2, see [`model`]) rather than first-principles flop counts:
//! the goal is that baseline round rates land near the paper's, so that every
//! derived table reproduces the right *shape*.

pub mod device;
pub mod kernel;
pub mod model;
pub mod ops;

pub use device::{DeviceSpec, Precision};
pub use kernel::KernelCost;
pub use model::{ModelProfile, TrainPrecision};
