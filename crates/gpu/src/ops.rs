//! Cost builders for the kernels gradient compression executes.
//!
//! Each function returns a [`KernelCost`] (or a composed time) describing a
//! concrete GPU operation on a gradient of `d` coordinates. These encode the
//! paper's computational-overhead findings:
//!
//! * [`topk_select`] — radix-select plus compaction; **non-coalesced**
//!   (§3.1.1: "non-consecutive memory accesses with poor locality").
//! * [`fwht`] — multi-stage butterfly; the first
//!   [`DeviceSpec::shared_mem_block_log2`] stages run inside shared memory in
//!   one kernel, every further group of stages is another **global-memory**
//!   pass (§3.2.1). Partial rotation stops after the first pass, which is
//!   exactly why it is cheap (§3.2.2).
//! * [`gram_schmidt`] — per-column serialized steps plus low-occupancy math
//!   (§3.3's "overwhelmingly expensive matrix orthogonalization").

use crate::device::{DeviceSpec, Precision};
use crate::kernel::KernelCost;

/// One streaming elementwise pass over `d` f32 values with `rw` bytes moved
/// per element (e.g. 8.0 for read+write) and `flops_per_elem` operations.
pub fn elementwise(d: u64, rw_bytes_per_elem: f64, flops_per_elem: f64) -> KernelCost {
    KernelCost::streaming(d as f64 * flops_per_elem, d as f64 * rw_bytes_per_elem)
}

/// Squared-L2 chunk norms: one read pass over the gradient plus a small
/// write of `d / chunk` norms. This is TopKC's cheap first stage —
/// sequential access, so it runs at full bandwidth (§3.1.2).
pub fn chunk_norms(d: u64, chunk: usize) -> KernelCost {
    let norms = d / chunk.max(1) as u64;
    KernelCost::streaming(2.0 * d as f64, 4.0 * (d + norms) as f64)
}

/// TopK selection over `d` values followed by compaction of `k`
/// (index, value) pairs.
///
/// GPU top-k implementations (radix select) make several data-dependent
/// passes; the compaction writes are scattered. We charge `passes` read
/// passes (non-coalesced) plus the pair write-out. This is the "major
/// bottleneck" of TopK (§3.1.1, Table 6).
pub fn topk_select(d: u64, k: u64) -> KernelCost {
    let passes = 4.0; // histogram + two refinement passes + compaction, as in radix top-k
    KernelCost {
        flops: 2.0 * d as f64,
        bytes: passes * 4.0 * d as f64 + 8.0 * k as f64,
        coalesced: false,
        serial_steps: passes,
        precision: Some(Precision::Fp32),
    }
}

/// Gathering `k` selected coordinates into a dense send buffer (or
/// scatter-adding them back after aggregation): data-dependent addresses.
pub fn sparse_gather_scatter(k: u64) -> KernelCost {
    KernelCost::scattered(k as f64, 12.0 * k as f64)
}

/// The fast Walsh–Hadamard transform over a padded vector of `2^l` elements,
/// running `iters <= l` butterfly stages.
///
/// The first `min(iters, shared_log2)` stages execute inside shared memory:
/// one coalesced read+write pass. Every further group of `shared_log2`
/// stages requires another pass with strided (non-coalesced) global-memory
/// access. `iters = 0` costs nothing.
pub fn fwht(padded: u64, iters: usize, device: &DeviceSpec) -> KernelCost {
    if iters == 0 || padded <= 1 {
        return KernelCost::zero();
    }
    let shared_log2 = device.shared_mem_block_log2().max(1);
    let passes = iters.div_ceil(shared_log2);
    let per_pass_bytes = 8.0 * padded as f64; // read + write each element
    let flops = 2.0 * padded as f64 * iters as f64;
    // First pass is coalesced; later passes stride across blocks. We fold the
    // penalty in manually so one KernelCost can describe the whole transform.
    let global_passes = passes.saturating_sub(1) as f64;
    let effective_bytes =
        per_pass_bytes * (1.0 + global_passes * device.non_coalesced_penalty / 2.0);
    KernelCost {
        flops,
        bytes: effective_bytes,
        coalesced: true, // penalty already folded into bytes
        serial_steps: passes as f64,
        precision: Some(Precision::Fp32),
    }
}

/// Stochastic quantization of `d` values to q-bit integers: a min/max
/// reduction pass plus a fused quantize-and-pack pass.
pub fn quantize(d: u64, q: u32) -> KernelCost {
    let read = 4.0 * d as f64; // min/max pass
    let quant = 4.0 * d as f64 + (q as f64 / 8.0) * d as f64; // read f32, write q bits
    KernelCost::streaming(6.0 * d as f64, read + quant)
}

/// Dequantization (unpack + scale) of `d` values from q-bit integers.
pub fn dequantize(d: u64, q: u32) -> KernelCost {
    KernelCost::streaming(2.0 * d as f64, (q as f64 / 8.0) * d as f64 + 4.0 * d as f64)
}

/// Dense matmul `m×k * k×n` at the given precision.
pub fn matmul(m: u64, k: u64, n: u64, precision: Precision) -> KernelCost {
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let bytes = 4.0 * (m * k + k * n + m * n) as f64;
    KernelCost {
        flops,
        bytes,
        coalesced: true,
        serial_steps: 1.0,
        precision: Some(precision),
    }
}

/// Modified Gram–Schmidt orthogonalization of an `rows×r` matrix.
///
/// The algorithm is inherently serial over columns: column `c` must wait for
/// columns `0..c`. Each column performs `c` projections + 1 normalization —
/// skinny reductions that run at low occupancy. We charge:
///
/// * `r` serialized steps (launch/reduction latency each), and
/// * `2 · rows · r²` flops at the device's low-occupancy rate.
pub fn gram_schmidt(rows: u64, r: u32, device: &DeviceSpec) -> f64 {
    let serial = r as f64 * device.serial_step_latency;
    let flops = 2.0 * rows as f64 * (r as f64) * (r as f64);
    serial + flops / device.low_occupancy_flops
}

/// Total PowerSGD compression compute for one round over a set of layer
/// matrices `shapes = [(rows, cols)...]`, target rank `r`:
/// `P = M Q` (matmul), Gram–Schmidt on `P`, `Q = Mᵀ P̂` (matmul), plus the
/// final decompression matmul `P̂ Qᵀ` applied into the gradient buffer.
pub fn powersgd_round(shapes: &[(u64, u64)], r: u32, device: &DeviceSpec) -> f64 {
    let mut total = 0.0;
    for &(rows, cols) in shapes {
        let rr = r as u64;
        total += matmul(rows, cols, rr, Precision::Fp32).seconds(device);
        total += gram_schmidt(rows, r, device);
        total += matmul(cols, rows, rr, Precision::Fp32).seconds(device);
        total += matmul(rows, rr, cols, Precision::Fp32).seconds(device);
    }
    total
}

/// Gram–Schmidt share of a PowerSGD round (for the paper's §3.3 profiling
/// claim that orthogonalization dominates at large ranks).
pub fn powersgd_gs_fraction(shapes: &[(u64, u64)], r: u32, device: &DeviceSpec) -> f64 {
    let gs: f64 = shapes
        .iter()
        .map(|&(rows, _)| gram_schmidt(rows, r, device))
        .sum();
    gs / powersgd_round(shapes, r, device)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> DeviceSpec {
        DeviceSpec::a100()
    }

    #[test]
    fn fwht_partial_is_one_pass_full_is_more() {
        let d = a100();
        let padded = 1u64 << 29; // BERT-scale padding
        let partial = fwht(padded, d.shared_mem_block_log2(), &d);
        let full = fwht(padded, 29, &d);
        assert_eq!(partial.serial_steps, 1.0);
        assert!(full.serial_steps >= 3.0);
        assert!(full.seconds(&d) > 2.0 * partial.seconds(&d));
        assert_eq!(fwht(padded, 0, &d).seconds(&d), 0.0);
    }

    #[test]
    fn topk_select_is_slower_than_a_streaming_pass() {
        let d = a100();
        let streaming = elementwise(1 << 28, 8.0, 2.0).seconds(&d);
        let select = topk_select(1 << 28, 1 << 20).seconds(&d);
        assert!(select > 2.0 * streaming);
    }

    #[test]
    fn gram_schmidt_grows_superlinearly_in_rank() {
        let d = a100();
        let t1 = gram_schmidt(20_000, 1, &d);
        let t64 = gram_schmidt(20_000, 64, &d);
        // Between linear (64x) and quadratic (4096x).
        assert!(t64 > 32.0 * t1, "t1={t1} t64={t64}");
    }

    #[test]
    fn powersgd_gs_dominates_at_high_rank() {
        let d = a100();
        // BERT-like: ~390 matrices averaging ~650 rows.
        let shapes: Vec<(u64, u64)> = (0..390).map(|_| (650u64, 1024u64)).collect();
        let frac64 = powersgd_gs_fraction(&shapes, 64, &d);
        let frac1 = powersgd_gs_fraction(&shapes, 1, &d);
        assert!(frac64 > 0.25, "frac64 = {frac64}");
        assert!(frac64 > frac1);
    }

    #[test]
    fn quantize_cheaper_at_fewer_bits() {
        let d = a100();
        assert!(quantize(1 << 28, 2).seconds(&d) < quantize(1 << 28, 8).seconds(&d));
    }

    #[test]
    fn chunk_norms_is_a_single_cheap_pass() {
        let d = a100();
        let t = chunk_norms(345_000_000, 64).seconds(&d);
        // One read of 1.38 GB at 1.3 TB/s: ~1.1 ms.
        assert!(t < 2.5e-3, "t = {t}");
    }
}
