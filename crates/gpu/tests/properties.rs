//! Property tests for the roofline cost model: the sanity laws any cost
//! model must obey, checked over randomized inputs.

use gcs_gpusim::{ops, DeviceSpec, KernelCost, ModelProfile, Precision};
use proptest::prelude::*;

fn devices() -> Vec<DeviceSpec> {
    vec![DeviceSpec::a100(), DeviceSpec::v100()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_time_is_monotone_in_flops_and_bytes(
        flops in 0.0f64..1e15,
        bytes in 0.0f64..1e12,
        extra in 1.0f64..1e12,
    ) {
        for d in devices() {
            let base = KernelCost::streaming(flops, bytes).seconds(&d);
            let more_flops = KernelCost::streaming(flops + extra, bytes).seconds(&d);
            let more_bytes = KernelCost::streaming(flops, bytes + extra).seconds(&d);
            prop_assert!(more_flops >= base);
            prop_assert!(more_bytes >= base);
        }
    }

    #[test]
    fn non_coalesced_never_faster(flops in 0.0f64..1e12, bytes in 1.0f64..1e12) {
        for d in devices() {
            let fast = KernelCost::streaming(flops, bytes).seconds(&d);
            let slow = KernelCost::scattered(flops, bytes).seconds(&d);
            prop_assert!(slow >= fast);
        }
    }

    #[test]
    fn fwht_cost_monotone_in_iterations(
        log_d in 10u32..30,
        iters in 0usize..30,
    ) {
        let d = DeviceSpec::a100();
        let padded = 1u64 << log_d;
        let iters = iters.min(log_d as usize);
        let t1 = ops::fwht(padded, iters, &d).seconds(&d);
        let t2 = ops::fwht(padded, (iters + 1).min(log_d as usize), &d).seconds(&d);
        prop_assert!(t2 >= t1, "iters {iters}: {t1} then {t2}");
    }

    #[test]
    fn topk_cost_grows_with_d(log_d in 16u32..29) {
        let dev = DeviceSpec::a100();
        let small = ops::topk_select(1 << log_d, 1000).seconds(&dev);
        let big = ops::topk_select(1 << (log_d + 1), 1000).seconds(&dev);
        prop_assert!(big > small);
    }

    #[test]
    fn gram_schmidt_superadditive_in_rank(rows in 100u64..100_000, r in 1u32..64) {
        let dev = DeviceSpec::a100();
        let t1 = ops::gram_schmidt(rows, r, &dev);
        let t2 = ops::gram_schmidt(rows, 2 * r, &dev);
        // Superlinear: doubling the rank more than doubles the cost.
        prop_assert!(t2 > 2.0 * t1 * 0.99, "r={r}: {t1} -> {t2}");
    }

    #[test]
    fn powersgd_round_dominated_by_its_parts(r in 1u32..65) {
        let dev = DeviceSpec::a100();
        let m = ModelProfile::bert_large();
        let total = ops::powersgd_round(&m.layer_shapes, r, &dev);
        let gs: f64 = m
            .layer_shapes
            .iter()
            .map(|&(rows, _)| ops::gram_schmidt(rows, r, &dev))
            .sum();
        prop_assert!(total > gs, "total {total} must exceed GS alone {gs}");
        let frac = ops::powersgd_gs_fraction(&m.layer_shapes, r, &dev);
        prop_assert!(frac > 0.0 && frac < 1.0);
    }

    #[test]
    fn compute_seconds_ordering_holds_for_both_models(_x in 0..1i32) {
        for m in [ModelProfile::bert_large(), ModelProfile::vgg19()] {
            prop_assert!(m.compute_seconds(Precision::Fp16) < m.compute_seconds(Precision::Tf32));
            prop_assert!(m.compute_seconds(Precision::Tf32) < m.compute_seconds(Precision::Fp32));
        }
    }
}

#[test]
fn device_presets_are_internally_consistent() {
    for d in devices() {
        assert!(d.fp16_flops >= d.tf32_flops);
        assert!(d.tf32_flops >= d.fp32_flops);
        assert!(d.mem_bandwidth > 0.0);
        assert!(d.shared_mem_block_log2() >= 10);
        assert!(d.non_coalesced_penalty >= 1.0);
    }
}
