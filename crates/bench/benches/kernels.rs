//! Criterion micro-benchmarks of the compression kernels themselves.
//!
//! These measure our *functional* Rust implementations (not the GPU cost
//! model): useful for catching algorithmic regressions and for verifying
//! asymptotic claims — e.g. that partial rotation does the same work as full
//! rotation per element but fewer stages, and that TopKC's selection over
//! `d/C` chunk norms is far cheaper than TopK's over `d` values.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gcs_collectives::{ring_all_reduce, F32Sum};
use gcs_tensor::hadamard::{fwht, fwht_iterations};
use gcs_tensor::matrix::{orthonormalize_columns, Matrix};
use gcs_tensor::vector::top_k_indices;
use rand::{Rng, SeedableRng};

fn data(d: usize, seed: u64) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bench_fwht(c: &mut Criterion) {
    let mut g = c.benchmark_group("fwht");
    let d = 1 << 16;
    g.bench_function(BenchmarkId::new("full", d), |b| {
        let v = data(d, 1);
        b.iter(|| {
            let mut x = v.clone();
            fwht(black_box(&mut x));
            x
        })
    });
    g.bench_function(BenchmarkId::new("partial_l8", d), |b| {
        let v = data(d, 1);
        b.iter(|| {
            let mut x = v.clone();
            fwht_iterations(black_box(&mut x), 8);
            x
        })
    });
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("selection");
    let d = 1 << 16;
    let v = data(d, 2);
    g.bench_function("topk_over_d", |b| {
        b.iter(|| top_k_indices(black_box(&v), d / 100))
    });
    // TopKC's equivalent: norms of 64-sized chunks, then top-k over d/64.
    g.bench_function("topkc_chunk_norms_and_select", |b| {
        b.iter(|| {
            let norms: Vec<f32> = v.chunks(64).map(gcs_tensor::vector::squared_norm).collect();
            top_k_indices(black_box(&norms), norms.len() / 100)
        })
    });
    g.finish();
}

fn bench_gram_schmidt(c: &mut Criterion) {
    let mut g = c.benchmark_group("gram_schmidt");
    for r in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("rows512", r), &r, |b, &r| {
            let m0 = Matrix::from_vec(512, r, data(512 * r, 3));
            b.iter(|| {
                let mut m = m0.clone();
                orthonormalize_columns(black_box(&mut m));
                m
            })
        });
    }
    g.finish();
}

fn bench_ring_all_reduce(c: &mut Criterion) {
    c.bench_function("ring_all_reduce_4x65536_f32", |b| {
        let bufs: Vec<Vec<f32>> = (0..4).map(|w| data(1 << 16, w as u64)).collect();
        b.iter(|| {
            let mut bb = bufs.clone();
            ring_all_reduce(black_box(&mut bb), &F32Sum, 4.0);
            bb
        })
    });
}

/// Sequential vs parallel runtime for the threaded kernels. The thread
/// counts are forced through `with_threads`, so the comparison is meaningful
/// regardless of `GCS_THREADS`; on a single-core machine the "par" rows
/// mostly measure fork-join overhead, on real multi-core hardware they show
/// the speedup. Determinism means the outputs are bitwise-identical either
/// way — only the time differs.
fn bench_parallel_runtime(c: &mut Criterion) {
    use gcs_tensor::parallel::with_threads;
    let threads = [1usize, 2, 4];

    let mut g = c.benchmark_group("par_fwht");
    let d = 1 << 20;
    let v = data(d, 7);
    for &t in &threads {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| {
                let mut x = v.clone();
                with_threads(t, || fwht(black_box(&mut x)));
                x
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("par_topk");
    let v = data(d, 8);
    for &t in &threads {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| with_threads(t, || top_k_indices(black_box(&v), d / 100)))
        });
    }
    g.finish();

    // PowerSGD's hot shapes: (d/cols x cols) * (cols x rank).
    let mut g = c.benchmark_group("par_matmul");
    let (rows, cols, rank) = (4096usize, 256usize, 8usize);
    let m = Matrix::from_vec(rows, cols, data(rows * cols, 9));
    let q = Matrix::from_vec(cols, rank, data(cols * rank, 10));
    for &t in &threads {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| with_threads(t, || black_box(&m).matmul(black_box(&q))))
        });
    }
    g.finish();
}

/// Pooled (zero-allocation) hot paths against their allocating pre-pool
/// equivalents. Each pair does bitwise-identical work — the identity is
/// pinned in `tests/pool_identity.rs` — so the delta here is purely the
/// cost of per-round heap traffic.
fn bench_pool_vs_alloc(c: &mut Criterion) {
    use gcs_collectives::{ring_all_reduce_into, RingScratch, Traffic};
    use gcs_core::scheme::{AggregationOutcome, CompressionScheme, RoundContext};
    use gcs_core::schemes::thc::{Thc, ThcAggregation};
    use gcs_core::schemes::topkc::TopKC;
    use gcs_tensor::bitpack::PackedIntVec;
    use gcs_tensor::hadamard::RotationMode;

    let mut g = c.benchmark_group("pool_vs_alloc");

    // Ring all-reduce: persistent staging + refill vs per-iter clone.
    let d = 1 << 16;
    let bufs: Vec<Vec<f32>> = (0..4).map(|w| data(d, w as u64)).collect();
    g.bench_function("ring_4x65536/alloc", |b| {
        b.iter(|| {
            let mut bb = bufs.clone();
            ring_all_reduce(black_box(&mut bb), &F32Sum, 4.0);
            bb
        })
    });
    g.bench_function("ring_4x65536/pooled", |b| {
        let mut bb = bufs.clone();
        let mut scratch = RingScratch::default();
        let mut traffic = Traffic::default();
        b.iter(|| {
            for (dst, src) in bb.iter_mut().zip(&bufs) {
                dst.clear();
                dst.extend_from_slice(src);
            }
            ring_all_reduce_into(black_box(&mut bb), &F32Sum, 4.0, &mut scratch, &mut traffic);
            traffic.steps
        })
    });

    // Full scheme rounds: warm scratch + reused outcome vs cold instance.
    let n = 4;
    let grads: Vec<Vec<f32>> = (0..n).map(|w| data(1 << 14, 20 + w as u64)).collect();
    let ctx = RoundContext::new(17, 0);
    g.bench_function("topkc_round_4x16384/alloc", |b| {
        b.iter(|| {
            let mut s = TopKC::with_bits(2.0, 64, n, true);
            s.aggregate_round(black_box(&grads), &ctx)
        })
    });
    g.bench_function("topkc_round_4x16384/pooled", |b| {
        let mut s = TopKC::with_bits(2.0, 64, n, true);
        let mut out = AggregationOutcome::default();
        b.iter(|| {
            s.aggregate_round_into(black_box(&grads), &ctx, &mut out);
            out.mean_estimate.len()
        })
    });
    g.bench_function("thc_round_4x16384/alloc", |b| {
        b.iter(|| {
            let mut s = Thc::new(4, RotationMode::Full, ThcAggregation::Saturating, n);
            s.aggregate_round(black_box(&grads), &ctx)
        })
    });
    g.bench_function("thc_round_4x16384/pooled", |b| {
        let mut s = Thc::new(4, RotationMode::Full, ThcAggregation::Saturating, n);
        let mut out = AggregationOutcome::default();
        b.iter(|| {
            s.aggregate_round_into(black_box(&grads), &ctx, &mut out);
            out.mean_estimate.len()
        })
    });

    // Quantize+pack: fused streaming writer vs quantize-to-Vec then pack.
    let q = 4u32;
    let len = 1 << 16;
    let v = data(len, 30);
    let qmax = (1i32 << (q - 1)) - 1;
    let quant = |x: f32| ((x * qmax as f32) as i32).clamp(-qmax, qmax);
    g.bench_function("quantize_pack_65536/alloc", |b| {
        b.iter(|| {
            let lanes: Vec<i32> = v.iter().map(|&x| quant(x)).collect();
            PackedIntVec::from_signed(q, black_box(&lanes))
        })
    });
    g.bench_function("quantize_pack_65536/pooled", |b| {
        let mut packed = PackedIntVec::zeros(q, len);
        b.iter(|| {
            packed.reset(q, len);
            packed.pack_with(|i| quant(black_box(&v)[i]));
            packed.len()
        })
    });

    g.finish();
}

criterion_group!(
    benches,
    bench_fwht,
    bench_selection,
    bench_gram_schmidt,
    bench_ring_all_reduce,
    bench_parallel_runtime,
    bench_pool_vs_alloc
);
criterion_main!(benches);
