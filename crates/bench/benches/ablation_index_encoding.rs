//! Ablation — TopK index encoding (the paper's footnote 2): 32-bit absolute
//! indices vs 16-bit delta encoding with gap padding.
//!
//! Delta encoding fits 1.5× more coordinates into the same budget (48 → 32
//! bits/entry) and therefore lowers vNMSE — but its sort + sequential scan
//! is GPU-unfriendly, so the round rate drops, and the TTA gain is
//! marginal-to-negative: exactly the footnote's "this does not seem to be
//! how TopK is implemented in practice".

use gcs_bench::{expect, header, measured_only};
use gcs_core::scheme::{CompressionScheme, RoundContext};
use gcs_core::schemes::topk::TopK;
use gcs_core::synthetic::GradientModel;
use gcs_ddp::ThroughputModel;
use gcs_gpusim::{ModelProfile, Precision};
use gcs_tensor::rng::SharedSeed;
use gcs_tensor::vector::{mean, vnmse};

fn measure(scheme: &mut dyn CompressionScheme) -> f64 {
    let m = GradientModel::bert_like(1 << 17);
    let mut sum = 0.0;
    let rounds = 4;
    for r in 0..rounds {
        let grads = m.generate(4, SharedSeed::new(800 + r));
        let exact = mean(&grads);
        sum += vnmse(
            &scheme
                .aggregate_round(&grads, &RoundContext::new(88, r))
                .mean_estimate,
            &exact,
        );
    }
    sum / rounds as f64
}

fn main() {
    header(
        "Ablation: TopK index encoding",
        "32-bit absolute vs 16-bit delta indices (footnote 2)",
    );
    let tm = ThroughputModel::paper_testbed();
    let profile = ModelProfile::bert_large();
    for b in [0.5f64, 2.0] {
        println!("\nb = {b}:");
        let mut abs = TopK::with_bits(b, 4, false);
        let mut delta = TopK::with_bits(b, 4, false).with_delta_indices();
        let d = profile.params;
        measured_only(
            "  absolute K/d %",
            abs.k_for(d as usize) as f64 / d as f64 * 100.0,
        );
        measured_only(
            "  delta    K/d %",
            delta.k_for(d as usize) as f64 / d as f64 * 100.0,
        );
        let e_abs = measure(&mut abs);
        let e_delta = measure(&mut delta);
        measured_only("  absolute vNMSE", e_abs);
        measured_only("  delta    vNMSE", e_delta);
        let r_abs = tm.rounds_per_sec(&abs, &profile, Precision::Tf32);
        let r_delta = tm.rounds_per_sec(&delta, &profile, Precision::Tf32);
        measured_only("  absolute rounds/s", r_abs);
        measured_only("  delta    rounds/s", r_delta);
        expect(
            "delta lowers vNMSE (more coordinates per bit)",
            e_delta < e_abs,
        );
        expect(
            "but delta's extra compute erodes the round rate",
            r_delta < r_abs,
        );
    }
}
