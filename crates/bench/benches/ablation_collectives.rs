//! Ablation — collective choice: traffic and time for the same logical
//! aggregation through ring all-reduce, tree all-reduce, all-gather, and a
//! parameter server, at n ∈ {4, 16, 64}.
//!
//! This is the quantitative backing for §2.1's claim that all-reduce is the
//! right target: all-gather and PS wire time scale linearly in n while ring
//! all-reduce's stays ~flat. The flow-level simulator cross-checks the
//! closed-form incast behaviour.

use gcs_bench::{expect, header, measured_only};
use gcs_netsim::flowsim::{all_gather_flows, ps_push_flows, ring_all_reduce_phases, Network};
use gcs_netsim::{ClusterSpec, Collective};

fn main() {
    header(
        "Ablation: collectives",
        "time for a 345 MB (FP16 BERT) aggregation by collective and n",
    );
    let payload = 345e6 * 2.0; // FP16 gradient bytes per worker
    for n in [4usize, 16, 64] {
        let c = ClusterSpec::scaled(n);
        println!("\nn = {n}:");
        for (name, coll) in [
            ("ring all-reduce", Collective::RingAllReduce),
            ("tree all-reduce", Collective::TreeAllReduce),
            ("all-gather", Collective::AllGather),
            ("parameter server", Collective::ParameterServer),
        ] {
            measured_only(
                &format!("{name:<18} seconds"),
                c.collective_seconds(coll, payload),
            );
        }
    }

    println!("\nflow-simulator cross-check (n=8, 10 GB/s links, 1 GB payload):");
    let n = 8;
    let bw = 10e9;
    let net = Network::homogeneous(n, bw);
    let ring = net.simulate_phases(&ring_all_reduce_phases(n, 1e9));
    let ag = net.simulate(&all_gather_flows(n, 1e9)).makespan;
    let ps = net.simulate(&ps_push_flows(n - 1, 1e9)).makespan * 2.0; // push+pull
    measured_only("ring all-reduce (flowsim) s", ring);
    measured_only("all-gather (flowsim) s", ag);
    measured_only("parameter server (flowsim) s", ps);
    expect(
        "flowsim confirms ring << all-gather and PS at this scale",
        ring < ag && ring < ps,
    );
    let closed_ring = 2.0 * (n as f64 - 1.0) / n as f64 * 1e9 / bw;
    expect(
        "flowsim ring time matches the closed form within 1%",
        (ring - closed_ring).abs() / closed_ring < 0.01,
    );
}
