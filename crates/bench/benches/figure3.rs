//! Figure 3 — TTA of PowerSGD across ranks r ∈ {1, 4, 16, 64}.
//!
//! Expected shapes: r=1 has the fastest steps but converges slower / lower
//! (especially on the vision task); moderate ranks (4–16) give the best
//! TTA; r=4 clearly beats the FP32 baseline but offers only modest gains
//! over FP16 — the paper's baseline-choice exhibit.
//!
//! Set `QUICK=1` to shrink the run.

use gcs_bench::{expect, header, print_curves_csv, print_tta_summary, write_curves_csv};
use gcs_core::metrics::TtaCurve;
use gcs_ddp::{experiments::figure3_plans, Task, Trainer};

fn main() {
    let quick = std::env::var("QUICK").is_ok();
    header("Figure 3", "TTA of PowerSGD, varying the matrix rank r");
    for task in [Task::Bert, Task::Vgg] {
        println!("\n### task: {task:?}");
        let mut cfg = task.trainer_config();
        if quick {
            cfg.max_rounds = 80;
        }
        let probe = task.build_model(cfg.seed);
        let shapes = probe.matrix_shapes();
        drop(probe);
        let mut curves: Vec<TtaCurve> = Vec::new();
        for mut plan in figure3_plans(task, cfg.n_workers, &shapes) {
            let mut model = task.build_model(cfg.seed);
            let log = Trainer::new(cfg.clone()).train(
                model.as_mut(),
                plan.scheme.as_mut(),
                plan.step_seconds,
            );
            let mut smoothed = log.curve.rolling_average(task.rolling_window());
            smoothed.label = plan.label.clone();
            eprintln!(
                "  {}: step {:.3}s, vNMSE {:.4}, final {:.4}",
                plan.label, plan.step_seconds, log.mean_vnmse, log.final_metric
            );
            curves.push(smoothed);
        }
        let (targets, name): (Vec<f64>, &str) = match task {
            Task::Bert => (vec![60.0, 30.0, 24.0], "perplexity"),
            Task::Vgg => (vec![0.5, 0.7, 0.85], "top-1 accuracy"),
        };
        print_tta_summary(&curves, &targets, name);
        print_curves_csv(&curves);
        write_curves_csv(&format!("figure3_{task:?}"), &curves);

        let find = |tag: &str| {
            curves
                .iter()
                .find(|c| c.label.contains(tag))
                .unwrap_or_else(|| panic!("missing curve {tag}"))
        };
        let mid = targets[1];
        let tta = |c: &TtaCurve| c.time_to_target(mid).unwrap_or(f64::INFINITY);
        let r4 = find("PowerSGD(r=4)");
        let fp32 = find("FP32");
        let fp16 = find("FP16");
        expect(
            "PowerSGD r=4 beats the FP32 baseline on TTA",
            tta(r4) <= tta(fp32),
        );
        let gain_vs_fp32 = tta(fp32) / tta(r4);
        let gain_vs_fp16 = tta(fp16) / tta(r4);
        expect(
            "the apparent gain shrinks against the stronger FP16 baseline",
            gain_vs_fp16 < gain_vs_fp32,
        );
        if task == Task::Vgg && !quick {
            let r1 = find("PowerSGD(r=1)");
            let r16 = find("PowerSGD(r=16)");
            let worse = r1.best_metric().unwrap_or(0.0) <= r16.best_metric().unwrap_or(0.0);
            expect(
                "r=1 converges to a lower accuracy than r=16 on the vision task",
                worse,
            );
        }
    }
}
