//! Ablation — error feedback on vs off for the biased compressors.
//!
//! The paper applies EF to both TopK and TopKC (§3.1.3) following \[29\];
//! this ablation shows why: without EF, aggressive sparsification stalls at
//! a worse final metric on the language task.

use gcs_bench::{expect, header, measured_only};
use gcs_core::schemes::{topk::TopK, topkc::TopKC};
use gcs_ddp::{Task, Trainer};

fn main() {
    header("Ablation: error feedback", "final metric with EF on vs off");
    let task = Task::Bert;
    let mut cfg = task.trainer_config();
    cfg.max_rounds = 250;
    let b = 0.5; // aggressive budget: EF matters most here
    let run = |scheme: &mut dyn gcs_core::scheme::CompressionScheme| {
        let mut model = task.build_model(cfg.seed);
        Trainer::new(cfg.clone())
            .train(model.as_mut(), scheme, 0.2)
            .final_metric
    };
    let topk_ef = run(&mut TopK::with_bits(b, cfg.n_workers, true));
    let topk_no = run(&mut TopK::with_bits(b, cfg.n_workers, false));
    let topkc_ef = run(&mut TopKC::with_bits(b, 128, cfg.n_workers, true));
    let topkc_no = run(&mut TopKC::with_bits(b, 128, cfg.n_workers, false));
    measured_only("TopK  b=0.5, EF on  (final ppl)", topk_ef);
    measured_only("TopK  b=0.5, EF off (final ppl)", topk_no);
    measured_only("TopKC b=0.5, EF on  (final ppl)", topkc_ef);
    measured_only("TopKC b=0.5, EF off (final ppl)", topkc_no);
    expect("EF improves TopK's final perplexity", topk_ef < topk_no);
    expect("EF improves TopKC's final perplexity", topkc_ef < topkc_no);
}
