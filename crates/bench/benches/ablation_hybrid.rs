//! Ablation — TopKC-Q (the §3.1.2 generalization: chunk consensus +
//! quantized payload) vs plain TopKC and THC at equal bit budgets.
//!
//! The hybrid trades per-coordinate precision (q bits instead of FP16) for
//! ~16/q × more aggregated coordinates. Expectation: it wins at aggressive
//! budgets (coverage-starved) and loses its edge at generous budgets
//! (precision-starved).

use gcs_bench::{expect, header, measured_only};
use gcs_core::scheme::{CompressionScheme, RoundContext};
use gcs_core::schemes::thc::Thc;
use gcs_core::schemes::topkc::TopKC;
use gcs_core::schemes::topkc_q::TopKCQ;
use gcs_core::synthetic::GradientModel;
use gcs_ddp::ThroughputModel;
use gcs_gpusim::{DeviceSpec, ModelProfile, Precision};
use gcs_tensor::rng::SharedSeed;
use gcs_tensor::vector::{mean, vnmse};

fn measure(scheme: &mut dyn CompressionScheme) -> f64 {
    let m = GradientModel::bert_like(1 << 17);
    let mut sum = 0.0;
    let rounds = 4;
    for r in 0..rounds {
        let grads = m.generate(4, SharedSeed::new(600 + r));
        let exact = mean(&grads);
        let out = scheme.aggregate_round(&grads, &RoundContext::new(66, r));
        sum += vnmse(&out.mean_estimate, &exact);
    }
    sum / rounds as f64
}

fn main() {
    header(
        "Ablation: hybrid TopKC-Q",
        "chunk consensus + q-bit payload vs TopKC (FP16) and THC, equal b",
    );
    let tm = ThroughputModel::paper_testbed();
    let profile = ModelProfile::bert_large();
    let device = DeviceSpec::a100();
    let mut q_wins_tight = false;
    for b in [0.5f64, 1.0, 2.0, 4.0] {
        println!("\nb = {b}:");
        let c = if b < 1.0 { 128 } else { 64 };
        let mut plain = TopKC::with_bits(b, c, 4, false);
        let mut hybrid = TopKCQ::with_bits(b, c, 4, 4);
        let e_plain = measure(&mut plain);
        let e_hybrid = measure(&mut hybrid);
        measured_only("  TopKC  (FP16 values) vNMSE", e_plain);
        measured_only("  TopKC-Q (4-bit values) vNMSE", e_hybrid);
        measured_only(
            "  TopKC   rounds/s",
            tm.rounds_per_sec(&plain, &profile, Precision::Tf32),
        );
        measured_only(
            "  TopKC-Q rounds/s",
            tm.rounds_per_sec(&hybrid, &profile, Precision::Tf32),
        );
        if b <= 1.0 && e_hybrid < e_plain {
            q_wins_tight = true;
        }
        if b >= 4.0 {
            // Dense-enough budgets: THC quantizes everything.
            let mut thc = Thc::improved(4, &device, 4);
            measured_only("  THC-Sat q=4 (all coords) vNMSE", measure(&mut thc));
        }
    }
    expect(
        "the hybrid wins at tight budgets (coverage beats precision)",
        q_wins_tight,
    );
}
