//! Ablation — saturation error vs worker count (the paper's §3.2.2 caveat).
//!
//! Saturation keeps `b = q` regardless of `n`, but the probability that a
//! lane's running sum clips grows with `n`. This sweep quantifies when the
//! error becomes material, and contrasts the widened adaptation's bit cost
//! (`q + ceil(log2 n)`), which grows instead.

use gcs_bench::{expect, header, measured_only};
use gcs_core::scheme::{CompressionScheme, RoundContext};
use gcs_core::schemes::thc::{Thc, ThcAggregation};
use gcs_tensor::hadamard::RotationMode;
use gcs_tensor::vector::{mean, vnmse};
use rand::{Rng, SeedableRng};

fn grads(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    let s: f32 = (0..6).map(|_| rng.gen_range(-0.5f32..0.5)).sum();
                    s * 0.4
                })
                .collect()
        })
        .collect()
}

fn main() {
    header(
        "Ablation: saturation vs worker count",
        "THC-Sat error growth and the widened alternative's bit cost",
    );
    let d = 1 << 12;
    for q in [2u32, 4] {
        println!("\nq = {q}:");
        let mut errs = Vec::new();
        for n in [2usize, 4, 8, 16, 32, 64] {
            let g = grads(n, d, 7 + n as u64);
            let exact = mean(&g);
            let mut sat = Thc::new(q, RotationMode::Full, ThcAggregation::Saturating, n);
            let mut err = 0.0;
            for r in 0..3 {
                let out = sat.aggregate_round(&g, &RoundContext::new(1, r));
                err += vnmse(&out.mean_estimate, &exact);
            }
            err /= 3.0;
            errs.push(err);
            measured_only(&format!("n={n:<3} Sat vNMSE (b=q={q})"), err);
            measured_only(
                &format!("n={n:<3} widened alternative needs bits"),
                sat.overflow_free_bits() as f64,
            );
        }
        if q >= 4 {
            // The scaling caveat applies in saturation's working regime.
            expect(
                "saturation error grows with n (the paper's scaling caveat)",
                errs.last().unwrap() > errs.first().unwrap(),
            );
            expect(
                "error is modest at the paper's n=4",
                errs[1] < 3.0 * errs[0] + 0.05,
            );
        } else {
            // q=2 is degenerate at every n (vNMSE ~ 1: ternary lanes clamped
            // at +/-1 carry almost no aggregate signal) — the same failure
            // Figure 2 shows end-to-end for b=q=2 on BERT.
            expect(
                "q=2 saturation is degenerate at every n (vNMSE >= ~1)",
                errs.iter().all(|&e| e > 0.8),
            );
        }
    }
}
