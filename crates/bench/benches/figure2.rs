//! Figure 2 — TTA of THC's simple all-reduce adaptation (widened, b=8, q=4)
//! vs THC with saturation + partial rotation (b=q=4 and b=q=2).
//!
//! Expected shapes: saturation+partial-rotation at q=4 converges faster than
//! the widened baseline to the same final metric (pure throughput win, no
//! accuracy cost); q=2 has the highest throughput but visibly degraded
//! convergence on the language task — the paper's "throughput alone is
//! misleading" exhibit.
//!
//! Set `QUICK=1` to shrink the run.

use gcs_bench::{expect, header, print_curves_csv, print_tta_summary, write_curves_csv};
use gcs_core::metrics::TtaCurve;
use gcs_ddp::{experiments::figure2_plans, Task, Trainer};

fn main() {
    let quick = std::env::var("QUICK").is_ok();
    header(
        "Figure 2",
        "TTA of THC widened vs THC + saturation + partial rotation",
    );
    for task in [Task::Bert, Task::Vgg] {
        println!("\n### task: {task:?}");
        let mut cfg = task.trainer_config();
        if quick {
            cfg.max_rounds = 80;
        }
        let mut curves: Vec<TtaCurve> = Vec::new();
        for mut plan in figure2_plans(task, cfg.n_workers) {
            let mut model = task.build_model(cfg.seed);
            let log = Trainer::new(cfg.clone()).train(
                model.as_mut(),
                plan.scheme.as_mut(),
                plan.step_seconds,
            );
            let mut smoothed = log.curve.rolling_average(task.rolling_window());
            smoothed.label = plan.label.clone();
            eprintln!(
                "  {}: step {:.3}s, vNMSE {:.4}, final {:.4}",
                plan.label, plan.step_seconds, log.mean_vnmse, log.final_metric
            );
            curves.push(smoothed);
        }
        let (targets, name): (Vec<f64>, &str) = match task {
            Task::Bert => (vec![60.0, 30.0, 24.0], "perplexity"),
            Task::Vgg => (vec![0.5, 0.7, 0.85], "top-1 accuracy"),
        };
        print_tta_summary(&curves, &targets, name);
        print_curves_csv(&curves);
        write_curves_csv(&format!("figure2_{task:?}"), &curves);

        let find = |tag: &str| {
            curves
                .iter()
                .find(|c| c.label.contains(tag))
                .unwrap_or_else(|| panic!("missing curve {tag}"))
        };
        let widened = find("THC-Wide(q=4");
        let sat4 = find("THC-Sat(q=4");
        let sat2 = find("THC-Sat(q=2");
        let mid = targets[1];
        let tta = |c: &TtaCurve| c.time_to_target(mid).unwrap_or(f64::INFINITY);
        expect(
            "saturation + partial rotation (q=4) reaches the mid target before widened THC",
            tta(sat4) <= tta(widened),
        );
        if task == Task::Bert && !quick {
            let final_gap = match sat2.best_metric().zip(sat4.best_metric()) {
                Some((m2, m4)) => m2 > m4, // perplexity: higher is worse
                None => false,
            };
            expect(
                "q=2 converges to a worse perplexity than q=4 despite higher throughput",
                final_gap,
            );
        }
    }
}
