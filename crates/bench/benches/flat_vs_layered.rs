//! Flat-arena vs per-layer storage: the tentpole measurement.
//!
//! With arena-backed model storage a whole model's gradient is ONE
//! contiguous slice, so the per-round operations the DDP engine performs —
//! the aggregation collective, replica parameter sync, the optimizer step —
//! each become a single whole-model call. The pre-arena layout stored one
//! `Vec<f32>` per layer, turning each of those into a loop of per-layer
//! calls: same flops and bytes, but L× the fixed costs (ring setup, bounds
//! checks, loop/dispatch overhead) and no cross-layer vectorization at the
//! seams.
//!
//! Every pair below does identical arithmetic on identical values —
//! `tests/flat_arena.rs` pins the bitwise identity — so the delta is purely
//! the layout's fixed-cost amplification. Throughput is reported in
//! elements/s over the model's parameter count; `bench_report` lifts the
//! `collective` pair into the BENCH schema's `hotpath.flat` section.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gcs_collectives::{ring_all_reduce_into, F32Sum, RingScratch, Traffic};
use gcs_nn::{Model, Sgd, VggMini};

const N: usize = 4;

/// Per-worker whole-model gradients, plus the same data split per layer
/// (the pre-arena storage discipline).
struct Fixture {
    offsets: Vec<usize>,
    flat: Vec<Vec<f32>>,
    layered: Vec<Vec<Vec<f32>>>,
}

fn fixture() -> Fixture {
    let model = VggMini::new(7);
    let d = model.param_count();
    let offsets: Vec<usize> = model.net().param_arena().offsets().to_vec();
    let flat: Vec<Vec<f32>> = (0..N)
        .map(|w| (0..d).map(|i| ((w * d + i) as f32 * 0.37).sin()).collect())
        .collect();
    // layered[l][w] = worker w's gradient for layer l.
    let layered: Vec<Vec<Vec<f32>>> = offsets
        .windows(2)
        .map(|w| {
            flat.iter()
                .map(|g| g[w[0]..w[1]].to_vec())
                .collect::<Vec<_>>()
        })
        .collect();
    Fixture {
        offsets,
        flat,
        layered,
    }
}

fn bench_collective(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("flat_vs_layered/collective");

    g.bench_function("whole_model", |b| {
        let mut bufs = fx.flat.clone();
        let mut scratch = RingScratch::default();
        let mut traffic = Traffic::default();
        b.iter(|| {
            for (dst, src) in bufs.iter_mut().zip(&fx.flat) {
                dst.clear();
                dst.extend_from_slice(src);
            }
            ring_all_reduce_into(
                black_box(&mut bufs),
                &F32Sum,
                4.0,
                &mut scratch,
                &mut traffic,
            );
            traffic.steps
        })
    });

    g.bench_function("per_layer", |b| {
        let mut bufs = fx.layered.clone();
        let mut scratch = RingScratch::default();
        let mut traffic = Traffic::default();
        b.iter(|| {
            let mut steps = 0u32;
            for (layer, src) in bufs.iter_mut().zip(&fx.layered) {
                for (dst, s) in layer.iter_mut().zip(src) {
                    dst.clear();
                    dst.extend_from_slice(s);
                }
                ring_all_reduce_into(black_box(layer), &F32Sum, 4.0, &mut scratch, &mut traffic);
                steps += traffic.steps;
            }
            steps
        })
    });
    g.finish();
}

fn bench_replica_sync(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("flat_vs_layered/replica_sync");
    let src = fx.flat[0].clone();
    let src_layered: Vec<Vec<f32>> = fx.layered.iter().map(|l| l[0].clone()).collect();

    g.bench_function("whole_model", |b| {
        let mut replica = VggMini::new(7);
        b.iter(|| {
            replica.set_flat_params(black_box(&src));
            replica.params_flat()[0]
        })
    });

    g.bench_function("per_layer", |b| {
        let mut replica = VggMini::new(7);
        let offsets = fx.offsets.clone();
        b.iter(|| {
            let params = replica.params_flat_mut();
            for (w, layer) in offsets.windows(2).zip(black_box(&src_layered)) {
                params[w[0]..w[1]].copy_from_slice(layer);
            }
            params[0]
        })
    });
    g.finish();
}

fn bench_optimizer_step(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("flat_vs_layered/optimizer_step");
    let grad = fx.flat[0].clone();

    g.bench_function("whole_model", |b| {
        let mut model = VggMini::new(7);
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        b.iter(|| {
            opt.step_into(model.params_flat_mut(), black_box(&grad));
            model.params_flat()[0]
        })
    });

    g.bench_function("per_layer", |b| {
        let mut model = VggMini::new(7);
        let offsets = fx.offsets.clone();
        let mut opts: Vec<Sgd> = (1..offsets.len())
            .map(|_| Sgd::new(0.05, 0.9, 1e-4))
            .collect();
        b.iter(|| {
            let params = model.params_flat_mut();
            for (l, w) in offsets.windows(2).enumerate() {
                opts[l].step_into(&mut params[w[0]..w[1]], black_box(&grad[w[0]..w[1]]));
            }
            params[0]
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_collective,
    bench_replica_sync,
    bench_optimizer_step
);
criterion_main!(benches);
