//! Table 6 — TopK's compression overhead: the percentage of step time spent
//! in the computationally heavy components (selection + rearrangement).
//!
//! Expected shape: a material fraction (paper: ~8–13%) across bit budgets,
//! versus TopKC's negligible overhead printed alongside for contrast.

use gcs_bench::{expect, header, measured_only, paper_vs};
use gcs_core::schemes::{topk::TopK, topkc::TopKC};
use gcs_ddp::ThroughputModel;
use gcs_gpusim::{ModelProfile, Precision};

fn main() {
    header(
        "Table 6",
        "TopK compression overhead (% of training step time)",
    );
    let tm = ThroughputModel::paper_testbed();
    let n = 4;
    let tasks = [
        (
            ModelProfile::bert_large(),
            [(0.5, 9.7), (2.0, 12.5), (8.0, 8.7)],
        ),
        (
            ModelProfile::vgg19(),
            [(0.5, 11.9), (2.0, 12.1), (8.0, 8.2)],
        ),
    ];
    for (model, cells) in tasks {
        println!("\n{}:", model.name);
        let mut topkc_negligible = true;
        for (b, paper_pct) in cells {
            let topk = TopK::with_bits(b, n, true);
            let frac = tm
                .step(&topk, &model, Precision::Tf32)
                .compression_fraction();
            paper_vs(
                &format!("  TopK  b={b} overhead %"),
                paper_pct,
                frac * 100.0,
            );
            let topkc = TopKC::paper_config(b, n);
            let frac_c = tm
                .step(&topkc, &model, Precision::Tf32)
                .compression_fraction();
            measured_only(&format!("  TopKC b={b} overhead %"), frac_c * 100.0);
            topkc_negligible &= frac_c < frac;
        }
        expect(
            "TopKC's compute overhead is below TopK's at every b",
            topkc_negligible,
        );
    }
}
