//! Ablation — scheme throughput vs cluster size (the scalability claims of
//! §2.1 and §3.2.2, quantified).
//!
//! Expectations: all-reduce schemes (baselines, TopKC, THC-Sat) hold their
//! round rate as n grows; all-gather schemes (TopK) collapse; THC's widened
//! adaptation needs `q + ceil(log2 n)` bits, so its traffic creeps up while
//! saturation's stays flat.

use gcs_bench::{expect, header, measured_only};
use gcs_core::schemes::baseline::PrecisionBaseline;
use gcs_core::schemes::thc::Thc;
use gcs_core::schemes::topk::TopK;
use gcs_core::schemes::topkc::TopKC;
use gcs_ddp::ThroughputModel;
use gcs_gpusim::{DeviceSpec, ModelProfile, Precision};
use gcs_netsim::ClusterSpec;

fn main() {
    header(
        "Ablation: cluster scaling",
        "rounds/s vs n for all-reduce vs all-gather schemes (BERT-large)",
    );
    let profile = ModelProfile::bert_large();
    let mut topk_rates = Vec::new();
    let mut topkc_rates = Vec::new();
    for n in [4usize, 8, 16, 32, 64] {
        println!("\nn = {n}:");
        let tm = ThroughputModel {
            device: DeviceSpec::a100(),
            cluster: ClusterSpec::scaled(n),
        };
        let fp16 = PrecisionBaseline::fp16();
        let topk = TopK::with_bits(2.0, n, true);
        let topkc = TopKC::paper_config(2.0, n);
        let sat = Thc::improved(4, &DeviceSpec::a100(), n);
        let widened = Thc::baseline(4, n);
        let r_fp16 = tm.rounds_per_sec(&fp16, &profile, Precision::Tf32);
        let r_topk = tm.rounds_per_sec(&topk, &profile, Precision::Tf32);
        let r_topkc = tm.rounds_per_sec(&topkc, &profile, Precision::Tf32);
        measured_only("  FP16 baseline rounds/s", r_fp16);
        measured_only("  TopK (all-gather) rounds/s", r_topk);
        measured_only("  TopKC (all-reduce) rounds/s", r_topkc);
        measured_only(
            "  THC-Sat rounds/s",
            tm.rounds_per_sec(&sat, &profile, Precision::Tf32),
        );
        measured_only(
            "  THC widened rounds/s",
            tm.rounds_per_sec(&widened, &profile, Precision::Tf32),
        );
        measured_only(
            "  widened bits needed (q + log2 n)",
            sat.overflow_free_bits() as f64,
        );
        topk_rates.push(r_topk);
        topkc_rates.push(r_topkc);
    }
    let topk_drop = topk_rates[0] / topk_rates.last().unwrap();
    let topkc_drop = topkc_rates[0] / topkc_rates.last().unwrap();
    expect(
        &format!(
            "TopK collapses with n ({topk_drop:.1}x drop) while TopKC holds ({topkc_drop:.2}x)"
        ),
        topk_drop > 3.0 && topkc_drop < 1.5,
    );
}
