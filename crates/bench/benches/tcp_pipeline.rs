//! Steady-state pipelined TCP ring rounds vs stop-and-wait (ISSUE 9).
//!
//! `tcp_vs_threaded` prices a *cold* cluster — registry rendezvous + mesh
//! build + one round per iteration — which is the fixed cost a joiner pays
//! once, not what a training loop pays per step. This bench holds a
//! persistent fleet (mesh built once, links and scratch warm) and measures
//! the per-round cost alone, sweeping message sizes 2^8..2^20 in pairs:
//!
//! * `pipelined` — the default 64 KiB chunking, so each ring hop's send is
//!   posted while the previous chunk's receive is drained and reduced;
//! * `stop_and_wait` — an effectively infinite chunk, i.e. one frame per
//!   segment with no overlap: PR 7's data-path behaviour on the new code.
//!
//! `bench_report` lifts the same pair into the BENCH schema's
//! `transport.pipeline` subsection; this bench gives it criterion-grade
//! statistics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gcs_collectives::tcp::{FleetWorker, Registry, TcpTimeouts};
use gcs_collectives::transport::ring_all_reduce_worker_into;
use gcs_collectives::F32Sum;
use std::sync::mpsc;

const N: usize = 4;

/// A persistent in-process TCP fleet: N worker threads holding one mesh,
/// driven round-by-round from the bench thread. Only the rounds are
/// measured; rendezvous and mesh build happen once at construction.
struct Fleet {
    go: Vec<mpsc::Sender<bool>>,
    done: mpsc::Receiver<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
    _registry: Registry,
}

impl Fleet {
    fn new(len: usize, chunk_bytes: usize) -> Fleet {
        let registry = Registry::spawn(N).expect("registry");
        let addr = registry.addr();
        let (done_tx, done) = mpsc::channel();
        let mut go = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..N {
            let (tx, rx) = mpsc::channel::<bool>();
            go.push(tx);
            let done_tx = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                let mut w = FleetWorker::join(addr, TcpTimeouts::fast_test()).expect("join");
                let rs = w.next_round(0).expect("rendezvous round");
                w.mesh_mut().set_chunk_bytes(chunk_bytes);
                let src: Vec<f32> = (0..len)
                    .map(|i| ((rs.rank * len + i) as f32 * 0.37).sin())
                    .collect();
                let mut buf = src.clone();
                let mut scratch = Vec::new();
                let mut links = w.links::<f32>();
                while let Ok(true) = rx.recv() {
                    buf.copy_from_slice(&src);
                    ring_all_reduce_worker_into(&mut links, &mut buf, &F32Sum, 4.0, &mut scratch)
                        .expect("healthy fleet");
                    done_tx.send(()).expect("done channel");
                }
                drop(links);
                w.leave().expect("leave");
            }));
        }
        Fleet {
            go,
            done,
            handles,
            _registry: registry,
        }
    }

    /// One synchronous all-worker ring round.
    fn round(&self) {
        for tx in &self.go {
            tx.send(true).expect("go channel");
        }
        for _ in 0..N {
            self.done.recv().expect("round completion");
        }
    }

    fn stop(self) {
        for tx in &self.go {
            let _ = tx.send(false);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_pipeline/ring_round");
    for exp in [8u32, 12, 16, 20] {
        let len = 1usize << exp;
        for (mode, chunk_bytes) in [("pipelined", 64 * 1024), ("stop_and_wait", usize::MAX)] {
            let fleet = Fleet::new(len, chunk_bytes);
            g.bench_with_input(BenchmarkId::new(mode, len), &len, |b, _| {
                b.iter(|| {
                    fleet.round();
                    black_box(())
                })
            });
            fleet.stop();
        }
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
