//! Table 4 — vNMSE of TopKC vs TopKC with a random permutation (BERT task),
//! demonstrating that TopKC's advantage comes from **spatial locality**:
//! permuting coordinates (destroying locality) significantly worsens the
//! compression error at every bit budget.
//!
//! Primary source: the BERT-calibrated synthetic gradient model
//! (`gcs_core::synthetic`; calibration in `EXPERIMENTS.md`). Supplementary:
//! live gradients from the BertMini training run, which reproduce the
//! *ordering* but not the absolute error level (a 148 K-parameter model's
//! gradients are more concentrated than a 345 M one's).

use gcs_bench::{expect, header, measured_only, paper_vs};
use gcs_core::scheme::{CompressionScheme, RoundContext};
use gcs_core::schemes::topkc::TopKC;
use gcs_core::synthetic::GradientModel;
use gcs_ddp::{Task, Trainer};
use gcs_tensor::rng::SharedSeed;
use gcs_tensor::vector::{mean, vnmse};

fn synthetic_vnmse(scheme: &mut dyn CompressionScheme, rounds: u64) -> f64 {
    let model = GradientModel::bert_like(1 << 18);
    let mut sum = 0.0;
    for r in 0..rounds {
        let grads = model.generate(4, SharedSeed::new(4000 + r));
        let exact = mean(&grads);
        let out = scheme.aggregate_round(&grads, &RoundContext::new(44, r));
        sum += vnmse(&out.mean_estimate, &exact);
    }
    sum / rounds as f64
}

fn main() {
    header(
        "Table 4",
        "vNMSE of TopKC vs TopKC-Permutation (BERT), by bits/coordinate",
    );
    let paper = [
        (0.5, 0.273, 0.398),
        (2.0, 0.142, 0.297),
        (8.0, 0.0280, 0.123),
    ];

    println!("primary: BERT-calibrated synthetic gradients");
    let mut locality_wins = true;
    for (b, p_plain, p_perm) in paper {
        let c = if b < 1.0 { 128 } else { 64 };
        let mut plain = TopKC::with_bits(b, c, 4, false);
        let mut perm = TopKC::with_bits(b, c, 4, false).with_permutation();
        let v_plain = synthetic_vnmse(&mut plain, 5);
        let v_perm = synthetic_vnmse(&mut perm, 5);
        paper_vs(&format!("TopKC             b={b}"), p_plain, v_plain);
        paper_vs(&format!("TopKC Permutation b={b}"), p_perm, v_perm);
        locality_wins &= v_plain < v_perm;
    }
    expect(
        "TopKC beats its permuted variant at every b (spatial locality exists)",
        locality_wins,
    );

    println!("\nsupplementary: live BertMini training gradients");
    let task = Task::Bert;
    let cfg = task.trainer_config();
    let mut live_wins = true;
    for (b, _, _) in paper {
        let c = if b < 1.0 { 128 } else { 64 };
        let trainer = Trainer::new(cfg.clone());
        let mut model = task.build_model(cfg.seed);
        let mut plain = TopKC::with_bits(b, c, cfg.n_workers, false);
        let v_plain = trainer.measure_vnmse(model.as_mut(), &mut plain, 25);
        let mut model = task.build_model(cfg.seed);
        let mut perm = TopKC::with_bits(b, c, cfg.n_workers, false).with_permutation();
        let v_perm = trainer.measure_vnmse(model.as_mut(), &mut perm, 25);
        measured_only(&format!("TopKC             b={b} (live)"), v_plain);
        measured_only(&format!("TopKC Permutation b={b} (live)"), v_perm);
        live_wins &= v_plain < v_perm;
    }
    expect(
        "ordering also holds on live mini-model gradients",
        live_wins,
    );
}
