//! SIMD fast paths vs their scalar references for the four hottest kernels
//! (ISSUE 6): FWHT butterflies, Gram–Schmidt inner loops (dot/axpy), the
//! top-k threshold scan, and fused quantize+pack.
//!
//! Each `scalar`/`simd` pair computes bitwise-identical results on the
//! benchmark's (finite) inputs — pinned by the dispatch proptests in
//! `gcs_tensor::simd` — so the ratio is pure instruction-level speedup. On
//! hardware without AVX2 the `simd` rows dispatch to the scalar body and the
//! pairs converge, which is itself worth seeing in a report.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gcs_tensor::bitpack::PackedIntVec;
use gcs_tensor::hadamard::fwht;
use gcs_tensor::simd;
use rand::{Rng, SeedableRng};

fn data(d: usize, seed: u64) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bench_butterfly(c: &mut Criterion) {
    let mut g = c.benchmark_group("simd_kernels/butterfly");
    let half = 1 << 15;
    let lo0 = data(half, 1);
    let hi0 = data(half, 2);
    g.bench_function("scalar", |b| {
        let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
        b.iter(|| {
            simd::butterfly_scalar(black_box(&mut lo), black_box(&mut hi), 1.0);
            lo[0]
        })
    });
    g.bench_function("simd", |b| {
        let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
        b.iter(|| {
            simd::butterfly(black_box(&mut lo), black_box(&mut hi), 1.0);
            lo[0]
        })
    });
    // The kernel in situ: a full 2^16 FWHT (16 butterfly stages).
    g.bench_function("fwht_dispatch_65536", |b| {
        let v = data(1 << 16, 3);
        let mut x = v.clone();
        b.iter(|| {
            x.copy_from_slice(&v);
            fwht(black_box(&mut x));
            x[0]
        })
    });
    g.finish();
}

fn bench_gram_schmidt_inner(c: &mut Criterion) {
    let mut g = c.benchmark_group("simd_kernels/gs_inner");
    let rows = 4096;
    let x = data(rows, 4);
    let y0 = data(rows, 5);
    g.bench_function(BenchmarkId::new("dot", "scalar"), |b| {
        b.iter(|| simd::dot_folded_scalar(black_box(&x), black_box(&y0)))
    });
    g.bench_function(BenchmarkId::new("dot", "simd"), |b| {
        b.iter(|| simd::dot_folded(black_box(&x), black_box(&y0)))
    });
    g.bench_function(BenchmarkId::new("axpy", "scalar"), |b| {
        let mut y = y0.clone();
        b.iter(|| {
            simd::axpy_scalar(0.25, black_box(&x), black_box(&mut y));
            y[0]
        })
    });
    g.bench_function(BenchmarkId::new("axpy", "simd"), |b| {
        let mut y = y0.clone();
        b.iter(|| {
            simd::axpy(0.25, black_box(&x), black_box(&mut y));
            y[0]
        })
    });
    g.finish();
}

fn bench_topk_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("simd_kernels/topk_scan");
    let d = 1 << 16;
    let v = data(d, 6);
    // A threshold near the top-1% boundary, as the selection pass sees it.
    let mut keys = vec![0u32; d];
    simd::abs_keys_into(&v, &mut keys);
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let t = sorted[d - d / 100];

    g.bench_function("scalar", |b| {
        let mut keys = vec![0u32; d];
        let mut out = Vec::with_capacity(d / 50);
        b.iter(|| {
            simd::abs_keys_scalar(black_box(&v), &mut keys);
            out.clear();
            simd::collect_indices_above_scalar(black_box(&keys), t, 0, &mut out);
            out.len()
        })
    });
    g.bench_function("simd", |b| {
        let mut keys = vec![0u32; d];
        let mut out = Vec::with_capacity(d / 50);
        b.iter(|| {
            simd::abs_keys_into(black_box(&v), &mut keys);
            out.clear();
            simd::collect_indices_above(black_box(&keys), t, 0, &mut out);
            out.len()
        })
    });
    g.finish();
}

fn bench_quantize_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("simd_kernels/quantize_pack");
    let len = 1 << 16;
    let v = data(len, 7);
    let q = 4u32;
    let qmax = (1i32 << (q - 1)) - 1;
    let quant = |x: f32| ((x * qmax as f32) as i32).clamp(-qmax, qmax);

    // Scalar reference: quantize into a lane vector, then pack it.
    g.bench_function("scalar", |b| {
        let mut lanes = vec![0i32; len];
        b.iter(|| {
            for (l, &x) in lanes.iter_mut().zip(black_box(&v)) {
                *l = quant(x);
            }
            PackedIntVec::from_signed(q, &lanes).len()
        })
    });
    // Fused streaming writer (SIMD lane blocks inside `pack_with`).
    g.bench_function("simd", |b| {
        let mut packed = PackedIntVec::zeros(q, len);
        b.iter(|| {
            packed.reset(q, len);
            packed.pack_with(|i| quant(black_box(&v)[i]));
            packed.len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_butterfly,
    bench_gram_schmidt_inner,
    bench_topk_scan,
    bench_quantize_pack
);
criterion_main!(benches);
