//! Overhead contract of the fleet telemetry plane: the per-round cost of
//! shipping one trace + one registry snapshot + one flight-recorder dump
//! to a live [`TelemetryCollector`] must stay **well under 2%** of a real
//! training round — telemetry that taxes the thing it observes is worse
//! than no telemetry.
//!
//! Method: first time a `VggMini` fleet round body (compute + SGD; no
//! network — the conservative denominator, since a real round is strictly
//! slower), then time a full per-round ship (trace encode + snapshot
//! encode + flight JSONL + three framed sends over localhost TCP), and
//! assert `ship / round < 2%`.

use std::time::Instant;

use gcs_bench::{expect, header, measured_only};
use gcs_collectives::telemetry::{TelemetryCollector, TelemetryConfig, TelemetryShipper};
use gcs_metrics::fleet::{FlightRecorder, ROUND_HIST, WIRE_BYTES_COUNTER};
use gcs_nn::{Model, Sgd, VggMini};
use std::hint::black_box;

/// Median seconds per call of `f` over `samples` timed batches.
fn time_median(samples: usize, iters: u64, mut f: impl FnMut()) -> f64 {
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    per_call[per_call.len() / 2]
}

fn main() {
    header(
        "telemetry overhead",
        "cost of per-round fleet telemetry shipping vs a training round",
    );

    // The denominator: one local training round (shard → backward → SGD).
    let mut model = VggMini::new(11);
    let mut opt = Sgd::new(0.05, 0.9, 0.0);
    let mut round = 0u64;
    let round_s = time_median(7, 2, || {
        let batch = model.train_batch(4, 0, round);
        let loss = model.forward_backward(&batch);
        let grads = model.grads_flat().to_vec();
        opt.step_into(model.params_flat_mut(), &grads);
        black_box(loss);
        round += 1;
    });
    measured_only("training round (ms)", round_s * 1e3);

    // The numerator: everything a worker ships per round, against a live
    // collector on localhost — representative payloads (a recorded round's
    // spans, a populated registry, a warm flight recorder).
    let collector = TelemetryCollector::spawn(TelemetryConfig::default()).expect("collector");
    let mut shipper = TelemetryShipper::connect(collector.addr(), 1).expect("shipper");

    gcs_metrics::enable();
    for r in 0..32 {
        gcs_metrics::observe(ROUND_HIST, 1.0e6 + r as f64 * 1.0e4);
        gcs_metrics::counter_add(WIRE_BYTES_COUNTER, 4096.0);
    }
    let snapshot = gcs_metrics::take();

    let trace = gcs_trace::with_recording(|| {
        for _ in 0..8 {
            let _c = gcs_trace::span(gcs_trace::Phase::Compute, "bench_compute");
            let _n = gcs_trace::span(gcs_trace::Phase::Network, "bench_all_reduce");
            gcs_trace::counter("bench_wire_bytes", 4096.0);
        }
    });
    let mut flight = FlightRecorder::new();
    flight.record_trace(&trace);
    flight.record_event("bench", "telemetry overhead probe");
    let jsonl = flight.to_jsonl();

    let mut ship_round = 0u64;
    let ship_s = time_median(9, 20, || {
        shipper.ship_trace(0, &trace).expect("ship trace");
        shipper
            .ship_snapshot(0, 1, &snapshot)
            .expect("ship snapshot");
        shipper.ship_flight(0, &jsonl).expect("ship flight");
        ship_round += 1;
    });
    measured_only("per-round ship: trace+snapshot+flight (us)", ship_s * 1e6);

    let overhead = ship_s / round_s;
    measured_only("telemetry overhead (%)", overhead * 100.0);
    expect(
        "per-round telemetry shipping costs < 2% of a training round",
        overhead < 0.02,
    );

    // The shipped bytes actually landed: the collector accounted frames.
    let (frames, bytes) = collector.aggregator().transfer_totals();
    measured_only("frames shipped", frames as f64);
    measured_only("bytes shipped", bytes as f64);
    expect(
        "collector accounted all shipped frames",
        frames > 0 && bytes > 0,
    );
}
