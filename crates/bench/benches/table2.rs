//! Table 2 — throughput (rounds/second) of uncompressed baselines, varying
//! training precision {TF32, FP32} × communication precision {FP16, FP32}.
//!
//! This is the calibration anchor of the whole suite: the cost models'
//! constants were chosen so these eight cells land near the paper, and every
//! other throughput table is derived from the same constants.

use gcs_bench::{expect, header, paper_vs};
use gcs_ddp::ThroughputModel;
use gcs_gpusim::{ModelProfile, Precision};

fn main() {
    header(
        "Table 2",
        "Baseline throughput (rounds/s), train precision x comm precision",
    );
    let tm = ThroughputModel::paper_testbed();
    let tasks = [
        (
            ModelProfile::bert_large(),
            [
                ("TF32+FP16", Precision::Tf32, 16.0, 3.32),
                ("TF32+FP32", Precision::Tf32, 32.0, 2.44),
                ("FP32+FP16", Precision::Fp32, 16.0, 3.17),
                ("FP32+FP32", Precision::Fp32, 32.0, 2.36),
            ],
        ),
        (
            ModelProfile::vgg19(),
            [
                ("TF32+FP16", Precision::Tf32, 16.0, 9.31),
                ("TF32+FP32", Precision::Tf32, 32.0, 6.59),
                ("FP32+FP16", Precision::Fp32, 16.0, 8.73),
                ("FP32+FP32", Precision::Fp32, 32.0, 6.37),
            ],
        ),
    ];
    for (model, cells) in tasks {
        println!("\n{} ({} params):", model.name, model.params);
        let mut fp16_beats_fp32 = true;
        let mut prev = f64::INFINITY;
        for (label, train, bits, paper) in cells {
            let ours = tm.baseline_rounds_per_sec(&model, train, bits);
            paper_vs(&format!("  {} {label}", model.name), paper, ours);
            // Within a train precision, FP16 comm must beat FP32 comm.
            if bits == 32.0 {
                fp16_beats_fp32 &= prev > ours;
            }
            prev = ours;
        }
        expect(
            "FP16 communication strictly beats FP32 at both training precisions",
            fp16_beats_fp32,
        );
    }
}
