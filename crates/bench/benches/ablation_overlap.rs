//! Ablation — serialized vs pipelined (bucketed, comm/compute-overlapping)
//! step time. The Espresso \[60\] / CUPCAKE \[62\] dimension of Table 1.
//!
//! Expected shapes: (1) pipelining accelerates everything, the baselines
//! most (their only overhead is comm, which hides well); (2) compression's
//! apparent advantage over FP16 shrinks under overlap; (3) compute-heavy
//! compression (PowerSGD r=64) benefits least.

use gcs_bench::{expect, header, measured_only};
use gcs_core::schemes::baseline::PrecisionBaseline;
use gcs_core::schemes::powersgd::PowerSgd;
use gcs_core::schemes::thc::Thc;
use gcs_core::schemes::topkc::TopKC;
use gcs_ddp::{PipelineModel, ThroughputModel};
use gcs_gpusim::{DeviceSpec, ModelProfile, Precision};

fn main() {
    header(
        "Ablation: comm/compute overlap",
        "serialized vs pipelined rounds/s (BERT-large)",
    );
    let tm = ThroughputModel::paper_testbed();
    let pm = PipelineModel::paper_testbed();
    let m = ModelProfile::bert_large();
    let device = DeviceSpec::a100();

    let schemes: Vec<(String, Box<dyn gcs_core::scheme::CompressionScheme>)> = vec![
        ("FP16 baseline".into(), Box::new(PrecisionBaseline::fp16())),
        ("FP32 baseline".into(), Box::new(PrecisionBaseline::fp32())),
        ("TopKC b=2".into(), Box::new(TopKC::paper_config(2.0, 4))),
        ("THC-Sat q=4".into(), Box::new(Thc::improved(4, &device, 4))),
        (
            "PowerSGD r=64".into(),
            Box::new(PowerSgd::new(64, vec![(64, 64)], 4).with_cost_shapes(m.layer_shapes.clone())),
        ),
    ];
    let mut serial = Vec::new();
    let mut piped = Vec::new();
    for (label, scheme) in &schemes {
        let s = tm.rounds_per_sec(scheme.as_ref(), &m, Precision::Tf32);
        let p = pm.rounds_per_sec(scheme.as_ref(), &m, Precision::Tf32);
        let step = pm.step(scheme.as_ref(), &m, Precision::Tf32);
        measured_only(&format!("{label:<16} serialized rounds/s"), s);
        measured_only(&format!("{label:<16} pipelined  rounds/s"), p);
        measured_only(
            &format!("{label:<16} comm hidden (ms)"),
            step.overlapped * 1e3,
        );
        serial.push(s);
        piped.push(p);
    }
    expect(
        "pipelining accelerates every scheme",
        serial.iter().zip(&piped).all(|(s, p)| p >= s),
    );
    let serial_gain = serial[2] / serial[0];
    let pipe_gain = piped[2] / piped[0];
    expect(
        &format!(
            "TopKC's edge over FP16 shrinks under overlap ({serial_gain:.2}x -> {pipe_gain:.2}x)"
        ),
        pipe_gain < serial_gain,
    );
    let psgd_speedup = piped[4] / serial[4];
    let fp32_speedup = piped[1] / serial[1];
    expect(
        &format!(
            "compute-bound PowerSGD gains least from overlap ({psgd_speedup:.2}x vs FP32's {fp32_speedup:.2}x)"
        ),
        psgd_speedup < fp32_speedup,
    );
}
