//! Table 9 — PowerSGD bits-per-coordinate and throughput vs rank r.
//!
//! Expected shapes: (1) b stays far below even 1 bit/coordinate while
//! (2) throughput *drops* steeply with r — because Gram–Schmidt
//! orthogonalization, not communication, is the bottleneck. The
//! orthogonalization share of step time is printed to mirror the paper's
//! profiling claim (39.7% / 47.4% at r=64).

use gcs_bench::{expect, header, measured_only, paper_vs};
use gcs_core::scheme::CompressionScheme;
use gcs_core::schemes::powersgd::PowerSgd;
use gcs_ddp::ThroughputModel;
use gcs_gpusim::{ops, DeviceSpec, ModelProfile, Precision};

fn main() {
    header("Table 9", "PowerSGD bits/coordinate and throughput vs rank");
    let tm = ThroughputModel::paper_testbed();
    let device = DeviceSpec::a100();
    let cells_bert = [
        (1u32, 0.0797, 5.49),
        (4, 0.217, 4.89),
        (16, 0.764, 4.01),
        (64, 2.95, 3.03),
    ];
    let cells_vgg = [
        (1u32, 0.0242, 21.0),
        (4, 0.0872, 19.8),
        (16, 0.339, 15.2),
        (64, 1.36, 11.0),
    ];
    for (model, cells, paper_gs_pct) in [
        (ModelProfile::bert_large(), cells_bert, 39.7),
        (ModelProfile::vgg19(), cells_vgg, 47.4),
    ] {
        println!("\n{}:", model.name);
        let mut rates = Vec::new();
        for (r, paper_b, paper_thr) in cells {
            let scheme =
                PowerSgd::new(r, vec![(64, 64)], 4).with_cost_shapes(model.layer_shapes.clone());
            let b = scheme.nominal_bits_per_coord(model.params);
            let thr = tm.rounds_per_sec(&scheme, &model, Precision::Tf32);
            paper_vs(&format!("  r={r:<3} bits/coord"), paper_b, b);
            paper_vs(&format!("  r={r:<3} rounds/s  "), paper_thr, thr);
            rates.push(thr);
        }
        // Orthogonalization share at r=64.
        let gs_frac = ops::powersgd_gs_fraction(&model.layer_shapes, 64, &device);
        let step = tm.step(
            &PowerSgd::new(64, vec![(64, 64)], 4).with_cost_shapes(model.layer_shapes.clone()),
            &model,
            Precision::Tf32,
        );
        let gs_share_of_step =
            gs_frac * step.compression / step.total() * 100.0 / (step.compression / step.total());
        let gs_of_total = {
            let gs: f64 = model
                .layer_shapes
                .iter()
                .map(|&(rows, _)| ops::gram_schmidt(rows, 64, &device))
                .sum();
            gs / step.total() * 100.0
        };
        let _ = gs_share_of_step;
        paper_vs(
            "  r=64 orthogonalization % of step",
            paper_gs_pct,
            gs_of_total,
        );
        measured_only(
            "  r=64 comm % of step",
            step.communication / step.total() * 100.0,
        );
        expect(
            "throughput falls monotonically with rank",
            rates.windows(2).all(|w| w[0] > w[1]),
        );
        expect(
            "communication share stays small even at r=64 (compute-bound)",
            step.communication / step.total() < 0.25,
        );
    }
}
