//! Ablation — beyond TTA: cost-to-accuracy and power-to-accuracy (the
//! paper's §4 future work, exercised).
//!
//! Trains the LM task under three schemes and re-ranks them under three
//! lenses: wall-clock TTA, dollars (cloud billing with egress pricing), and
//! joules. The point: the ranking is lens-dependent, which is exactly why
//! §4 calls for a framework rather than a single number.

use gcs_bench::{expect, header, measured_only};
use gcs_core::economics::{
    cost_to_accuracy, power_to_accuracy, CostModel, PowerModel, RoundResources,
};
use gcs_core::scheme::CompressionScheme;
use gcs_core::schemes::baseline::PrecisionBaseline;
use gcs_core::schemes::powersgd::PowerSgd;
use gcs_core::schemes::topkc::TopKC;
use gcs_ddp::{Task, ThroughputModel, Trainer};
use gcs_gpusim::Precision;

fn main() {
    header(
        "Ablation: economics",
        "TTA vs cost-to-accuracy vs power-to-accuracy (LM task)",
    );
    let task = Task::Bert;
    let mut cfg = task.trainer_config();
    cfg.max_rounds = 400;
    let tm = ThroughputModel::paper_testbed();
    let profile = task.profile();
    let target = 40.0; // perplexity

    let probe = task.build_model(cfg.seed);
    let shapes = probe.matrix_shapes();
    drop(probe);

    let schemes: Vec<Box<dyn CompressionScheme>> = vec![
        Box::new(PrecisionBaseline::fp16()),
        Box::new(TopKC::paper_config(2.0, cfg.n_workers)),
        Box::new(
            PowerSgd::new(16, shapes, cfg.n_workers).with_cost_shapes(profile.layer_shapes.clone()),
        ),
    ];
    let cost = CostModel {
        per_gib_price: 0.02,
        ..CostModel::cloud_a100(cfg.n_workers)
    };
    let power = PowerModel::a100(cfg.n_workers);

    let mut rows = Vec::new();
    for mut scheme in schemes {
        let step = tm.step(scheme.as_ref(), &profile, Precision::Tf32);
        let resources = RoundResources {
            busy_seconds: step.compute + step.compression,
            comm_seconds: step.communication,
            wire_bytes: scheme
                .comm_events(profile.params)
                .iter()
                .map(|e| e.payload_bytes * 2.0 * cfg.n_workers as f64)
                .sum(),
        };
        let mut model = task.build_model(cfg.seed);
        let log = Trainer::new(cfg.clone()).train(model.as_mut(), scheme.as_mut(), step.total());
        let curve = log.curve.rolling_average(task.rolling_window());
        let name = scheme.name();
        println!("\n{name}:");
        let tta = curve.time_to_target(target);
        let cta = cost_to_accuracy(&curve, resources, &cost, target);
        let pta = power_to_accuracy(&curve, resources, &power, target);
        measured_only("  TTA  (s to ppl target)", tta.unwrap_or(f64::NAN));
        measured_only("  CTA  ($ to ppl target)", cta.unwrap_or(f64::NAN));
        measured_only(
            "  PTA  (kJ to ppl target)",
            pta.map(|j| j / 1e3).unwrap_or(f64::NAN),
        );
        rows.push((name, tta, cta, pta));
    }

    // The lenses weight the same run differently; check the mechanism is
    // alive: PowerSGD's compute-heavy rounds must look relatively worse
    // under power than under wall-clock, compared to the comm-heavy FP16
    // baseline.
    let fp16 = &rows[0];
    let psgd = &rows[2];
    if let ((Some(t_f), Some(p_f)), (Some(t_p), Some(p_p))) = ((fp16.1, fp16.3), (psgd.1, psgd.3)) {
        let tta_ratio = t_p / t_f;
        let pta_ratio = p_p / p_f;
        expect(
            &format!(
                "PowerSGD looks worse under power than wall-clock (TTA ratio {tta_ratio:.2} < PTA ratio {pta_ratio:.2})"
            ),
            pta_ratio > tta_ratio,
        );
    } else {
        expect("all schemes reached the target", false);
    }
}
