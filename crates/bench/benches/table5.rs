//! Table 5 — throughput (rounds/s) of TopK (all-gather) vs TopKC
//! (all-reduce) at equal bits-per-coordinate, both tasks.
//!
//! Expected shape: TopKC wins everywhere; the gap widens as b grows because
//! all-gather traffic scales with `n·b` while all-reduce stays at `~2b`.

use gcs_bench::{expect, header, paper_vs};
use gcs_core::schemes::{topk::TopK, topkc::TopKC};
use gcs_ddp::ThroughputModel;
use gcs_gpusim::{ModelProfile, Precision};

fn main() {
    header(
        "Table 5",
        "Throughput (rounds/s): TopK (all-gather) vs TopKC (all-reduce)",
    );
    let tm = ThroughputModel::paper_testbed();
    let n = 4;
    let tasks = [
        (
            ModelProfile::bert_large(),
            [(0.5, 5.53, 6.06), (2.0, 3.87, 6.02), (8.0, 2.50, 4.78)],
        ),
        (
            ModelProfile::vgg19(),
            [(0.5, 21.5, 24.9), (2.0, 13.9, 22.2), (8.0, 7.60, 15.2)],
        ),
    ];
    for (model, cells) in tasks {
        println!("\n{}:", model.name);
        let mut topkc_always_wins = true;
        for (b, paper_topk, paper_topkc) in cells {
            let topk = TopK::with_bits(b, n, true);
            let topkc = TopKC::paper_config(b, n);
            let r_topk = tm.rounds_per_sec(&topk, &model, Precision::Tf32);
            let r_topkc = tm.rounds_per_sec(&topkc, &model, Precision::Tf32);
            paper_vs(&format!("  TopK  b={b}"), paper_topk, r_topk);
            paper_vs(&format!("  TopKC b={b}"), paper_topkc, r_topkc);
            topkc_always_wins &= r_topkc > r_topk;
        }
        expect("TopKC outperforms TopK at every b", topkc_always_wins);
    }
}
