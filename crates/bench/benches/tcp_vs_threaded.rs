//! Socket mesh vs in-process channels: what does a real transport cost?
//!
//! Both sides run the *identical* `ring_all_reduce_worker` body — the
//! differential suite (`tests/tcp_vs_threaded.rs`) pins the outputs as
//! bitwise-equal — so every nanosecond of delta here is transport: frame
//! encode/decode, syscalls, loopback TCP, and thread wakeups, versus an
//! in-process channel hop. A third group prices the elastic-membership
//! machinery itself (registry rendezvous + full mesh build), the fixed
//! cost a late joiner pays before its first round.
//!
//! `bench_report` lifts the same comparison into the BENCH schema's
//! `transport` section; this bench gives it criterion-grade statistics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gcs_collectives::tcp::TcpCluster;
use gcs_collectives::transport::{ring_all_reduce_worker, ThreadedCluster};
use gcs_collectives::F32Sum;

const N: usize = 4;

fn inputs(len: usize) -> Vec<Vec<f32>> {
    (0..N)
        .map(|w| {
            (0..len)
                .map(|i| ((w * len + i) as f32 * 0.37).sin())
                .collect()
        })
        .collect()
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_vs_threaded/ring_all_reduce");
    for len in [256usize, 4096] {
        let bufs = inputs(len);
        g.bench_with_input(BenchmarkId::new("threaded", len), &bufs, |b, bufs| {
            b.iter(|| {
                let bufs = bufs.clone();
                let out = ThreadedCluster::<f32>::new(N).run(move |rank, mut links| {
                    ring_all_reduce_worker(&mut links, bufs[rank].clone(), &F32Sum, 4.0)
                        .expect("healthy threaded ring")
                        .0
                });
                black_box(out.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("tcp", len), &bufs, |b, bufs| {
            b.iter(|| {
                let bufs = bufs.clone();
                let out = TcpCluster::run(N, move |rank, links: &mut _| {
                    ring_all_reduce_worker(links, bufs[rank].clone(), &F32Sum, 4.0)
                        .expect("healthy tcp ring")
                        .0
                });
                black_box(out.len())
            })
        });
    }
    g.finish();
}

fn bench_mesh_formation(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_vs_threaded/mesh_formation");
    // Rendezvous + n·(n−1) connection mesh + one tiny round: the fixed cost
    // of forming (or re-forming, after a membership change) the fleet.
    g.bench_function("tcp_form_and_round", |b| {
        b.iter(|| {
            let out = TcpCluster::run(N, |rank, links: &mut _| {
                ring_all_reduce_worker(links, vec![rank as f32; 8], &F32Sum, 4.0)
                    .expect("healthy tcp ring")
                    .0
            });
            black_box(out.len())
        })
    });
    g.bench_function("threaded_form_and_round", |b| {
        b.iter(|| {
            let out = ThreadedCluster::<f32>::new(N).run(|rank, mut links| {
                ring_all_reduce_worker(&mut links, vec![rank as f32; 8], &F32Sum, 4.0)
                    .expect("healthy threaded ring")
                    .0
            });
            black_box(out.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ring, bench_mesh_formation);
criterion_main!(benches);
