//! Table 7 — vNMSE of aggregated gradients: TopK vs TopKC at equal
//! bits-per-coordinate (BERT task).
//!
//! Expected shape: TopKC's error is lower at every b because the index-free
//! encoding lets it aggregate more coordinates (`J' > K`) for the same
//! budget, and spatial locality makes chunk selection nearly as good as
//! exact top-k selection.
//!
//! Primary source: the BERT-calibrated synthetic gradient model (the Zipf
//! exponent is fitted to the paper's *TopK* row only; the TopKC row is then
//! a prediction). Supplementary: live BertMini gradients (ordering only).

use gcs_bench::{expect, header, measured_only, paper_vs};
use gcs_core::scheme::{CompressionScheme, RoundContext};
use gcs_core::schemes::{topk::TopK, topkc::TopKC};
use gcs_core::synthetic::GradientModel;
use gcs_ddp::{Task, Trainer};
use gcs_tensor::rng::SharedSeed;
use gcs_tensor::vector::{mean, vnmse};

fn synthetic_vnmse(scheme: &mut dyn CompressionScheme, rounds: u64) -> f64 {
    let model = GradientModel::bert_like(1 << 18);
    let mut sum = 0.0;
    for r in 0..rounds {
        let grads = model.generate(4, SharedSeed::new(7000 + r));
        let exact = mean(&grads);
        let out = scheme.aggregate_round(&grads, &RoundContext::new(77, r));
        sum += vnmse(&out.mean_estimate, &exact);
    }
    sum / rounds as f64
}

fn main() {
    header(
        "Table 7",
        "vNMSE of aggregated gradients: TopK vs TopKC (BERT)",
    );
    let paper = [
        (0.5, 0.303, 0.273),
        (2.0, 0.185, 0.142),
        (8.0, 0.0865, 0.0280),
    ];

    println!("primary: BERT-calibrated synthetic gradients");
    let mut topkc_wins = true;
    for (b, p_topk, p_topkc) in paper {
        let c = if b < 1.0 { 128 } else { 64 };
        let mut topk = TopK::with_bits(b, 4, false);
        let mut topkc = TopKC::with_bits(b, c, 4, false);
        let v_topk = synthetic_vnmse(&mut topk, 5);
        let v_topkc = synthetic_vnmse(&mut topkc, 5);
        paper_vs(&format!("TopK  b={b}"), p_topk, v_topk);
        paper_vs(&format!("TopKC b={b}"), p_topkc, v_topkc);
        topkc_wins &= v_topkc < v_topk;
    }
    expect("TopKC has lower vNMSE than TopK at every b", topkc_wins);

    println!("\nsupplementary: live BertMini training gradients");
    let task = Task::Bert;
    let cfg = task.trainer_config();
    for (b, _, _) in paper {
        let c = if b < 1.0 { 128 } else { 64 };
        let trainer = Trainer::new(cfg.clone());
        let mut model = task.build_model(cfg.seed);
        let mut topk = TopK::with_bits(b, cfg.n_workers, false);
        let v_topk = trainer.measure_vnmse(model.as_mut(), &mut topk, 25);
        let mut model = task.build_model(cfg.seed);
        let mut topkc = TopKC::with_bits(b, c, cfg.n_workers, false);
        let v_topkc = trainer.measure_vnmse(model.as_mut(), &mut topkc, 25);
        measured_only(&format!("TopK  b={b} (live)"), v_topk);
        measured_only(&format!("TopKC b={b} (live)"), v_topkc);
    }
    println!("(live mini-model gradients are far more concentrated than BERT-large's;");
    println!(" absolute levels differ, see EXPERIMENTS.md)");
}
