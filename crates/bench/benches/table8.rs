//! Table 8 — THC throughput: saturation at b=q ∈ {2,4} under
//! {full, partial, no} rotation, vs the widened baseline (b=8, q=4).
//!
//! Expected shapes: (1) less rotation → higher throughput (partial recovers
//! most of no-rotation's speed); (2) saturation at b=q=4 clearly beats the
//! b=8 widened baseline (half the traffic).

use gcs_bench::{expect, header, paper_vs};
use gcs_ddp::{experiments::table8_schemes, ThroughputModel};
use gcs_gpusim::{ModelProfile, Precision};

fn main() {
    header(
        "Table 8",
        "THC throughput (rounds/s): rotation modes x saturation vs widened",
    );
    let tm = ThroughputModel::paper_testbed();
    // Paper rows in the same order as experiments::table8_schemes():
    // Sat q=2 (full, partial, none), Sat q=4 (full, partial, none), BL b=8.
    let paper_bert = [5.59, 5.75, 5.84, 5.37, 5.47, 5.54, 4.32];
    let paper_vgg = [19.9, 21.5, 22.7, 18.4, 19.4, 20.3, 14.2];
    for (model, paper) in [
        (ModelProfile::bert_large(), paper_bert),
        (ModelProfile::vgg19(), paper_vgg),
    ] {
        println!("\n{}:", model.name);
        let schemes = table8_schemes(4);
        let mut rates = Vec::new();
        for ((label, scheme), p) in schemes.iter().zip(paper) {
            let r = tm.rounds_per_sec(scheme, &model, Precision::Tf32);
            paper_vs(&format!("  {label}"), p, r);
            rates.push(r);
        }
        // Shape checks.
        expect(
            "no rotation > partial > full rotation (q=4)",
            rates[5] > rates[4] && rates[4] > rates[3],
        );
        expect(
            "saturation (b=q=4) beats the widened baseline (b=8)",
            rates[3] > rates[6],
        );
        expect(
            "q=2 is faster than q=4 at matching rotation",
            rates[0] > rates[3],
        );
    }
}
