//! Figure 1 — TTA (rolling averaged) of TopKC vs TopK vs the FP16/FP32
//! baselines, on both tasks.
//!
//! Reproduction protocol (see DESIGN.md): convergence is *measured* by
//! training the mini models under the real compression operators; the time
//! axis is *modelled* at paper scale via the calibrated throughput model.
//! Expected shapes: FP16 dominates FP32; TopKC's curves dominate TopK's;
//! b=0.5 trades final accuracy for speed (visibly worse converged metric
//! than b=8 on the language task).
//!
//! Set `QUICK=1` to shrink the run for smoke testing.

use gcs_bench::{expect, header, print_curves_csv, print_tta_summary, write_curves_csv};
use gcs_core::metrics::TtaCurve;
use gcs_ddp::{experiments::figure1_plans, Task, Trainer};

fn run_task(task: Task, quick: bool) -> Vec<TtaCurve> {
    let mut cfg = task.trainer_config();
    if quick {
        cfg.max_rounds = 80;
    }
    let mut curves = Vec::new();
    for mut plan in figure1_plans(task, cfg.n_workers) {
        let mut model = task.build_model(cfg.seed);
        let trainer = Trainer::new(cfg.clone());
        let log = trainer.train(model.as_mut(), plan.scheme.as_mut(), plan.step_seconds);
        let mut smoothed = log.curve.rolling_average(task.rolling_window());
        smoothed.label = plan.label.clone();
        eprintln!(
            "  {}: {} rounds, step {:.3}s, vNMSE {:.4}, final {:.4}",
            plan.label, log.rounds, plan.step_seconds, log.mean_vnmse, log.final_metric
        );
        curves.push(smoothed);
    }
    curves
}

fn find<'a>(curves: &'a [TtaCurve], tag: &str) -> &'a TtaCurve {
    curves
        .iter()
        .find(|c| c.label.contains(tag))
        .unwrap_or_else(|| panic!("missing curve {tag}"))
}

fn main() {
    let quick = std::env::var("QUICK").is_ok();
    header(
        "Figure 1",
        "TTA of TopKC vs TopK vs FP16/FP32 baselines (both tasks)",
    );
    for task in [Task::Bert, Task::Vgg] {
        println!("\n### task: {task:?}");
        let curves = run_task(task, quick);
        let (targets, name): (Vec<f64>, &str) = match task {
            Task::Bert => (vec![60.0, 30.0, 24.0], "perplexity"),
            Task::Vgg => (vec![0.5, 0.7, 0.85], "top-1 accuracy"),
        };
        print_tta_summary(&curves, &targets, name);
        print_curves_csv(&curves);
        write_curves_csv(&format!("figure1_{task:?}"), &curves);

        // Shape expectations.
        let fp16 = find(&curves, "FP16");
        let fp32 = find(&curves, "FP32");
        let mid_target = targets[1];
        let tta = |c: &TtaCurve| c.time_to_target(mid_target).unwrap_or(f64::INFINITY);
        expect(
            "FP16 baseline reaches the mid target before FP32",
            tta(fp16) <= tta(fp32),
        );
        for b in ["0.5", "2", "8"] {
            let topk = find(&curves, &format!("TopK(b={b}"));
            let topkc = find(&curves, &format!("TopKC(b={b}"));
            expect(
                &format!("TopKC b={b} reaches the mid target no later than TopK"),
                tta(topkc) <= tta(topk) * 1.05,
            );
        }
        if task == Task::Bert && !quick {
            let low = find(&curves, "TopKC(b=0.5");
            let high = find(&curves, "TopKC(b=8");
            let worse_final = match task {
                Task::Bert => low.best_metric() >= high.best_metric(),
                Task::Vgg => low.best_metric() <= high.best_metric(),
            };
            expect(
                "b=0.5 converges to a worse final metric than b=8 (throughput is misleading)",
                worse_final,
            );
        }
    }
}
