//! Overhead contract of the `gcs-trace` probes (the crate's §"Overhead
//! contract"): with recording **disabled** — the default state every
//! experiment runs in — the instrumentation baked into the schemes and
//! collectives must cost well under 2% of an aggregation round.
//!
//! Method: (1) time a disabled span+counter probe pair in isolation, (2)
//! count how many probes one real aggregation round actually executes (by
//! recording one round), (3) time the round with recording disabled. The
//! disabled overhead bound is `probes × probe_cost / round_time`. The
//! enabled cost is also reported, un-asserted, for context.

use gcs_bench::{expect, header, measured_only};
use gcs_core::scheme::{CompressionScheme, RoundContext};
use gcs_core::schemes::topkc::TopKC;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn grads(n: usize, d: usize) -> Vec<Vec<f32>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// Median seconds per call of `f` over `samples` timed batches.
fn time_median(samples: usize, iters: u64, mut f: impl FnMut()) -> f64 {
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    per_call[per_call.len() / 2]
}

fn main() {
    header(
        "trace overhead",
        "cost of gcs-trace probes around a TopKC aggregation round",
    );
    let n = 4;
    let d = 1 << 16;
    let g = grads(n, d);
    let ctx = RoundContext::new(7, 0);

    // How many probes does one round execute? Record one and count.
    let mut probe_counter_scheme = TopKC::paper_config(2.0, n);
    let t = gcs_trace::with_recording(|| {
        black_box(probe_counter_scheme.aggregate_round(&g, &ctx));
    });
    let probes = (t.spans.len() + t.counters.len()) as f64;
    measured_only("probes per aggregation round", probes);

    // Disabled probe cost: span guard + counter, recording off.
    assert!(!gcs_trace::enabled(), "recording must be off here");
    let probe_ns = time_median(9, 1_000_000, || {
        let _s = gcs_trace::span(gcs_trace::Phase::Compress, "bench_probe");
        gcs_trace::counter("bench_counter", black_box(1.0));
    }) * 1e9;
    measured_only("disabled span+counter pair (ns)", probe_ns);

    // Round time with recording disabled (the default experiment state).
    let mut scheme = TopKC::paper_config(2.0, n);
    let disabled_s = time_median(7, 3, || {
        black_box(scheme.aggregate_round(&g, &ctx));
    });
    measured_only("round, recording disabled (ms)", disabled_s * 1e3);

    // Round time with recording enabled, for context (events discarded).
    let mut scheme_on = TopKC::paper_config(2.0, n);
    gcs_trace::enable();
    let enabled_s = time_median(7, 3, || {
        black_box(scheme_on.aggregate_round(&g, &ctx));
    });
    gcs_trace::disable();
    gcs_trace::clear();
    measured_only("round, recording enabled  (ms)", enabled_s * 1e3);

    // The contract: disabled probes are an immeasurably small fraction of a
    // round. Bound it generously — per-probe cost times the probe count,
    // each probe assumed to pay the full measured pair cost.
    let overhead = probes * probe_ns * 1e-9 / disabled_s;
    measured_only("disabled overhead bound (%)", overhead * 100.0);
    expect(
        "disabled tracing costs < 2% of an aggregation round",
        overhead < 0.02,
    );
    expect(
        "enabled recording stays moderate (< 25% on this round)",
        enabled_s < disabled_s * 1.25,
    );
}
