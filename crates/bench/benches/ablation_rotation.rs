//! Ablation — partial-rotation block size vs GPU shared memory.
//!
//! The paper picks the largest `l'` with `2^{l'}` fitting in shared memory.
//! This sweep shows why: rotation cost is flat while blocks fit in one
//! kernel pass (any `l' <= 13` on the A100), then jumps as more global-
//! memory passes are needed; quantization error improves only mildly beyond
//! moderate block sizes.

use gcs_bench::{expect, header, measured_only};
use gcs_core::scheme::{CompressionScheme, RoundContext};
use gcs_core::schemes::thc::{Thc, ThcAggregation};
use gcs_gpusim::{ops, DeviceSpec};
use gcs_tensor::hadamard::RotationMode;
use gcs_tensor::vector::{mean, vnmse};
use rand::{Rng, SeedableRng};

fn main() {
    header(
        "Ablation: rotation block size",
        "THC cost and error vs partial-rotation l'",
    );
    let device = DeviceSpec::a100();
    let d_paper: u64 = 1 << 29; // BERT-scale padded dimension
    println!(
        "A100 shared memory fits 2^{} f32 values per block\n",
        device.shared_mem_block_log2()
    );

    // Error side: measured on heavy-tailed synthetic gradients.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let d = 1 << 14;
    let grads: Vec<Vec<f32>> = (0..4)
        .map(|_| {
            (0..d)
                .map(|_| {
                    let u: f32 = rng.gen_range(-1.0..1.0);
                    u * u * u * 3.0 // heavy-ish tail
                })
                .collect()
        })
        .collect();
    let exact = mean(&grads);

    let mut cost_at_shared = 0.0;
    let mut cost_above_shared = 0.0;
    for l in [6usize, 8, 10, 13, 16, 20, 29] {
        let mode = if l >= 29 {
            RotationMode::Full
        } else {
            RotationMode::Partial { block_log2: l }
        };
        let kernel_cost = ops::fwht(d_paper, mode.iterations(d_paper as usize), &device);
        let secs = 2.0 * kernel_cost.seconds(&device);
        let mut scheme = Thc::new(4, mode, ThcAggregation::Saturating, 4);
        let mut err = 0.0;
        for r in 0..5 {
            let out = scheme.aggregate_round(&grads, &RoundContext::new(5, r));
            err += vnmse(&out.mean_estimate, &exact);
        }
        err /= 5.0;
        measured_only(
            &format!("l'={l:<3} rotation ms (paper-scale d)"),
            secs * 1e3,
        );
        measured_only(&format!("l'={l:<3} vNMSE (q=4, synthetic)"), err);
        if l == 13 {
            cost_at_shared = secs;
        }
        if l == 16 {
            cost_above_shared = secs;
        }
    }
    expect(
        "rotation cost jumps once blocks exceed shared memory (l'=16 vs 13)",
        cost_above_shared > 1.5 * cost_at_shared,
    );
}
