//! Ablation — TopKC's chunk size C at a fixed bit budget (b=2, BERT task).
//!
//! The trade-off the paper's C choices (64 and 128) balance: larger C
//! spends less of the budget on the norm round (16/C bits) so more
//! coordinates fit (`J' = d(b/16 − 1/C)` grows), but selection gets coarser
//! (whole chunks, less locality resolution). Expect a U-shaped vNMSE curve.

use gcs_bench::{header, measured_only};
use gcs_core::schemes::topkc::TopKC;
use gcs_ddp::{Task, ThroughputModel, Trainer};
use gcs_gpusim::Precision;

fn main() {
    header(
        "Ablation: chunk size",
        "TopKC vNMSE and throughput vs C at b=2 (BERT)",
    );
    let task = Task::Bert;
    let cfg = task.trainer_config();
    let tm = ThroughputModel::paper_testbed();
    let profile = task.profile();
    let mut best: Option<(usize, f64)> = None;
    for c in [16usize, 32, 64, 128, 256, 512] {
        let mut model = task.build_model(cfg.seed);
        let mut scheme = TopKC::with_bits(2.0, c, cfg.n_workers, true);
        let v = Trainer::new(cfg.clone()).measure_vnmse(model.as_mut(), &mut scheme, 20);
        let thr = tm.rounds_per_sec(&scheme, &profile, Precision::Tf32);
        measured_only(&format!("C={c:<4} vNMSE"), v);
        measured_only(&format!("C={c:<4} rounds/s"), thr);
        if best.map(|(_, bv)| v < bv).unwrap_or(true) {
            best = Some((c, v));
        }
    }
    if let Some((c, v)) = best {
        println!("\nbest vNMSE at C={c} ({v:.4}); paper picks C=64 for b=2");
    }
}
