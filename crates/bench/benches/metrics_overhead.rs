//! Overhead contract of the `gcs-metrics` probes (PR 3's telemetry layer):
//! with capture **disabled** — the default state every experiment runs in —
//! the counters, histograms and timers baked into the schemes, collectives
//! and trainer must cost well under 2% of an aggregation round.
//!
//! Method mirrors `trace_overhead`: (1) time a disabled
//! counter+observe+timer probe trio in isolation, (2) count how many metric
//! events one real aggregation round actually emits (by capturing one), (3)
//! time the round with capture disabled. The disabled overhead bound is
//! `probes × probe_cost / round_time`. The enabled cost is also reported,
//! un-asserted, for context.

use gcs_bench::{expect, header, measured_only};
use gcs_core::scheme::{CompressionScheme, RoundContext};
use gcs_core::schemes::topkc::TopKC;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn grads(n: usize, d: usize) -> Vec<Vec<f32>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// Median seconds per call of `f` over `samples` timed batches.
fn time_median(samples: usize, iters: u64, mut f: impl FnMut()) -> f64 {
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    per_call[per_call.len() / 2]
}

fn main() {
    header(
        "metrics overhead",
        "cost of gcs-metrics probes around a TopKC aggregation round",
    );
    let n = 4;
    let d = 1 << 16;
    let g = grads(n, d);
    let ctx = RoundContext::new(7, 0);

    // How many metric events does one round emit? Capture one and count.
    // Histogram samples cover every `observe` and `timer`; each `counter_add`
    // site in the collectives pairs 1:1 with a wire-byte observe, so doubling
    // the histogram events bounds them generously. Series points (trainer
    // loss/bits curves) don't fire inside `aggregate_round` but are counted
    // anyway in case a scheme ever pushes one.
    let mut probe_counter_scheme = TopKC::paper_config(2.0, n);
    let ((), reg) = gcs_metrics::with_capture(|| {
        black_box(probe_counter_scheme.aggregate_round(&g, &ctx));
    });
    let hist_events: u64 = reg.hists().map(|(_, h)| h.count()).sum();
    let series_events: u64 = reg.all_series().map(|(_, s)| s.len() as u64).sum();
    let probes = (2 * hist_events + series_events) as f64;
    measured_only("metric events per aggregation round", probes);

    // Disabled probe cost: counter + observe + timer trio, capture off.
    assert!(!gcs_metrics::enabled(), "capture must be off here");
    let probe_ns = time_median(9, 1_000_000, || {
        gcs_metrics::counter_add("bench/probe_total", black_box(1.0));
        gcs_metrics::observe("bench/probe_hist", black_box(1.0));
        let _t = gcs_metrics::timer("bench/probe_timer_ns");
    }) * 1e9;
    measured_only("disabled counter+observe+timer trio (ns)", probe_ns);

    // Round time with capture disabled (the default experiment state).
    let mut scheme = TopKC::paper_config(2.0, n);
    let disabled_s = time_median(7, 3, || {
        black_box(scheme.aggregate_round(&g, &ctx));
    });
    measured_only("round, capture disabled (ms)", disabled_s * 1e3);

    // Round time with capture enabled, for context (registry discarded).
    let mut scheme_on = TopKC::paper_config(2.0, n);
    let enabled_s = gcs_metrics::with_capture(|| {
        time_median(7, 3, || {
            black_box(scheme_on.aggregate_round(&g, &ctx));
        })
    })
    .0;
    measured_only("round, capture enabled  (ms)", enabled_s * 1e3);

    // The contract: disabled probes are an immeasurably small fraction of a
    // round. Bound it generously — per-event cost times the (doubled) event
    // count, each event assumed to pay the full measured trio cost.
    let overhead = probes * probe_ns * 1e-9 / disabled_s;
    measured_only("disabled overhead bound (%)", overhead * 100.0);
    expect(
        "disabled metrics cost < 2% of an aggregation round",
        overhead < 0.02,
    );
    expect(
        "enabled capture stays moderate (< 25% on this round)",
        enabled_s < disabled_s * 1.25,
    );
}
