//! Table 1 — assessment of prior gradient compression systems.
//!
//! A static survey table; regenerated from the encoded data so the harness
//! covers every numbered exhibit in the paper.

use gcs_bench::header;
use gcs_core::survey::{render_table1, table1, Cell};

fn main() {
    header(
        "Table 1",
        "Assessment of prior gradient compression systems",
    );
    print!("{}", render_table1());
    let rows = table1();
    let no_fp16 = rows.iter().filter(|r| r.fp16_baseline == Cell::No).count();
    let covered: u32 = rows.iter().map(|r| r.e2e_tasks.0).sum();
    let total: u32 = rows.iter().map(|r| r.e2e_tasks.1).sum();
    println!();
    println!("systems not comparing against FP16: {no_fp16}/8 (paper: 8/8)");
    println!("tasks with end-to-end evaluation:   {covered}/{total} (paper: 20/39)");
}
