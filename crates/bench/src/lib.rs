//! Shared reporting helpers for the per-table/figure bench targets.
//!
//! Every bench target prints a header, rows comparing the paper's reported
//! value with our measured value, and (for figures) a CSV block with the
//! full TTA curves so they can be plotted externally.

use gcs_core::metrics::TtaCurve;

/// Prints the standard experiment header.
pub fn header(id: &str, what: &str) {
    println!();
    println!("================================================================");
    println!("{id} — {what}");
    println!("================================================================");
}

/// Prints one paper-vs-measured row with a deviation column.
pub fn paper_vs(label: &str, paper: f64, measured: f64) {
    let dev = if paper != 0.0 {
        format!("{:+6.1}%", (measured - paper) / paper * 100.0)
    } else {
        "   n/a".to_string()
    };
    println!("{label:<44} paper {paper:>9.4}   ours {measured:>9.4}   dev {dev}");
}

/// Prints a measured-only row (no paper-reported number exists).
pub fn measured_only(label: &str, measured: f64) {
    println!("{label:<44} paper     —       ours {measured:>9.4}");
}

/// Prints a qualitative expectation with a pass/fail mark.
pub fn expect(label: &str, holds: bool) {
    println!("[{}] {label}", if holds { "ok" } else { "MISS" });
}

/// Prints a set of smoothed TTA curves as CSV (`label,time_s,metric`).
pub fn print_curves_csv(curves: &[TtaCurve]) {
    println!();
    println!("--- TTA curves (CSV: label,time_s,metric) ---");
    for c in curves {
        for &(t, m) in &c.points {
            println!("{},{:.2},{:.5}", c.label, t, m);
        }
    }
}

/// Summarizes each curve's best metric and time-to-target table.
pub fn print_tta_summary(curves: &[TtaCurve], targets: &[f64], metric_name: &str) {
    println!();
    println!("--- time to {metric_name} target (seconds; '—' = never reached) ---");
    print!("{:<28}", "scheme");
    for t in targets {
        print!("  @{t:<8.3}");
    }
    println!("  best");
    for c in curves {
        print!("{:<28}", c.label);
        for &t in targets {
            match c.time_to_target(t) {
                Some(s) => print!("  {s:<9.1}"),
                None => print!("  {:<9}", "—"),
            }
        }
        println!("  {:.4}", c.best_metric().unwrap_or(f64::NAN));
    }
}

/// Formats rounds/second with two decimals.
pub fn fmt_rps(v: f64) -> String {
    format!("{v:.2}")
}

/// Writes a set of curves to `target/experiment-results/<name>.csv`
/// (header `label,time_s,metric`) so figures can be re-plotted without
/// re-running training. Errors are reported but non-fatal — benches must
/// not fail because of a read-only filesystem.
pub fn write_curves_csv(name: &str, curves: &[TtaCurve]) {
    let dir = std::path::Path::new("target").join("experiment-results");
    let path = dir.join(format!("{name}.csv"));
    let mut body = String::from("label,time_s,metric\n");
    for c in curves {
        body.push_str(&c.to_csv());
    }
    let result = std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, body));
    match result {
        Ok(()) => println!("(curves written to {})", path.display()),
        Err(e) => eprintln!("(could not write {}: {e})", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::metrics::Direction;

    #[test]
    fn helpers_do_not_panic() {
        header("Table X", "smoke test");
        paper_vs("row", 1.0, 1.1);
        paper_vs("zero paper", 0.0, 1.0);
        measured_only("m", 2.0);
        expect("expectation", true);
        let mut c = TtaCurve::new("s", Direction::HigherIsBetter);
        c.push(1.0, 0.5);
        print_curves_csv(&[c.clone()]);
        print_tta_summary(&[c.clone()], &[0.4, 0.9], "accuracy");
        write_curves_csv("smoke_test", &[c]);
        assert_eq!(fmt_rps(1.234), "1.23");
    }
}
