//! Machine-readable bench trajectory: emits a `BENCH_<id>.json` artifact
//! covering the Table 4/8/9 kernel suites (per-scheme aggregation-round
//! latency quantiles + throughput), the six collectives (wire bytes +
//! latency tails), and the zero-allocation hotpath rows (steady-state heap
//! events per round, measured by a counting global allocator, plus
//! pooled-vs-unpooled throughput, and — schema v4 — a `flat` subsection
//! timing a whole-model single-call collective round over a real model's
//! arena-backed flat gradient against the pre-arena per-layer storage
//! discipline), a `faults` section summarizing two canned chaos runs
//! through the fault-injecting transport (one recoverable degraded plan,
//! one crash plan), and — schema v5 — a `transport` section racing the
//! socket mesh (`TcpCluster`) against the in-process channel transport
//! (`ThreadedCluster`) on the same ring-all-reduce worker body (latency
//! tails, wire bytes, join/reconnect counters, a bitwise-identity flag)
//! plus the nullable first/final metrics of a quick training run, and —
//! schema v6 — a `fleet_observability` section exercising the telemetry
//! plane end-to-end in-process (four shippers against a live collector:
//! clock-handshake offsets, per-round ship latency vs a training round, a
//! real HTTP scrape, merged-trace span counts, flight-recorder depth, and
//! membership-event accounting, with the merged Chrome trace written
//! alongside the artifact), and — schema v7 — a `transport.pipeline`
//! subsection characterizing the zero-copy chunked TCP data path:
//! steady-state per-round latency tails on a *persistent* mesh across a
//! message-size sweep, the measured heap-event count of one warm round
//! (summed over all ranks), and the speedup of a warm pipelined round
//! over the cold-cluster stop-and-wait methodology that the pre-v7
//! `tcp_ring_p50_ns` trajectory was recorded with (the cold baseline is
//! raced once per invocation and memoized for every section that consults
//! it), and — schema v8 — an `aggd` section driving an in-process
//! multi-tenant aggregation daemon with the `gcs_loadgen` open-loop sweep:
//! one capacity row per offered tenant count (round-latency tails,
//! completed/reject/failure counts, a sustained flag), the largest
//! sustained stream count, and a four-family daemon-vs-standalone bitwise
//! conformance flag — alongside the other two exporters — a Prometheus
//! text-format snapshot and a JSONL time-series dump — of everything the
//! run captured into the `gcs-metrics` registry.
//!
//! Usage:
//!   cargo run -p gcs-bench --release --bin bench_report -- [--fast]
//!       [--id PR10] [--out path.json]
//!   cargo run -p gcs-bench --release --bin bench_report -- --validate path.json
//!
//! `--fast` shrinks the gradient dimension and round count for CI; the
//! schema and every field are identical to a full run. `--validate` parses
//! an existing artifact and checks it against the schema (field presence +
//! finite values), exiting non-zero on violation.

use gcs_alloc::{measure, CountingAlloc};
use gcs_collectives::{
    all_gather, broadcast, parameter_server, reduce_scatter, ring_all_reduce, ring_all_reduce_into,
    tree_all_reduce, F32Sum, RingScratch, Traffic,
};
use gcs_core::scheme::{AggregationOutcome, CompressionScheme, RoundContext};
use gcs_core::schemes::baseline::PrecisionBaseline;
use gcs_core::schemes::literature::Qsgd;
use gcs_core::schemes::powersgd::PowerSgd;
use gcs_core::schemes::thc::Thc;
use gcs_core::schemes::topk::TopK;
use gcs_core::schemes::topkc::TopKC;
use gcs_core::schemes::topkc_q::TopKCQ;
use gcs_metrics::{validate_bench_json, Histogram, Json, Registry, SCHEMA_VERSION};
use gcs_nn::{Model, VggMini};
use gcs_tensor::bitpack::PackedIntVec;
use gcs_tensor::parallel::with_threads;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::time::Instant;

// The counting allocator makes `allocs_per_round` a measured fact rather
// than a claim: this binary pays one counter bump per heap event and in
// exchange the hotpath section reports real steady-state allocation counts.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Cli {
    fast: bool,
    id: String,
    out: Option<PathBuf>,
    validate: Option<PathBuf>,
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        fast: false,
        id: "PR10".to_string(),
        out: None,
        validate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => cli.fast = true,
            "--id" => cli.id = args.next().expect("--id needs a value"),
            "--out" => cli.out = Some(PathBuf::from(args.next().expect("--out needs a value"))),
            "--validate" => {
                cli.validate = Some(PathBuf::from(args.next().expect("--validate needs a path")))
            }
            other => {
                eprintln!("bench_report: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    cli
}

fn grads(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// Normalized MSE of the aggregated estimate against the exact mean:
/// `||est − mean||² / ||mean||²`. `None` when the exact mean is ~zero.
fn vnmse(est: &[f32], grads: &[Vec<f32>]) -> Option<f64> {
    let n = grads.len() as f64;
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (i, &e) in est.iter().enumerate() {
        let mean: f64 = grads.iter().map(|g| g[i] as f64).sum::<f64>() / n;
        num += (e as f64 - mean).powi(2);
        den += mean * mean;
    }
    (den > 0.0).then(|| num / den)
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One Table 4/8-style kernel row: run `rounds` aggregation rounds of the
/// scheme, timing each round wall-clock into a metrics histogram (so p50/p99
/// use the same log-bucketed quantiles the telemetry layer reports). Also
/// merges whatever the capture-gated probes recorded into `merged`.
fn kernel_entry(
    family: &str,
    scheme: &mut dyn CompressionScheme,
    n: usize,
    d: usize,
    rounds: u64,
    merged: &mut Registry,
) -> Json {
    let g = grads(n, d, 42);
    let mut round_ns = Histogram::new();
    let mut last = None;
    let ((), reg) = gcs_metrics::with_capture(|| {
        for r in 0..rounds {
            let ctx = RoundContext::new(7, r);
            let t0 = Instant::now();
            let out = scheme.aggregate_round(&g, &ctx);
            round_ns.record(t0.elapsed().as_nanos() as f64);
            last = Some(out);
        }
    });
    merged.merge(&reg);
    let last = last.expect("at least one round");
    let mean_s = round_ns.mean().unwrap_or(f64::NAN) * 1e-9;
    let err = vnmse(&last.mean_estimate, &g);
    println!(
        "  kernel {family:<14} p50 {:>11.0} ns  p99 {:>11.0} ns  {:>8.2e} elems/s",
        round_ns.p50().unwrap_or(f64::NAN),
        round_ns.p99().unwrap_or(f64::NAN),
        d as f64 / mean_s
    );
    obj(vec![
        ("name", Json::Str(family.to_string())),
        ("throughput_elems_per_s", Json::Num(d as f64 / mean_s)),
        ("p50_ns", Json::Num(round_ns.p50().unwrap_or(f64::NAN))),
        ("p99_ns", Json::Num(round_ns.p99().unwrap_or(f64::NAN))),
        ("bits_per_coord", Json::Num(last.bits_per_coord(d as u64))),
        ("vnmse", err.map(Json::Num).unwrap_or(Json::Null)),
    ])
}

/// One collective row: `iters` invocations on fresh f32 buffers, exact wire
/// bytes from the returned `Traffic`, latency tails from wall-clock timing.
fn collective_entry(
    name: &str,
    n: usize,
    len: usize,
    iters: u64,
    merged: &mut Registry,
    run: impl Fn(&mut [Vec<f32>]) -> u64,
) -> Json {
    let mut lat_ns = Histogram::new();
    let mut wire = 0u64;
    let ((), reg) = gcs_metrics::with_capture(|| {
        for i in 0..iters {
            let mut bufs = grads(n, len, 100 + i);
            let t0 = Instant::now();
            wire += run(&mut bufs);
            lat_ns.record(t0.elapsed().as_nanos() as f64);
        }
    });
    merged.merge(&reg);
    println!(
        "  collective {name:<18} wire {wire:>12} B  p50 {:>9.0} ns  p99 {:>9.0} ns",
        lat_ns.p50().unwrap_or(f64::NAN),
        lat_ns.p99().unwrap_or(f64::NAN),
    );
    obj(vec![
        ("name", Json::Str(name.to_string())),
        ("wire_bytes", Json::Num(wire as f64)),
        ("p50_ns", Json::Num(lat_ns.p50().unwrap_or(f64::NAN))),
        ("p99_ns", Json::Num(lat_ns.p99().unwrap_or(f64::NAN))),
        ("count", Json::Num(lat_ns.count() as f64)),
    ])
}

/// Static gauge names for one hotpath row (the metrics registry keys by
/// `&'static str`, so each measured path gets its own trio).
struct HotGauges {
    allocs: &'static str,
    pooled: &'static str,
    unpooled: &'static str,
}

/// One zero-allocation hotpath row: steady-state heap events per round
/// (warm up twice, measure the third round on this thread under
/// `with_threads(1)` — the counting allocator is thread-local), then warm
/// pooled vs cold unpooled throughput over `rounds` timed rounds. The
/// numbers are exported both into the JSON artifact and as gauges through
/// the `gcs-metrics` registry.
fn hotpath_entry(
    name: &str,
    gauges: HotGauges,
    elems: usize,
    rounds: u64,
    merged: &mut Registry,
    mut pooled_round: impl FnMut(u64),
    mut unpooled_round: impl FnMut(u64),
) -> Json {
    let allocs = with_threads(1, || {
        pooled_round(0);
        pooled_round(1);
        let ((), stats) = measure(|| pooled_round(2));
        stats.total_events()
    });
    let t0 = Instant::now();
    for r in 0..rounds {
        pooled_round(3 + r);
    }
    let pooled_tp = (elems as f64 * rounds as f64) / t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for r in 0..rounds {
        unpooled_round(r);
    }
    let unpooled_tp = (elems as f64 * rounds as f64) / t0.elapsed().as_secs_f64();
    let ((), reg) = gcs_metrics::with_capture(|| {
        gcs_metrics::gauge_set(gauges.allocs, allocs as f64);
        gcs_metrics::gauge_set(gauges.pooled, pooled_tp);
        gcs_metrics::gauge_set(gauges.unpooled, unpooled_tp);
    });
    merged.merge(&reg);
    println!(
        "  hotpath {name:<16} allocs/round {allocs:>4}  pooled {pooled_tp:>9.2e} elems/s  unpooled {unpooled_tp:>9.2e} elems/s"
    );
    obj(vec![
        ("name", Json::Str(name.to_string())),
        ("allocs_per_round", Json::Num(allocs as f64)),
        ("pooled_elems_per_s", Json::Num(pooled_tp)),
        ("unpooled_elems_per_s", Json::Num(unpooled_tp)),
    ])
}

/// Hotpath row for a compression scheme: warm instance + reused outcome
/// through `aggregate_round_into` vs a cold instance per round.
fn scheme_hotpath(
    name: &str,
    gauges: HotGauges,
    make: impl Fn() -> Box<dyn CompressionScheme>,
    n: usize,
    d: usize,
    rounds: u64,
    merged: &mut Registry,
) -> Json {
    let g = grads(n, d, 42);
    let mut warm = make();
    let mut out = AggregationOutcome::default();
    hotpath_entry(
        name,
        gauges,
        d,
        rounds,
        merged,
        |r| warm.aggregate_round_into(&g, &RoundContext::new(11, r), &mut out),
        |r| {
            make().aggregate_round(&g, &RoundContext::new(11, r));
        },
    )
}

/// The cold-cluster TCP ring baseline: registry + mesh spawned from
/// scratch on every iteration (the stop-and-wait methodology the pre-v7
/// `tcp_ring_p50_ns` trajectory was recorded with). Two sections consult
/// it — the transport row and the pipeline's `speedup_vs_pr7` denominator
/// — so it is memoized: one invocation races the cold cluster exactly
/// once, however many callers ask.
struct ColdTcp {
    p50_ns: f64,
    p99_ns: f64,
    wire_bytes: f64,
    joins: f64,
    reconnects: f64,
    out: Vec<Vec<f32>>,
    reg: Registry,
}

fn cold_tcp_baseline(n: usize, len: usize, iters: u64) -> &'static ColdTcp {
    use gcs_collectives::tcp::TcpCluster;
    use gcs_collectives::transport::ring_all_reduce_worker;
    use std::sync::OnceLock;
    static COLD: OnceLock<ColdTcp> = OnceLock::new();
    COLD.get_or_init(|| {
        let mut tcp_ns = Histogram::new();
        let mut tcp_out: Vec<Vec<f32>> = Vec::new();
        let ((), reg) = gcs_metrics::with_capture(|| {
            for i in 0..iters {
                let bufs = grads(n, len, 500 + i);
                let t0 = Instant::now();
                tcp_out = TcpCluster::run(n, move |rank, links: &mut _| {
                    ring_all_reduce_worker(links, bufs[rank].clone(), &F32Sum, 4.0)
                        .expect("healthy tcp ring")
                        .0
                });
                tcp_ns.record(t0.elapsed().as_nanos() as f64);
            }
        });
        let counter = |name: &str| {
            reg.counters()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| v)
                .unwrap_or(0.0)
        };
        ColdTcp {
            p50_ns: tcp_ns.p50().unwrap_or(f64::NAN),
            p99_ns: tcp_ns.p99().unwrap_or(f64::NAN),
            wire_bytes: counter("transport/tcp/wire_bytes_total"),
            joins: counter("transport/tcp/joins_total"),
            reconnects: counter("transport/tcp/reconnects_total"),
            out: tcp_out,
            reg,
        }
    })
}

fn validate_file(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let doc = Json::parse(&text)?;
    validate_bench_json(&doc)
}

fn main() {
    let cli = parse_args();
    if let Some(path) = &cli.validate {
        match validate_file(path) {
            Ok(()) => println!("bench_report: {} is schema-valid", path.display()),
            Err(e) => {
                eprintln!("bench_report: {} INVALID: {e}", path.display());
                std::process::exit(1);
            }
        }
        return;
    }

    let (d, rounds) = if cli.fast {
        (1 << 14, 3)
    } else {
        (1 << 18, 10)
    };
    let n = 4usize;
    let side = (d as f64).sqrt() as usize;
    assert_eq!(side * side, d, "d must be a perfect square for PowerSGD");
    let mode = if cli.fast { "fast" } else { "full" };
    println!("bench_report: mode={mode} d={d} rounds={rounds} workers={n}");

    let mut merged = Registry::new();

    // Table 4/8/9 kernel suites: one row per scheme family, timer names
    // matching the `scheme/<family>/round_ns` telemetry histograms.
    let mut suites: Vec<(&str, Box<dyn CompressionScheme>)> = vec![
        ("fp16_baseline", Box::new(PrecisionBaseline::fp16())),
        ("qsgd", Box::new(Qsgd::new(4, n))),
        ("thc", Box::new(Thc::baseline(4, n))),
        ("topk", Box::new(TopK::with_bits(2.0, n, true))),
        ("topkc", Box::new(TopKC::paper_config(2.0, n))),
        (
            "powersgd",
            Box::new(PowerSgd::new(4, vec![(side, side)], n)),
        ),
    ];
    let kernels: Vec<Json> = suites
        .iter_mut()
        .map(|(family, scheme)| kernel_entry(family, scheme.as_mut(), n, d, rounds, &mut merged))
        .collect();

    // The six collectives, exercised explicitly on d/16-element payloads.
    let len = d / 16;
    let collectives = vec![
        collective_entry("ring_all_reduce", n, len, rounds, &mut merged, |b| {
            ring_all_reduce(b, &F32Sum, 4.0).total()
        }),
        collective_entry("tree_all_reduce", n, len, rounds, &mut merged, |b| {
            tree_all_reduce(b, &F32Sum, 4.0).total()
        }),
        collective_entry("all_gather", n, len, rounds, &mut merged, |b| {
            all_gather(b, 4.0).1.total()
        }),
        collective_entry("reduce_scatter", n, len, rounds, &mut merged, |b| {
            reduce_scatter(b, &F32Sum, 4.0).1.total()
        }),
        collective_entry("broadcast", n, len, rounds, &mut merged, |b| {
            broadcast(b, 0, 4.0).total()
        }),
        collective_entry("parameter_server", n, len, rounds, &mut merged, |b| {
            parameter_server(b, &F32Sum, 4.0).1.total()
        }),
    ];

    // Zero-allocation hotpath rows (ISSUE 4): measured steady-state heap
    // events per round plus pooled-vs-unpooled throughput, per hot path.
    let hotpath = vec![
        {
            let src = grads(n, len, 7);
            let mut bufs = src.clone();
            let mut scratch = RingScratch::default();
            let mut traffic = Traffic::default();
            hotpath_entry(
                "ring_all_reduce",
                HotGauges {
                    allocs: "hotpath/allocs_per_round/ring_all_reduce",
                    pooled: "hotpath/pooled_elems_per_s/ring_all_reduce",
                    unpooled: "hotpath/unpooled_elems_per_s/ring_all_reduce",
                },
                len,
                rounds,
                &mut merged,
                |_| {
                    for (b, s) in bufs.iter_mut().zip(&src) {
                        b.clear();
                        b.extend_from_slice(s);
                    }
                    ring_all_reduce_into(&mut bufs, &F32Sum, 4.0, &mut scratch, &mut traffic);
                },
                |_| {
                    let mut bb = src.clone();
                    ring_all_reduce(&mut bb, &F32Sum, 4.0);
                },
            )
        },
        scheme_hotpath(
            "thc",
            HotGauges {
                allocs: "hotpath/allocs_per_round/thc",
                pooled: "hotpath/pooled_elems_per_s/thc",
                unpooled: "hotpath/unpooled_elems_per_s/thc",
            },
            || Box::new(Thc::baseline(4, n)),
            n,
            d,
            rounds,
            &mut merged,
        ),
        scheme_hotpath(
            "topkc",
            HotGauges {
                allocs: "hotpath/allocs_per_round/topkc",
                pooled: "hotpath/pooled_elems_per_s/topkc",
                unpooled: "hotpath/unpooled_elems_per_s/topkc",
            },
            || Box::new(TopKC::paper_config(2.0, n)),
            n,
            d,
            rounds,
            &mut merged,
        ),
        scheme_hotpath(
            "topkc_q",
            HotGauges {
                allocs: "hotpath/allocs_per_round/topkc_q",
                pooled: "hotpath/pooled_elems_per_s/topkc_q",
                unpooled: "hotpath/unpooled_elems_per_s/topkc_q",
            },
            || Box::new(TopKCQ::with_bits(2.0, 64, 4, n)),
            n,
            d,
            rounds,
            &mut merged,
        ),
        scheme_hotpath(
            "topk",
            HotGauges {
                allocs: "hotpath/allocs_per_round/topk",
                pooled: "hotpath/pooled_elems_per_s/topk",
                unpooled: "hotpath/unpooled_elems_per_s/topk",
            },
            || Box::new(TopK::with_bits(2.0, n, true)),
            n,
            d,
            rounds,
            &mut merged,
        ),
        {
            let v = grads(1, d, 9).pop().unwrap();
            let q = 4u32;
            let qmax = (1i32 << (q - 1)) - 1;
            let quant = move |x: f32| ((x * qmax as f32) as i32).clamp(-qmax, qmax);
            let mut packed = PackedIntVec::zeros(q, v.len());
            hotpath_entry(
                "quantize_pack",
                HotGauges {
                    allocs: "hotpath/allocs_per_round/quantize_pack",
                    pooled: "hotpath/pooled_elems_per_s/quantize_pack",
                    unpooled: "hotpath/unpooled_elems_per_s/quantize_pack",
                },
                d,
                rounds,
                &mut merged,
                |_| {
                    packed.reset(q, v.len());
                    packed.pack_with(|i| quant(v[i]));
                },
                |_| {
                    let lanes: Vec<i32> = v.iter().map(|&x| quant(x)).collect();
                    PackedIntVec::from_signed(q, &lanes);
                },
            )
        },
    ];

    // Flat-arena subsection (ISSUE 6): the tentpole payoff measured on a
    // real model's layer layout. With arena-backed storage a model replica's
    // gradient is ONE contiguous slice, so an aggregation round is a single
    // whole-model pooled collective; the pre-arena layout stored one
    // `Vec<f32>` per layer, turning the same round into a loop of per-layer
    // collectives — identical flops and wire bytes, L× the fixed costs.
    let flat = {
        let model = VggMini::new(7);
        let dm = model.param_count();
        let offsets: Vec<usize> = model.net().param_arena().offsets().to_vec();
        let src = grads(n, dm, 11);
        let mut bufs = src.clone();
        let mut scratch = RingScratch::default();
        let mut traffic = Traffic::default();
        let src_layered: Vec<Vec<Vec<f32>>> = offsets
            .windows(2)
            .map(|w| src.iter().map(|g| g[w[0]..w[1]].to_vec()).collect())
            .collect();
        let mut bufs_layered = src_layered.clone();

        let mut flat_round = || {
            for (b, s) in bufs.iter_mut().zip(&src) {
                b.clear();
                b.extend_from_slice(s);
            }
            ring_all_reduce_into(&mut bufs, &F32Sum, 4.0, &mut scratch, &mut traffic);
        };
        let allocs = with_threads(1, || {
            flat_round();
            flat_round();
            let ((), stats) = measure(&mut flat_round);
            stats.total_events()
        });
        let t0 = Instant::now();
        for _ in 0..rounds {
            flat_round();
        }
        let whole_tp = (dm as f64 * rounds as f64) / t0.elapsed().as_secs_f64();

        let mut scratch_l = RingScratch::default();
        let t0 = Instant::now();
        for _ in 0..rounds {
            for (layer, sl) in bufs_layered.iter_mut().zip(&src_layered) {
                for (b, s) in layer.iter_mut().zip(sl) {
                    b.clear();
                    b.extend_from_slice(s);
                }
                ring_all_reduce_into(layer, &F32Sum, 4.0, &mut scratch_l, &mut traffic);
            }
        }
        let layer_tp = (dm as f64 * rounds as f64) / t0.elapsed().as_secs_f64();

        let ((), reg) = gcs_metrics::with_capture(|| {
            gcs_metrics::gauge_set("hotpath/flat/allocs_per_round", allocs as f64);
            gcs_metrics::gauge_set("hotpath/flat/whole_model_elems_per_s", whole_tp);
            gcs_metrics::gauge_set("hotpath/flat/per_layer_elems_per_s", layer_tp);
        });
        merged.merge(&reg);
        println!(
            "  hotpath flat ({dm} params)  allocs/round {allocs:>4}  whole-model {whole_tp:>9.2e} elems/s  per-layer {layer_tp:>9.2e} elems/s"
        );
        obj(vec![
            ("allocs_per_round", Json::Num(allocs as f64)),
            ("whole_model_elems_per_s", Json::Num(whole_tp)),
            ("per_layer_elems_per_s", Json::Num(layer_tp)),
        ])
    };

    // Fault-injection section (ISSUE 5): two canned chaos runs through the
    // faulty transport. The degraded plan is the one `chaos_collectives`
    // pins as bitwise-recoverable; the crash plan guarantees the artifact
    // also records a non-zero aborted count.
    let faults = {
        use gcs_faults::{canned_inputs, run_chaos, ChaosOp, FaultPlan, RetryPolicy};
        let policy = RetryPolicy::fast_test();
        let ((recov, crash), reg) = gcs_metrics::with_capture(|| {
            let recov = run_chaos(
                ChaosOp::Ring,
                canned_inputs(n, 96),
                FaultPlan::degraded(2024, 0.2, 0.1, 0.1),
                policy,
            );
            let crash = run_chaos(
                ChaosOp::Ring,
                canned_inputs(n, 96),
                FaultPlan::lossy(2024, 0.05).with_crash(1, 2),
                policy,
            );
            (recov, crash)
        });
        merged.merge(&reg);
        assert!(
            recov.recovered(),
            "canned degraded plan must recover: {:?}",
            recov.results
        );
        let mut stats = recov.stats.clone();
        stats.merge(&crash.stats);
        let mut lat = stats.recovery_latency_ns.clone();
        lat.sort_unstable();
        let quantile = |q: f64| {
            (!lat.is_empty())
                .then(|| lat[((lat.len() - 1) as f64 * q).round() as usize] as f64)
                .map(Json::Num)
                .unwrap_or(Json::Null)
        };
        let recovered_workers = recov.results.len() - recov.aborted_workers() + crash.results.len()
            - crash.aborted_workers();
        println!(
            "  faults injected {:>4}  retried {:>4}  recovered {:>4}  aborted {:>2}  crashed {:>2}",
            stats.injected(),
            stats.retries,
            stats.recovered_frames,
            stats.aborted_ops,
            stats.crashes,
        );
        obj(vec![
            ("injected", Json::Num(stats.injected() as f64)),
            ("retried", Json::Num(stats.retries as f64)),
            ("recovered", Json::Num(stats.recovered_frames as f64)),
            ("aborted", Json::Num(stats.aborted_ops as f64)),
            ("crashed", Json::Num(stats.crashes as f64)),
            ("recovered_workers", Json::Num(recovered_workers as f64)),
            (
                "aborted_workers",
                Json::Num((recov.aborted_workers() + crash.aborted_workers()) as f64),
            ),
            ("recovery_p50_ns", quantile(0.5)),
            ("recovery_p99_ns", quantile(0.99)),
        ])
    };

    // Transport section (ISSUE 7): the socket mesh vs the in-process
    // channel transport on the *same* ring-all-reduce worker body. The two
    // must agree bitwise (the differential suite's property, re-checked
    // here on every artifact), and the latency gap quantifies what real
    // framing/syscalls cost over loopback. The fleet metrics come from a
    // quick training run through the nullable `TrainLog` accessors — a run
    // that records no evals lands as `null`, never as an abort.
    let transport = {
        use gcs_collectives::transport::{ring_all_reduce_worker, ThreadedCluster};

        let iters = rounds;
        let mut threaded_ns = Histogram::new();
        let mut threaded_out: Vec<Vec<f32>> = Vec::new();
        for i in 0..iters {
            let bufs = grads(n, len, 500 + i);
            let t0 = Instant::now();
            threaded_out = ThreadedCluster::<f32>::new(n).run(move |rank, mut links| {
                ring_all_reduce_worker(&mut links, bufs[rank].clone(), &F32Sum, 4.0)
                    .expect("healthy threaded ring")
                    .0
            });
            threaded_ns.record(t0.elapsed().as_nanos() as f64);
        }

        let cold = cold_tcp_baseline(n, len, iters);
        let wire_bytes = cold.wire_bytes;
        let joins = cold.joins;
        let reconnects = cold.reconnects;
        merged.merge(&cold.reg);
        let identical = threaded_out.len() == cold.out.len()
            && threaded_out.iter().zip(&cold.out).all(|(a, b)| {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            });

        // Pipeline subsection (ISSUE 9, schema v7): per-round cost on a
        // *persistent* mesh — registry rendezvous and mesh build paid once,
        // links, frame buffers, and reduce scratch all warm — across a
        // message-size sweep. `speedup_vs_pr7` divides the cold-cluster p50
        // above (the exact methodology the pre-v7 `tcp_ring_p50_ns`
        // trajectory was recorded with, at this same payload length) by the
        // warm pipelined p50 at that length. `allocs_per_round` is the
        // counting allocator's event total across all ranks for one warm
        // round at the standard length — the steady state must not touch
        // the heap at all.
        let pipeline = {
            use gcs_collectives::tcp::{FleetWorker, Registry as TcpRegistry, TcpTimeouts};
            use gcs_collectives::transport::ring_all_reduce_worker_into;
            use std::sync::mpsc;

            // One fleet per size: two warm rounds, one alloc-measured round
            // (inside each worker thread — the counters are thread-local),
            // then `iters` timed rounds driven in lockstep from here.
            let fleet_rounds = |elems: usize, iters: u64| -> (f64, f64, u64, usize) {
                let registry = TcpRegistry::spawn(n).expect("pipeline registry");
                let addr = registry.addr();
                let (done_tx, done_rx) = mpsc::channel();
                let mut go = Vec::new();
                let mut handles = Vec::new();
                for _ in 0..n {
                    let (tx, rx) = mpsc::channel::<bool>();
                    go.push(tx);
                    let done_tx = done_tx.clone();
                    handles.push(std::thread::spawn(move || {
                        let mut w =
                            FleetWorker::join(addr, TcpTimeouts::fast_test()).expect("join");
                        let rs = w.next_round(0).expect("rendezvous round");
                        let src: Vec<f32> = (0..elems)
                            .map(|i| ((rs.rank * elems + i) as f32 * 0.37).sin())
                            .collect();
                        let mut buf = src.clone();
                        let mut scratch = Vec::new();
                        let chunk = w.mesh_mut().chunk_bytes();
                        let mut links = w.links::<f32>();
                        let mut events = 0u64;
                        let mut k = 0u64;
                        while let Ok(true) = rx.recv() {
                            buf.copy_from_slice(&src);
                            let mut round = || {
                                ring_all_reduce_worker_into(
                                    &mut links,
                                    &mut buf,
                                    &F32Sum,
                                    4.0,
                                    &mut scratch,
                                )
                                .expect("healthy pipeline fleet");
                            };
                            if k == 2 {
                                let ((), stats) = measure(&mut round);
                                events = stats.total_events();
                            } else {
                                round();
                            }
                            k += 1;
                            done_tx.send(()).expect("done channel");
                        }
                        w.leave().expect("leave");
                        (events, chunk)
                    }));
                }
                let round = || {
                    for tx in &go {
                        tx.send(true).expect("go channel");
                    }
                    for _ in 0..n {
                        done_rx.recv().expect("round completion");
                    }
                };
                for _ in 0..3 {
                    round();
                }
                let mut lat = Histogram::new();
                for _ in 0..iters {
                    let t0 = Instant::now();
                    round();
                    lat.record(t0.elapsed().as_nanos() as f64);
                }
                for tx in &go {
                    let _ = tx.send(false);
                }
                let mut allocs = 0u64;
                let mut chunk_bytes = 0usize;
                for h in handles {
                    let (events, chunk) = h.join().expect("pipeline worker");
                    allocs += events;
                    chunk_bytes = chunk;
                }
                registry.shutdown();
                (
                    lat.p50().unwrap_or(f64::NAN),
                    lat.p99().unwrap_or(f64::NAN),
                    allocs,
                    chunk_bytes,
                )
            };

            let pipe_iters = (rounds * 3).max(9);
            let mut sweep: Vec<usize> = vec![1 << 8, len, 1 << 16];
            sweep.sort_unstable();
            sweep.dedup();
            let mut std_p50 = f64::NAN;
            let mut allocs_per_round = 0u64;
            let mut chunk_bytes = 0usize;
            let mut sizes = Vec::new();
            for &elems in &sweep {
                let (p50, p99, allocs, chunk) = fleet_rounds(elems, pipe_iters);
                if elems == len {
                    std_p50 = p50;
                    allocs_per_round = allocs;
                    chunk_bytes = chunk;
                }
                println!(
                    "  pipeline ring {elems:>8} elems  p50 {p50:>9.0} ns  p99 {p99:>9.0} ns  allocs/round {allocs}"
                );
                sizes.push(obj(vec![
                    ("elems", Json::Num(elems as f64)),
                    ("p50_ns", Json::Num(p50)),
                    ("p99_ns", Json::Num(p99)),
                ]));
            }
            // Second consult of the memoized cold baseline — no re-race.
            let speedup = cold_tcp_baseline(n, len, iters).p50_ns / std_p50;
            println!(
                "  pipeline chunk {chunk_bytes} B  speedup vs cold stop-and-wait {speedup:>6.1}x"
            );
            obj(vec![
                ("chunk_bytes", Json::Num(chunk_bytes as f64)),
                ("sizes", Json::Array(sizes)),
                ("allocs_per_round", Json::Num(allocs_per_round as f64)),
                ("speedup_vs_pr7", Json::Num(speedup)),
            ])
        };

        let log = {
            use gcs_ddp::{Trainer, TrainerConfig};
            let mut model = VggMini::new(7);
            let mut scheme = PrecisionBaseline::fp32();
            let cfg = TrainerConfig {
                n_workers: n,
                batch_per_worker: 8,
                max_rounds: if cli.fast { 6 } else { 20 },
                eval_every: if cli.fast { 3 } else { 10 },
                lr: 0.05,
                momentum: 0.9,
                ..TrainerConfig::default()
            };
            Trainer::new(cfg).train(&mut model, &mut scheme, 0.5)
        };
        println!(
            "  transport ring p50 threaded {:>9.0} ns  tcp {:>9.0} ns  wire {wire_bytes:>10} B  identical {identical}",
            threaded_ns.p50().unwrap_or(f64::NAN),
            cold.p50_ns,
        );
        obj(vec![
            (
                "threaded_ring_p50_ns",
                Json::Num(threaded_ns.p50().unwrap_or(f64::NAN)),
            ),
            (
                "threaded_ring_p99_ns",
                Json::Num(threaded_ns.p99().unwrap_or(f64::NAN)),
            ),
            ("tcp_ring_p50_ns", Json::Num(cold.p50_ns)),
            ("tcp_ring_p99_ns", Json::Num(cold.p99_ns)),
            ("wire_bytes_total", Json::Num(wire_bytes)),
            ("joins", Json::Num(joins)),
            ("reconnects", Json::Num(reconnects)),
            ("identical", Json::Num(if identical { 1.0 } else { 0.0 })),
            (
                "fleet_first_metric",
                log.first_metric().map(Json::Num).unwrap_or(Json::Null),
            ),
            (
                "fleet_final_metric",
                log.last_eval().map(Json::Num).unwrap_or(Json::Null),
            ),
            ("pipeline", pipeline),
        ])
    };

    // Fleet-observability section (ISSUE 8): the telemetry plane measured
    // end-to-end in one process — four shippers clock-handshake against a
    // live collector, ship representative per-round payloads (trace +
    // registry snapshot + flight JSONL), and the scrape/merge/membership
    // surfaces are exercised for real. `overhead_pct` is the headline
    // contract: shipping one round's telemetry vs computing one round.
    let (fleet_obs, fleet_trace) = {
        use gcs_collectives::telemetry::{TelemetryCollector, TelemetryConfig, TelemetryShipper};
        use gcs_metrics::fleet::{FlightRecorder, ROUND_HIST, WIRE_BYTES_COUNTER};
        use gcs_nn::Sgd;
        use std::io::{Read, Write};

        let workers = n as u64;
        let collector = TelemetryCollector::spawn(TelemetryConfig::default()).expect("collector");
        let mut shippers: Vec<TelemetryShipper> = (0..workers)
            .map(|w| TelemetryShipper::connect(collector.addr(), 100 + w).expect("shipper"))
            .collect();
        let clock_offset_max_abs_ns = shippers
            .iter()
            .map(|s| s.clock_offset_ns().unsigned_abs())
            .max()
            .unwrap_or(0);

        // The denominator: one local training round, timed the same way the
        // worker binary feeds `fleet/round_ns`.
        let mut model = VggMini::new(7);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let mut round_hist = Histogram::new();
        let iters = if cli.fast { 3 } else { 7 };
        for r in 0..iters {
            let t0 = Instant::now();
            let batch = model.train_batch(8, 0, r);
            let _loss = model.forward_backward(&batch);
            let g = model.grads_flat().to_vec();
            opt.step_into(model.params_flat_mut(), &g);
            round_hist.record(t0.elapsed().as_nanos() as f64);
        }

        // Representative per-round payloads: a recorded round's spans, a
        // populated registry, a warm flight recorder.
        let trace = gcs_trace::with_recording(|| {
            for _ in 0..8 {
                let _c = gcs_trace::span(gcs_trace::Phase::Compute, "bench_compute");
                let _s = gcs_trace::span(gcs_trace::Phase::Network, "bench_all_reduce");
                gcs_trace::counter("fleet_wire_bytes", 4096.0);
            }
        });
        let mut snapshot = Registry::new();
        for r in 0..16 {
            snapshot.observe(ROUND_HIST, 1.0e6 + r as f64 * 1.0e4);
            snapshot.counter_add(WIRE_BYTES_COUNTER, 4096.0);
        }
        let mut flight = FlightRecorder::new();
        flight.record_trace(&trace);
        flight.record_event("bench", "fleet observability section");
        let jsonl = flight.to_jsonl();

        // The numerator: every shipper sends one full round of telemetry,
        // each send timed into the ship histogram.
        let mut ship_hist = Histogram::new();
        for _ in 0..iters.max(5) {
            for (r, s) in shippers.iter_mut().enumerate() {
                let t0 = Instant::now();
                s.ship_trace(r as u64, &trace).expect("ship trace");
                s.ship_snapshot(r as u64, 1, &snapshot)
                    .expect("ship snapshot");
                s.ship_flight(r as u64, &jsonl).expect("ship flight");
                ship_hist.record(t0.elapsed().as_nanos() as f64);
            }
        }

        // A real HTTP scrape of the live collector.
        let scrape_bytes = {
            let mut stream = std::net::TcpStream::connect(collector.addr()).expect("scrape");
            stream
                .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
                .expect("scrape request");
            let mut response = String::new();
            stream
                .read_to_string(&mut response)
                .expect("scrape response");
            assert!(
                response.starts_with("HTTP/1.1 200"),
                "scrape failed: {response}"
            );
            response
                .split_once("\r\n\r\n")
                .map(|(_, body)| body.len())
                .unwrap_or(0) as u64
        };

        // Membership churn: three shippers leave cleanly, one dies (socket
        // dropped without BYE) — the collector must account all of it.
        for (i, mut s) in shippers.into_iter().enumerate() {
            if i > 0 {
                s.bye().expect("bye");
            } // i == 0: dropped without BYE → death
        }
        let deadline = Instant::now() + std::time::Duration::from_secs(20);
        let events = loop {
            let ev = collector.events();
            let deaths = ev.iter().filter(|e| e.kind == "death").count();
            let leaves = ev.iter().filter(|e| e.kind == "leave").count();
            if (deaths >= 1 && leaves >= workers as usize - 1) || Instant::now() > deadline {
                break ev;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        let merged_trace = collector.merged_chrome_json();
        let merged_spans = merged_trace.matches("\"ph\":\"X\"").count() as u64;
        let (frames_total, bytes_total) = collector.aggregator().transfer_totals();
        let ship_p50 = ship_hist.p50().unwrap_or(f64::NAN);
        let round_p50 = round_hist.p50().unwrap_or(f64::NAN);
        let overhead_pct = ship_p50 / round_p50 * 100.0;
        println!(
            "  fleet-obs ship p50 {ship_p50:>9.0} ns  round p50 {round_p50:>11.0} ns  overhead {overhead_pct:.4}%  spans {merged_spans}  events {}",
            events.len()
        );
        (
            obj(vec![
                ("workers", Json::Num(workers as f64)),
                ("frames_total", Json::Num(frames_total as f64)),
                ("bytes_total", Json::Num(bytes_total as f64)),
                ("scrape_bytes", Json::Num(scrape_bytes as f64)),
                ("merged_spans", Json::Num(merged_spans as f64)),
                (
                    "clock_offset_max_abs_ns",
                    Json::Num(clock_offset_max_abs_ns as f64),
                ),
                ("ship_p50_ns", Json::Num(ship_p50)),
                ("round_p50_ns", Json::Num(round_p50)),
                ("overhead_pct", Json::Num(overhead_pct)),
                ("flight_entries", Json::Num(flight.len() as f64)),
                ("membership_events", Json::Num(events.len() as f64)),
            ]),
            merged_trace,
        )
    };

    // Aggregation-service section (ISSUE 10, schema v8): an in-process
    // multi-tenant daemon under `gcs_loadgen`'s open-loop synthetic load.
    // Each sweep point offers a strictly larger tenant-stream count (the
    // capacity curve), and the conformance probe re-proves the headline
    // property on every artifact: all four scheme families produce
    // bitwise-identical estimates through the daemon and standalone. The
    // daemon's per-tenant registries are scraped into `merged`, so the
    // .prom artifact carries the tenant round-latency histograms too.
    let aggd = {
        use gcs_aggd::{capacity_sweep, conformance_probe, AggDaemon, AggdConfig, LoadgenConfig};
        let shards = 2usize;
        let daemon = AggDaemon::spawn(AggdConfig {
            shards,
            ..AggdConfig::default()
        })
        .expect("aggd daemon");
        let sweep: Vec<usize> = if cli.fast {
            vec![64, 256, 1024]
        } else {
            vec![64, 256, 1024, 2048]
        };
        let lg = LoadgenConfig {
            deadline: std::time::Duration::from_secs(30),
            ..LoadgenConfig::default()
        };
        let points = capacity_sweep(daemon.addr(), &sweep, &lg);
        let conformant = conformance_probe(daemon.addr(), 32, 4);
        merged.merge(&daemon.registry());
        let max_sustained = points
            .iter()
            .filter(|p| p.sustained)
            .map(|p| p.tenants)
            .max()
            .unwrap_or(0);
        for p in &points {
            println!(
                "  aggd {:>5} tenants  completed {:>6}  rejects {:>5}  p50 {:>10.0} ns  p99 {:>10.0} ns  sustained {}",
                p.tenants, p.completed, p.rejects, p.p50_ns, p.p99_ns, p.sustained
            );
        }
        println!(
            "  aggd conformance probe (4 families): {}",
            if conformant {
                "bitwise-identical"
            } else {
                "DIVERGED"
            }
        );
        let capacity: Vec<Json> = points
            .iter()
            .map(|p| {
                obj(vec![
                    ("tenants", Json::Num(p.tenants as f64)),
                    ("round_rate_hz", Json::Num(p.round_rate_hz)),
                    ("rounds_per_tenant", Json::Num(p.rounds_per_tenant as f64)),
                    ("completed", Json::Num(p.completed as f64)),
                    ("rejects", Json::Num(p.rejects as f64)),
                    ("failed", Json::Num(p.failed as f64)),
                    ("p50_ns", Json::Num(p.p50_ns)),
                    ("p99_ns", Json::Num(p.p99_ns)),
                    ("wall_s", Json::Num(p.wall_s)),
                    ("sustained", Json::Num(if p.sustained { 1.0 } else { 0.0 })),
                ])
            })
            .collect();
        obj(vec![
            ("shards", Json::Num(shards as f64)),
            ("max_sustained_streams", Json::Num(max_sustained as f64)),
            ("conformant", Json::Num(if conformant { 1.0 } else { 0.0 })),
            ("capacity", Json::Array(capacity)),
        ])
    };

    let doc = obj(vec![
        ("schema_version", Json::Num(SCHEMA_VERSION)),
        ("id", Json::Str(cli.id.clone())),
        ("mode", Json::Str(mode.to_string())),
        ("dim", Json::Num(d as f64)),
        ("rounds", Json::Num(rounds as f64)),
        ("workers", Json::Num(n as f64)),
        ("kernels", Json::Array(kernels)),
        ("collectives", Json::Array(collectives)),
        (
            "hotpath",
            obj(vec![("paths", Json::Array(hotpath)), ("flat", flat)]),
        ),
        ("faults", faults),
        ("transport", transport),
        ("fleet_observability", fleet_obs),
        ("aggd", aggd),
    ]);

    let out = cli.out.unwrap_or_else(|| {
        Path::new("target")
            .join("experiment-results")
            .join(format!("BENCH_{}.json", cli.id))
    });
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out, doc.render_pretty()).expect("write BENCH json");

    // The merged Chrome trace from the fleet-observability section lands
    // next to the artifact — loadable in chrome://tracing / Perfetto.
    let trace_out = out
        .parent()
        .unwrap_or_else(|| Path::new("."))
        .join(format!("fleet_trace_{}.json", cli.id));
    std::fs::write(&trace_out, &fleet_trace).expect("write fleet trace");
    println!("wrote {}", trace_out.display());

    // Self-validate the artifact we just wrote: round-trip through the
    // parser and the schema checker, so a fast CI run proves the contract.
    match validate_file(&out) {
        Ok(()) => println!("wrote {} (schema-valid)", out.display()),
        Err(e) => {
            eprintln!("bench_report: emitted artifact failed validation: {e}");
            std::process::exit(1);
        }
    }

    // The other two exporters, over everything the run captured: Prometheus
    // text-format snapshot and JSONL time series.
    let prom = out.with_extension("prom");
    let jsonl = out.with_extension("jsonl");
    std::fs::write(&prom, merged.to_prometheus()).expect("write prometheus snapshot");
    std::fs::write(&jsonl, merged.to_jsonl()).expect("write jsonl export");
    println!("wrote {}", prom.display());
    println!("wrote {}", jsonl.display());
}
