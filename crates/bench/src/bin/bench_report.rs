//! Machine-readable bench trajectory: emits a `BENCH_<id>.json` artifact
//! covering the Table 4/8/9 kernel suites (per-scheme aggregation-round
//! latency quantiles + throughput) and the six collectives (wire bytes +
//! latency tails), alongside the other two exporters — a Prometheus
//! text-format snapshot and a JSONL time-series dump — of everything the
//! run captured into the `gcs-metrics` registry.
//!
//! Usage:
//!   cargo run -p gcs-bench --release --bin bench_report -- [--fast]
//!       [--id PR3] [--out path.json]
//!   cargo run -p gcs-bench --release --bin bench_report -- --validate path.json
//!
//! `--fast` shrinks the gradient dimension and round count for CI; the
//! schema and every field are identical to a full run. `--validate` parses
//! an existing artifact and checks it against the schema (field presence +
//! finite values), exiting non-zero on violation.

use gcs_collectives::{
    all_gather, broadcast, parameter_server, reduce_scatter, ring_all_reduce, tree_all_reduce,
    F32Sum,
};
use gcs_core::scheme::{CompressionScheme, RoundContext};
use gcs_core::schemes::baseline::PrecisionBaseline;
use gcs_core::schemes::literature::Qsgd;
use gcs_core::schemes::powersgd::PowerSgd;
use gcs_core::schemes::thc::Thc;
use gcs_core::schemes::topk::TopK;
use gcs_core::schemes::topkc::TopKC;
use gcs_metrics::{validate_bench_json, Histogram, Json, Registry, SCHEMA_VERSION};
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Cli {
    fast: bool,
    id: String,
    out: Option<PathBuf>,
    validate: Option<PathBuf>,
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        fast: false,
        id: "PR3".to_string(),
        out: None,
        validate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => cli.fast = true,
            "--id" => cli.id = args.next().expect("--id needs a value"),
            "--out" => cli.out = Some(PathBuf::from(args.next().expect("--out needs a value"))),
            "--validate" => {
                cli.validate = Some(PathBuf::from(args.next().expect("--validate needs a path")))
            }
            other => {
                eprintln!("bench_report: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    cli
}

fn grads(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// Normalized MSE of the aggregated estimate against the exact mean:
/// `||est − mean||² / ||mean||²`. `None` when the exact mean is ~zero.
fn vnmse(est: &[f32], grads: &[Vec<f32>]) -> Option<f64> {
    let n = grads.len() as f64;
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (i, &e) in est.iter().enumerate() {
        let mean: f64 = grads.iter().map(|g| g[i] as f64).sum::<f64>() / n;
        num += (e as f64 - mean).powi(2);
        den += mean * mean;
    }
    (den > 0.0).then(|| num / den)
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One Table 4/8-style kernel row: run `rounds` aggregation rounds of the
/// scheme, timing each round wall-clock into a metrics histogram (so p50/p99
/// use the same log-bucketed quantiles the telemetry layer reports). Also
/// merges whatever the capture-gated probes recorded into `merged`.
fn kernel_entry(
    family: &str,
    scheme: &mut dyn CompressionScheme,
    n: usize,
    d: usize,
    rounds: u64,
    merged: &mut Registry,
) -> Json {
    let g = grads(n, d, 42);
    let mut round_ns = Histogram::new();
    let mut last = None;
    let ((), reg) = gcs_metrics::with_capture(|| {
        for r in 0..rounds {
            let ctx = RoundContext::new(7, r);
            let t0 = Instant::now();
            let out = scheme.aggregate_round(&g, &ctx);
            round_ns.record(t0.elapsed().as_nanos() as f64);
            last = Some(out);
        }
    });
    merged.merge(&reg);
    let last = last.expect("at least one round");
    let mean_s = round_ns.mean().unwrap_or(f64::NAN) * 1e-9;
    let err = vnmse(&last.mean_estimate, &g);
    println!(
        "  kernel {family:<14} p50 {:>11.0} ns  p99 {:>11.0} ns  {:>8.2e} elems/s",
        round_ns.p50().unwrap_or(f64::NAN),
        round_ns.p99().unwrap_or(f64::NAN),
        d as f64 / mean_s
    );
    obj(vec![
        ("name", Json::Str(family.to_string())),
        ("throughput_elems_per_s", Json::Num(d as f64 / mean_s)),
        ("p50_ns", Json::Num(round_ns.p50().unwrap_or(f64::NAN))),
        ("p99_ns", Json::Num(round_ns.p99().unwrap_or(f64::NAN))),
        ("bits_per_coord", Json::Num(last.bits_per_coord(d as u64))),
        ("vnmse", err.map(Json::Num).unwrap_or(Json::Null)),
    ])
}

/// One collective row: `iters` invocations on fresh f32 buffers, exact wire
/// bytes from the returned `Traffic`, latency tails from wall-clock timing.
fn collective_entry(
    name: &str,
    n: usize,
    len: usize,
    iters: u64,
    merged: &mut Registry,
    run: impl Fn(&mut [Vec<f32>]) -> u64,
) -> Json {
    let mut lat_ns = Histogram::new();
    let mut wire = 0u64;
    let ((), reg) = gcs_metrics::with_capture(|| {
        for i in 0..iters {
            let mut bufs = grads(n, len, 100 + i);
            let t0 = Instant::now();
            wire += run(&mut bufs);
            lat_ns.record(t0.elapsed().as_nanos() as f64);
        }
    });
    merged.merge(&reg);
    println!(
        "  collective {name:<18} wire {wire:>12} B  p50 {:>9.0} ns  p99 {:>9.0} ns",
        lat_ns.p50().unwrap_or(f64::NAN),
        lat_ns.p99().unwrap_or(f64::NAN),
    );
    obj(vec![
        ("name", Json::Str(name.to_string())),
        ("wire_bytes", Json::Num(wire as f64)),
        ("p50_ns", Json::Num(lat_ns.p50().unwrap_or(f64::NAN))),
        ("p99_ns", Json::Num(lat_ns.p99().unwrap_or(f64::NAN))),
        ("count", Json::Num(lat_ns.count() as f64)),
    ])
}

fn validate_file(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let doc = Json::parse(&text)?;
    validate_bench_json(&doc)
}

fn main() {
    let cli = parse_args();
    if let Some(path) = &cli.validate {
        match validate_file(path) {
            Ok(()) => println!("bench_report: {} is schema-valid", path.display()),
            Err(e) => {
                eprintln!("bench_report: {} INVALID: {e}", path.display());
                std::process::exit(1);
            }
        }
        return;
    }

    let (d, rounds) = if cli.fast {
        (1 << 14, 3)
    } else {
        (1 << 18, 10)
    };
    let n = 4usize;
    let side = (d as f64).sqrt() as usize;
    assert_eq!(side * side, d, "d must be a perfect square for PowerSGD");
    let mode = if cli.fast { "fast" } else { "full" };
    println!("bench_report: mode={mode} d={d} rounds={rounds} workers={n}");

    let mut merged = Registry::new();

    // Table 4/8/9 kernel suites: one row per scheme family, timer names
    // matching the `scheme/<family>/round_ns` telemetry histograms.
    let mut suites: Vec<(&str, Box<dyn CompressionScheme>)> = vec![
        ("fp16_baseline", Box::new(PrecisionBaseline::fp16())),
        ("qsgd", Box::new(Qsgd::new(4, n))),
        ("thc", Box::new(Thc::baseline(4, n))),
        ("topk", Box::new(TopK::with_bits(2.0, n, true))),
        ("topkc", Box::new(TopKC::paper_config(2.0, n))),
        (
            "powersgd",
            Box::new(PowerSgd::new(4, vec![(side, side)], n)),
        ),
    ];
    let kernels: Vec<Json> = suites
        .iter_mut()
        .map(|(family, scheme)| kernel_entry(family, scheme.as_mut(), n, d, rounds, &mut merged))
        .collect();

    // The six collectives, exercised explicitly on d/16-element payloads.
    let len = d / 16;
    let collectives = vec![
        collective_entry("ring_all_reduce", n, len, rounds, &mut merged, |b| {
            ring_all_reduce(b, &F32Sum, 4.0).total()
        }),
        collective_entry("tree_all_reduce", n, len, rounds, &mut merged, |b| {
            tree_all_reduce(b, &F32Sum, 4.0).total()
        }),
        collective_entry("all_gather", n, len, rounds, &mut merged, |b| {
            all_gather(b, 4.0).1.total()
        }),
        collective_entry("reduce_scatter", n, len, rounds, &mut merged, |b| {
            reduce_scatter(b, &F32Sum, 4.0).1.total()
        }),
        collective_entry("broadcast", n, len, rounds, &mut merged, |b| {
            broadcast(b, 0, 4.0).total()
        }),
        collective_entry("parameter_server", n, len, rounds, &mut merged, |b| {
            parameter_server(b, &F32Sum, 4.0).1.total()
        }),
    ];

    let doc = obj(vec![
        ("schema_version", Json::Num(SCHEMA_VERSION)),
        ("id", Json::Str(cli.id.clone())),
        ("mode", Json::Str(mode.to_string())),
        ("dim", Json::Num(d as f64)),
        ("rounds", Json::Num(rounds as f64)),
        ("workers", Json::Num(n as f64)),
        ("kernels", Json::Array(kernels)),
        ("collectives", Json::Array(collectives)),
    ]);

    let out = cli.out.unwrap_or_else(|| {
        Path::new("target")
            .join("experiment-results")
            .join(format!("BENCH_{}.json", cli.id))
    });
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out, doc.render_pretty()).expect("write BENCH json");

    // Self-validate the artifact we just wrote: round-trip through the
    // parser and the schema checker, so a fast CI run proves the contract.
    match validate_file(&out) {
        Ok(()) => println!("wrote {} (schema-valid)", out.display()),
        Err(e) => {
            eprintln!("bench_report: emitted artifact failed validation: {e}");
            std::process::exit(1);
        }
    }

    // The other two exporters, over everything the run captured: Prometheus
    // text-format snapshot and JSONL time series.
    let prom = out.with_extension("prom");
    let jsonl = out.with_extension("jsonl");
    std::fs::write(&prom, merged.to_prometheus()).expect("write prometheus snapshot");
    std::fs::write(&jsonl, merged.to_jsonl()).expect("write jsonl export");
    println!("wrote {}", prom.display());
    println!("wrote {}", jsonl.display());
}
