//! A counting [`GlobalAlloc`] wrapper for allocation-budget tests.
//!
//! The zero-allocation claim of the steady-state hot path (ISSUE 4) is not
//! something a benchmark can prove — a benchmark shows *speed*, not the
//! *absence of heap traffic*. This crate makes the claim falsifiable: wrap
//! the system allocator in [`CountingAlloc`], run a warmed-up round under
//! [`measure`], and assert the count is zero.
//!
//! Counters are **thread-local** so concurrently running tests (the default
//! `cargo test` harness) do not pollute each other's measurements; a
//! measured region therefore only observes allocations made on its own
//! thread. Zero-alloc assertions must run the hot path on the measuring
//! thread (e.g. under `gcs_tensor::parallel::with_threads(1)`, where the
//! deterministic runtime takes its sequential path).
//!
//! The counters are `const`-initialized `Cell`s: no lazy TLS initialization
//! happens inside the allocation hooks, so the allocator never recurses.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static DEALLOCS: Cell<u64> = const { Cell::new(0) };
    static REALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A [`GlobalAlloc`] that forwards to [`System`] while counting per-thread
/// allocation events. Install it in a test binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: gcs_alloc::CountingAlloc = gcs_alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.with(|c| c.set(c.get() + 1));
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.with(|c| c.set(c.get() + 1));
        if new_size > layout.size() {
            BYTES.with(|c| c.set(c.get() + (new_size - layout.size()) as u64));
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocation events observed on the current thread during a [`measure`]
/// region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// `alloc` + `alloc_zeroed` calls.
    pub allocs: u64,
    /// `dealloc` calls.
    pub deallocs: u64,
    /// `realloc` calls (growth or shrink; counted separately from allocs).
    pub reallocs: u64,
    /// Bytes newly requested (alloc sizes plus realloc growth).
    pub bytes: u64,
}

impl AllocStats {
    /// Total heap events — what a zero-allocation budget bounds.
    pub fn total_events(&self) -> u64 {
        self.allocs + self.deallocs + self.reallocs
    }
}

fn snapshot() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.with(Cell::get),
        deallocs: DEALLOCS.with(Cell::get),
        reallocs: REALLOCS.with(Cell::get),
        bytes: BYTES.with(Cell::get),
    }
}

/// Runs `f` and returns its result together with the allocation events the
/// *current thread* performed inside it. Only meaningful in a binary whose
/// global allocator is [`CountingAlloc`]; otherwise all counts read zero.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
    let before = snapshot();
    let result = f();
    let after = snapshot();
    (
        result,
        AllocStats {
            allocs: after.allocs - before.allocs,
            deallocs: after.deallocs - before.deallocs,
            reallocs: after.reallocs - before.reallocs,
            bytes: after.bytes - before.bytes,
        },
    )
}

/// Whether a [`CountingAlloc`] is installed as the global allocator (probed
/// by performing one boxed allocation and checking the counter moved).
pub fn counting_enabled() -> bool {
    let (_, stats) = measure(|| std::hint::black_box(Box::new(0u8)));
    stats.allocs > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary for this crate does NOT install CountingAlloc (unit
    // tests here only exercise the bookkeeping), so counters stay zero and
    // the API must degrade gracefully.
    #[test]
    fn measure_without_installed_allocator_reads_zero() {
        let (v, stats) = measure(|| vec![1u8, 2, 3]);
        assert_eq!(v.len(), 3);
        assert_eq!(stats, AllocStats::default());
        assert_eq!(stats.total_events(), 0);
        assert!(!counting_enabled());
    }

    #[test]
    fn stats_arithmetic() {
        let s = AllocStats {
            allocs: 2,
            deallocs: 1,
            reallocs: 3,
            bytes: 640,
        };
        assert_eq!(s.total_events(), 6);
    }
}
