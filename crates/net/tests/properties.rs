//! Property tests for the network models: conservation laws, fairness, and
//! agreement between the closed forms and the flow-level simulator.

use gcs_netsim::flowsim::{all_gather_flows, ring_all_reduce_phases, Degradation, Flow, Network};
use gcs_netsim::{ClusterSpec, Collective, HierarchicalSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flows_never_finish_faster_than_line_rate(
        n in 2usize..8,
        bytes in prop::collection::vec(1e6f64..1e10, 1..10),
        bw in 1e9f64..1e11,
    ) {
        let net = Network::homogeneous(n, bw);
        let flows: Vec<Flow> = bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| Flow {
                src: i % n,
                dst: (i + 1) % n,
                bytes: b,
            })
            .collect();
        let report = net.simulate(&flows);
        for (f, &t) in flows.iter().zip(&report.completion) {
            // No flow can beat its size over an uncontended link.
            prop_assert!(t >= f.bytes / bw - 1e-9, "flow finished impossibly fast");
        }
        prop_assert!(report.makespan >= report.completion.iter().cloned().fold(0.0, f64::max) - 1e-9);
    }

    #[test]
    fn makespan_bounded_by_serialization(
        n in 2usize..6,
        k in 1usize..8,
        bw in 1e9f64..1e10,
    ) {
        // k equal flows into one receiver: makespan exactly k * (size/bw).
        let net = Network::homogeneous(n + 1, bw);
        let size = 1e9;
        let flows: Vec<Flow> = (0..k)
            .map(|i| Flow {
                src: 1 + (i % n),
                dst: 0,
                bytes: size,
            })
            .collect();
        let report = net.simulate(&flows);
        let per_src = flows.iter().filter(|f| f.src == 1).count() as f64;
        let lower = (k as f64 * size / bw).max(per_src * size / bw);
        prop_assert!((report.makespan - lower).abs() / lower < 1e-6,
            "makespan {} vs serialization bound {}", report.makespan, lower);
    }

    #[test]
    fn ring_flowsim_matches_closed_form_for_any_n(
        n in 2usize..9,
        payload in 1e6f64..1e10,
        bw in 1e9f64..1e11,
    ) {
        let net = Network::homogeneous(n, bw);
        let t = net.simulate_phases(&ring_all_reduce_phases(n, payload));
        let expect = 2.0 * (n as f64 - 1.0) / n as f64 * payload / bw;
        prop_assert!((t - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn all_gather_flowsim_matches_closed_form(
        n in 2usize..7,
        payload in 1e6f64..1e9,
    ) {
        let bw = 1e10;
        let net = Network::homogeneous(n, bw);
        let t = net.simulate(&all_gather_flows(n, payload)).makespan;
        let expect = (n as f64 - 1.0) * payload / bw;
        prop_assert!((t - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn collective_times_scale_linearly_in_payload(
        coll_idx in 0usize..6,
        payload in 1e6f64..1e10,
        scale in 2.0f64..10.0,
    ) {
        let colls = [
            Collective::RingAllReduce,
            Collective::TreeAllReduce,
            Collective::AllGather,
            Collective::ReduceScatter,
            Collective::ParameterServer,
            Collective::Broadcast,
        ];
        let c = ClusterSpec {
            alpha: 0.0, // isolate the bandwidth term
            ..ClusterSpec::paper_testbed()
        };
        let coll = colls[coll_idx];
        let t1 = c.collective_seconds(coll, payload);
        let t2 = c.collective_seconds(coll, payload * scale);
        prop_assert!((t2 / t1 - scale).abs() < 1e-6, "{coll:?} not linear");
    }

    #[test]
    fn degraded_capacity_is_still_max_min_fair(
        n in 3usize..7,
        factor in 0.1f64..0.9,
        bytes in 1e8f64..1e10,
    ) {
        // Cut one sender's egress by `factor` from t=0; all flows target one
        // receiver. Max-min fairness must hold under the degraded capacity:
        // nobody beats line rate on their (possibly degraded) egress, the
        // receiver's ingress is never oversubscribed, and completions are
        // monotone in effective sender capacity.
        let bw = 1e10;
        let net = Network::homogeneous(n, bw)
            .with_degradation(Degradation::slowdown(0.0, 0, factor));
        let flows: Vec<Flow> = (0..n - 1)
            .map(|s| Flow { src: s, dst: n - 1, bytes })
            .collect();
        let report = net.simulate(&flows);
        prop_assert!(report.all_completed());
        // Line-rate bound per sender under its effective egress.
        prop_assert!(report.completion[0] >= bytes / (bw * factor) - 1e-9);
        for t in &report.completion[1..] {
            prop_assert!(*t >= bytes / bw - 1e-9);
        }
        // Receiver ingress conservation: total bytes through one ingress
        // link cannot move faster than the link.
        let total = bytes * (n - 1) as f64;
        prop_assert!(report.makespan >= total / bw - 1e-6);
        // The degraded sender never finishes before an undegraded one.
        let healthy_max = report.completion[1..].iter().cloned().fold(0.0, f64::max);
        prop_assert!(report.completion[0] >= healthy_max - 1e-9);
    }

    #[test]
    fn zero_capacity_always_aborts_finitely(
        n in 2usize..6,
        cut_at in 0.0f64..2.0,
        bytes in 1e9f64..1e11,
    ) {
        // Whatever the cut time and flow size, a dead egress either lets the
        // flow finish first or aborts it at exactly the stranding instant —
        // the report is always finite and the abort flag is always honest.
        let bw = 1e9;
        let net = Network::homogeneous(n, bw)
            .with_degradation(Degradation::cut(cut_at, 0));
        let flows = vec![Flow { src: 0, dst: n - 1, bytes }];
        let report = net.simulate(&flows);
        prop_assert!(report.makespan.is_finite());
        prop_assert!(report.completion[0].is_finite());
        let unimpeded = bytes / bw;
        if unimpeded <= cut_at + 1e-9 {
            prop_assert!(report.all_completed(), "{report:?}");
        } else {
            prop_assert!(report.aborted[0], "{report:?}");
            prop_assert!((report.completion[0] - cut_at).abs() < 1e-9, "{report:?}");
        }
    }

    #[test]
    fn hierarchical_time_monotone_in_payload_and_gpus(
        payload in 1e6f64..1e10,
        gpus in 1usize..9,
    ) {
        let h = HierarchicalSpec {
            gpus_per_node: gpus,
            ..HierarchicalSpec::paper_testbed()
        };
        let t1 = h.ring_all_reduce_seconds(payload);
        let t2 = h.ring_all_reduce_seconds(payload * 2.0);
        prop_assert!(t2 > t1);
        prop_assert!(t1 > 0.0);
    }
}
