//! Flow-level network event simulation with max-min fair sharing.
//!
//! Where [`crate::timing`] asserts collective costs, this module *derives*
//! them: a collective is expressed as a set of point-to-point flows (per
//! step), every node has finite egress and ingress capacity, concurrent
//! flows share bottleneck links max-min fairly (progressive filling, the
//! standard fluid model of TCP-fair sharing), and an event loop advances
//! time from one flow completion to the next.
//!
//! The simulator is what makes the paper's scalability argument (§2.1)
//! *checkable* instead of asserted: an incast of `n−1` flows into one
//! receiver completes `n−1×` slower than a single flow, while the ring's
//! uniform one-to-one steps keep every link busy.

/// A point-to-point transfer between two nodes.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Source node id.
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Transfer size in bytes.
    pub bytes: f64,
}

/// Result of simulating a set of flows.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Completion time of each flow, seconds, same order as the input.
    pub completion: Vec<f64>,
    /// Time at which the last flow completed (the step's makespan).
    pub makespan: f64,
}

impl FlowReport {
    /// Pairs each flow's completion time with its *source* node — the worker
    /// that was sending — in input order. This is the feed format
    /// `gcs_metrics::StragglerMonitor::ingest_flows` consumes for per-worker
    /// flow skew.
    pub fn worker_completions(&self, flows: &[Flow]) -> Vec<(u64, f64)> {
        flows
            .iter()
            .zip(&self.completion)
            .map(|(f, &t)| (f.src as u64, t))
            .collect()
    }
}

/// A network of `n` nodes, each with independent egress and ingress
/// capacity (full-duplex NIC model).
#[derive(Clone, Debug)]
pub struct Network {
    egress: Vec<f64>,
    ingress: Vec<f64>,
}

impl Network {
    /// A homogeneous full-duplex network: every node sends and receives at
    /// `capacity` bytes/s.
    pub fn homogeneous(n: usize, capacity: f64) -> Network {
        Network {
            egress: vec![capacity; n],
            ingress: vec![capacity; n],
        }
    }

    /// Overrides one node's capacities (e.g. a beefier parameter server).
    pub fn with_node_capacity(mut self, node: usize, egress: f64, ingress: f64) -> Network {
        self.egress[node] = egress;
        self.ingress[node] = ingress;
        self
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.egress.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.egress.is_empty()
    }

    /// Max-min fair rates for the given set of active flows
    /// (progressive filling).
    fn fair_rates(&self, flows: &[(usize, usize)]) -> Vec<f64> {
        let n = self.len();
        // Link layout: 0..n egress, n..2n ingress.
        let mut cap: Vec<f64> = self
            .egress
            .iter()
            .chain(self.ingress.iter())
            .copied()
            .collect();
        let mut users: Vec<usize> = vec![0; 2 * n];
        for &(s, d) in flows {
            users[s] += 1;
            users[n + d] += 1;
        }
        let mut rate = vec![0.0f64; flows.len()];
        let mut frozen = vec![false; flows.len()];
        let mut remaining = flows.len();
        while remaining > 0 {
            // Bottleneck link: minimal fair share among links with users.
            let mut best_share = f64::INFINITY;
            for l in 0..2 * n {
                if users[l] > 0 {
                    let share = cap[l] / users[l] as f64;
                    if share < best_share {
                        best_share = share;
                    }
                }
            }
            debug_assert!(best_share.is_finite());
            // Freeze every unfrozen flow crossing a link at that share.
            let mut froze_any = false;
            for (i, &(s, d)) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                let se = cap[s] / users[s] as f64;
                let si = cap[n + d] / users[n + d] as f64;
                if se <= best_share + 1e-12 || si <= best_share + 1e-12 {
                    rate[i] = best_share;
                    frozen[i] = true;
                    remaining -= 1;
                    froze_any = true;
                    // Remove this flow's usage from its links.
                    cap[s] -= best_share;
                    users[s] -= 1;
                    cap[n + d] -= best_share;
                    users[n + d] -= 1;
                }
            }
            debug_assert!(froze_any, "progressive filling made no progress");
            if !froze_any {
                break;
            }
        }
        rate
    }

    /// Simulates the given flows starting simultaneously at t=0; rates are
    /// recomputed (max-min) after every completion event.
    ///
    /// An empty flow list is a valid degenerate input (a collective step
    /// with nothing to send) and yields a zero report rather than touching
    /// the rate solver.
    pub fn simulate(&self, flows: &[Flow]) -> FlowReport {
        if flows.is_empty() {
            return FlowReport {
                completion: Vec::new(),
                makespan: 0.0,
            };
        }
        let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes.max(0.0)).collect();
        let mut completion = vec![0.0f64; flows.len()];
        let mut done: Vec<bool> = remaining.iter().map(|&b| b == 0.0).collect();
        let mut now = 0.0f64;
        loop {
            let active: Vec<usize> = (0..flows.len()).filter(|&i| !done[i]).collect();
            if active.is_empty() {
                break;
            }
            let endpoints: Vec<(usize, usize)> = active
                .iter()
                .map(|&i| (flows[i].src, flows[i].dst))
                .collect();
            let rates = self.fair_rates(&endpoints);
            // Earliest completion among active flows.
            let mut dt = f64::INFINITY;
            for (k, &i) in active.iter().enumerate() {
                if rates[k] > 0.0 {
                    dt = dt.min(remaining[i] / rates[k]);
                }
            }
            assert!(dt.is_finite(), "flows cannot make progress");
            now += dt;
            for (k, &i) in active.iter().enumerate() {
                remaining[i] -= rates[k] * dt;
                if remaining[i] <= 1e-6 {
                    remaining[i] = 0.0;
                    done[i] = true;
                    completion[i] = now;
                }
            }
        }
        for &t in &completion {
            gcs_metrics::observe("flowsim/fct_s", t);
        }
        FlowReport {
            makespan: completion.iter().copied().fold(0.0, f64::max),
            completion,
        }
    }

    /// Simulates a sequence of flow *phases*: phase `k+1` starts only after
    /// phase `k` completes (how a stepwise collective behaves with
    /// synchronization between steps). Returns total time.
    pub fn simulate_phases(&self, phases: &[Vec<Flow>]) -> f64 {
        phases.iter().map(|p| self.simulate(p).makespan).sum()
    }
}

/// Builds the flow phases of a ring all-reduce with `n` workers and
/// `payload` bytes per worker: `2(n−1)` steps, each sending `payload/n` to
/// the next node around the ring.
pub fn ring_all_reduce_phases(n: usize, payload: f64) -> Vec<Vec<Flow>> {
    let seg = payload / n as f64;
    (0..2 * (n - 1))
        .map(|_| {
            (0..n)
                .map(|i| Flow {
                    src: i,
                    dst: (i + 1) % n,
                    bytes: seg,
                })
                .collect()
        })
        .collect()
}

/// Builds the single-phase flow set of an all-gather: every ordered pair
/// exchanges `payload` bytes.
pub fn all_gather_flows(n: usize, payload: f64) -> Vec<Flow> {
    let mut flows = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s != d {
                flows.push(Flow {
                    src: s,
                    dst: d,
                    bytes: payload,
                });
            }
        }
    }
    flows
}

/// Builds the push phase of parameter-server aggregation: every worker
/// (nodes `1..n`) sends `payload` bytes to the PS (node 0).
pub fn ps_push_flows(n_workers: usize, payload: f64) -> Vec<Flow> {
    (1..=n_workers)
        .map(|w| Flow {
            src: w,
            dst: 0,
            bytes: payload,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    #[test]
    fn single_flow_runs_at_line_rate() {
        let net = Network::homogeneous(2, 10.0 * GB);
        let r = net.simulate(&[Flow {
            src: 0,
            dst: 1,
            bytes: 10.0 * GB,
        }]);
        assert!((r.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_an_egress_link() {
        let net = Network::homogeneous(3, 10.0 * GB);
        let flows = vec![
            Flow {
                src: 0,
                dst: 1,
                bytes: 10.0 * GB,
            },
            Flow {
                src: 0,
                dst: 2,
                bytes: 10.0 * GB,
            },
        ];
        let r = net.simulate(&flows);
        // Both share node 0's egress: each gets 5 GB/s -> 2 s.
        assert!((r.makespan - 2.0).abs() < 1e-6);
    }

    #[test]
    fn incast_serializes_on_the_receiver() {
        // The §2.1 argument: n-1 flows into one node complete (n-1)x slower.
        let n = 8;
        let net = Network::homogeneous(n, 10.0 * GB);
        let r = net.simulate(&ps_push_flows(n - 1, 10.0 * GB));
        assert!((r.makespan - (n - 1) as f64).abs() < 1e-6);
    }

    #[test]
    fn short_flow_finishes_and_frees_bandwidth() {
        let net = Network::homogeneous(3, 10.0 * GB);
        let flows = vec![
            Flow {
                src: 0,
                dst: 2,
                bytes: 5.0 * GB,
            },
            Flow {
                src: 1,
                dst: 2,
                bytes: 20.0 * GB,
            },
        ];
        let r = net.simulate(&flows);
        // Phase 1: both at 5 GB/s until the short one finishes at t=1
        // (5 GB at 5 GB/s). Phase 2: long flow has 15 GB left at 10 GB/s.
        assert!((r.completion[0] - 1.0).abs() < 1e-6, "{:?}", r);
        assert!((r.completion[1] - 2.5).abs() < 1e-6, "{:?}", r);
    }

    #[test]
    fn ring_all_reduce_matches_closed_form() {
        let n = 4;
        let payload = 8.0 * GB;
        let bw = 10.0 * GB;
        let net = Network::homogeneous(n, bw);
        let t = net.simulate_phases(&ring_all_reduce_phases(n, payload));
        // Closed form: 2(n-1)/n * payload / bw.
        let expect = 2.0 * (n as f64 - 1.0) / n as f64 * payload / bw;
        assert!((t - expect).abs() / expect < 1e-6, "t={t} expect={expect}");
    }

    #[test]
    fn all_gather_makespan_matches_closed_form() {
        let n = 4;
        let payload = 1.0 * GB;
        let bw = 10.0 * GB;
        let net = Network::homogeneous(n, bw);
        let r = net.simulate(&all_gather_flows(n, payload));
        // Every node must receive (n-1) payloads through its ingress.
        let expect = (n as f64 - 1.0) * payload / bw;
        assert!((r.makespan - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn beefy_ps_absorbs_incast() {
        let n = 5;
        let net = Network::homogeneous(n, 10.0 * GB).with_node_capacity(0, 40.0 * GB, 40.0 * GB);
        let r = net.simulate(&ps_push_flows(4, 10.0 * GB));
        // PS ingress 40 GB/s over 4 flows: each gets its full 10 GB/s.
        assert!((r.makespan - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_flow_list_yields_zero_report() {
        // Regression: a degenerate collective step with no flows must return
        // a well-formed zero report, not NaN or a div-by-zero in the solver.
        let net = Network::homogeneous(4, 10.0 * GB);
        let r = net.simulate(&[]);
        assert_eq!(r.makespan, 0.0);
        assert!(r.makespan.is_finite());
        assert!(r.completion.is_empty());
        assert!(r.worker_completions(&[]).is_empty());
        // Phase sequences containing empty phases stay finite too.
        let t = net.simulate_phases(&[vec![], ring_all_reduce_phases(4, GB)[0].clone(), vec![]]);
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn heterogeneous_capacities_shape_completion_times() {
        // Node 1's egress is halved and node 2's quartered: with each flow
        // alone on its links, completion times follow the slow senders.
        let net = Network::homogeneous(4, 10.0 * GB)
            .with_node_capacity(1, 5.0 * GB, 10.0 * GB)
            .with_node_capacity(2, 2.5 * GB, 10.0 * GB);
        let flows = vec![
            Flow {
                src: 0,
                dst: 3,
                bytes: 10.0 * GB,
            },
            Flow {
                src: 1,
                dst: 3,
                bytes: 10.0 * GB,
            },
            Flow {
                src: 2,
                dst: 3,
                bytes: 10.0 * GB,
            },
        ];
        let r = net.simulate(&flows);
        // Max-min: node 2 is frozen at its 2.5 GB/s egress; the remaining
        // 7.5 GB/s of node 3's ingress splits evenly, so flows 0 and 1 run
        // at 3.75 GB/s and finish together at 8/3 s. Flow 2 then finishes
        // its remainder alone at 2.5 GB/s, at exactly 4 s.
        assert!((r.completion[0] - 8.0 / 3.0).abs() < 1e-6, "{:?}", r);
        assert!((r.completion[1] - 8.0 / 3.0).abs() < 1e-6, "{:?}", r);
        assert!((r.completion[2] - 4.0).abs() < 1e-6, "{:?}", r);
        assert!((r.makespan - 4.0).abs() < 1e-6);
        // Worker attribution pairs source ids with those times.
        let wc = r.worker_completions(&flows);
        assert_eq!(wc.len(), 3);
        assert_eq!(wc[2].0, 2);
        assert!((wc[2].1 - 4.0).abs() < 1e-6);
    }

    #[test]
    fn simulate_captures_flow_completion_metrics() {
        let net = Network::homogeneous(3, 10.0 * GB);
        let flows = ps_push_flows(2, 10.0 * GB);
        let ((), reg) = gcs_metrics::with_capture(|| {
            net.simulate(&flows);
        });
        if !gcs_metrics::is_captured() {
            return;
        }
        let h = reg.hist("flowsim/fct_s").unwrap();
        assert_eq!(h.count(), 2);
        // Both flows share the receiver ingress: each completes at 2 s.
        assert!((h.max().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flows_complete_immediately() {
        let net = Network::homogeneous(2, GB);
        let r = net.simulate(&[Flow {
            src: 0,
            dst: 1,
            bytes: 0.0,
        }]);
        assert_eq!(r.makespan, 0.0);
    }
}
