//! Flow-level network event simulation with max-min fair sharing.
//!
//! Where [`crate::timing`] asserts collective costs, this module *derives*
//! them: a collective is expressed as a set of point-to-point flows (per
//! step), every node has finite egress and ingress capacity, concurrent
//! flows share bottleneck links max-min fairly (progressive filling, the
//! standard fluid model of TCP-fair sharing), and an event loop advances
//! time from one flow completion to the next.
//!
//! The simulator is what makes the paper's scalability argument (§2.1)
//! *checkable* instead of asserted: an incast of `n−1` flows into one
//! receiver completes `n−1×` slower than a single flow, while the ring's
//! uniform one-to-one steps keep every link busy.

/// A point-to-point transfer between two nodes.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Source node id.
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Transfer size in bytes.
    pub bytes: f64,
}

/// Result of simulating a set of flows.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Completion time of each flow, seconds, same order as the input. For
    /// an aborted flow this is the *abort* time (the instant the simulator
    /// proved it could never finish), so the report stays finite.
    pub completion: Vec<f64>,
    /// Time at which the last flow completed (the step's makespan).
    pub makespan: f64,
    /// Per-flow abort flag: `true` if the flow was stranded with zero rate
    /// and no future capacity event could revive it (e.g. its only path
    /// crosses a link degraded to zero). Same order as the input.
    pub aborted: Vec<bool>,
}

impl FlowReport {
    /// Number of flows that could not complete.
    pub fn aborted_count(&self) -> usize {
        self.aborted.iter().filter(|&&a| a).count()
    }

    /// True if every flow completed.
    pub fn all_completed(&self) -> bool {
        self.aborted_count() == 0
    }
    /// Pairs each flow's completion time with its *source* node — the worker
    /// that was sending — in input order. This is the feed format
    /// `gcs_metrics::StragglerMonitor::ingest_flows` consumes for per-worker
    /// flow skew.
    pub fn worker_completions(&self, flows: &[Flow]) -> Vec<(u64, f64)> {
        flows
            .iter()
            .zip(&self.completion)
            .map(|(f, &t)| (f.src as u64, t))
            .collect()
    }
}

/// A scheduled mid-simulation capacity change on one node's links: at time
/// `at`, the node's egress/ingress capacities become `factor × baseline`.
/// Factors in `(0, 1)` model stragglers (slow NIC, congested ToR port),
/// `0.0` models a dead link, and factors `> 1` model recovery/upgrades.
/// This is the knob the fault-injection layer (`gcs-faults`) turns to make
/// `StragglerMonitor` observe *injected* degradation end-to-end.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Degradation {
    /// Simulation time (seconds) at which the change takes effect.
    pub at: f64,
    /// Node whose links degrade.
    pub node: usize,
    /// Multiplier on the node's baseline egress capacity.
    pub egress_factor: f64,
    /// Multiplier on the node's baseline ingress capacity.
    pub ingress_factor: f64,
}

impl Degradation {
    /// Symmetric slowdown: both directions scaled by `factor`.
    pub fn slowdown(at: f64, node: usize, factor: f64) -> Degradation {
        Degradation {
            at,
            node,
            egress_factor: factor,
            ingress_factor: factor,
        }
    }

    /// Total link cut: both directions to zero.
    pub fn cut(at: f64, node: usize) -> Degradation {
        Degradation::slowdown(at, node, 0.0)
    }
}

/// Why a [`Degradation`] cannot be admitted into a schedule. Rejecting the
/// bad event *at insertion* is what lets the event loop sort with
/// `f64::total_cmp` and never meet a NaN mid-simulation (the seed sorted
/// with `partial_cmp(..).expect("finite event times")`, which panicked at
/// simulation time — long after the buggy value was constructed, e.g. by a
/// `0/0` in a degraded-link computation).
#[derive(Clone, Debug, PartialEq)]
pub enum FlowSimError {
    /// The event's node id does not exist in this network.
    NodeOutOfRange {
        /// Offending node id.
        node: usize,
        /// Number of nodes in the network.
        len: usize,
    },
    /// The event time is NaN, infinite, or negative.
    BadEventTime {
        /// Offending time.
        at: f64,
    },
    /// A capacity factor is NaN, infinite, or negative.
    BadFactor {
        /// Offending factor (egress or ingress).
        factor: f64,
    },
}

impl std::fmt::Display for FlowSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowSimError::NodeOutOfRange { node, len } => {
                write!(
                    f,
                    "degradation: node {node} out of range (network has {len})"
                )
            }
            FlowSimError::BadEventTime { at } => {
                write!(f, "degradation: bad time {at} (must be finite and >= 0)")
            }
            FlowSimError::BadFactor { factor } => {
                write!(
                    f,
                    "degradation: bad factor {factor} (must be finite and >= 0)"
                )
            }
        }
    }
}

impl std::error::Error for FlowSimError {}

/// A network of `n` nodes, each with independent egress and ingress
/// capacity (full-duplex NIC model), plus an optional schedule of mid-run
/// capacity changes ([`Degradation`]).
#[derive(Clone, Debug)]
pub struct Network {
    egress: Vec<f64>,
    ingress: Vec<f64>,
    degradations: Vec<Degradation>,
}

impl Network {
    /// A homogeneous full-duplex network: every node sends and receives at
    /// `capacity` bytes/s.
    pub fn homogeneous(n: usize, capacity: f64) -> Network {
        Network {
            egress: vec![capacity; n],
            ingress: vec![capacity; n],
            degradations: Vec::new(),
        }
    }

    /// Overrides one node's capacities (e.g. a beefier parameter server).
    pub fn with_node_capacity(mut self, node: usize, egress: f64, ingress: f64) -> Network {
        self.egress[node] = egress;
        self.ingress[node] = ingress;
        self
    }

    /// Schedules a mid-simulation capacity change. Factors apply to the
    /// node's *baseline* capacities (piecewise-constant, last event wins),
    /// so two successive events don't compound.
    ///
    /// Rejects malformed events with a typed [`FlowSimError`]: out-of-range
    /// node, non-finite/negative time (NaN from a `0/0` in a degraded-link
    /// computation lands here, at insertion, instead of panicking the event
    /// sort mid-simulation), or non-finite/negative factor.
    pub fn try_with_degradation(mut self, d: Degradation) -> Result<Network, FlowSimError> {
        if d.node >= self.len() {
            return Err(FlowSimError::NodeOutOfRange {
                node: d.node,
                len: self.len(),
            });
        }
        if !d.at.is_finite() || d.at < 0.0 {
            return Err(FlowSimError::BadEventTime { at: d.at });
        }
        for factor in [d.egress_factor, d.ingress_factor] {
            if !factor.is_finite() || factor < 0.0 {
                return Err(FlowSimError::BadFactor { factor });
            }
        }
        self.degradations.push(d);
        Ok(self)
    }

    /// Panicking convenience over [`Network::try_with_degradation`] for
    /// builder chains whose schedules are statically known good.
    ///
    /// # Panics
    /// Panics on an out-of-range node, a non-finite/negative factor, or a
    /// non-finite/negative time — malformed schedules are caller bugs.
    pub fn with_degradation(self, d: Degradation) -> Network {
        match self.try_with_degradation(d) {
            Ok(net) => net,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.egress.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.egress.is_empty()
    }

    /// Max-min fair rates for the given set of active flows under the given
    /// *effective* capacities (progressive filling). A flow crossing a
    /// zero-capacity link freezes at rate 0 — the caller decides whether a
    /// future [`Degradation`] can revive it or the flow must abort.
    fn fair_rates(egress: &[f64], ingress: &[f64], flows: &[(usize, usize)]) -> Vec<f64> {
        let n = egress.len();
        // Link layout: 0..n egress, n..2n ingress.
        let mut cap: Vec<f64> = egress.iter().chain(ingress.iter()).copied().collect();
        let mut users: Vec<usize> = vec![0; 2 * n];
        for &(s, d) in flows {
            users[s] += 1;
            users[n + d] += 1;
        }
        let mut rate = vec![0.0f64; flows.len()];
        let mut frozen = vec![false; flows.len()];
        let mut remaining = flows.len();
        while remaining > 0 {
            // Bottleneck link: minimal fair share among links with users.
            let mut best_share = f64::INFINITY;
            for l in 0..2 * n {
                if users[l] > 0 {
                    let share = cap[l] / users[l] as f64;
                    if share < best_share {
                        best_share = share;
                    }
                }
            }
            debug_assert!(best_share.is_finite());
            // Freeze every unfrozen flow crossing a link at that share.
            let mut froze_any = false;
            for (i, &(s, d)) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                let se = cap[s] / users[s] as f64;
                let si = cap[n + d] / users[n + d] as f64;
                if se <= best_share + 1e-12 || si <= best_share + 1e-12 {
                    rate[i] = best_share;
                    frozen[i] = true;
                    remaining -= 1;
                    froze_any = true;
                    // Remove this flow's usage from its links.
                    cap[s] -= best_share;
                    users[s] -= 1;
                    cap[n + d] -= best_share;
                    users[n + d] -= 1;
                }
            }
            debug_assert!(froze_any, "progressive filling made no progress");
            if !froze_any {
                break;
            }
        }
        rate
    }

    /// Simulates the given flows starting simultaneously at t=0; rates are
    /// recomputed (max-min) after every completion *and every scheduled
    /// [`Degradation`]* (piecewise-constant capacities).
    ///
    /// The seed version of this loop asserted `dt.is_finite()` and panicked
    /// when flows were stranded. Stranded flows are now a *reported*
    /// condition: a flow with zero rate and no future capacity event that
    /// could revive it is marked aborted at the current time, the
    /// `faults/flow_aborted_total` counter is bumped, and the report stays
    /// finite — degraded fabrics are data, not crashes.
    ///
    /// An empty flow list is a valid degenerate input (a collective step
    /// with nothing to send) and yields a zero report rather than touching
    /// the rate solver.
    pub fn simulate(&self, flows: &[Flow]) -> FlowReport {
        if flows.is_empty() {
            return FlowReport {
                completion: Vec::new(),
                makespan: 0.0,
                aborted: Vec::new(),
            };
        }
        // Effective capacities evolve as degradation events fire.
        let mut egress = self.egress.clone();
        let mut ingress = self.ingress.clone();
        let mut events = self.degradations.clone();
        // Total order: insertion validation guarantees finite times, and
        // `total_cmp` cannot panic even if that invariant is ever violated.
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        let mut next_event = 0usize;

        let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes.max(0.0)).collect();
        let mut completion = vec![0.0f64; flows.len()];
        let mut aborted = vec![false; flows.len()];
        let mut done: Vec<bool> = remaining.iter().map(|&b| b == 0.0).collect();
        let mut now = 0.0f64;
        loop {
            // Fire every event due at (or before) the current time.
            while next_event < events.len() && events[next_event].at <= now + 1e-12 {
                let d = events[next_event];
                egress[d.node] = self.egress[d.node] * d.egress_factor;
                ingress[d.node] = self.ingress[d.node] * d.ingress_factor;
                next_event += 1;
            }
            let active: Vec<usize> = (0..flows.len()).filter(|&i| !done[i]).collect();
            if active.is_empty() {
                break;
            }
            let endpoints: Vec<(usize, usize)> = active
                .iter()
                .map(|&i| (flows[i].src, flows[i].dst))
                .collect();
            let rates = Self::fair_rates(&egress, &ingress, &endpoints);
            // Earliest completion among active flows.
            let mut dt = f64::INFINITY;
            for (k, &i) in active.iter().enumerate() {
                if rates[k] > 0.0 {
                    dt = dt.min(remaining[i] / rates[k]);
                }
            }
            let horizon = events.get(next_event).map(|e| e.at);
            if !dt.is_finite() && horizon.is_none() {
                // No flow can progress and no event can change that: abort
                // the stranded flows at the current instant.
                for &i in &active {
                    done[i] = true;
                    aborted[i] = true;
                    completion[i] = now;
                }
                break;
            }
            // Advance to the earlier of next completion and next event.
            let step = match horizon {
                Some(t) if t - now < dt => (t - now).max(0.0),
                _ => dt,
            };
            now += step;
            for (k, &i) in active.iter().enumerate() {
                remaining[i] -= rates[k] * step;
                if remaining[i] <= 1e-6 {
                    remaining[i] = 0.0;
                    done[i] = true;
                    completion[i] = now;
                }
            }
        }
        let n_aborted = aborted.iter().filter(|&&a| a).count();
        if n_aborted > 0 {
            gcs_metrics::counter_add("faults/flow_aborted_total", n_aborted as f64);
        }
        for (i, &t) in completion.iter().enumerate() {
            if !aborted[i] {
                gcs_metrics::observe("flowsim/fct_s", t);
            }
        }
        FlowReport {
            makespan: completion.iter().copied().fold(0.0, f64::max),
            completion,
            aborted,
        }
    }

    /// Simulates a sequence of flow *phases*: phase `k+1` starts only after
    /// phase `k` completes (how a stepwise collective behaves with
    /// synchronization between steps). Returns total time.
    pub fn simulate_phases(&self, phases: &[Vec<Flow>]) -> f64 {
        phases.iter().map(|p| self.simulate(p).makespan).sum()
    }
}

/// Builds the flow phases of a ring all-reduce with `n` workers and
/// `payload` bytes per worker: `2(n−1)` steps, each sending `payload/n` to
/// the next node around the ring.
pub fn ring_all_reduce_phases(n: usize, payload: f64) -> Vec<Vec<Flow>> {
    let seg = payload / n as f64;
    (0..2 * (n - 1))
        .map(|_| {
            (0..n)
                .map(|i| Flow {
                    src: i,
                    dst: (i + 1) % n,
                    bytes: seg,
                })
                .collect()
        })
        .collect()
}

/// Builds the single-phase flow set of an all-gather: every ordered pair
/// exchanges `payload` bytes.
pub fn all_gather_flows(n: usize, payload: f64) -> Vec<Flow> {
    let mut flows = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s != d {
                flows.push(Flow {
                    src: s,
                    dst: d,
                    bytes: payload,
                });
            }
        }
    }
    flows
}

/// Builds the push phase of parameter-server aggregation: every worker
/// (nodes `1..n`) sends `payload` bytes to the PS (node 0).
pub fn ps_push_flows(n_workers: usize, payload: f64) -> Vec<Flow> {
    (1..=n_workers)
        .map(|w| Flow {
            src: w,
            dst: 0,
            bytes: payload,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    #[test]
    fn single_flow_runs_at_line_rate() {
        let net = Network::homogeneous(2, 10.0 * GB);
        let r = net.simulate(&[Flow {
            src: 0,
            dst: 1,
            bytes: 10.0 * GB,
        }]);
        assert!((r.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_an_egress_link() {
        let net = Network::homogeneous(3, 10.0 * GB);
        let flows = vec![
            Flow {
                src: 0,
                dst: 1,
                bytes: 10.0 * GB,
            },
            Flow {
                src: 0,
                dst: 2,
                bytes: 10.0 * GB,
            },
        ];
        let r = net.simulate(&flows);
        // Both share node 0's egress: each gets 5 GB/s -> 2 s.
        assert!((r.makespan - 2.0).abs() < 1e-6);
    }

    #[test]
    fn incast_serializes_on_the_receiver() {
        // The §2.1 argument: n-1 flows into one node complete (n-1)x slower.
        let n = 8;
        let net = Network::homogeneous(n, 10.0 * GB);
        let r = net.simulate(&ps_push_flows(n - 1, 10.0 * GB));
        assert!((r.makespan - (n - 1) as f64).abs() < 1e-6);
    }

    #[test]
    fn short_flow_finishes_and_frees_bandwidth() {
        let net = Network::homogeneous(3, 10.0 * GB);
        let flows = vec![
            Flow {
                src: 0,
                dst: 2,
                bytes: 5.0 * GB,
            },
            Flow {
                src: 1,
                dst: 2,
                bytes: 20.0 * GB,
            },
        ];
        let r = net.simulate(&flows);
        // Phase 1: both at 5 GB/s until the short one finishes at t=1
        // (5 GB at 5 GB/s). Phase 2: long flow has 15 GB left at 10 GB/s.
        assert!((r.completion[0] - 1.0).abs() < 1e-6, "{:?}", r);
        assert!((r.completion[1] - 2.5).abs() < 1e-6, "{:?}", r);
    }

    #[test]
    fn ring_all_reduce_matches_closed_form() {
        let n = 4;
        let payload = 8.0 * GB;
        let bw = 10.0 * GB;
        let net = Network::homogeneous(n, bw);
        let t = net.simulate_phases(&ring_all_reduce_phases(n, payload));
        // Closed form: 2(n-1)/n * payload / bw.
        let expect = 2.0 * (n as f64 - 1.0) / n as f64 * payload / bw;
        assert!((t - expect).abs() / expect < 1e-6, "t={t} expect={expect}");
    }

    #[test]
    fn all_gather_makespan_matches_closed_form() {
        let n = 4;
        let payload = 1.0 * GB;
        let bw = 10.0 * GB;
        let net = Network::homogeneous(n, bw);
        let r = net.simulate(&all_gather_flows(n, payload));
        // Every node must receive (n-1) payloads through its ingress.
        let expect = (n as f64 - 1.0) * payload / bw;
        assert!((r.makespan - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn beefy_ps_absorbs_incast() {
        let n = 5;
        let net = Network::homogeneous(n, 10.0 * GB).with_node_capacity(0, 40.0 * GB, 40.0 * GB);
        let r = net.simulate(&ps_push_flows(4, 10.0 * GB));
        // PS ingress 40 GB/s over 4 flows: each gets its full 10 GB/s.
        assert!((r.makespan - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_flow_list_yields_zero_report() {
        // Regression: a degenerate collective step with no flows must return
        // a well-formed zero report, not NaN or a div-by-zero in the solver.
        let net = Network::homogeneous(4, 10.0 * GB);
        let r = net.simulate(&[]);
        assert_eq!(r.makespan, 0.0);
        assert!(r.makespan.is_finite());
        assert!(r.completion.is_empty());
        assert!(r.worker_completions(&[]).is_empty());
        // Phase sequences containing empty phases stay finite too.
        let t = net.simulate_phases(&[vec![], ring_all_reduce_phases(4, GB)[0].clone(), vec![]]);
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn heterogeneous_capacities_shape_completion_times() {
        // Node 1's egress is halved and node 2's quartered: with each flow
        // alone on its links, completion times follow the slow senders.
        let net = Network::homogeneous(4, 10.0 * GB)
            .with_node_capacity(1, 5.0 * GB, 10.0 * GB)
            .with_node_capacity(2, 2.5 * GB, 10.0 * GB);
        let flows = vec![
            Flow {
                src: 0,
                dst: 3,
                bytes: 10.0 * GB,
            },
            Flow {
                src: 1,
                dst: 3,
                bytes: 10.0 * GB,
            },
            Flow {
                src: 2,
                dst: 3,
                bytes: 10.0 * GB,
            },
        ];
        let r = net.simulate(&flows);
        // Max-min: node 2 is frozen at its 2.5 GB/s egress; the remaining
        // 7.5 GB/s of node 3's ingress splits evenly, so flows 0 and 1 run
        // at 3.75 GB/s and finish together at 8/3 s. Flow 2 then finishes
        // its remainder alone at 2.5 GB/s, at exactly 4 s.
        assert!((r.completion[0] - 8.0 / 3.0).abs() < 1e-6, "{:?}", r);
        assert!((r.completion[1] - 8.0 / 3.0).abs() < 1e-6, "{:?}", r);
        assert!((r.completion[2] - 4.0).abs() < 1e-6, "{:?}", r);
        assert!((r.makespan - 4.0).abs() < 1e-6);
        // Worker attribution pairs source ids with those times.
        let wc = r.worker_completions(&flows);
        assert_eq!(wc.len(), 3);
        assert_eq!(wc[2].0, 2);
        assert!((wc[2].1 - 4.0).abs() < 1e-6);
    }

    #[test]
    fn simulate_captures_flow_completion_metrics() {
        let net = Network::homogeneous(3, 10.0 * GB);
        let flows = ps_push_flows(2, 10.0 * GB);
        let ((), reg) = gcs_metrics::with_capture(|| {
            net.simulate(&flows);
        });
        if !gcs_metrics::is_captured() {
            return;
        }
        let h = reg.hist("flowsim/fct_s").unwrap();
        assert_eq!(h.count(), 2);
        // Both flows share the receiver ingress: each completes at 2 s.
        assert!((h.max().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flows_complete_immediately() {
        let net = Network::homogeneous(2, GB);
        let r = net.simulate(&[Flow {
            src: 0,
            dst: 1,
            bytes: 0.0,
        }]);
        assert_eq!(r.makespan, 0.0);
        assert!(r.all_completed());
    }

    #[test]
    fn mid_simulation_slowdown_stretches_completion() {
        // 10 GB at 10 GB/s would finish at t=1; halving the sender's egress
        // at t=0.5 leaves 5 GB to move at 5 GB/s -> finish at 1.5 s.
        let net =
            Network::homogeneous(2, 10.0 * GB).with_degradation(Degradation::slowdown(0.5, 0, 0.5));
        let r = net.simulate(&[Flow {
            src: 0,
            dst: 1,
            bytes: 10.0 * GB,
        }]);
        assert!(r.all_completed());
        assert!((r.makespan - 1.5).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn capacity_cut_aborts_stranded_flow_finitely() {
        // The sender's link dies at t=0.5 with half the bytes still queued:
        // the flow must abort *at* 0.5, not hang or panic.
        let net = Network::homogeneous(2, 10.0 * GB).with_degradation(Degradation::cut(0.5, 0));
        let r = net.simulate(&[Flow {
            src: 0,
            dst: 1,
            bytes: 10.0 * GB,
        }]);
        assert_eq!(r.aborted, vec![true]);
        assert_eq!(r.aborted_count(), 1);
        assert!(r.makespan.is_finite());
        assert!((r.completion[0] - 0.5).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn zero_capacity_link_aborts_at_time_zero_and_counts() {
        let net = Network::homogeneous(3, 10.0 * GB).with_degradation(Degradation::cut(0.0, 1));
        let flows = vec![
            Flow {
                src: 0,
                dst: 2,
                bytes: 10.0 * GB,
            },
            Flow {
                src: 1,
                dst: 2,
                bytes: 10.0 * GB,
            },
        ];
        let (r, reg) = gcs_metrics::with_capture(|| net.simulate(&flows));
        // The healthy flow still completes; the dead-sender flow aborts at 0.
        assert!(!r.aborted[0]);
        assert!((r.completion[0] - 1.0).abs() < 1e-6, "{r:?}");
        assert!(r.aborted[1]);
        assert_eq!(
            r.completion[1], 1.0,
            "stranded flow aborts once nothing else can change: {r:?}"
        );
        assert!(r.makespan.is_finite());
        if gcs_metrics::is_captured() {
            assert_eq!(reg.counter("faults/flow_aborted_total"), Some(1.0));
        }
    }

    #[test]
    fn degradation_recovery_revives_a_stalled_flow() {
        // Link dies at 0.2 and comes back at 0.7: 2 GB moved, 0.5 s stall,
        // then the remaining 8 GB at line rate -> 0.7 + 0.8 = 1.5 s.
        let net = Network::homogeneous(2, 10.0 * GB)
            .with_degradation(Degradation::cut(0.2, 0))
            .with_degradation(Degradation::slowdown(0.7, 0, 1.0));
        let r = net.simulate(&[Flow {
            src: 0,
            dst: 1,
            bytes: 10.0 * GB,
        }]);
        assert!(r.all_completed(), "{r:?}");
        assert!((r.makespan - 1.5).abs() < 1e-6, "{r:?}");
    }

    /// End-to-end: an injected straggler slowdown in the flow simulator is
    /// visible to `StragglerMonitor` — the degraded worker is reported
    /// slowest with the expected flow skew.
    #[test]
    fn straggler_monitor_sees_injected_degradation() {
        let net = Network::homogeneous(4, 10.0 * GB)
            .with_degradation(Degradation::slowdown(0.0, 1, 0.25));
        let flows = vec![
            Flow {
                src: 0,
                dst: 2,
                bytes: 10.0 * GB,
            },
            Flow {
                src: 1,
                dst: 3,
                bytes: 10.0 * GB,
            },
        ];
        let r = net.simulate(&flows);
        assert!(r.all_completed());
        assert!((r.completion[0] - 1.0).abs() < 1e-6, "{r:?}");
        assert!((r.completion[1] - 4.0).abs() < 1e-6, "{r:?}");
        let mut mon = gcs_metrics::StragglerMonitor::new();
        mon.ingest_flows(&r.worker_completions(&flows));
        let report = mon.report();
        let skew = report.flow_skew.expect("two workers recorded");
        // max/mean = 4.0 / 2.5 = 1.6.
        assert!((skew - 1.6).abs() < 1e-6, "skew = {skew}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degradation_rejects_bad_node() {
        let _ = Network::homogeneous(2, GB).with_degradation(Degradation::cut(0.0, 5));
    }

    #[test]
    fn try_with_degradation_returns_typed_errors() {
        let net = || Network::homogeneous(2, GB);
        assert_eq!(
            net()
                .try_with_degradation(Degradation::cut(0.0, 5))
                .unwrap_err(),
            FlowSimError::NodeOutOfRange { node: 5, len: 2 }
        );
        match net().try_with_degradation(Degradation::cut(f64::NAN, 0)) {
            Err(FlowSimError::BadEventTime { at }) => assert!(at.is_nan()),
            other => panic!("NaN time admitted: {other:?}"),
        }
        assert_eq!(
            net()
                .try_with_degradation(Degradation::cut(-1.0, 0))
                .unwrap_err(),
            FlowSimError::BadEventTime { at: -1.0 }
        );
        match net().try_with_degradation(Degradation::slowdown(0.0, 0, f64::NAN)) {
            Err(FlowSimError::BadFactor { factor }) => assert!(factor.is_nan()),
            other => panic!("NaN factor admitted: {other:?}"),
        }
        // The seed's asserts let +inf through (`inf >= 0.0` holds); the
        // typed path rejects every non-finite factor.
        assert_eq!(
            net()
                .try_with_degradation(Degradation::slowdown(0.0, 0, f64::INFINITY))
                .unwrap_err(),
            FlowSimError::BadFactor {
                factor: f64::INFINITY
            }
        );
        // A good event is admitted and the error type renders usefully.
        assert!(net().try_with_degradation(Degradation::cut(1.0, 1)).is_ok());
        let msg = FlowSimError::BadEventTime { at: f64::NAN }.to_string();
        assert!(msg.contains("bad time"), "{msg}");
    }

    #[test]
    fn zero_capacity_zero_size_flow_stays_finite() {
        // Degenerate corner the ISSUE pins: a link cut to zero capacity at
        // t=0 carrying a zero-byte flow. Nothing needs to move, so the flow
        // completes instantly instead of aborting or dividing 0/0 into the
        // event queue.
        let net = Network::homogeneous(2, GB).with_degradation(Degradation::cut(0.0, 0));
        let r = net.simulate(&[Flow {
            src: 0,
            dst: 1,
            bytes: 0.0,
        }]);
        assert_eq!(r.completion, vec![0.0]);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.aborted_count(), 0);
        assert!(r.completion.iter().all(|t| t.is_finite()));
    }
}
