//! Closed-form alpha–beta timing for collective operations.
//!
//! The standard cost model for a collective is `steps · α + wire_bytes / β`,
//! where α is the per-step latency and β the achievable point-to-point
//! bandwidth. The wire-byte terms below are the textbook values (Sanders et
//! al. \[41\]; Baidu ring all-reduce \[2\]):
//!
//! | collective | bytes on the busiest worker's link, payload `S` per worker |
//! |---|---|
//! | ring all-reduce | `2 S (n−1)/n` |
//! | tree all-reduce | `2 S` (reduce up + broadcast down) |
//! | reduce-scatter | `S (n−1)/n` |
//! | all-gather | `S (n−1)` · *contention factor* |
//! | parameter server | `S n` on the PS's link (incast) |
//!
//! All-gather and PS additionally pay a **contention factor** reflecting the
//! many-to-one congestion the paper cites as the scalability problem of
//! non-all-reduce aggregation (§2.1, \[46, 56, 61\]). Its default is
//! calibrated against the flow simulator (see the crate's integration
//! tests).

/// Which collective a scheme uses for its main aggregation round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Collective {
    /// Bandwidth-optimal ring all-reduce (reduce-scatter + all-gather).
    RingAllReduce,
    /// Latency-optimal tree all-reduce (recursive halving/doubling).
    TreeAllReduce,
    /// All-gather: every worker receives every other worker's payload.
    AllGather,
    /// Reduce-scatter only (each worker ends with 1/n of the reduction).
    ReduceScatter,
    /// Centralized parameter-server aggregation (push + pull).
    ParameterServer,
    /// One-to-all broadcast.
    Broadcast,
}

/// A training cluster's communication capabilities, as the timing model
/// sees them.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of workers (GPUs) participating in collectives.
    pub n_workers: usize,
    /// Effective per-worker collective bandwidth, bytes/s. This is
    /// *achieved goodput*, not line rate.
    pub bandwidth: f64,
    /// Per-step latency α, seconds (launch + network RTT share).
    pub alpha: f64,
    /// Multiplier (>= 1) on all-gather wire time modelling many-to-one
    /// contention; calibrated against the flow simulator.
    pub allgather_contention: f64,
    /// Multiplier (>= 1) on parameter-server wire time (incast at the PS,
    /// plus RDMA connection-scaling effects \[61\]).
    pub ps_incast: f64,
}

impl ClusterSpec {
    /// The paper's testbed: 2 nodes × 2 A100s, one 100 Gbps ConnectX-6 per
    /// node. Effective bandwidth back-solved from Table 2 (see
    /// `EXPERIMENTS.md`): 9.53 GB/s per worker.
    pub fn paper_testbed() -> ClusterSpec {
        ClusterSpec {
            n_workers: 4,
            bandwidth: 9.53e9,
            alpha: 20e-6,
            allgather_contention: 1.8,
            ps_incast: 2.2,
        }
    }

    /// A larger simulated cluster with `n` workers at the same per-worker
    /// effective bandwidth (used by scaling ablations).
    pub fn scaled(n: usize) -> ClusterSpec {
        ClusterSpec {
            n_workers: n,
            ..ClusterSpec::paper_testbed()
        }
    }

    /// Seconds to run `collective` with `payload_bytes` of input per worker.
    ///
    /// `payload_bytes` is the **all-reduce input size** the paper's `b`
    /// accounting uses (§3, Table 3 note): for ring all-reduce the wire
    /// traffic is `~2×` the payload.
    pub fn collective_seconds(&self, collective: Collective, payload_bytes: f64) -> f64 {
        let n = self.n_workers.max(1) as f64;
        let (steps, wire, factor) = match collective {
            Collective::RingAllReduce => {
                (2.0 * (n - 1.0), 2.0 * payload_bytes * (n - 1.0) / n, 1.0)
            }
            Collective::TreeAllReduce => (2.0 * n.log2().ceil(), 2.0 * payload_bytes, 1.0),
            Collective::AllGather => (
                n - 1.0,
                payload_bytes * (n - 1.0),
                self.allgather_contention,
            ),
            Collective::ReduceScatter => (n - 1.0, payload_bytes * (n - 1.0) / n, 1.0),
            Collective::ParameterServer => (2.0, payload_bytes * n, self.ps_incast),
            Collective::Broadcast => (1.0, payload_bytes, 1.0),
        };
        steps * self.alpha + wire * factor / self.bandwidth
    }

    /// Convenience: seconds for a payload expressed in **bits per
    /// coordinate** over a gradient of `d` coordinates.
    pub fn collective_seconds_bits(
        &self,
        collective: Collective,
        bits_per_coord: f64,
        d: u64,
    ) -> f64 {
        self.collective_seconds(collective, bits_per_coord * d as f64 / 8.0)
    }
}

/// A two-level cluster: fast intra-node interconnect (NVLink) under a
/// shared per-node NIC — the paper's actual testbed shape (2 nodes × 2
/// A100s, one ConnectX-6 each).
///
/// Hierarchical ring all-reduce decomposes into intra-node reduce-scatter,
/// an inter-node ring over node leaders, and intra-node all-gather; the
/// inter-node stage dominates whenever `inter_bw << intra_bw`, which is why
/// the flat model's single effective bandwidth is a good approximation —
/// validated by the tests below.
#[derive(Clone, Debug)]
pub struct HierarchicalSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Intra-node (NVLink) per-GPU bandwidth, bytes/s.
    pub intra_bw: f64,
    /// Inter-node (NIC) per-node bandwidth, bytes/s.
    pub inter_bw: f64,
    /// Per-step latency, seconds.
    pub alpha: f64,
}

impl HierarchicalSpec {
    /// The paper's testbed: 2 nodes × 2 GPUs, NVLink3 (~230 GB/s effective)
    /// intra-node, 100 Gbps ConnectX-6 (~9.5 GB/s achieved goodput,
    /// matching the flat model's calibration) inter-node.
    pub fn paper_testbed() -> HierarchicalSpec {
        HierarchicalSpec {
            nodes: 2,
            gpus_per_node: 2,
            intra_bw: 230e9,
            inter_bw: 2.0 * 9.53e9,
            alpha: 20e-6,
        }
    }

    /// Total workers.
    pub fn n_workers(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Seconds for a hierarchical ring all-reduce of `payload_bytes` per
    /// GPU: intra reduce-scatter (g GPUs), inter ring over leaders with
    /// `payload/g` per leader, intra all-gather.
    pub fn ring_all_reduce_seconds(&self, payload_bytes: f64) -> f64 {
        let g = self.gpus_per_node.max(1) as f64;
        let m = self.nodes.max(1) as f64;
        // Intra-node reduce-scatter + all-gather: 2 (g-1)/g * payload at
        // NVLink speed, 2(g-1) steps.
        let intra = if self.gpus_per_node > 1 {
            2.0 * (g - 1.0) / g * payload_bytes / self.intra_bw + 2.0 * (g - 1.0) * self.alpha
        } else {
            0.0
        };
        // Inter-node ring over node leaders: each carries payload/g (its
        // reduce-scattered shard is aggregated for the node) through the
        // node NIC.
        let inter = if self.nodes > 1 {
            // All g GPUs of a node drive the NIC concurrently with their
            // shards: total payload per node crossing the NIC is `payload`
            // (g shards of payload/g each), amplified by the ring factor.
            2.0 * (m - 1.0) / m * payload_bytes / (self.inter_bw / g) + 2.0 * (m - 1.0) * self.alpha
        } else {
            0.0
        };
        intra + inter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed() -> ClusterSpec {
        ClusterSpec::paper_testbed()
    }

    #[test]
    fn hierarchical_schedule_beats_the_flat_ring_but_same_order() {
        // The flat model (calibrated from Table 2) reflects NCCL's flat
        // ring, which pushes 2(n−1)/n × payload through each NIC. A
        // hierarchical schedule pushes only (m−1)/m × payload per GPU —
        // structurally faster, same order of magnitude. (The testbed runs
        // the flat ring; the hierarchical model quantifies headroom.)
        let flat = testbed().collective_seconds(Collective::RingAllReduce, 690e6);
        let hier = HierarchicalSpec::paper_testbed().ring_all_reduce_seconds(690e6);
        assert!(hier < flat, "hier {hier} should beat flat {flat}");
        assert!(hier > 0.5 * flat, "hier {hier} vs flat {flat}: same order");
    }

    #[test]
    fn nvlink_stage_is_negligible_next_to_the_nic() {
        let h = HierarchicalSpec::paper_testbed();
        let single_node = HierarchicalSpec {
            nodes: 1,
            ..h.clone()
        };
        let intra_only = single_node.ring_all_reduce_seconds(690e6);
        let full = h.ring_all_reduce_seconds(690e6);
        assert!(intra_only < 0.1 * full, "intra {intra_only} vs full {full}");
    }

    #[test]
    fn more_gpus_per_node_contend_for_the_nic() {
        let two = HierarchicalSpec::paper_testbed();
        let eight = HierarchicalSpec {
            gpus_per_node: 8,
            ..two.clone()
        };
        // Same per-GPU payload, more GPUs sharing each NIC: slower.
        assert!(eight.ring_all_reduce_seconds(690e6) > 2.0 * two.ring_all_reduce_seconds(690e6));
    }

    #[test]
    fn fp16_halves_ring_allreduce_time() {
        let c = testbed();
        let fp32 = c.collective_seconds(Collective::RingAllReduce, 345e6 * 4.0);
        let fp16 = c.collective_seconds(Collective::RingAllReduce, 345e6 * 2.0);
        let ratio = fp32 / fp16;
        assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn table2_comm_delta_reproduced() {
        // Table 2: BERT TF32 throughput goes 3.32 -> 2.44 rounds/s when
        // communication switches FP16 -> FP32; the implied comm-time delta
        // is 1/2.44 - 1/3.32 = 0.1086 s. Our model should land within 5%.
        let c = testbed();
        let delta = c.collective_seconds(Collective::RingAllReduce, 345e6 * 4.0)
            - c.collective_seconds(Collective::RingAllReduce, 345e6 * 2.0);
        let paper = 1.0 / 2.44 - 1.0 / 3.32;
        assert!(
            (delta - paper).abs() / paper < 0.05,
            "delta = {delta}, paper = {paper}"
        );
    }

    #[test]
    fn allreduce_beats_allgather_for_same_payload() {
        let c = testbed();
        let ar = c.collective_seconds(Collective::RingAllReduce, 1e8);
        let ag = c.collective_seconds(Collective::AllGather, 1e8);
        assert!(ag > ar);
    }

    #[test]
    fn ps_pays_incast() {
        let c = testbed();
        let ar = c.collective_seconds(Collective::RingAllReduce, 1e8);
        let ps = c.collective_seconds(Collective::ParameterServer, 1e8);
        assert!(ps > 2.0 * ar, "ps = {ps}, ar = {ar}");
    }

    #[test]
    fn allgather_scales_worse_with_n() {
        // Wire bytes per worker: all-reduce ~2S, all-gather (n-1)S.
        let small = ClusterSpec::scaled(4);
        let big = ClusterSpec::scaled(32);
        let ar_growth = big.collective_seconds(Collective::RingAllReduce, 1e8)
            / small.collective_seconds(Collective::RingAllReduce, 1e8);
        let ag_growth = big.collective_seconds(Collective::AllGather, 1e8)
            / small.collective_seconds(Collective::AllGather, 1e8);
        assert!(ar_growth < 1.5, "ar_growth = {ar_growth}");
        assert!(ag_growth > 5.0, "ag_growth = {ag_growth}");
    }

    #[test]
    fn bits_helper_matches_bytes() {
        let c = testbed();
        let via_bits = c.collective_seconds_bits(Collective::RingAllReduce, 16.0, 1_000_000);
        let via_bytes = c.collective_seconds(Collective::RingAllReduce, 2_000_000.0);
        assert!((via_bits - via_bytes).abs() < 1e-12);
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let c = ClusterSpec {
            n_workers: 1,
            ..testbed()
        };
        let t = c.collective_seconds(Collective::RingAllReduce, 1e8);
        assert!((0.0..1e-3).contains(&t)); // no wire traffic with one worker
    }
}
