//! # gcs-netsim
//!
//! Network timing substrate for the gradient-compression suite.
//!
//! Two layers, from cheap to detailed:
//!
//! * [`timing`] — closed-form alpha-beta models for every collective the
//!   compression schemes use (ring/tree all-reduce, all-gather,
//!   reduce-scatter, broadcast, parameter-server). These drive the
//!   throughput tables: given a payload size in bytes per worker, they
//!   return seconds.
//! * [`flowsim`] — a flow-level event simulator with max-min fair bandwidth
//!   sharing. It exists to *validate* the closed forms (integration tests
//!   compare them) and to expose the incast effects that make all-gather and
//!   parameter-server aggregation less scalable than all-reduce (§2.1):
//!   many-to-one traffic serializes on the receiver's ingress link. Links
//!   can degrade mid-simulation ([`flowsim::Degradation`]: capacity cuts,
//!   straggler slowdowns) so the fault-injection layer can observe injected
//!   network faults end-to-end; stranded flows abort finitely instead of
//!   panicking.
//!
//! The calibrated [`timing::ClusterSpec::paper_testbed`] reflects the paper's
//! 2-node x 2-A100, 100 Gbps setup: the *effective* per-worker all-reduce
//! bandwidth back-solved from Table 2 is 9.53 GB/s (~76% of line rate,
//! typical NCCL goodput).

pub mod flowsim;
pub mod timing;

pub use flowsim::{Degradation, Flow, FlowReport, FlowSimError, Network};
pub use timing::{ClusterSpec, Collective, HierarchicalSpec};
