//! Table 1: the paper's assessment of eight prior gradient-compression
//! systems, encoded as data so the bench harness can regenerate the table.

/// Tri-state assessment cell: yes, no, or not applicable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cell {
    /// Criterion satisfied (✓).
    Yes,
    /// Criterion not satisfied (✗).
    No,
    /// Criterion not applicable (N/A).
    NotApplicable,
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Yes => write!(f, "yes"),
            Cell::No => write!(f, "no"),
            Cell::NotApplicable => write!(f, "N/A"),
        }
    }
}

/// One prior system's row in Table 1.
#[derive(Clone, Debug)]
pub struct SystemAssessment {
    /// Citation tag used by the paper.
    pub reference: &'static str,
    /// Short name of the system/paper.
    pub name: &'static str,
    /// Compared with the stronger FP16 baseline?
    pub fp16_baseline: Cell,
    /// Considered compression error in system design?
    pub considers_error: Cell,
    /// End-to-end evaluation coverage: (tasks with E2E evaluation, total).
    pub e2e_tasks: (u32, u32),
    /// Did higher throughput translate to better TTA in their results?
    pub throughput_implies_tta: Cell,
    /// All-reduce compatibility for the new compression algorithm?
    pub allreduce_compatible: Cell,
}

/// The eight systems the paper assesses, in column order (\[11\] \[14\] \[23\]
/// \[30\] \[32\] \[34\] \[60\] \[62\]).
pub fn table1() -> Vec<SystemAssessment> {
    use Cell::*;
    vec![
        SystemAssessment {
            reference: "[11]",
            name: "Agarwal et al. (utility study)",
            fp16_baseline: No,
            considers_error: NotApplicable,
            e2e_tasks: (0, 3),
            throughput_implies_tta: NotApplicable,
            allreduce_compatible: NotApplicable,
        },
        SystemAssessment {
            reference: "[14]",
            name: "HiPress",
            fp16_baseline: No,
            considers_error: No,
            e2e_tasks: (2, 8),
            throughput_implies_tta: Yes,
            allreduce_compatible: NotApplicable,
        },
        SystemAssessment {
            reference: "[23]",
            name: "OmniReduce",
            fp16_baseline: No,
            considers_error: Yes,
            e2e_tasks: (1, 6),
            throughput_implies_tta: Yes,
            allreduce_compatible: No,
        },
        SystemAssessment {
            reference: "[30]",
            name: "Parallax",
            fp16_baseline: No,
            considers_error: NotApplicable,
            e2e_tasks: (3, 4),
            throughput_implies_tta: Yes,
            allreduce_compatible: Yes,
        },
        SystemAssessment {
            reference: "[32]",
            name: "Lossless homomorphic compression",
            fp16_baseline: No,
            considers_error: Yes,
            e2e_tasks: (4, 4),
            throughput_implies_tta: No,
            allreduce_compatible: Yes,
        },
        SystemAssessment {
            reference: "[34]",
            name: "THC",
            fp16_baseline: No,
            considers_error: Yes,
            e2e_tasks: (3, 7),
            throughput_implies_tta: Yes,
            allreduce_compatible: No,
        },
        SystemAssessment {
            reference: "[60]",
            name: "Espresso",
            fp16_baseline: No,
            considers_error: No,
            e2e_tasks: (4, 4),
            throughput_implies_tta: Yes,
            allreduce_compatible: NotApplicable,
        },
        SystemAssessment {
            reference: "[62]",
            name: "CUPCAKE",
            fp16_baseline: No,
            considers_error: No,
            e2e_tasks: (3, 3),
            throughput_implies_tta: No,
            allreduce_compatible: No,
        },
    ]
}

/// Renders Table 1 as aligned text (the bench target prints this).
pub fn render_table1() -> String {
    let rows = table1();
    let mut out = String::new();
    out.push_str(
        "system                            | FP16 base | considers err | E2E tasks | thr->TTA | all-reduce\n",
    );
    out.push_str(
        "----------------------------------+-----------+---------------+-----------+----------+-----------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:>4} | {:>9} | {:>13} | {:>6}/{:<2} | {:>8} | {:>10}\n",
            r.name,
            r.reference,
            r.fp16_baseline.to_string(),
            r.considers_error.to_string(),
            r.e2e_tasks.0,
            r.e2e_tasks.1,
            r.throughput_implies_tta.to_string(),
            r.allreduce_compatible.to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_systems_and_no_fp16_baselines() {
        let t = table1();
        assert_eq!(t.len(), 8);
        // Table 1's first row: no prior system compares against FP16 —
        // the paper's headline evaluation gap.
        assert!(t.iter().all(|s| s.fp16_baseline == Cell::No));
    }

    #[test]
    fn e2e_coverage_is_partial_overall() {
        let t = table1();
        let covered: u32 = t.iter().map(|s| s.e2e_tasks.0).sum();
        let total: u32 = t.iter().map(|s| s.e2e_tasks.1).sum();
        assert!(covered < total, "the table should show incomplete coverage");
    }

    #[test]
    fn render_has_all_rows() {
        let s = render_table1();
        assert_eq!(s.lines().count(), 10);
        assert!(s.contains("THC"));
        assert!(s.contains("CUPCAKE"));
    }
}
