//! Error feedback (EF) — the memory mechanism that makes biased compressors
//! converge.
//!
//! EF \[29, 44\] keeps, per worker, the residual between what the worker
//! wanted to send and what the compressor actually delivered, and adds it
//! back before the next compression. For TopK-style sparsifiers this is what
//! guarantees every coordinate is eventually transmitted; for PowerSGD it is
//! part of the algorithm's definition. The paper applies EF to both TopK and
//! TopKC (§3.1.3).
//!
//! The helper here is deliberately dumb: schemes call
//! [`ErrorFeedback::corrected`] to get `gradient + memory` and
//! [`ErrorFeedback::update`] with the contribution that actually made it
//! onto the wire. The *telescoping invariant* —
//! `memory_{t+1} = corrected_t − sent_t`, so the cumulative sent stream
//! equals the cumulative gradient stream minus the current memory — is
//! property-tested.

/// Per-worker error-feedback memories.
#[derive(Clone, Debug)]
pub struct ErrorFeedback {
    memories: Vec<Vec<f32>>,
    enabled: bool,
}

impl ErrorFeedback {
    /// Creates EF state for `n_workers` workers; memories are lazily sized
    /// on first use.
    pub fn new(n_workers: usize, enabled: bool) -> ErrorFeedback {
        ErrorFeedback {
            memories: vec![Vec::new(); n_workers],
            enabled,
        }
    }

    /// Whether EF is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of workers this EF state tracks.
    pub fn n_workers(&self) -> usize {
        self.memories.len()
    }

    /// Returns `gradient + memory[worker]` (or a plain copy when disabled).
    ///
    /// # Panics
    /// Panics if `worker` is out of range or the gradient length changed
    /// between rounds.
    pub fn corrected(&mut self, worker: usize, gradient: &[f32]) -> Vec<f32> {
        let mem = &mut self.memories[worker];
        if mem.is_empty() {
            mem.resize(gradient.len(), 0.0);
        }
        assert_eq!(
            mem.len(),
            gradient.len(),
            "ErrorFeedback: gradient dimension changed"
        );
        if !self.enabled {
            return gradient.to_vec();
        }
        gradient.iter().zip(mem.iter()).map(|(g, m)| g + m).collect()
    }

    /// Records what was actually sent: `memory[worker] = corrected − sent`.
    /// No-op when disabled.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn update(&mut self, worker: usize, corrected: &[f32], sent: &[f32]) {
        if !self.enabled {
            return;
        }
        assert_eq!(corrected.len(), sent.len(), "ErrorFeedback: length mismatch");
        let mem = &mut self.memories[worker];
        mem.clear();
        mem.extend(corrected.iter().zip(sent).map(|(c, s)| c - s));
    }

    /// Current memory L2 norm for `worker` (diagnostics).
    pub fn memory_norm(&self, worker: usize) -> f32 {
        gcs_tensor::vector::norm(&self.memories[worker])
    }

    /// Clears all memories.
    pub fn reset(&mut self) {
        for m in &mut self.memories {
            m.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telescoping_invariant() {
        // Over T rounds of a "send only the first coordinate" compressor,
        // cumulative sent = cumulative gradients - final memory.
        let mut ef = ErrorFeedback::new(1, true);
        let grads = [vec![1.0f32, 0.5], vec![0.2, 0.4], vec![-0.3, 0.1]];
        let mut cum_sent = vec![0.0f32; 2];
        let mut cum_grad = vec![0.0f32; 2];
        for g in &grads {
            let corrected = ef.corrected(0, g);
            let sent = vec![corrected[0], 0.0]; // biased compressor
            ef.update(0, &corrected, &sent);
            for i in 0..2 {
                cum_sent[i] += sent[i];
                cum_grad[i] += g[i];
            }
        }
        // Coordinate 0 is always fully sent; coordinate 1 accumulates.
        assert!((cum_sent[0] - cum_grad[0]).abs() < 1e-6);
        assert!((cum_grad[1] - ef.memories[0][1] - cum_sent[1]).abs() < 1e-6);
        assert!(ef.memory_norm(0) > 0.0);
    }

    #[test]
    fn disabled_ef_is_identity() {
        let mut ef = ErrorFeedback::new(2, false);
        let g = vec![1.0f32, 2.0];
        let c = ef.corrected(1, &g);
        assert_eq!(c, g);
        ef.update(1, &c, &[0.0, 0.0]);
        let c2 = ef.corrected(1, &g);
        assert_eq!(c2, g); // nothing remembered
    }

    #[test]
    fn reset_clears() {
        let mut ef = ErrorFeedback::new(1, true);
        let g = vec![1.0f32];
        let c = ef.corrected(0, &g);
        ef.update(0, &c, &[0.0]);
        assert!(ef.memory_norm(0) > 0.0);
        ef.reset();
        let c = ef.corrected(0, &g);
        assert_eq!(c, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "dimension changed")]
    fn dimension_change_is_detected() {
        let mut ef = ErrorFeedback::new(1, true);
        ef.corrected(0, &[1.0, 2.0]);
        ef.corrected(0, &[1.0]);
    }
}
