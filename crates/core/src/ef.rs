//! Error feedback (EF) — the memory mechanism that makes biased compressors
//! converge.
//!
//! EF \[29, 44\] keeps, per worker, the residual between what the worker
//! wanted to send and what the compressor actually delivered, and adds it
//! back before the next compression. For TopK-style sparsifiers this is what
//! guarantees every coordinate is eventually transmitted; for PowerSGD it is
//! part of the algorithm's definition. The paper applies EF to both TopK and
//! TopKC (§3.1.3).
//!
//! The helper here is deliberately dumb: schemes call
//! [`ErrorFeedback::corrected`] to get `gradient + memory` and
//! [`ErrorFeedback::update`] with the contribution that actually made it
//! onto the wire. The *telescoping invariant* —
//! `memory_{t+1} = corrected_t − sent_t`, so the cumulative sent stream
//! equals the cumulative gradient stream minus the current memory — is
//! property-tested.
//!
//! The batched [`ErrorFeedback::corrected_all`] / [`ErrorFeedback::update_all`]
//! variants fan out across workers on [`gcs_tensor::parallel`] — memories are
//! per-worker disjoint, so this is embarrassingly parallel and bitwise
//! identical to the per-worker loop for any thread count.

/// Per-worker error-feedback memories.
#[derive(Clone, Debug)]
pub struct ErrorFeedback {
    memories: Vec<Vec<f32>>,
    enabled: bool,
}

impl ErrorFeedback {
    /// Creates EF state for `n_workers` workers; memories are lazily sized
    /// on first use.
    pub fn new(n_workers: usize, enabled: bool) -> ErrorFeedback {
        ErrorFeedback {
            memories: vec![Vec::new(); n_workers],
            enabled,
        }
    }

    /// Whether EF is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of workers this EF state tracks.
    pub fn n_workers(&self) -> usize {
        self.memories.len()
    }

    /// Returns `gradient + memory[worker]` (or a plain copy when disabled).
    ///
    /// # Panics
    /// Panics if `worker` is out of range or the gradient length changed
    /// between rounds.
    pub fn corrected(&mut self, worker: usize, gradient: &[f32]) -> Vec<f32> {
        let mem = &mut self.memories[worker];
        if mem.is_empty() {
            mem.resize(gradient.len(), 0.0);
        }
        assert_eq!(
            mem.len(),
            gradient.len(),
            "ErrorFeedback: gradient dimension changed"
        );
        if !self.enabled {
            return gradient.to_vec();
        }
        gradient
            .iter()
            .zip(mem.iter())
            .map(|(g, m)| g + m)
            .collect()
    }

    /// Records what was actually sent: `memory[worker] = corrected − sent`.
    /// No-op when disabled.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn update(&mut self, worker: usize, corrected: &[f32], sent: &[f32]) {
        if !self.enabled {
            return;
        }
        assert_eq!(
            corrected.len(),
            sent.len(),
            "ErrorFeedback: length mismatch"
        );
        let mem = &mut self.memories[worker];
        mem.clear();
        mem.extend(corrected.iter().zip(sent).map(|(c, s)| c - s));
    }

    /// Batched [`ErrorFeedback::corrected`] over workers `0..grads.len()`,
    /// parallel across workers. Returns one corrected vector per worker, in
    /// worker order.
    ///
    /// # Panics
    /// Panics if more gradients than workers are supplied, or a gradient
    /// length changed between rounds.
    pub fn corrected_all(&mut self, grads: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(grads.len());
        self.corrected_all_into(grads, &mut out);
        out
    }

    /// [`ErrorFeedback::corrected_all`] writing into caller-owned vectors
    /// (resized to one per worker, each cleared and refilled in place) — the
    /// zero-allocation steady-state entry point for schemes that own a
    /// round scratch.
    ///
    /// # Panics
    /// Panics if more gradients than workers are supplied, or a gradient
    /// length changed between rounds.
    pub fn corrected_all_into(&mut self, grads: &[Vec<f32>], out: &mut Vec<Vec<f32>>) {
        let n = grads.len();
        assert!(
            n <= self.memories.len(),
            "ErrorFeedback: {n} gradients for {} workers",
            self.memories.len()
        );
        for (mem, g) in self.memories[..n].iter_mut().zip(grads) {
            if mem.is_empty() {
                mem.resize(g.len(), 0.0);
            }
            assert_eq!(
                mem.len(),
                g.len(),
                "ErrorFeedback: gradient dimension changed"
            );
        }
        if out.len() != n {
            out.resize_with(n, Vec::new);
        }
        if !self.enabled {
            for (o, g) in out.iter_mut().zip(grads) {
                o.clear();
                o.extend_from_slice(g);
            }
            return;
        }
        let _span = gcs_trace::span(gcs_trace::Phase::Compress, "ef_corrected");
        let memories = &self.memories;
        gcs_tensor::parallel::for_each_chunk_mut(&mut out[..n], 1, |w, slot| {
            let o = &mut slot[0];
            o.clear();
            o.extend(grads[w].iter().zip(memories[w].iter()).map(|(g, m)| g + m));
        });
    }

    /// Batched [`ErrorFeedback::update`] over workers `0..corrected.len()`,
    /// parallel across workers (their memories are disjoint). No-op when
    /// disabled.
    ///
    /// # Panics
    /// Panics on any worker-count or dimension mismatch.
    pub fn update_all(&mut self, corrected: &[Vec<f32>], sent: &[Vec<f32>]) {
        if !self.enabled {
            return;
        }
        let n = corrected.len();
        assert_eq!(n, sent.len(), "ErrorFeedback: worker count mismatch");
        assert!(
            n <= self.memories.len(),
            "ErrorFeedback: {n} updates for {} workers",
            self.memories.len()
        );
        {
            let _span = gcs_trace::span(gcs_trace::Phase::Compress, "ef_update");
            gcs_tensor::parallel::for_each_chunk_mut(&mut self.memories[..n], 1, |w, mem| {
                let mem = &mut mem[0];
                assert_eq!(
                    corrected[w].len(),
                    sent[w].len(),
                    "ErrorFeedback: length mismatch"
                );
                mem.clear();
                mem.extend(corrected[w].iter().zip(&sent[w]).map(|(c, s)| c - s));
            });
        }
        if gcs_trace::enabled() {
            let mean_norm = self.memories[..n]
                .iter()
                .map(|m| gcs_tensor::vector::norm(m) as f64)
                .sum::<f64>()
                / n as f64;
            gcs_trace::counter("ef_residual_norm", mean_norm);
        }
    }

    /// Current memory L2 norm for `worker` (diagnostics).
    pub fn memory_norm(&self, worker: usize) -> f32 {
        gcs_tensor::vector::norm(&self.memories[worker])
    }

    /// Clears all memories.
    pub fn reset(&mut self) {
        for m in &mut self.memories {
            m.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telescoping_invariant() {
        // Over T rounds of a "send only the first coordinate" compressor,
        // cumulative sent = cumulative gradients - final memory.
        let mut ef = ErrorFeedback::new(1, true);
        let grads = [vec![1.0f32, 0.5], vec![0.2, 0.4], vec![-0.3, 0.1]];
        let mut cum_sent = [0.0f32; 2];
        let mut cum_grad = [0.0f32; 2];
        for g in &grads {
            let corrected = ef.corrected(0, g);
            let sent = vec![corrected[0], 0.0]; // biased compressor
            ef.update(0, &corrected, &sent);
            for i in 0..2 {
                cum_sent[i] += sent[i];
                cum_grad[i] += g[i];
            }
        }
        // Coordinate 0 is always fully sent; coordinate 1 accumulates.
        assert!((cum_sent[0] - cum_grad[0]).abs() < 1e-6);
        assert!((cum_grad[1] - ef.memories[0][1] - cum_sent[1]).abs() < 1e-6);
        assert!(ef.memory_norm(0) > 0.0);
    }

    #[test]
    fn disabled_ef_is_identity() {
        let mut ef = ErrorFeedback::new(2, false);
        let g = vec![1.0f32, 2.0];
        let c = ef.corrected(1, &g);
        assert_eq!(c, g);
        ef.update(1, &c, &[0.0, 0.0]);
        let c2 = ef.corrected(1, &g);
        assert_eq!(c2, g); // nothing remembered
    }

    #[test]
    fn reset_clears() {
        let mut ef = ErrorFeedback::new(1, true);
        let g = vec![1.0f32];
        let c = ef.corrected(0, &g);
        ef.update(0, &c, &[0.0]);
        assert!(ef.memory_norm(0) > 0.0);
        ef.reset();
        let c = ef.corrected(0, &g);
        assert_eq!(c, vec![1.0]);
    }

    #[test]
    fn batched_api_matches_per_worker_loop_across_thread_counts() {
        let n = 5;
        let d = 300;
        let grads: Vec<Vec<f32>> = (0..n)
            .map(|w| (0..d).map(|i| ((w * d + i) as f32 * 0.13).sin()).collect())
            .collect();
        let sents: Vec<Vec<f32>> = grads
            .iter()
            .map(|g| g.iter().map(|x| (x * 4.0).round() / 4.0).collect())
            .collect();
        // Reference: the scalar API, two rounds.
        let mut reference = ErrorFeedback::new(n, true);
        let mut ref_corrected = Vec::new();
        for _round in 0..2 {
            ref_corrected = (0..n).map(|w| reference.corrected(w, &grads[w])).collect();
            for w in 0..n {
                reference.update(w, &ref_corrected[w], &sents[w]);
            }
        }
        for threads in [1, 2, 4] {
            gcs_tensor::parallel::with_threads(threads, || {
                let mut ef = ErrorFeedback::new(n, true);
                let mut corrected = Vec::new();
                for _round in 0..2 {
                    corrected = ef.corrected_all(&grads);
                    ef.update_all(&corrected, &sents);
                }
                assert_eq!(corrected, ref_corrected, "threads={threads}");
                for w in 0..n {
                    assert_eq!(ef.memories[w], reference.memories[w]);
                }
            });
        }
    }

    #[test]
    fn corrected_all_into_reuses_buffers_and_matches() {
        for enabled in [true, false] {
            let n = 3;
            let grads: Vec<Vec<f32>> = (0..n)
                .map(|w| {
                    (0..64)
                        .map(|i| ((w * 64 + i) as f32 * 0.29).cos())
                        .collect()
                })
                .collect();
            let mut a = ErrorFeedback::new(n, enabled);
            let mut b = ErrorFeedback::new(n, enabled);
            let mut out = Vec::new();
            let mut ptrs: Vec<*const f32> = Vec::new();
            for round in 0..3 {
                let expect = a.corrected_all(&grads);
                b.corrected_all_into(&grads, &mut out);
                assert_eq!(out, expect, "enabled={enabled} round={round}");
                let sents: Vec<Vec<f32>> = out
                    .iter()
                    .map(|c| c.iter().map(|x| x * 0.5).collect())
                    .collect();
                a.update_all(&expect, &sents);
                b.update_all(&out, &sents);
                if round == 0 {
                    ptrs = out.iter().map(|o| o.as_ptr()).collect();
                } else {
                    for (o, &p) in out.iter().zip(&ptrs) {
                        assert_eq!(o.as_ptr(), p, "steady state must reuse buffers");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension changed")]
    fn dimension_change_is_detected() {
        let mut ef = ErrorFeedback::new(1, true);
        ef.corrected(0, &[1.0, 2.0]);
        ef.corrected(0, &[1.0]);
    }
}
