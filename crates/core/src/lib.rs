//! # gcs-core
//!
//! The paper's primary contribution: gradient-compression schemes built for
//! **end-to-end utility**, plus the evaluation framework that measures it.
//!
//! ## Schemes ([`schemes`])
//!
//! | family | baseline | the paper's variant |
//! |---|---|---|
//! | none | [`schemes::baseline::PrecisionBaseline`] (FP32 / the stronger FP16) | — |
//! | sparsification | [`schemes::topk::TopK`] (all-gather) | [`schemes::topkc::TopKC`] — chunk-norm consensus, all-reduce compatible (§3.1) |
//! | quantization | [`schemes::thc::Thc`] widened b>q | THC + partial rotation + saturation (§3.2) |
//! | low-rank | [`schemes::powersgd::PowerSgd`] | rank study + orthogonalization profiling (§3.3) |
//! | literature | [`schemes::literature`]: QSGD, TernGrad, signSGD+EF, RandomK | Table 1 context |
//!
//! Every scheme implements [`scheme::CompressionScheme`]: given all workers'
//! gradients it runs one *distributed* aggregation round through
//! `gcs-collectives`, returning the aggregate estimate every worker ends up
//! with, plus exact traffic and compute-cost accounting. Error feedback
//! ([`ef`]) wraps any scheme.
//!
//! ## Metrics ([`metrics`])
//!
//! The evaluation side of the paper: vNMSE proxies, TTA curves with rolling
//! averages, time-to-target queries, early stopping (Prechelt's GL
//! criterion), and the *utility* score — TTA improvement over the FP16
//! baseline (§1, §2.2).
//!
//! ## Beyond TTA ([`economics`])
//!
//! The paper's §4 future work, implemented: cost-to-accuracy and
//! power-to-accuracy conversions of TTA curves under cloud billing and
//! electrical models.
//!
//! ## Survey ([`survey`])
//!
//! Table 1's assessment of eight prior systems, encoded as data.

pub mod economics;
pub mod ef;
pub mod metrics;
pub mod scheme;
pub mod schemes;
pub mod survey;
pub mod synthetic;

pub use ef::ErrorFeedback;
pub use scheme::{AggregationOutcome, CompressionScheme, RoundContext};
