//! **TopKC** — TopK Chunked, the paper's all-reduce-compatible sparsifier
//! (§3.1.2).
//!
//! The insight: spend a *cheap consensus round* so every worker aggregates
//! the **same** coordinates, which makes the main round a plain (FP16)
//! all-reduce:
//!
//! 1. Partition the gradient into fixed chunks of size `C`. Each worker
//!    computes per-chunk squared L2 norms; a small FP16 all-reduce sums them
//!    (`16/C` bits per coordinate).
//! 2. Every worker locally picks the same top-`J` chunks by aggregated
//!    norm (deterministic tie-breaks), then the selected `J' = J·C`
//!    coordinates are summed with an FP16 ring all-reduce.
//!
//! Total `b = 16(J'/d + 1/C)` bits per coordinate. Chunk norms are computed
//! with one sequential pass (fast), and the top-k runs over `d/C` values
//! instead of `d` (§3.1.2's computational win).
//!
//! TopKC works because of **spatial locality** — large coordinates cluster
//! (Table 4). The `permute` flag enables the paper's ablation: a shared
//! random permutation destroys locality and with it most of TopKC's
//! advantage.

use crate::ef::ErrorFeedback;
use crate::scheme::{AggregationOutcome, CommEvent, CompressionScheme, RoundContext};
use gcs_collectives::{ring_all_reduce_into, F16Sum, RingScratch, Traffic};
use gcs_gpusim::{ops, DeviceSpec};
use gcs_netsim::Collective;
use gcs_tensor::half::F16;
use gcs_tensor::pool::WorkerBufs;
use gcs_tensor::rng::{shared_permutation, SharedSeed, Stream};
use gcs_tensor::vector::TopKScratch;

/// Round scratch owned across rounds (zero-allocation steady state): EF
/// staging, per-worker norm/value/sent buffers, consensus-selection
/// workspace and collective staging. The permutation ablation still
/// allocates (it is not a production path).
#[derive(Clone, Debug, Default)]
struct TopKCScratch {
    corrected: Vec<Vec<f32>>,
    permuted: WorkerBufs<f32>,
    norms: WorkerBufs<F16>,
    values: WorkerBufs<F16>,
    sent: WorkerBufs<f32>,
    agg_norms: Vec<f32>,
    selected: Vec<usize>,
    topk: TopKScratch,
    ring: RingScratch<F16>,
    value_traffic: Traffic,
    unperm: Vec<f32>,
}

/// TopK Chunked sparsification.
#[derive(Clone, Debug)]
pub struct TopKC {
    chunk: usize,
    bits: f64,
    permute: bool,
    ef: ErrorFeedback,
    scratch: TopKCScratch,
}

impl TopKC {
    /// Creates TopKC targeting `bits` bits/coordinate with chunk size
    /// `chunk`. The paper uses `C = 64` for `b ∈ {2, 8}` and `C = 128` for
    /// `b = 0.5`.
    ///
    /// # Panics
    /// Panics if `chunk == 0`, or if `bits <= 16/chunk` (the norm round
    /// alone would exceed the budget).
    pub fn with_bits(bits: f64, chunk: usize, n_workers: usize, error_feedback: bool) -> TopKC {
        assert!(chunk > 0, "TopKC: chunk must be positive");
        assert!(
            bits > 16.0 / chunk as f64,
            "TopKC: bits budget {bits} cannot cover the norm round (16/C = {})",
            16.0 / chunk as f64
        );
        TopKC {
            chunk,
            bits,
            permute: false,
            ef: ErrorFeedback::new(n_workers, error_feedback),
            scratch: TopKCScratch::default(),
        }
    }

    /// The paper's chunk-size choice for a given bit budget.
    pub fn paper_config(bits: f64, n_workers: usize) -> TopKC {
        let chunk = if bits < 1.0 { 128 } else { 64 };
        TopKC::with_bits(bits, chunk, n_workers, true)
    }

    /// Enables the random-permutation ablation (Table 4): a shared
    /// permutation is applied before chunking, destroying spatial locality.
    pub fn with_permutation(mut self) -> TopKC {
        self.permute = true;
        self
    }

    /// Number of top chunks `J` selected for a gradient of dimension `d`.
    pub fn j_for(&self, d: usize) -> usize {
        let chunks = d.div_ceil(self.chunk);
        let j_prime = d as f64 * (self.bits / 16.0 - 1.0 / self.chunk as f64);
        ((j_prime / self.chunk as f64).round() as usize).clamp(1, chunks)
    }

    /// Total selected coordinates `J' = J·C` at dimension `d`.
    pub fn j_prime_for(&self, d: usize) -> usize {
        (self.j_for(d) * self.chunk).min(d)
    }

    /// Chunk size `C`.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }
}

impl CompressionScheme for TopKC {
    fn name(&self) -> String {
        if self.permute {
            format!("TopKC-Perm(b={}, C={})", self.bits, self.chunk)
        } else {
            format!("TopKC(b={}, C={})", self.bits, self.chunk)
        }
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], ctx: &RoundContext) -> AggregationOutcome {
        let mut out = AggregationOutcome::default();
        self.aggregate_round_into(grads, ctx, &mut out);
        out
    }

    fn aggregate_round_into(
        &mut self,
        grads: &[Vec<f32>],
        ctx: &RoundContext,
        out: &mut AggregationOutcome,
    ) {
        let _round_timer = gcs_metrics::timer("scheme/topkc/round_ns");
        let n = grads.len();
        let d = grads[0].len();
        let chunks = d.div_ceil(self.chunk);
        let j = self.j_for(d);
        let chunk = self.chunk;

        // Optional shared permutation (locality-destroying ablation). All
        // workers derive the same permutation from shared randomness.
        let perm = if self.permute {
            Some(shared_permutation(
                d,
                SharedSeed::derive(ctx.experiment_seed, ctx.round, Stream::Permutation),
            ))
        } else {
            None
        };

        // All per-round buffers live in the owned scratch, so the steady
        // state allocates nothing (borrowed out of `self` so EF and config
        // reads stay available).
        let mut scratch = std::mem::take(&mut self.scratch);

        // Stage 0: EF-corrected (and permuted) local gradients. EF and the
        // permutation scatter are per-worker independent, so both fan out.
        self.ef.corrected_all_into(grads, &mut scratch.corrected);
        if let Some(p) = &perm {
            let src = &scratch.corrected;
            let bufs = scratch.permuted.prepare(n);
            gcs_tensor::parallel::for_each_chunk_mut(bufs, 1, |w, slot| {
                let v = &mut slot[0];
                v.resize(d, 0.0);
                let c = &src[w];
                for (i, &pi) in p.iter().enumerate() {
                    v[pi] = c[i];
                }
            });
        }

        // Stage 1: per-chunk squared norms, all-reduced in FP16. Workers are
        // independent; within a worker the chunk norms use the (itself
        // deterministic) chunked reduction kernel.
        {
            let _span = gcs_trace::span(gcs_trace::Phase::Compress, "topkc_chunk_norms");
            let corrected: &[Vec<f32>] = match &perm {
                Some(_) => scratch.permuted.slice(n),
                None => &scratch.corrected,
            };
            let norm_bufs = scratch.norms.prepare(n);
            gcs_tensor::parallel::for_each_chunk_mut(norm_bufs, 1, |w, slot| {
                slot[0].extend(
                    corrected[w]
                        .chunks(chunk)
                        .map(|ch| F16::from_f32(gcs_tensor::vector::squared_norm(ch))),
                );
            });
        }
        ring_all_reduce_into(
            scratch.norms.slice_mut(n),
            &F16Sum,
            2.0,
            &mut scratch.ring,
            &mut out.traffic,
        );
        scratch.agg_norms.clear();
        scratch
            .agg_norms
            .extend(scratch.norms.slice(n)[0].iter().map(|x| x.to_f32()));
        debug_assert_eq!(scratch.agg_norms.len(), chunks);

        // Stage 2: consensus top-J chunks (identical on every worker).
        {
            let _span = gcs_trace::span(gcs_trace::Phase::Compress, "topkc_consensus_select");
            gcs_tensor::vector::top_k_indices_into(
                &scratch.agg_norms,
                j,
                &mut scratch.topk,
                &mut scratch.selected,
            );
            scratch.selected.sort_unstable();
        }

        // Stage 3: FP16 all-reduce over the selected chunks' values
        // (gathered per worker in parallel).
        {
            let _span = gcs_trace::span(gcs_trace::Phase::Compress, "topkc_value_gather");
            let corrected: &[Vec<f32>] = match &perm {
                Some(_) => scratch.permuted.slice(n),
                None => &scratch.corrected,
            };
            let selected = &scratch.selected;
            let value_bufs = scratch.values.prepare(n);
            gcs_tensor::parallel::for_each_chunk_mut(value_bufs, 1, |w, slot| {
                let c = &corrected[w];
                let buf = &mut slot[0];
                for &p in selected {
                    let lo = p * chunk;
                    let hi = (lo + chunk).min(d);
                    buf.extend(c[lo..hi].iter().map(|&v| F16::from_f32(v)));
                }
            });
        }
        ring_all_reduce_into(
            scratch.values.slice_mut(n),
            &F16Sum,
            2.0,
            &mut scratch.ring,
            &mut scratch.value_traffic,
        );

        // Scatter back into dense coordinates (undoing the permutation).
        {
            let _span = gcs_trace::span(gcs_trace::Phase::Decompress, "topkc_scatter_back");
            let mean = &mut out.mean_estimate;
            mean.clear();
            mean.resize(d, 0.0);
            let summed = &scratch.values.slice(n)[0];
            let mut cursor = 0usize;
            for &p in &scratch.selected {
                let lo = p * chunk;
                let hi = (lo + chunk).min(d);
                for m in &mut mean[lo..hi] {
                    *m = summed[cursor].to_f32() / n as f32;
                    cursor += 1;
                }
            }
            if let Some(p) = &perm {
                let unperm = &mut scratch.unperm;
                unperm.clear();
                unperm.resize(d, 0.0);
                for (i, &pi) in p.iter().enumerate() {
                    unperm[i] = mean[pi];
                }
                mean.copy_from_slice(unperm);
            }
        }

        // EF update: what each worker contributed (its own FP16-rounded
        // values in the selected chunks), in the *original* coordinate
        // order. Per-worker independent, so the sent vectors are built in
        // parallel into pooled buffers and committed through the batched EF
        // API.
        if self.ef.enabled() {
            {
                let corrected: &[Vec<f32>] = match &perm {
                    Some(_) => scratch.permuted.slice(n),
                    None => &scratch.corrected,
                };
                let selected = &scratch.selected;
                let sent_bufs = scratch.sent.prepare(n);
                gcs_tensor::parallel::for_each_chunk_mut(sent_bufs, 1, |w, slot| {
                    let c = &corrected[w];
                    let sent = &mut slot[0];
                    sent.resize(d, 0.0);
                    for &p in selected {
                        let lo = p * chunk;
                        let hi = (lo + chunk).min(d);
                        for pos in lo..hi {
                            sent[pos] = F16::from_f32(c[pos]).to_f32();
                        }
                    }
                });
            }
            match &perm {
                Some(pvec) => {
                    // Ablation path: un-permute into freshly allocated pairs
                    // (not a steady-state configuration).
                    let corrected = scratch.permuted.slice(n);
                    let sent_view = scratch.sent.slice(n);
                    let pairs: Vec<(Vec<f32>, Vec<f32>)> =
                        gcs_tensor::parallel::map_tasks(n, |w| {
                            let c = &corrected[w];
                            let s = &sent_view[w];
                            let mut co = vec![0.0f32; d];
                            let mut so = vec![0.0f32; d];
                            for (i, &pi) in pvec.iter().enumerate() {
                                co[i] = c[pi];
                                so[i] = s[pi];
                            }
                            (co, so)
                        });
                    let (corr_orig, sent_orig): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
                    self.ef.update_all(&corr_orig, &sent_orig);
                }
                None => self
                    .ef
                    .update_all(&scratch.corrected, scratch.sent.slice(n)),
            }
        }

        out.traffic.merge(&scratch.value_traffic);
        let j_prime = scratch
            .selected
            .iter()
            .map(|&p| (p * chunk + chunk).min(d) - p * chunk)
            .sum::<usize>();
        out.comm.clear();
        out.comm.push(CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: chunks as f64 * 2.0,
        });
        out.comm.push(CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: j_prime as f64 * 2.0,
        });
        self.scratch = scratch;
    }

    fn all_reduce_compatible(&self) -> bool {
        true
    }

    fn nominal_bits_per_coord(&self, d: u64) -> f64 {
        let d = d as usize;
        16.0 * (self.j_prime_for(d) as f64 / d as f64 + 1.0 / self.chunk as f64)
    }

    fn comm_events(&self, d: u64) -> Vec<CommEvent> {
        let d = d as usize;
        vec![
            CommEvent {
                collective: Collective::RingAllReduce,
                payload_bytes: d.div_ceil(self.chunk) as f64 * 2.0,
            },
            CommEvent {
                collective: Collective::RingAllReduce,
                payload_bytes: self.j_prime_for(d) as f64 * 2.0,
            },
        ]
    }

    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64 {
        let chunks = (d as usize).div_ceil(self.chunk) as u64;
        let j_prime = self.j_prime_for(d as usize) as u64;
        // Norms pass + tiny top-k over chunk norms + gather/scatter of the
        // selected coordinates (sequential within chunks -> streaming).
        ops::chunk_norms(d, self.chunk).seconds(device)
            + ops::topk_select(chunks, self.j_for(d as usize) as u64).seconds(device)
            + 2.0 * ops::elementwise(j_prime, 8.0, 1.0).seconds(device)
    }

    fn reset(&mut self) {
        self.ef.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_tensor::vector::{mean, vnmse};

    fn ctx(round: u64) -> RoundContext {
        RoundContext::new(42, round)
    }

    /// Gradients with strong spatial locality: energy concentrated in one
    /// contiguous region.
    fn local_grads(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|w| {
                (0..d)
                    .map(|i| {
                        let hot = i >= d / 4 && i < d / 4 + d / 8;
                        let base = ((w * d + i) as f32 * 0.37).sin();
                        if hot {
                            base * 10.0
                        } else {
                            base * 0.1
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn full_budget_recovers_mean() {
        // b = 16 + 16/C: every chunk selected.
        let grads = local_grads(3, 64);
        let mut s = TopKC::with_bits(18.0, 8, 3, false);
        let out = s.aggregate_round(&grads, &ctx(0));
        let exact = mean(&grads);
        assert!(vnmse(&out.mean_estimate, &exact) < 1e-4);
    }

    #[test]
    fn all_workers_agree_and_consensus_chunks_cover_hot_region() {
        let d = 256;
        let grads = local_grads(4, d);
        let mut s = TopKC::with_bits(4.0, 16, 4, false);
        let out = s.aggregate_round(&grads, &ctx(0));
        // The hot region [d/4, d/4 + d/8) must be covered.
        let hot = d / 4..(d / 4 + d / 8);
        for i in hot {
            assert!(
                out.mean_estimate[i] != 0.0,
                "hot coordinate {i} was not aggregated"
            );
        }
    }

    #[test]
    fn permutation_hurts_on_local_gradients() {
        // Table 4's ablation: with locality, TopKC beats its permuted self.
        let grads = local_grads(4, 512);
        let exact = mean(&grads);
        let mut plain = TopKC::with_bits(2.0, 32, 4, false);
        let mut permuted = TopKC::with_bits(2.0, 32, 4, false).with_permutation();
        let e_plain = vnmse(
            &plain.aggregate_round(&grads, &ctx(0)).mean_estimate,
            &exact,
        );
        let e_perm = vnmse(
            &permuted.aggregate_round(&grads, &ctx(0)).mean_estimate,
            &exact,
        );
        assert!(
            e_perm > 1.5 * e_plain,
            "permuted {e_perm} should be clearly worse than plain {e_plain}"
        );
    }

    #[test]
    fn bits_accounting() {
        // d = 6400, C = 64, b = 2: J' = 6400*(2/16 - 1/64) = 700 -> J = 11.
        let s = TopKC::with_bits(2.0, 64, 2, false);
        assert_eq!(s.j_for(6400), 11);
        let b = s.nominal_bits_per_coord(6400);
        assert!((b - 2.0).abs() < 0.1, "b = {b}");
    }

    #[test]
    fn comm_uses_allreduce_only() {
        let grads = local_grads(2, 128);
        let mut s = TopKC::with_bits(4.0, 16, 2, false);
        let out = s.aggregate_round(&grads, &ctx(0));
        assert!(out
            .comm
            .iter()
            .all(|e| e.collective == Collective::RingAllReduce));
        assert!(s.all_reduce_compatible());
    }

    #[test]
    fn error_feedback_flushes_cold_chunks() {
        // Constant gradient outside the selected chunks: EF must eventually
        // promote the cold chunk.
        let d = 64;
        let mut grads = vec![vec![0.4f32; d]];
        for g in grads[0].iter_mut().take(8) {
            *g = 2.0; // chunk 0 is hot
        }
        let mut s = TopKC::with_bits(3.0, 8, 1, true); // J = 1 chunk of 8
        let mut cold_seen = false;
        for round in 0..25 {
            let out = s.aggregate_round(&grads, &ctx(round));
            if out.mean_estimate[d - 1] != 0.0 {
                cold_seen = true;
                break;
            }
        }
        assert!(cold_seen, "EF never promoted a cold chunk");
    }

    #[test]
    fn ragged_last_chunk_handled() {
        let d = 70; // 70 = 8*8 + 6: last chunk short
        let grads = vec![(0..d).map(|i| i as f32 * 0.01).collect::<Vec<f32>>()];
        let mut s = TopKC::with_bits(18.5, 8, 1, false); // select everything
        let out = s.aggregate_round(&grads, &ctx(0));
        let exact = mean(&grads);
        assert!(vnmse(&out.mean_estimate, &exact) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "cannot cover the norm round")]
    fn rejects_impossible_budget() {
        TopKC::with_bits(0.1, 64, 2, false);
    }
}
