//! The uncompressed baselines: FP32 and the stronger FP16.
//!
//! §2.2's point: FP16 aggregation halves traffic with negligible accuracy
//! loss and wide hardware support, so *it* — not FP32 — is the bar a
//! compression scheme must clear. Both baselines here run a genuine ring
//! all-reduce; the FP16 one rounds to binary16 before communication and
//! reduces **in binary16** at every hop (NCCL semantics), so its (tiny)
//! precision cost is real in our experiments too.

use crate::scheme::{AggregationOutcome, CommEvent, CompressionScheme, RoundContext};
use gcs_collectives::{ring_all_reduce, F16Sum, F32Sum};
use gcs_gpusim::{ops, DeviceSpec};
use gcs_netsim::Collective;
use gcs_tensor::half::{decode_f16, encode_f16};

/// Communication precision of an uncompressed baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommPrecision {
    /// 32-bit aggregation — the weak baseline most prior work compares to.
    Fp32,
    /// 16-bit aggregation — the stronger baseline the paper argues for.
    Fp16,
}

impl CommPrecision {
    /// Bits per coordinate on the wire.
    pub fn bits(self) -> f64 {
        match self {
            CommPrecision::Fp32 => 32.0,
            CommPrecision::Fp16 => 16.0,
        }
    }
}

/// An uncompressed baseline at the given communication precision.
#[derive(Clone, Debug)]
pub struct PrecisionBaseline {
    precision: CommPrecision,
}

impl PrecisionBaseline {
    /// FP32 aggregation.
    pub fn fp32() -> PrecisionBaseline {
        PrecisionBaseline {
            precision: CommPrecision::Fp32,
        }
    }

    /// FP16 aggregation (the paper's recommended baseline).
    pub fn fp16() -> PrecisionBaseline {
        PrecisionBaseline {
            precision: CommPrecision::Fp16,
        }
    }

    /// The configured precision.
    pub fn precision(&self) -> CommPrecision {
        self.precision
    }
}

impl CompressionScheme for PrecisionBaseline {
    fn name(&self) -> String {
        match self.precision {
            CommPrecision::Fp32 => "Baseline FP32".to_string(),
            CommPrecision::Fp16 => "Baseline FP16".to_string(),
        }
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], _ctx: &RoundContext) -> AggregationOutcome {
        let _round_timer = gcs_metrics::timer("scheme/fp16_baseline/round_ns");
        let n = grads.len();
        let d = grads[0].len();
        match self.precision {
            CommPrecision::Fp32 => {
                let mut bufs: Vec<Vec<f32>> = grads.to_vec();
                let traffic = ring_all_reduce(&mut bufs, &F32Sum, 4.0);
                let mut mean = bufs.into_iter().next().expect("no workers");
                gcs_tensor::vector::scale(&mut mean, 1.0 / n as f32);
                AggregationOutcome {
                    mean_estimate: mean,
                    comm: vec![CommEvent {
                        collective: Collective::RingAllReduce,
                        payload_bytes: 4.0 * d as f64,
                    }],
                    traffic,
                }
            }
            CommPrecision::Fp16 => {
                let mut bufs: Vec<Vec<gcs_tensor::F16>> = {
                    let _s = gcs_trace::span(gcs_trace::Phase::Compress, "encode_f16");
                    grads.iter().map(|g| encode_f16(g)).collect()
                };
                let traffic = ring_all_reduce(&mut bufs, &F16Sum, 2.0);
                let _s = gcs_trace::span(gcs_trace::Phase::Decompress, "decode_f16");
                let sum = decode_f16(&bufs[0]);
                let mean: Vec<f32> = sum.iter().map(|s| s / n as f32).collect();
                AggregationOutcome {
                    mean_estimate: mean,
                    comm: vec![CommEvent {
                        collective: Collective::RingAllReduce,
                        payload_bytes: 2.0 * d as f64,
                    }],
                    traffic,
                }
            }
        }
    }

    fn all_reduce_compatible(&self) -> bool {
        true
    }

    fn nominal_bits_per_coord(&self, _d: u64) -> f64 {
        self.precision.bits()
    }

    fn comm_events(&self, d: u64) -> Vec<CommEvent> {
        vec![CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: self.precision.bits() / 8.0 * d as f64,
        }]
    }

    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64 {
        match self.precision {
            CommPrecision::Fp32 => 0.0,
            // FP16 pays one cast pass each way (fused in practice; nearly
            // free, and Table 2 confirms the comm saving dominates).
            CommPrecision::Fp16 => {
                ops::elementwise(d, 6.0, 1.0).seconds(device)
                    + ops::elementwise(d, 6.0, 1.0).seconds(device)
            }
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_tensor::vector::vnmse;

    fn grads() -> Vec<Vec<f32>> {
        vec![
            vec![0.5, -1.25, 3.0, 0.001],
            vec![1.5, 0.25, -1.0, 0.002],
            vec![-1.0, 1.0, 2.0, 0.003],
        ]
    }

    fn exact_mean(g: &[Vec<f32>]) -> Vec<f32> {
        gcs_tensor::vector::mean(g)
    }

    #[test]
    fn fp32_baseline_is_exact() {
        let mut s = PrecisionBaseline::fp32();
        let out = s.aggregate_round(&grads(), &RoundContext::new(1, 0));
        let exact = exact_mean(&grads());
        for (a, b) in out.mean_estimate.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(out.bits_per_coord(4) as u32, 32);
    }

    #[test]
    fn fp16_baseline_has_tiny_but_nonzero_error() {
        let mut s = PrecisionBaseline::fp16();
        let out = s.aggregate_round(&grads(), &RoundContext::new(1, 0));
        let exact = exact_mean(&grads());
        let err = vnmse(&out.mean_estimate, &exact);
        assert!(err > 0.0, "f16 rounding should be visible");
        assert!(err < 1e-5, "but negligible (got {err})");
        assert_eq!(out.bits_per_coord(4) as u32, 16);
    }

    #[test]
    fn fp16_halves_traffic() {
        let g = grads();
        let mut s32 = PrecisionBaseline::fp32();
        let mut s16 = PrecisionBaseline::fp16();
        let t32 = s32.aggregate_round(&g, &RoundContext::new(1, 0)).traffic;
        let t16 = s16.aggregate_round(&g, &RoundContext::new(1, 0)).traffic;
        // Within rounding of ceil() per segment.
        assert!(t16.total() * 2 <= t32.total() + 16);
    }

    #[test]
    fn metadata() {
        let s = PrecisionBaseline::fp16();
        assert!(s.all_reduce_compatible());
        assert_eq!(s.nominal_bits_per_coord(100), 16.0);
        assert_eq!(s.comm_events(100)[0].payload_bytes, 200.0);
    }
}
