//! Literature-baseline compressors referenced by the paper's survey
//! (Table 1 context): QSGD \[13\], TernGrad \[63\], signSGD with error feedback
//! \[18, 29\], and RandomK \[51\].
//!
//! These serve three purposes: (1) the ablation benches compare the case
//! study's schemes against the broader design space; (2) RandomK
//! demonstrates that *shared randomness* is an alternative route to
//! all-reduce compatibility (every worker picks the same coordinates, no
//! consensus round needed — but without locality-seeking selection its
//! error is far worse than TopKC's at equal budget); (3) QSGD/TernGrad show
//! per-worker-scale quantization, which forces all-gather.

use crate::ef::ErrorFeedback;
use crate::scheme::{AggregationOutcome, CommEvent, CompressionScheme, RoundContext};
use gcs_collectives::{all_gather, ring_all_reduce, F16Sum};
use gcs_gpusim::{ops, DeviceSpec};
use gcs_netsim::Collective;
use gcs_tensor::half::F16;
use gcs_tensor::rng::{worker_rng, SharedSeed, Stream};
use rand::Rng;

/// QSGD stochastic quantization: each worker normalizes by its own L2 norm
/// and quantizes magnitudes to `2^q − 1` levels with stochastic rounding;
/// sign carried separately. Per-worker scales force all-gather aggregation.
#[derive(Clone, Debug)]
pub struct Qsgd {
    q: u32,
    n_workers: usize,
}

impl Qsgd {
    /// Creates QSGD with `q`-bit level quantization.
    ///
    /// # Panics
    /// Panics if `q` is not in `1..=8`.
    pub fn new(q: u32, n_workers: usize) -> Qsgd {
        assert!((1..=8).contains(&q), "Qsgd: q={q} out of range");
        Qsgd { q, n_workers }
    }

    fn levels(&self) -> f32 {
        ((1u32 << self.q) - 1) as f32
    }
}

impl CompressionScheme for Qsgd {
    fn name(&self) -> String {
        format!("QSGD(q={})", self.q)
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], ctx: &RoundContext) -> AggregationOutcome {
        let _round_timer = gcs_metrics::timer("scheme/qsgd/round_ns");
        let n = grads.len();
        let d = grads[0].len();
        let s = self.levels();
        // Each worker's payload: (norm, quantized magnitudes with sign).
        let encode_span = gcs_trace::span(gcs_trace::Phase::Compress, "qsgd_quantize");
        let mut payloads: Vec<Vec<f32>> = Vec::with_capacity(n);
        for (w, g) in grads.iter().enumerate() {
            let norm = gcs_tensor::vector::norm(g);
            let mut rng = worker_rng(ctx.experiment_seed ^ 0x95d, w, ctx.round);
            let mut p = Vec::with_capacity(d);
            for &x in g {
                if norm == 0.0 {
                    p.push(0.0);
                    continue;
                }
                let y = x.abs() / norm * s;
                let lo = y.floor();
                let lane = lo + f32::from(rng.gen::<f32>() < y - lo);
                p.push(lane.copysign(x) * norm / s);
            }
            payloads.push(p);
        }
        drop(encode_span);
        let bytes_per_elem = (self.q as f64 + 1.0) / 8.0;
        let (gathered, traffic) = all_gather(&payloads, bytes_per_elem);
        let _decode_span = gcs_trace::span(gcs_trace::Phase::Decompress, "qsgd_mean");
        let mut mean = vec![0.0f32; d];
        for (w, chunk) in gathered.chunks(d).enumerate() {
            let _ = w;
            gcs_tensor::vector::add_assign(&mut mean, chunk);
        }
        gcs_tensor::vector::scale(&mut mean, 1.0 / n as f32);
        AggregationOutcome {
            mean_estimate: mean,
            comm: vec![CommEvent {
                collective: Collective::AllGather,
                payload_bytes: d as f64 * bytes_per_elem + 4.0,
            }],
            traffic,
        }
    }

    fn all_reduce_compatible(&self) -> bool {
        false
    }

    fn nominal_bits_per_coord(&self, _d: u64) -> f64 {
        self.q as f64 + 1.0
    }

    fn comm_events(&self, d: u64) -> Vec<CommEvent> {
        vec![CommEvent {
            collective: Collective::AllGather,
            payload_bytes: d as f64 * (self.q as f64 + 1.0) / 8.0 + 4.0,
        }]
    }

    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64 {
        ops::quantize(d, self.q).seconds(device)
            + self.n_workers as f64 * ops::dequantize(d, self.q).seconds(device)
    }

    fn reset(&mut self) {}
}

/// TernGrad: values in {−1, 0, +1} scaled by the per-worker max magnitude.
#[derive(Clone, Debug)]
pub struct TernGrad {
    n_workers: usize,
}

impl TernGrad {
    /// Creates TernGrad.
    pub fn new(n_workers: usize) -> TernGrad {
        TernGrad { n_workers }
    }
}

impl CompressionScheme for TernGrad {
    fn name(&self) -> String {
        "TernGrad".to_string()
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], ctx: &RoundContext) -> AggregationOutcome {
        let _round_timer = gcs_metrics::timer("scheme/terngrad/round_ns");
        let n = grads.len();
        let d = grads[0].len();
        let encode_span = gcs_trace::span(gcs_trace::Phase::Compress, "terngrad_ternarize");
        let mut payloads: Vec<Vec<f32>> = Vec::with_capacity(n);
        for (w, g) in grads.iter().enumerate() {
            let (lo, hi) = gcs_tensor::vector::min_max(g);
            let s = lo.abs().max(hi.abs());
            let mut rng = worker_rng(ctx.experiment_seed ^ 0x7e4, w, ctx.round);
            let p: Vec<f32> = g
                .iter()
                .map(|&x| {
                    if s == 0.0 {
                        0.0
                    } else {
                        let keep = rng.gen::<f32>() < x.abs() / s;
                        if keep {
                            s.copysign(x)
                        } else {
                            0.0
                        }
                    }
                })
                .collect();
            payloads.push(p);
        }
        drop(encode_span);
        let (gathered, traffic) = all_gather(&payloads, 2.0 / 8.0);
        let _decode_span = gcs_trace::span(gcs_trace::Phase::Decompress, "terngrad_mean");
        let mut mean = vec![0.0f32; d];
        for chunk in gathered.chunks(d) {
            gcs_tensor::vector::add_assign(&mut mean, chunk);
        }
        gcs_tensor::vector::scale(&mut mean, 1.0 / n as f32);
        AggregationOutcome {
            mean_estimate: mean,
            comm: vec![CommEvent {
                collective: Collective::AllGather,
                payload_bytes: d as f64 * 0.25 + 4.0,
            }],
            traffic,
        }
    }

    fn all_reduce_compatible(&self) -> bool {
        false
    }

    fn nominal_bits_per_coord(&self, _d: u64) -> f64 {
        2.0
    }

    fn comm_events(&self, d: u64) -> Vec<CommEvent> {
        vec![CommEvent {
            collective: Collective::AllGather,
            payload_bytes: d as f64 * 0.25 + 4.0,
        }]
    }

    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64 {
        ops::quantize(d, 2).seconds(device)
            + self.n_workers as f64 * ops::dequantize(d, 2).seconds(device)
    }

    fn reset(&mut self) {}
}

/// signSGD with error feedback (EF-SIGNSGD \[29\]): transmit
/// `(‖c‖₁/d) · sign(c)` — one bit per coordinate plus a scalar.
#[derive(Clone, Debug)]
pub struct SignSgdEf {
    ef: ErrorFeedback,
}

impl SignSgdEf {
    /// Creates EF-signSGD.
    pub fn new(n_workers: usize) -> SignSgdEf {
        SignSgdEf {
            ef: ErrorFeedback::new(n_workers, true),
        }
    }
}

impl CompressionScheme for SignSgdEf {
    fn name(&self) -> String {
        "signSGD+EF".to_string()
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], _ctx: &RoundContext) -> AggregationOutcome {
        let _round_timer = gcs_metrics::timer("scheme/signsgd_ef/round_ns");
        let n = grads.len();
        let d = grads[0].len();
        let encode_span = gcs_trace::span(gcs_trace::Phase::Compress, "signsgd_sign");
        let mut payloads: Vec<Vec<f32>> = Vec::with_capacity(n);
        for (w, g) in grads.iter().enumerate() {
            let corrected = self.ef.corrected(w, g);
            let scale = corrected.iter().map(|x| x.abs()).sum::<f32>() / d.max(1) as f32;
            let sent: Vec<f32> = corrected.iter().map(|&x| scale.copysign(x)).collect();
            self.ef.update(w, &corrected, &sent);
            payloads.push(sent);
        }
        drop(encode_span);
        let (gathered, traffic) = all_gather(&payloads, 1.0 / 8.0);
        let _decode_span = gcs_trace::span(gcs_trace::Phase::Decompress, "signsgd_mean");
        let mut mean = vec![0.0f32; d];
        for chunk in gathered.chunks(d) {
            gcs_tensor::vector::add_assign(&mut mean, chunk);
        }
        gcs_tensor::vector::scale(&mut mean, 1.0 / n as f32);
        AggregationOutcome {
            mean_estimate: mean,
            comm: vec![CommEvent {
                collective: Collective::AllGather,
                payload_bytes: d as f64 / 8.0 + 4.0,
            }],
            traffic,
        }
    }

    fn all_reduce_compatible(&self) -> bool {
        false
    }

    fn nominal_bits_per_coord(&self, _d: u64) -> f64 {
        1.0
    }

    fn comm_events(&self, d: u64) -> Vec<CommEvent> {
        vec![CommEvent {
            collective: Collective::AllGather,
            payload_bytes: d as f64 / 8.0 + 4.0,
        }]
    }

    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64 {
        ops::elementwise(d, 8.0, 2.0).seconds(device)
    }

    fn reset(&mut self) {
        self.ef.reset();
    }
}

/// RandomK sparsification with **shared** coordinate selection: every
/// worker picks the same K random coordinates from shared randomness, so
/// the selected sub-vector can be ring-all-reduced in FP16 with no index
/// traffic at all — all-reduce compatible, but blind to gradient content.
#[derive(Clone, Debug)]
pub struct RandomK {
    bits: f64,
    ef: ErrorFeedback,
}

impl RandomK {
    /// Creates RandomK targeting `bits` bits per coordinate
    /// (`K = bits·d/16`).
    ///
    /// # Panics
    /// Panics if `bits <= 0`.
    pub fn with_bits(bits: f64, n_workers: usize) -> RandomK {
        assert!(bits > 0.0, "RandomK: bits must be positive");
        RandomK {
            bits,
            ef: ErrorFeedback::new(n_workers, true),
        }
    }

    /// K for dimension d.
    pub fn k_for(&self, d: usize) -> usize {
        (((self.bits * d as f64) / 16.0).round() as usize).clamp(1, d)
    }
}

impl CompressionScheme for RandomK {
    fn name(&self) -> String {
        format!("RandomK(b={})", self.bits)
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], ctx: &RoundContext) -> AggregationOutcome {
        let _round_timer = gcs_metrics::timer("scheme/randomk/round_ns");
        let n = grads.len();
        let d = grads[0].len();
        let k = self.k_for(d);
        // Shared selection: the first K entries of a shared permutation.
        let perm = gcs_tensor::rng::shared_permutation(
            d,
            SharedSeed::derive(ctx.experiment_seed, ctx.round, Stream::Custom(0xA11)),
        );
        let selected = &perm[..k];

        let encode_span = gcs_trace::span(gcs_trace::Phase::Compress, "randomk_gather");
        let mut corrected_all = Vec::with_capacity(n);
        let mut bufs: Vec<Vec<F16>> = Vec::with_capacity(n);
        for (w, g) in grads.iter().enumerate() {
            let corrected = self.ef.corrected(w, g);
            bufs.push(
                selected
                    .iter()
                    .map(|&i| F16::from_f32(corrected[i]))
                    .collect(),
            );
            corrected_all.push(corrected);
        }
        drop(encode_span);
        let traffic = ring_all_reduce(&mut bufs, &F16Sum, 2.0);
        let _decode_span = gcs_trace::span(gcs_trace::Phase::Decompress, "randomk_scatter");
        let mut mean = vec![0.0f32; d];
        for (slot, &i) in selected.iter().enumerate() {
            mean[i] = bufs[0][slot].to_f32() / n as f32;
        }
        for (w, corrected) in corrected_all.iter().enumerate() {
            let mut sent = vec![0.0f32; d];
            for &i in selected {
                sent[i] = F16::from_f32(corrected[i]).to_f32();
            }
            self.ef.update(w, corrected, &sent);
        }
        AggregationOutcome {
            mean_estimate: mean,
            comm: vec![CommEvent {
                collective: Collective::RingAllReduce,
                payload_bytes: k as f64 * 2.0,
            }],
            traffic,
        }
    }

    fn all_reduce_compatible(&self) -> bool {
        true
    }

    fn nominal_bits_per_coord(&self, d: u64) -> f64 {
        self.k_for(d as usize) as f64 * 16.0 / d as f64
    }

    fn comm_events(&self, d: u64) -> Vec<CommEvent> {
        vec![CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: self.k_for(d as usize) as f64 * 2.0,
        }]
    }

    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64 {
        let k = self.k_for(d as usize) as u64;
        2.0 * ops::sparse_gather_scatter(k).seconds(device)
    }

    fn reset(&mut self) {
        self.ef.reset();
    }
}

/// DRIVE \[55\]: one-bit distributed mean estimation — rotate with a shared
/// RHT, transmit the **sign** of every rotated coordinate plus one optimal
/// scale `S = ‖Rg‖² / ‖Rg‖₁`, reconstruct `S·sign`, inverse-rotate.
///
/// `b ≈ 1` bit/coordinate. Per-worker scales make payloads non-summable, so
/// aggregation is all-gather (each worker's reconstruction is averaged) —
/// another data point for the paper's compatibility column. The rotation
/// machinery is shared with THC, which is why the paper suggests its
/// partial-rotation trick "may generalize … e.g. for \[52, 55\]" — and the
/// `rotation` knob here accepts exactly that.
#[derive(Clone, Debug)]
pub struct Drive {
    rotation: gcs_tensor::hadamard::RotationMode,
}

impl Drive {
    /// Creates DRIVE with a full rotation (the original algorithm).
    pub fn new() -> Drive {
        Drive {
            rotation: gcs_tensor::hadamard::RotationMode::Full,
        }
    }

    /// Uses a partial rotation (the paper's §3.2.2 generalization note).
    pub fn with_rotation(rotation: gcs_tensor::hadamard::RotationMode) -> Drive {
        Drive { rotation }
    }
}

impl Default for Drive {
    fn default() -> Drive {
        Drive::new()
    }
}

impl CompressionScheme for Drive {
    fn name(&self) -> String {
        match self.rotation {
            gcs_tensor::hadamard::RotationMode::Full => "DRIVE".to_string(),
            _ => "DRIVE(partial)".to_string(),
        }
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], ctx: &RoundContext) -> AggregationOutcome {
        let _round_timer = gcs_metrics::timer("scheme/drive/round_ns");
        use gcs_tensor::hadamard::{padded_len, rht_forward, rht_inverse};
        let n = grads.len();
        let d = grads[0].len();
        let padded = padded_len(d.max(1));
        let iters = self.rotation.iterations(padded);
        let seed = SharedSeed::derive(ctx.experiment_seed, ctx.round, Stream::RhtSigns);

        // Each worker's payload: sign vector (as ±1 f32 lanes on the wire
        // at 1 bit each) scaled by its own optimal S.
        let encode_span = gcs_trace::span(gcs_trace::Phase::Compress, "drive_rotate_sign");
        let mut payloads: Vec<Vec<f32>> = Vec::with_capacity(n);
        for g in grads {
            let mut r = g.clone();
            r.resize(padded, 0.0);
            rht_forward(&mut r, iters, seed);
            let l2: f32 = gcs_tensor::vector::squared_norm(&r);
            let l1: f32 = r.iter().map(|x| x.abs()).sum();
            let scale = if l1 > 0.0 { l2 / l1 } else { 0.0 };
            payloads.push(r.iter().map(|&x| scale.copysign(x)).collect());
        }
        drop(encode_span);
        let (gathered, traffic) = all_gather(&payloads, 1.0 / 8.0);
        let _decode_span = gcs_trace::span(gcs_trace::Phase::Decompress, "drive_unrotate");
        let mut sum = vec![0.0f32; padded];
        for chunk in gathered.chunks(padded) {
            gcs_tensor::vector::add_assign(&mut sum, chunk);
        }
        rht_inverse(&mut sum, iters, seed);
        sum.truncate(d);
        gcs_tensor::vector::scale(&mut sum, 1.0 / n as f32);
        AggregationOutcome {
            mean_estimate: sum,
            comm: vec![CommEvent {
                collective: Collective::AllGather,
                payload_bytes: padded as f64 / 8.0 + 4.0,
            }],
            traffic,
        }
    }

    fn all_reduce_compatible(&self) -> bool {
        false
    }

    fn nominal_bits_per_coord(&self, d: u64) -> f64 {
        use gcs_tensor::hadamard::padded_len;
        (padded_len(d.max(1) as usize) as f64 + 32.0) / d as f64
    }

    fn comm_events(&self, d: u64) -> Vec<CommEvent> {
        use gcs_tensor::hadamard::padded_len;
        vec![CommEvent {
            collective: Collective::AllGather,
            payload_bytes: padded_len(d.max(1) as usize) as f64 / 8.0 + 4.0,
        }]
    }

    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64 {
        use gcs_tensor::hadamard::padded_len;
        let padded = padded_len(d.max(1) as usize);
        let iters = self.rotation.iterations(padded);
        2.0 * ops::fwht(padded as u64, iters, device).seconds(device)
            + ops::elementwise(padded as u64, 8.0, 2.0).seconds(device)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_tensor::vector::{mean, vnmse};
    use rand::SeedableRng;

    fn ctx(round: u64) -> RoundContext {
        RoundContext::new(31, round)
    }

    fn grads(n: usize, d: usize) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    }

    #[test]
    fn qsgd_is_roughly_unbiased() {
        let g = vec![vec![0.5f32; 128]];
        let mut s = Qsgd::new(4, 1);
        let mut acc = 0.0f64;
        let rounds = 200;
        for r in 0..rounds {
            acc += s.aggregate_round(&g, &ctx(r)).mean_estimate[0] as f64;
        }
        let avg = acc / rounds as f64;
        assert!((avg - 0.5).abs() < 0.02, "avg = {avg}");
    }

    #[test]
    fn qsgd_more_bits_less_error() {
        let g = grads(4, 256);
        let exact = mean(&g);
        let err = |q: u32| {
            let mut s = Qsgd::new(q, 4);
            let mut e = 0.0;
            for r in 0..5 {
                e += vnmse(&s.aggregate_round(&g, &ctx(r)).mean_estimate, &exact);
            }
            e
        };
        assert!(err(6) < err(2));
    }

    #[test]
    fn terngrad_produces_ternary_scaled_values() {
        let g = grads(1, 64);
        let mut s = TernGrad::new(1);
        let out = s.aggregate_round(&g, &ctx(0));
        let scale = g[0].iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        for &v in &out.mean_estimate {
            let ok = v == 0.0 || (v.abs() - scale).abs() < 1e-5;
            assert!(ok, "value {v} not in ternary set of scale {scale}");
        }
    }

    #[test]
    fn signsgd_error_feedback_converges_on_average() {
        let g = vec![vec![0.3f32, -0.8, 0.05, 0.5]];
        let mut s = SignSgdEf::new(1);
        let mut cum = vec![0.0f32; 4];
        let rounds = 200;
        for r in 0..rounds {
            let out = s.aggregate_round(&g, &ctx(r));
            gcs_tensor::vector::add_assign(&mut cum, &out.mean_estimate);
        }
        gcs_tensor::vector::scale(&mut cum, 1.0 / rounds as f32);
        let err = vnmse(&cum, &g[0]);
        assert!(err < 0.01, "EF-averaged signSGD error = {err}");
    }

    #[test]
    fn randomk_is_allreduce_compatible_and_consistent() {
        let g = grads(3, 100);
        let mut s = RandomK::with_bits(4.0, 3);
        let out = s.aggregate_round(&g, &ctx(0));
        assert!(s.all_reduce_compatible());
        // Exactly K coordinates non-zero (with overwhelming probability).
        let nnz = out.mean_estimate.iter().filter(|&&x| x != 0.0).count();
        assert_eq!(nnz, s.k_for(100));
    }

    #[test]
    fn drive_one_bit_estimate_correlates_with_truth() {
        let g = grads(4, 256);
        let exact = mean(&g);
        let mut s = Drive::new();
        let out = s.aggregate_round(&g, &ctx(0));
        let err = vnmse(&out.mean_estimate, &exact);
        // One bit per coordinate: coarse but far better than nothing.
        assert!(err < 0.8, "DRIVE vNMSE = {err}");
        let b = s.nominal_bits_per_coord(256);
        assert!(b > 1.0 && b < 1.4, "b = {b}");
        assert!(!s.all_reduce_compatible());
    }

    #[test]
    fn drive_rotation_improves_one_bit_quality() {
        // DRIVE without rotation degenerates on spiky vectors; the RHT is
        // what makes sign+scale a reasonable code.
        let mut g = grads(2, 512);
        for gw in &mut g {
            gw[13] = 40.0;
        }
        let exact = mean(&g);
        let mut with_rot = Drive::new();
        let mut no_rot = Drive::with_rotation(gcs_tensor::hadamard::RotationMode::None);
        let e_rot = vnmse(&with_rot.aggregate_round(&g, &ctx(0)).mean_estimate, &exact);
        let e_none = vnmse(&no_rot.aggregate_round(&g, &ctx(0)).mean_estimate, &exact);
        assert!(e_rot < e_none, "rot {e_rot} vs none {e_none}");
    }

    #[test]
    fn randomk_changes_selection_each_round() {
        let g = grads(1, 200);
        let mut s = RandomK::with_bits(2.0, 1);
        let nz = |est: &[f32]| -> Vec<usize> {
            est.iter()
                .enumerate()
                .filter(|(_, &x)| x != 0.0)
                .map(|(i, _)| i)
                .collect()
        };
        let a = nz(&s.aggregate_round(&g, &ctx(0)).mean_estimate);
        let b = nz(&s.aggregate_round(&g, &ctx(1)).mean_estimate);
        assert_ne!(a, b, "selection should be re-randomized per round");
    }
}
