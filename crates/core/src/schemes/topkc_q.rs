//! **TopKC-Q** — the generalization the paper gestures at in §3.1.2
//! ("our chunk-based aggregation approach … may be generalizable to other
//! schemes"): chunk-norm consensus *composed with* THC-style quantization.
//!
//! TopKC spends 16 bits (FP16) on every selected coordinate. But once all
//! workers agree on the chunks, the selected sub-vector is just another
//! dense vector — so it can be rotated, stochastically quantized to `q`
//! bits, and saturate-aggregated exactly like THC's payload. Total budget:
//!
//! `b = 16/C  +  (J'/d)·q  +  16/C_scale-ish metadata`
//!
//! At `q = 4` this packs ~4× more coordinates than FP16 TopKC into the same
//! bit budget, trading per-coordinate precision for coverage — the same
//! coverage-vs-precision dial the paper turns throughout §3.
//!
//! The composition inherits both all-reduce compatibilities: consensus
//! makes the coordinate set uniform, saturation keeps the integer payload
//! width fixed at intermediate hops.

use crate::ef::ErrorFeedback;
use crate::scheme::{AggregationOutcome, CommEvent, CompressionScheme, RoundContext};
use gcs_collectives::{
    ring_all_reduce_into, F16Sum, F32Max, RingScratch, SaturatingIntSum, Traffic,
};
use gcs_gpusim::{ops, DeviceSpec};
use gcs_netsim::Collective;
use gcs_tensor::half::F16;
use gcs_tensor::pool::WorkerBufs;
use gcs_tensor::rng::worker_rng;
use gcs_tensor::vector::TopKScratch;
use rand::Rng;

/// Round scratch owned across rounds: every per-round buffer of the
/// consensus + quantize pipeline, so the steady state allocates nothing.
#[derive(Clone, Debug, Default)]
struct TopKCQScratch {
    corrected: Vec<Vec<f32>>,
    norms: WorkerBufs<F16>,
    gathered: WorkerBufs<f32>,
    scales: WorkerBufs<f32>,
    lanes: WorkerBufs<i32>,
    sent: WorkerBufs<f32>,
    agg_norms: Vec<f32>,
    selected: Vec<usize>,
    topk: TopKScratch,
    ring_f16: RingScratch<F16>,
    ring_f32: RingScratch<f32>,
    ring_i32: RingScratch<i32>,
    stage_traffic: Traffic,
}

/// Chunked sparsification with q-bit quantized, saturate-aggregated values.
#[derive(Clone, Debug)]
pub struct TopKCQ {
    chunk: usize,
    bits: f64,
    q: u32,
    ef: ErrorFeedback,
    scratch: TopKCQScratch,
}

impl TopKCQ {
    /// Creates TopKC-Q targeting `bits` bits/coordinate total, with chunk
    /// size `chunk` and `q`-bit quantized values.
    ///
    /// # Panics
    /// Panics if `chunk == 0`, `q` outside `2..=8`, or the budget cannot
    /// cover the consensus round.
    pub fn with_bits(bits: f64, chunk: usize, q: u32, n_workers: usize) -> TopKCQ {
        assert!(chunk > 0, "TopKCQ: chunk must be positive");
        assert!((2..=8).contains(&q), "TopKCQ: q={q} out of range");
        assert!(
            bits > 16.0 / chunk as f64,
            "TopKCQ: bits budget {bits} cannot cover the norm round"
        );
        TopKCQ {
            chunk,
            bits,
            q,
            ef: ErrorFeedback::new(n_workers, true),
            scratch: TopKCQScratch::default(),
        }
    }

    /// Number of selected chunks at dimension `d`.
    pub fn j_for(&self, d: usize) -> usize {
        let chunks = d.div_ceil(self.chunk);
        // bits = 16/C (norms) + (J*C/d)*q (values) + (J/d)*16 (scales)
        let per_chunk_bits = self.chunk as f64 * self.q as f64 + 16.0;
        let value_budget = (self.bits - 16.0 / self.chunk as f64) * d as f64;
        ((value_budget / per_chunk_bits).round() as usize).clamp(1, chunks)
    }

    fn qmax(&self) -> i32 {
        (1i32 << (self.q - 1)) - 1
    }
}

impl CompressionScheme for TopKCQ {
    fn name(&self) -> String {
        format!("TopKC-Q(b={}, C={}, q={})", self.bits, self.chunk, self.q)
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], ctx: &RoundContext) -> AggregationOutcome {
        let mut out = AggregationOutcome::default();
        self.aggregate_round_into(grads, ctx, &mut out);
        out
    }

    fn aggregate_round_into(
        &mut self,
        grads: &[Vec<f32>],
        ctx: &RoundContext,
        out: &mut AggregationOutcome,
    ) {
        let _round_timer = gcs_metrics::timer("scheme/topkc_q/round_ns");
        let n = grads.len();
        let d = grads[0].len();
        let chunk = self.chunk;
        let chunks = d.div_ceil(chunk);
        let j = self.j_for(d);
        let qmax = self.qmax();

        // All per-round buffers live in the owned scratch (borrowed out of
        // `self` so EF and config reads stay available); the steady state
        // allocates nothing.
        let mut scratch = std::mem::take(&mut self.scratch);

        self.ef.corrected_all_into(grads, &mut scratch.corrected);

        // Stage 1: chunk-norm consensus (identical to TopKC).
        {
            let _span = gcs_trace::span(gcs_trace::Phase::Compress, "topkcq_chunk_norms");
            let corrected = &scratch.corrected;
            let norm_bufs = scratch.norms.prepare(n);
            for (buf, c) in norm_bufs.iter_mut().zip(corrected) {
                buf.extend(
                    c.chunks(chunk)
                        .map(|ch| F16::from_f32(gcs_tensor::vector::squared_norm(ch))),
                );
            }
        }
        ring_all_reduce_into(
            scratch.norms.slice_mut(n),
            &F16Sum,
            2.0,
            &mut scratch.ring_f16,
            &mut out.traffic,
        );
        scratch.agg_norms.clear();
        scratch
            .agg_norms
            .extend(scratch.norms.slice(n)[0].iter().map(|x| x.to_f32()));
        gcs_tensor::vector::top_k_indices_into(
            &scratch.agg_norms,
            j,
            &mut scratch.topk,
            &mut scratch.selected,
        );
        scratch.selected.sort_unstable();

        // Stage 2: shared per-chunk scales (max |value| across workers).
        {
            let _span = gcs_trace::span(gcs_trace::Phase::Compress, "topkcq_scales");
            let corrected = &scratch.corrected;
            let selected = &scratch.selected;
            let gathered = scratch.gathered.prepare(n);
            for (buf, c) in gathered.iter_mut().zip(corrected) {
                for &p in selected {
                    let lo = p * chunk;
                    let hi = (lo + chunk).min(d);
                    buf.extend_from_slice(&c[lo..hi]);
                }
            }
        }
        {
            let gathered = scratch.gathered.slice(n);
            let scale_bufs = scratch.scales.prepare(n);
            for (buf, g) in scale_bufs.iter_mut().zip(gathered) {
                buf.extend(g.chunks(chunk).map(|ch| {
                    let m = ch.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
                    F16::from_f32(m).to_f32()
                }));
            }
        }
        ring_all_reduce_into(
            scratch.scales.slice_mut(n),
            &F32Max,
            2.0,
            &mut scratch.ring_f32,
            &mut scratch.stage_traffic,
        );
        out.traffic.merge(&scratch.stage_traffic);

        // Stage 3: stochastic quantization + saturating all-reduce. Unlike
        // THC-Sat (which banks on cross-worker cancellation), the quantizer
        // here is *average-targeting*: each worker encodes `v/n`, so the
        // aggregated sum is bounded by the shared scale by construction —
        // `|Σ v_w/n| <= max_w |v_w| <= scale` — and the clamp never loses
        // signal even with perfectly correlated workers.
        {
            let _span = gcs_trace::span(gcs_trace::Phase::Compress, "topkcq_quantize");
            let gathered = scratch.gathered.slice(n);
            let scales = &scratch.scales.slice(n)[0];
            let lane_bufs = scratch.lanes.prepare(n);
            for (w, (lanes, g)) in lane_bufs.iter_mut().zip(gathered).enumerate() {
                let mut rng = worker_rng(ctx.experiment_seed ^ 0x1c9, w, ctx.round);
                lanes.extend(g.iter().enumerate().map(|(i, &x)| {
                    let s = scales[i / chunk];
                    if s <= 0.0 {
                        return 0;
                    }
                    let y = (x / (n as f32 * s)) * qmax as f32;
                    let lo = y.floor();
                    let up: bool = rng.gen::<f32>() < y - lo;
                    ((lo as i32) + i32::from(up)).clamp(-qmax, qmax)
                }));
            }
        }
        ring_all_reduce_into(
            scratch.lanes.slice_mut(n),
            &SaturatingIntSum::new(self.q),
            self.q as f64 / 8.0,
            &mut scratch.ring_i32,
            &mut scratch.stage_traffic,
        );
        out.traffic.merge(&scratch.stage_traffic);

        // Decode into the dense estimate.
        {
            let _span = gcs_trace::span(gcs_trace::Phase::Decompress, "topkcq_decode");
            let mean = &mut out.mean_estimate;
            mean.clear();
            mean.resize(d, 0.0);
            let summed = &scratch.lanes.slice(n)[0];
            let scales = &scratch.scales.slice(n)[0];
            let mut cursor = 0usize;
            for &p in &scratch.selected {
                let lo = p * chunk;
                let hi = (lo + chunk).min(d);
                for m in &mut mean[lo..hi] {
                    let s = scales[cursor / chunk];
                    *m = summed[cursor] as f32 * s / qmax as f32;
                    cursor += 1;
                }
            }
        }

        // EF update: each worker's own dequantized expectation is its raw
        // value (stochastic rounding is unbiased), so we feed back the
        // gathered values it actually contributed.
        {
            let corrected = &scratch.corrected;
            let selected = &scratch.selected;
            let sent_bufs = scratch.sent.prepare(n);
            for (sent, c) in sent_bufs.iter_mut().zip(corrected) {
                sent.resize(d, 0.0);
                for &p in selected {
                    let lo = p * chunk;
                    let hi = (lo + chunk).min(d);
                    sent[lo..hi].copy_from_slice(&c[lo..hi]);
                }
            }
        }
        self.ef
            .update_all(&scratch.corrected, scratch.sent.slice(n));

        let j_prime: usize = scratch
            .selected
            .iter()
            .map(|&p| (p * chunk + chunk).min(d) - p * chunk)
            .sum();
        out.comm.clear();
        out.comm.push(CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: chunks as f64 * 2.0,
        });
        out.comm.push(CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: scratch.selected.len() as f64 * 2.0,
        });
        out.comm.push(CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: j_prime as f64 * self.q as f64 / 8.0,
        });
        self.scratch = scratch;
    }

    fn all_reduce_compatible(&self) -> bool {
        true
    }

    fn nominal_bits_per_coord(&self, d: u64) -> f64 {
        let d = d as usize;
        let j = self.j_for(d);
        let j_prime = (j * self.chunk).min(d);
        (d.div_ceil(self.chunk) as f64 * 16.0 + j as f64 * 16.0 + j_prime as f64 * self.q as f64)
            / d as f64
    }

    fn comm_events(&self, d: u64) -> Vec<CommEvent> {
        let d = d as usize;
        let j = self.j_for(d);
        let j_prime = (j * self.chunk).min(d);
        vec![
            CommEvent {
                collective: Collective::RingAllReduce,
                payload_bytes: d.div_ceil(self.chunk) as f64 * 2.0,
            },
            CommEvent {
                collective: Collective::RingAllReduce,
                payload_bytes: j as f64 * 2.0,
            },
            CommEvent {
                collective: Collective::RingAllReduce,
                payload_bytes: j_prime as f64 * self.q as f64 / 8.0,
            },
        ]
    }

    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64 {
        let chunks = (d as usize).div_ceil(self.chunk) as u64;
        let j_prime = (self.j_for(d as usize) * self.chunk).min(d as usize) as u64;
        ops::chunk_norms(d, self.chunk).seconds(device)
            + ops::topk_select(chunks, self.j_for(d as usize) as u64).seconds(device)
            + ops::quantize(j_prime, self.q).seconds(device)
            + ops::dequantize(j_prime, self.q).seconds(device)
    }

    fn reset(&mut self) {
        self.ef.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::topkc::TopKC;
    use crate::synthetic::GradientModel;
    use gcs_tensor::rng::SharedSeed;
    use gcs_tensor::vector::{mean, vnmse};

    fn synthetic(scheme: &mut dyn CompressionScheme, rounds: u64) -> f64 {
        let m = GradientModel::bert_like(1 << 16);
        let mut sum = 0.0;
        for r in 0..rounds {
            let grads = m.generate(4, SharedSeed::new(300 + r));
            let exact = mean(&grads);
            let out = scheme.aggregate_round(&grads, &RoundContext::new(13, r));
            sum += vnmse(&out.mean_estimate, &exact);
        }
        sum / rounds as f64
    }

    #[test]
    fn covers_more_coordinates_than_fp16_topkc_at_equal_budget() {
        let d = 1 << 16;
        let q = TopKCQ::with_bits(2.0, 64, 4, 4);
        let plain = TopKC::with_bits(2.0, 64, 4, false);
        let covered_q = q.j_for(d) * 64;
        let covered_plain = plain.j_prime_for(d);
        assert!(
            covered_q as f64 > 2.5 * covered_plain as f64,
            "q covers {covered_q}, plain covers {covered_plain}"
        );
    }

    #[test]
    fn bits_accounting_is_honest() {
        let s = TopKCQ::with_bits(2.0, 64, 4, 4);
        let b = s.nominal_bits_per_coord(1 << 16);
        assert!((b - 2.0).abs() < 0.15, "b = {b}");
    }

    #[test]
    fn beats_plain_topkc_at_aggressive_budgets() {
        // 4x the coverage at q=4 should reduce vNMSE on heavy-but-wide
        // gradients at a tight budget.
        let mut q = TopKCQ::with_bits(1.0, 64, 4, 4);
        let mut plain = TopKC::with_bits(1.0, 128, 4, false);
        let e_q = synthetic(&mut q, 3);
        let e_plain = synthetic(&mut plain, 3);
        assert!(
            e_q < e_plain,
            "TopKC-Q {e_q} should beat plain TopKC {e_plain} at b=1"
        );
    }

    #[test]
    fn estimate_is_unbiased_on_selected_chunks() {
        let grads = vec![vec![0.5f32; 64]];
        let mut s = TopKCQ::with_bits(6.0, 8, 4, 1);
        let mut acc = vec![0.0f64; 64];
        let rounds = 300;
        for r in 0..rounds {
            s.reset(); // keep EF out of the unbiasedness measurement
            let out = s.aggregate_round(&grads, &RoundContext::new(21, r));
            for (a, &x) in acc.iter_mut().zip(&out.mean_estimate) {
                *a += x as f64 / rounds as f64;
            }
        }
        // All chunks identical: selection arbitrary but some chunk present;
        // check a selected coordinate's average is near 0.5.
        let nonzero: Vec<f64> = acc.iter().copied().filter(|&x| x != 0.0).collect();
        assert!(!nonzero.is_empty());
        let avg = nonzero.iter().sum::<f64>() / nonzero.len() as f64;
        assert!((avg - 0.5).abs() < 0.05, "avg = {avg}");
    }

    #[test]
    fn all_reduce_compatible_and_stateful_reset() {
        let s = TopKCQ::with_bits(2.0, 64, 4, 4);
        assert!(s.all_reduce_compatible());
        assert!(s.name().contains("TopKC-Q"));
    }
}
