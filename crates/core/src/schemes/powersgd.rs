//! PowerSGD low-rank gradient compression (§3.3).
//!
//! Each layer's gradient matrix `M (m×n)` is approximated as `P̂ Qᵀ` with
//! rank `r` via one step of subspace iteration per round, warm-started from
//! the previous round's `Q`:
//!
//! 1. `P = Σᵢ Mᵢ Q`       — ring all-reduce of `m×r` (FP32)
//! 2. `P̂ = GramSchmidt(P)` — **the expensive part**, §3.3's profiled
//!    bottleneck
//! 3. `Q' = Σᵢ Mᵢᵀ P̂ / n` — ring all-reduce of `n×r` (FP32)
//! 4. estimate `= P̂ Q'ᵀ`; per-worker error feedback
//!    `memᵢ = Mᵢ − P̂ (Mᵢᵀ P̂)ᵀ`
//!
//! PowerSGD is natively all-reduce compatible (summing `P`s and `Q`s *is*
//! the aggregation — the paper's Table 1 credits it via \[11\]), and achieves
//! extreme compression ratios (`b` well below 1 bit/coordinate, Table 9) —
//! but its throughput is bounded by orthogonalization, not communication,
//! which is the §3.3 finding our cost model reproduces.

use crate::ef::ErrorFeedback;
use crate::scheme::{AggregationOutcome, CommEvent, CompressionScheme, RoundContext};
use gcs_collectives::{ring_all_reduce_into, F32Sum, RingScratch, Traffic};
use gcs_gpusim::{ops, DeviceSpec};
use gcs_netsim::Collective;
use gcs_tensor::matrix::{
    matmul_bt_into, matmul_into, orthonormalize_columns_slice, transpose_matmul_into, GsScratch,
    Matrix,
};
use gcs_tensor::pool::WorkerBufs;
use gcs_tensor::rng::{SharedSeed, Stream};
use rand::Rng;

/// Round scratch owned across rounds. Every buffer the round touches —
/// EF-corrected gradients, per-worker P/Q factors, the orthonormalized P̂,
/// Gram–Schmidt staging, ring staging — lives here and is refilled in
/// place, so the steady-state round performs no heap allocation (asserted
/// by `tests/alloc_budget.rs`). The per-layer matmuls write straight into
/// these buffers via the `_into` matrix free functions.
#[derive(Clone, Debug, Default)]
struct PowerSgdScratch {
    corrected: Vec<Vec<f32>>,
    sent: WorkerBufs<f32>,
    p_bufs: WorkerBufs<f32>,
    /// Per-worker `Mᵢᵀ P̂`, kept un-reduced for the EF contributions.
    q_locals: WorkerBufs<f32>,
    q_bufs: WorkerBufs<f32>,
    /// The summed-and-orthonormalized P factor for the current layer.
    p_hat: Vec<f32>,
    gs: GsScratch,
    rest: WorkerBufs<f32>,
    ring: RingScratch<f32>,
    stage_traffic: Traffic,
}

/// PowerSGD low-rank compression.
#[derive(Clone, Debug)]
pub struct PowerSgd {
    rank: u32,
    shapes: Vec<(usize, usize)>,
    /// Paper-scale shapes used only by the cost/traffic model.
    cost_shapes: Vec<(u64, u64)>,
    q_states: Vec<Matrix>,
    ef: ErrorFeedback,
    scratch: PowerSgdScratch,
}

impl PowerSgd {
    /// Creates PowerSGD with target rank `r` over the given per-layer
    /// matrix shapes. The shapes' element counts must not exceed the
    /// gradient dimension; any remainder is carried as one extra column
    /// vector.
    ///
    /// # Panics
    /// Panics if `rank == 0` or any shape is degenerate.
    pub fn new(rank: u32, shapes: Vec<(usize, usize)>, n_workers: usize) -> PowerSgd {
        assert!(rank > 0, "PowerSgd: rank must be positive");
        assert!(
            shapes.iter().all(|&(r, c)| r > 0 && c > 0),
            "PowerSgd: degenerate shape"
        );
        let cost_shapes = shapes.iter().map(|&(r, c)| (r as u64, c as u64)).collect();
        PowerSgd {
            rank,
            shapes,
            cost_shapes,
            q_states: Vec::new(),
            ef: ErrorFeedback::new(n_workers, true),
            scratch: PowerSgdScratch::default(),
        }
    }

    /// Creates PowerSGD treating the whole gradient as one near-square
    /// matrix (how non-layer-aware deployments run it).
    pub fn square(rank: u32, d: usize, n_workers: usize) -> PowerSgd {
        let cols = (d as f64).sqrt().ceil() as usize;
        let rows = d.div_ceil(cols.max(1)).max(1);
        PowerSgd::new(rank, vec![(rows, cols.max(1))], n_workers)
    }

    /// Disables error feedback (ablation; the paper always runs PowerSGD
    /// with EF, as does the original algorithm).
    pub fn without_ef(mut self) -> PowerSgd {
        let n = self.ef.n_workers();
        self.ef = ErrorFeedback::new(n, false);
        self
    }

    /// Overrides the shapes used by the *cost model* (paper-scale layer
    /// shapes) while keeping the functional shapes for real data.
    pub fn with_cost_shapes(mut self, cost_shapes: Vec<(u64, u64)>) -> PowerSgd {
        self.cost_shapes = cost_shapes;
        self
    }

    /// Target rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    fn layer_rank(&self, rows: usize, cols: usize) -> usize {
        (self.rank as usize).min(rows).min(cols)
    }

    /// Values communicated per round (P plus Q factors) at the cost shapes.
    fn comm_values(&self) -> u64 {
        self.cost_shapes
            .iter()
            .map(|&(r, c)| (r + c) * self.rank as u64)
            .sum()
    }

    fn cost_d(&self) -> u64 {
        self.cost_shapes.iter().map(|&(r, c)| r * c).sum()
    }
}

impl CompressionScheme for PowerSgd {
    fn name(&self) -> String {
        format!("PowerSGD(r={})", self.rank)
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], ctx: &RoundContext) -> AggregationOutcome {
        let mut out = AggregationOutcome::default();
        self.aggregate_round_into(grads, ctx, &mut out);
        out
    }

    fn aggregate_round_into(
        &mut self,
        grads: &[Vec<f32>],
        ctx: &RoundContext,
        out: &mut AggregationOutcome,
    ) {
        let _round_timer = gcs_metrics::timer("scheme/powersgd/round_ns");
        let n = grads.len();
        let d = grads[0].len();
        let covered: usize = self.shapes.iter().map(|&(r, c)| r * c).sum();
        assert!(
            covered <= d,
            "PowerSgd: shapes cover {covered} > gradient dim {d}"
        );

        let mut scratch = std::mem::take(&mut self.scratch);

        // EF-corrected gradients (batched, parallel across workers). The
        // per-layer matmuls below parallelize internally over output rows,
        // which fits PowerSGD's few-workers/large-matrices regime better
        // than fanning out over the worker loop.
        self.ef.corrected_all_into(grads, &mut scratch.corrected);

        // Lazily initialize Q states from shared randomness so all workers
        // (and reruns) agree.
        if self.q_states.len() != self.shapes.len() {
            self.q_states = self
                .shapes
                .iter()
                .enumerate()
                .map(|(l, &(rows, cols))| {
                    let r = self.layer_rank(rows, cols);
                    let mut rng =
                        SharedSeed::derive(ctx.experiment_seed, l as u64, Stream::Custom(0x505))
                            .rng();
                    let data: Vec<f32> = (0..cols * r).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    Matrix::from_vec(cols, r, data)
                })
                .collect();
        }

        out.mean_estimate.clear();
        out.mean_estimate.resize(d, 0.0);
        let estimate = &mut out.mean_estimate;
        out.traffic.reset(n);
        let mut p_bytes = 0.0f64;
        let mut q_bytes = 0.0f64;
        let mut offset = 0usize;
        let PowerSgdScratch {
            corrected,
            sent,
            p_bufs,
            q_locals,
            q_bufs,
            p_hat,
            gs,
            rest,
            ring,
            stage_traffic,
        } = &mut scratch;
        for s in sent.prepare(n).iter_mut() {
            s.resize(d, 0.0);
        }

        for (l, &(rows, cols)) in self.shapes.iter().enumerate() {
            let len = rows * cols;
            let r = self.layer_rank(rows, cols);
            let q_prev = &self.q_states[l];

            // P_i = M_i Q, all-reduced. Each worker's matrix is the layer
            // slice of its corrected gradient — viewed in place, never
            // copied.
            {
                let _s = gcs_trace::span(gcs_trace::Phase::Compress, "powersgd_matmul_p");
                for (buf, c) in p_bufs.prepare(n).iter_mut().zip(corrected.iter()) {
                    buf.resize(rows * r, 0.0);
                    matmul_into(&c[offset..offset + len], rows, cols, q_prev.data(), r, buf);
                }
            }
            ring_all_reduce_into(p_bufs.slice_mut(n), &F32Sum, 4.0, ring, stage_traffic);
            out.traffic.merge(stage_traffic);
            p_bytes += (rows * r * 4) as f64;

            // Orthonormalize the summed P in the persistent P̂ buffer.
            p_hat.clear();
            p_hat.extend_from_slice(&p_bufs.slice(n)[0]);
            {
                let _s = gcs_trace::span(gcs_trace::Phase::Compress, "gram_schmidt");
                orthonormalize_columns_slice(p_hat, rows, r, gs);
            }

            // Q_i = M_iᵀ P̂, kept per worker for the EF contributions, with
            // a copy all-reduced then averaged.
            {
                let _s = gcs_trace::span(gcs_trace::Phase::Compress, "powersgd_matmul_q");
                for (buf, c) in q_locals.prepare(n).iter_mut().zip(corrected.iter()) {
                    buf.resize(cols * r, 0.0);
                    transpose_matmul_into(&c[offset..offset + len], rows, cols, p_hat, r, buf);
                }
            }
            for (buf, q) in q_bufs.prepare(n).iter_mut().zip(q_locals.slice(n)) {
                buf.extend_from_slice(q);
            }
            ring_all_reduce_into(q_bufs.slice_mut(n), &F32Sum, 4.0, ring, stage_traffic);
            out.traffic.merge(stage_traffic);
            q_bytes += (cols * r * 4) as f64;

            // Average the summed Q straight into the warm-start state
            // (same shape every round, so this is a pure overwrite).
            let q_state = &mut self.q_states[l];
            q_state.data_mut().copy_from_slice(&q_bufs.slice(n)[0]);
            gcs_tensor::vector::scale(q_state.data_mut(), 1.0 / n as f32);

            // Estimate = P̂ Q_meanᵀ (mean of per-worker approximations),
            // written directly into the outcome's layer slice.
            {
                let _s = gcs_trace::span(gcs_trace::Phase::Decompress, "powersgd_estimate");
                matmul_bt_into(
                    p_hat,
                    rows,
                    r,
                    q_state.data(),
                    cols,
                    &mut estimate[offset..offset + len],
                );
            }

            // Per-worker contributions for EF: P̂ (M_iᵀ P̂)ᵀ. Only needed
            // when EF is on — `sent` feeds `update_all`, which no-ops when
            // disabled, so skip the n_workers extra matmuls in that case.
            if self.ef.enabled() {
                let _s = gcs_trace::span(gcs_trace::Phase::Compress, "powersgd_ef_contrib");
                let sent = sent.slice_mut(n);
                for (w, q_local) in q_locals.slice(n).iter().enumerate() {
                    matmul_bt_into(
                        p_hat,
                        rows,
                        r,
                        q_local,
                        cols,
                        &mut sent[w][offset..offset + len],
                    );
                }
            }

            offset += len;
        }

        // Remainder coordinates (biases etc.): aggregated uncompressed in
        // FP32 — matching PowerSGD deployments, which only compress matrix
        // parameters.
        if offset < d {
            for (buf, c) in rest.prepare(n).iter_mut().zip(corrected.iter()) {
                buf.extend_from_slice(&c[offset..]);
            }
            ring_all_reduce_into(rest.slice_mut(n), &F32Sum, 4.0, ring, stage_traffic);
            out.traffic.merge(stage_traffic);
            q_bytes += ((d - offset) * 4) as f64;
            let rest = &rest.slice(n)[0];
            let sent = sent.slice_mut(n);
            for (i, &v) in rest.iter().enumerate() {
                estimate[offset + i] = v / n as f32;
            }
            for (w, s) in sent.iter_mut().enumerate() {
                s[offset..].copy_from_slice(&corrected[w][offset..]);
            }
        }

        // EF update (batched, parallel across workers).
        self.ef.update_all(corrected, sent.slice(n));

        out.comm.clear();
        out.comm.push(CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: p_bytes,
        });
        out.comm.push(CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: q_bytes,
        });
        self.scratch = scratch;
    }

    fn all_reduce_compatible(&self) -> bool {
        true
    }

    fn nominal_bits_per_coord(&self, d: u64) -> f64 {
        self.comm_values() as f64 * 32.0 / d.max(self.cost_d()).max(1) as f64
    }

    fn comm_events(&self, _d: u64) -> Vec<CommEvent> {
        let half = self.comm_values() as f64 * 4.0 / 2.0;
        vec![
            CommEvent {
                collective: Collective::RingAllReduce,
                payload_bytes: half,
            },
            CommEvent {
                collective: Collective::RingAllReduce,
                payload_bytes: half,
            },
        ]
    }

    fn compute_seconds(&self, _d: u64, device: &DeviceSpec) -> f64 {
        ops::powersgd_round(&self.cost_shapes, self.rank, device)
    }

    fn reset(&mut self) {
        self.q_states.clear();
        self.ef.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_tensor::vector::{mean, vnmse};
    use rand::SeedableRng;

    fn ctx(round: u64) -> RoundContext {
        RoundContext::new(123, round)
    }

    /// A set of gradients that are genuinely low-rank: outer products.
    fn low_rank_grads(n: usize, rows: usize, cols: usize, rank: usize) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        (0..n)
            .map(|_| {
                let mut m = vec![0.0f32; rows * cols];
                for _ in 0..rank {
                    let u: Vec<f32> = (0..rows).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                    let v: Vec<f32> = (0..cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                    for i in 0..rows {
                        for j in 0..cols {
                            m[i * cols + j] += u[i] * v[j];
                        }
                    }
                }
                m
            })
            .collect()
    }

    #[test]
    fn rank1_matrix_recovered_almost_exactly() {
        // All workers hold scalar multiples of the same rank-1 matrix, so
        // the *mean* is also rank-1 and a rank-2 approximation is exact.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let u: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let v: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let grads: Vec<Vec<f32>> = (0..3)
            .map(|w| {
                let c = 0.5 + w as f32 * 0.3;
                (0..48).map(|i| c * u[i / 6] * v[i % 6]).collect()
            })
            .collect();
        let exact = mean(&grads);
        let mut s = PowerSgd::new(2, vec![(8, 6)], 3).without_ef();
        // A couple of warm-up rounds for the power iteration to lock on.
        let mut out = s.aggregate_round(&grads, &ctx(0));
        for r in 1..4 {
            out = s.aggregate_round(&grads, &ctx(r));
        }
        let err = vnmse(&out.mean_estimate, &exact);
        assert!(err < 1e-2, "rank-1 input, rank-2 approx: vNMSE = {err}");
    }

    #[test]
    fn higher_rank_reduces_error() {
        let grads = low_rank_grads(2, 16, 12, 6);
        let exact = mean(&grads);
        let err_at = |rank: u32| {
            let mut s = PowerSgd::new(rank, vec![(16, 12)], 2);
            let mut out = s.aggregate_round(&grads, &ctx(0));
            for r in 1..5 {
                out = s.aggregate_round(&grads, &ctx(r));
            }
            vnmse(&out.mean_estimate, &exact)
        };
        let e1 = err_at(1);
        let e6 = err_at(6);
        assert!(e6 < e1 * 0.5, "e1={e1} e6={e6}");
    }

    #[test]
    fn error_feedback_preserves_signal_over_time() {
        // With EF, repeated compression of the same gradient accumulates the
        // full signal: cumulative estimates converge to the true mean.
        let grads = low_rank_grads(2, 10, 10, 5);
        let exact = mean(&grads);
        let mut s = PowerSgd::new(1, vec![(10, 10)], 2);
        let mut cum = vec![0.0f32; 100];
        let rounds = 30;
        for r in 0..rounds {
            let out = s.aggregate_round(&grads, &ctx(r));
            gcs_tensor::vector::add_assign(&mut cum, &out.mean_estimate);
        }
        let mut avg = cum.clone();
        gcs_tensor::vector::scale(&mut avg, 1.0 / rounds as f32);
        let err = vnmse(&avg, &exact);
        assert!(err < 0.05, "EF-averaged error = {err}");
    }

    #[test]
    fn remainder_coordinates_pass_through_exactly() {
        // Shapes cover 12 of 15 coordinates; the rest must be exact.
        let grads = vec![
            (0..15).map(|i| i as f32 * 0.1).collect::<Vec<f32>>(),
            (0..15).map(|i| -(i as f32) * 0.05).collect::<Vec<f32>>(),
        ];
        let exact = mean(&grads);
        let mut s = PowerSgd::new(1, vec![(4, 3)], 2);
        let out = s.aggregate_round(&grads, &ctx(0));
        for (i, (got, want)) in out.mean_estimate[12..15]
            .iter()
            .zip(&exact[12..15])
            .enumerate()
        {
            assert!((got - want).abs() < 1e-6, "remainder coord {}", 12 + i);
        }
    }

    #[test]
    fn bits_per_coordinate_is_tiny() {
        // 1000x1000 matrix at rank 4: b = (2000*4*32)/1e6 = 0.256.
        let s = PowerSgd::new(4, vec![(1000, 1000)], 2);
        let b = s.nominal_bits_per_coord(1_000_000);
        assert!((b - 0.256).abs() < 1e-3, "b = {b}");
        assert!(s.all_reduce_compatible());
    }

    #[test]
    fn rank_clamped_to_matrix_dims() {
        let grads = low_rank_grads(2, 3, 2, 1);
        let mut s = PowerSgd::new(64, vec![(3, 2)], 2);
        // Must not panic; effective rank is 2.
        let out = s.aggregate_round(&grads, &ctx(0));
        assert_eq!(out.mean_estimate.len(), 6);
    }
}
