//! Sketched sparsification (FetchSGD-style): compress via a **linear**
//! count-sketch, aggregate sketches with a plain ring all-reduce, recover
//! the aggregate's heavy hitters, and carry the residual in error feedback.
//!
//! This is the third route to all-reduce compatibility in this suite, and
//! the most structural one:
//!
//! * TopKC earns compatibility through a *consensus round* (§3.1.2);
//! * THC+Sat earns it through *closed-under-addition payloads* (§3.2.2);
//! * a sketch is compatible *by linearity* — `S(Σg) = ΣS(g)` — so
//!   intermediate hops just add tables, and what gets recovered are the
//!   heavy hitters of the **global sum** (an approximation of Global TopK,
//!   which §3.1.1 notes is unobtainable directly!).
//!
//! The price is recovery compute (`O(d·rows)` estimation) and collision
//! noise, both measurable here.

use crate::ef::ErrorFeedback;
use crate::scheme::{AggregationOutcome, CommEvent, CompressionScheme, RoundContext};
use gcs_collectives::{ring_all_reduce, F32Sum};
use gcs_gpusim::{ops, DeviceSpec};
use gcs_netsim::Collective;
use gcs_tensor::rng::{SharedSeed, Stream};
use gcs_tensor::sketch::{CountSketch, SketchScratch};

/// FetchSGD-style sketched compression.
#[derive(Clone, Debug)]
pub struct SketchScheme {
    rows: usize,
    /// Sketch width as a fraction of `d` (total payload = rows × width).
    width_frac: f64,
    /// Heavy hitters recovered per round, as a fraction of `d`.
    k_frac: f64,
    ef: ErrorFeedback,
    /// Estimation scratch owned across rounds: the `O(d·rows)` recovery
    /// pass reuses these buffers instead of allocating per coordinate.
    scratch: SketchScratch,
}

impl SketchScheme {
    /// Creates the scheme. `bits` is the target payload bits/coordinate;
    /// width is derived as `bits·d / (32·rows)`.
    ///
    /// # Panics
    /// Panics if parameters are degenerate.
    pub fn with_bits(bits: f64, rows: usize, k_frac: f64, n_workers: usize) -> SketchScheme {
        assert!(rows > 0, "SketchScheme: rows must be positive");
        assert!(bits > 0.0, "SketchScheme: bits must be positive");
        assert!(
            (0.0..=1.0).contains(&k_frac) && k_frac > 0.0,
            "SketchScheme: k_frac out of range"
        );
        SketchScheme {
            rows,
            width_frac: bits / (32.0 * rows as f64),
            k_frac,
            ef: ErrorFeedback::new(n_workers, true),
            scratch: SketchScratch::new(),
        }
    }

    fn width_for(&self, d: usize) -> usize {
        ((self.width_frac * d as f64).round() as usize).max(8)
    }

    fn k_for(&self, d: usize) -> usize {
        ((self.k_frac * d as f64).round() as usize).clamp(1, d)
    }
}

impl CompressionScheme for SketchScheme {
    fn name(&self) -> String {
        format!(
            "Sketch(r={}, b~{:.1})",
            self.rows,
            self.width_frac * 32.0 * self.rows as f64
        )
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], ctx: &RoundContext) -> AggregationOutcome {
        let _round_timer = gcs_metrics::timer("scheme/sketch/round_ns");
        let n = grads.len();
        let d = grads[0].len();
        let width = self.width_for(d);
        let k = self.k_for(d);
        // The hash seed is *fixed per experiment* (not per round): EF
        // residuals live partly in collision space, and re-hashing every
        // round would decorrelate them from the memory.
        let seed = SharedSeed::derive(ctx.experiment_seed, 0, Stream::Custom(0x57e7));

        // Sketch each worker's EF-corrected gradient.
        let encode_span = gcs_trace::span(gcs_trace::Phase::Compress, "sketch_insert");
        let mut corrected_all = Vec::with_capacity(n);
        let mut tables: Vec<Vec<f32>> = Vec::with_capacity(n);
        for (w, g) in grads.iter().enumerate() {
            let corrected = self.ef.corrected(w, g);
            let mut sk = CountSketch::new(self.rows, width, seed);
            sk.insert(&corrected);
            tables.push(sk.table().to_vec());
            corrected_all.push(corrected);
        }

        drop(encode_span);

        // Linear aggregation: ring all-reduce over the raw tables.
        let traffic = ring_all_reduce(&mut tables, &F32Sum, 4.0);
        let mut agg = CountSketch::new(self.rows, width, seed);
        agg.table_mut().copy_from_slice(&tables[0]);

        // Recover the aggregate's heavy hitters through the pooled
        // estimation scratch (median buffer + TopK selection scratch).
        let decode_span = gcs_trace::span(gcs_trace::Phase::Decompress, "sketch_recover");
        let mut hitters = Vec::with_capacity(k);
        agg.heavy_hitters_into(d, k, &mut self.scratch, &mut hitters);
        let mut vals = Vec::with_capacity(self.rows);
        let mut mean = vec![0.0f32; d];
        for &i in &hitters {
            mean[i] = agg.estimate_with(i, &mut vals) / n as f32;
        }
        drop(decode_span);

        // EF: each worker's transmitted contribution is its own sketch's
        // estimate at the recovered coordinates.
        for (w, corrected) in corrected_all.iter().enumerate() {
            let mut own = CountSketch::new(self.rows, width, seed);
            own.insert(corrected);
            let mut sent = vec![0.0f32; d];
            for &i in &hitters {
                sent[i] = own.estimate_with(i, &mut vals);
            }
            self.ef.update(w, corrected, &sent);
        }

        AggregationOutcome {
            mean_estimate: mean,
            comm: vec![CommEvent {
                collective: Collective::RingAllReduce,
                payload_bytes: (self.rows * width * 4) as f64,
            }],
            traffic,
        }
    }

    fn all_reduce_compatible(&self) -> bool {
        true
    }

    fn nominal_bits_per_coord(&self, d: u64) -> f64 {
        (self.rows * self.width_for(d as usize)) as f64 * 32.0 / d as f64
    }

    fn comm_events(&self, d: u64) -> Vec<CommEvent> {
        vec![CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: (self.rows * self.width_for(d as usize) * 4) as f64,
        }]
    }

    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64 {
        // Insertion: rows scattered updates per coordinate; recovery:
        // rows reads per coordinate (both non-coalesced).
        let r = self.rows as f64;
        ops::sparse_gather_scatter((d as f64 * r) as u64).seconds(device)
            + ops::sparse_gather_scatter((d as f64 * r) as u64).seconds(device)
    }

    fn reset(&mut self) {
        self.ef.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::GradientModel;
    use gcs_tensor::vector::{mean, vnmse};

    #[test]
    fn recovers_heavy_hitters_of_the_global_sum() {
        // Worker gradients whose *sum* has heavy coordinates that no single
        // worker's local TopK would rank first — the Global-TopK advantage.
        let d = 400;
        let n = 4;
        let mut grads = vec![vec![0.0f32; d]; n];
        // Coordinate 7: every worker contributes 1.0 (sum 4.0).
        // Coordinate 100+w: worker w alone contributes 2.5 (sum 2.5).
        for (w, g) in grads.iter_mut().enumerate() {
            g[7] = 1.0;
            g[100 + w] = 2.5;
        }
        let mut s = SketchScheme::with_bits(8.0, 5, 0.01, n);
        let out = s.aggregate_round(&grads, &RoundContext::new(3, 0));
        // k = 4 coordinates recovered; coordinate 7 (global heavy) must be
        // among them even though each worker's local top-1 is 100+w.
        assert!(
            out.mean_estimate[7] > 0.5,
            "global heavy hitter missed: {}",
            out.mean_estimate[7]
        );
    }

    #[test]
    fn is_allreduce_compatible_and_linear_traffic() {
        let s = SketchScheme::with_bits(4.0, 4, 0.05, 4);
        assert!(s.all_reduce_compatible());
        let b = s.nominal_bits_per_coord(100_000);
        assert!((b - 4.0).abs() < 0.2, "b = {b}");
    }

    #[test]
    fn error_feedback_recovers_tail_coordinates_over_time() {
        let d = 300;
        let grads = vec![{
            let mut g = vec![0.1f32; d];
            g[5] = 3.0;
            g
        }];
        let mut s = SketchScheme::with_bits(6.0, 3, 0.02, 1);
        let mut seen_tail = false;
        for r in 0..20 {
            let out = s.aggregate_round(&grads, &RoundContext::new(9, r));
            if out
                .mean_estimate
                .iter()
                .enumerate()
                .any(|(i, &x)| i != 5 && x > 0.3)
            {
                seen_tail = true;
                break;
            }
        }
        assert!(seen_tail, "EF never surfaced tail coordinates");
    }

    #[test]
    fn works_in_its_regime_sparse_heavy_signals() {
        // Sketching recovers signals whose energy concentrates in FEW
        // coordinates (FetchSGD applies it to momentum-accumulated
        // gradients for exactly this reason). Build 4 workers around a
        // shared 20-spike signal plus light noise.
        use rand::{Rng, SeedableRng};
        let d = 4096;
        let n = 4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let mut signal = vec![0.0f32; d];
        for _ in 0..20 {
            let i = rng.gen_range(0..d);
            signal[i] = rng.gen_range(2.0f32..5.0) * if rng.gen::<bool>() { 1.0 } else { -1.0 };
        }
        let grads: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                signal
                    .iter()
                    .map(|&x| x + rng.gen_range(-0.05f32..0.05))
                    .collect()
            })
            .collect();
        let exact = mean(&grads);
        let mut s = SketchScheme::with_bits(8.0, 5, 0.01, n);
        let out = s.aggregate_round(&grads, &RoundContext::new(17, 0));
        let err = vnmse(&out.mean_estimate, &exact);
        assert!(err < 0.3, "sketch missed the sparse signal: vNMSE {err}");
    }

    #[test]
    fn dense_gradients_are_outside_the_sketchs_regime() {
        // The flip side, documented as a test: on wide heavy-tailed
        // gradients (bert_like), collision noise drowns per-coordinate
        // estimates and recovery is poor — the reason the paper's case
        // study uses chunking/quantization rather than sketching for dense
        // gradients.
        let model = GradientModel::bert_like(1 << 12);
        let grads = model.generate(4, gcs_tensor::rng::SharedSeed::new(31));
        let exact = mean(&grads);
        let mut s = SketchScheme::with_bits(8.0, 5, 0.01, 4);
        let out = s.aggregate_round(&grads, &RoundContext::new(17, 0));
        let err = vnmse(&out.mean_estimate, &exact);
        assert!(err > 0.5, "unexpectedly good on dense input: {err}");
    }
}
