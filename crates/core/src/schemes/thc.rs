//! THC-style stochastic quantization with the paper's two improvements:
//! **partial rotation** and **saturation-based aggregation** (§3.2).
//!
//! Pipeline per round:
//!
//! 1. Pad the gradient to `2^l` and apply a Randomized Hadamard Transform —
//!    fully (`l` iterations), partially (`l' = log2(shared-memory block)`
//!    iterations ≡ independent per-block rotations), or not at all.
//! 2. Agree on per-block symmetric scales: each worker's per-block max
//!    magnitude is max-all-reduced (tiny payload), so every worker uses the
//!    *same* quantization grid — a precondition for summing lanes at
//!    intermediate hops.
//! 3. Stochastically round each coordinate to a signed `q`-bit lane
//!    (unbiased).
//! 4. Aggregate lanes with a ring all-reduce whose reduction is either
//!    the paper's **`Sat(·,·)`** operator at `b = q` bits (§3.2.2), or THC's
//!    original "simple adaptation": widen to `b > q` bits so sums cannot
//!    overflow — more traffic, still `n`-limited.
//! 5. Rescale, inverse-rotate, truncate.
//!
//! Why saturation is safe *after rotation*: the RHT spreads each gradient
//! into approximately Gaussian coordinates concentrated near zero, and
//! opposite-signed contributions cancel during summation, so clamping at
//! `±(2^{b−1}−1)` rarely triggers (§3.2.2). Without rotation the raw
//! gradient's heavy tail saturates far more often — tests below check
//! exactly this.

use crate::scheme::{AggregationOutcome, CommEvent, CompressionScheme, RoundContext};
use gcs_collectives::{
    ring_all_reduce_into, F32Max, RingScratch, SaturatingIntSum, Traffic, WideIntSum,
};
use gcs_gpusim::{ops, DeviceSpec};
use gcs_netsim::Collective;
use gcs_tensor::hadamard::{padded_len, rht_forward, rht_inverse, RotationMode};
use gcs_tensor::half::F16;
use gcs_tensor::pool::WorkerBufs;
use gcs_tensor::rng::{worker_rng, SharedSeed, Stream};
use rand::Rng;

/// How quantized lanes are aggregated across workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThcAggregation {
    /// The paper's saturation operator at `b = q` bits — no widening.
    Saturating,
    /// THC's simple adaptation: widen lanes to `b > q` bits so the exact sum
    /// fits. `b` must satisfy `b >= q + ceil(log2 n)`.
    Widened {
        /// Communication bits per lane.
        b: u32,
    },
}

/// Round scratch owned across rounds: per-worker rotation, scale and lane
/// buffers plus collective staging, all at their high-water mark after the
/// first round (the zero-allocation steady state).
#[derive(Clone, Debug, Default)]
struct ThcScratch {
    rotated: WorkerBufs<f32>,
    scales: WorkerBufs<f32>,
    lanes: WorkerBufs<i32>,
    ring_f32: RingScratch<f32>,
    ring_i32: RingScratch<i32>,
    lane_traffic: Traffic,
}

/// THC quantization scheme.
#[derive(Clone, Debug)]
pub struct Thc {
    q: u32,
    rotation: RotationMode,
    aggregation: ThcAggregation,
    n_workers: usize,
    scratch: ThcScratch,
}

impl Thc {
    /// Creates THC with `q`-bit quantization.
    ///
    /// # Panics
    /// Panics if `q < 2` or a widened config has `b < q`.
    pub fn new(
        q: u32,
        rotation: RotationMode,
        aggregation: ThcAggregation,
        n_workers: usize,
    ) -> Thc {
        assert!((2..=16).contains(&q), "Thc: q={q} out of range");
        if let ThcAggregation::Widened { b } = aggregation {
            assert!(b >= q, "Thc: widened b={b} must be >= q={q}");
        }
        Thc {
            q,
            rotation,
            aggregation,
            n_workers,
            scratch: ThcScratch::default(),
        }
    }

    /// The paper's improved configuration: partial rotation sized to the
    /// device's shared memory + saturation at `b = q`.
    pub fn improved(q: u32, device: &DeviceSpec, n_workers: usize) -> Thc {
        Thc::new(
            q,
            RotationMode::Partial {
                block_log2: device.shared_mem_block_log2(),
            },
            ThcAggregation::Saturating,
            n_workers,
        )
    }

    /// The baseline THC adaptation from §3.2.1: full rotation, widened to
    /// `b = q + 4` (the paper's Table 8 baseline uses q=4, b=8).
    pub fn baseline(q: u32, n_workers: usize) -> Thc {
        Thc::new(
            q,
            RotationMode::Full,
            ThcAggregation::Widened { b: q + 4 },
            n_workers,
        )
    }

    /// Communication bits per lane.
    pub fn wire_bits(&self) -> u32 {
        match self.aggregation {
            ThcAggregation::Saturating => self.q,
            ThcAggregation::Widened { b } => b,
        }
    }

    fn qmax(&self) -> i32 {
        (1i32 << (self.q - 1)) - 1
    }

    /// The widening THC's simple adaptation needs to make the exact sum of
    /// this cluster's `n` workers overflow-free: `q + ceil(log2 n)` bits.
    /// The paper's point (§3.2.2) is that this grows with `n` while
    /// saturation stays at `b = q`.
    pub fn overflow_free_bits(&self) -> u32 {
        self.q + (self.n_workers.max(1) as f64).log2().ceil() as u32
    }

    /// Functional padded length for a gradient of `d` coordinates.
    ///
    /// Full rotation genuinely needs the next power of two; partial rotation
    /// only needs a multiple of the block size (the paper's observation that
    /// partial rotation ≡ independent per-block rotations); no rotation
    /// needs no padding. Production systems rotate per-bucket, so padding
    /// overhead is negligible there — the *cost* accounting below therefore
    /// uses `d` directly (see `EXPERIMENTS.md`).
    fn padded_for(&self, d: usize) -> usize {
        match self.rotation {
            RotationMode::Full => padded_len(d.max(1)),
            RotationMode::Partial { block_log2 } => {
                let block = 1usize << block_log2;
                d.max(1).div_ceil(block) * block
            }
            RotationMode::None => d.max(1),
        }
    }

    /// Scale-metadata block length for a padded vector.
    fn block_len_for(&self, padded: usize) -> usize {
        match self.rotation {
            RotationMode::Full => padded,
            RotationMode::Partial { block_log2 } => (1usize << block_log2).min(padded.max(1)),
            RotationMode::None => padded,
        }
    }

    /// Scale metadata blocks for a padded vector.
    fn scale_blocks(&self, padded: usize) -> usize {
        padded.max(1).div_ceil(self.block_len_for(padded))
    }

    /// Applies the rotation in place (vector length must be a multiple of
    /// the block length; full rotation requires a power of two).
    fn rotate(&self, v: &mut [f32], seed: SharedSeed, inverse: bool) {
        match self.rotation {
            RotationMode::None => {}
            RotationMode::Full => {
                let l = if v.len() <= 1 {
                    0
                } else {
                    v.len().trailing_zeros() as usize
                };
                if inverse {
                    rht_inverse(v, l, seed);
                } else {
                    rht_forward(v, l, seed);
                }
            }
            RotationMode::Partial { block_log2 } => {
                let block = (1usize << block_log2).min(v.len().max(1));
                if inverse {
                    for chunk in v.chunks_mut(block) {
                        gcs_tensor::hadamard::fwht(chunk);
                    }
                    gcs_tensor::hadamard::rademacher_diagonal(v, seed);
                } else {
                    gcs_tensor::hadamard::rademacher_diagonal(v, seed);
                    for chunk in v.chunks_mut(block) {
                        gcs_tensor::hadamard::fwht(chunk);
                    }
                }
            }
        }
    }
}

impl CompressionScheme for Thc {
    fn name(&self) -> String {
        let rot = match self.rotation {
            RotationMode::Full => "full-rot",
            RotationMode::Partial { .. } => "partial-rot",
            RotationMode::None => "no-rot",
        };
        match self.aggregation {
            ThcAggregation::Saturating => format!("THC-Sat(q={}, {rot})", self.q),
            ThcAggregation::Widened { b } => format!("THC-Wide(q={}, b={b}, {rot})", self.q),
        }
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], ctx: &RoundContext) -> AggregationOutcome {
        let mut out = AggregationOutcome::default();
        self.aggregate_round_into(grads, ctx, &mut out);
        out
    }

    fn aggregate_round_into(
        &mut self,
        grads: &[Vec<f32>],
        ctx: &RoundContext,
        out: &mut AggregationOutcome,
    ) {
        let _round_timer = gcs_metrics::timer("scheme/thc/round_ns");
        let n = grads.len();
        let d = grads[0].len();
        let padded = self.padded_for(d);
        let seed = SharedSeed::derive(ctx.experiment_seed, ctx.round, Stream::RhtSigns);
        let qmax = self.qmax();
        let blocks = self.scale_blocks(padded);
        let block_len = self.block_len_for(padded);

        // The round scratch moves out of `self` for the duration of the
        // round (disjoint borrows against `&self` config reads) and back in
        // at the end — its buffers persist across rounds.
        let mut scratch = std::mem::take(&mut self.scratch);
        let this = &*self;

        // Rotate. Workers are independent (shared seed, private data), so
        // the forward rotations fan out across them; with few workers the
        // FWHT kernel inside parallelizes over the vector instead.
        {
            let _s = gcs_trace::span(gcs_trace::Phase::Compress, "thc_rotate");
            let rotated = scratch.rotated.prepare(n);
            gcs_tensor::parallel::for_each_chunk_mut(rotated, 1, |w, slot| {
                let v = &mut slot[0];
                v.extend_from_slice(&grads[w]);
                v.resize(padded, 0.0);
                this.rotate(v, seed, false);
            });
        }

        // Agree on per-block scales (max |value| across workers), rounded
        // to FP16 for the wire.
        {
            let _s = gcs_trace::span(gcs_trace::Phase::Compress, "thc_block_scales");
            let rotated = scratch.rotated.slice(n);
            let scale_bufs = scratch.scales.prepare(n);
            gcs_tensor::parallel::for_each_chunk_mut(scale_bufs, 1, |w, slot| {
                slot[0].extend(rotated[w].chunks(block_len).map(|c| {
                    let m = c.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
                    F16::from_f32(m).to_f32()
                }));
            });
        }
        ring_all_reduce_into(
            scratch.scales.slice_mut(n),
            &F32Max,
            2.0,
            &mut scratch.ring_f32,
            &mut out.traffic,
        );

        // Quantize each worker's rotated gradient to signed q-bit lanes with
        // unbiased stochastic rounding. Each worker owns a private
        // counter-derived RNG stream, so quantization parallelizes across
        // workers without perturbing any random sequence.
        {
            let _s = gcs_trace::span(gcs_trace::Phase::Compress, "thc_quantize");
            let rotated = scratch.rotated.slice(n);
            let scales = &scratch.scales.slice(n)[0];
            let lane_bufs = scratch.lanes.prepare(n);
            gcs_tensor::parallel::for_each_chunk_mut(lane_bufs, 1, |w, slot| {
                let mut rng = worker_rng(ctx.experiment_seed ^ 0x74c0u64, w, ctx.round);
                slot[0].extend(rotated[w].iter().enumerate().map(|(i, &x)| {
                    let s = scales[i / block_len];
                    if s <= 0.0 {
                        return 0;
                    }
                    let y = (x / s) * qmax as f32;
                    let lo = y.floor();
                    let frac = y - lo;
                    let up: bool = rng.gen::<f32>() < frac;
                    ((lo as i32) + i32::from(up)).clamp(-qmax, qmax)
                }));
            });
        }

        // Aggregate lanes.
        let wire_bits = self.wire_bits();
        match self.aggregation {
            ThcAggregation::Saturating => ring_all_reduce_into(
                scratch.lanes.slice_mut(n),
                &SaturatingIntSum::new(self.q),
                self.q as f64 / 8.0,
                &mut scratch.ring_i32,
                &mut scratch.lane_traffic,
            ),
            ThcAggregation::Widened { b } => ring_all_reduce_into(
                scratch.lanes.slice_mut(n),
                &WideIntSum,
                b as f64 / 8.0,
                &mut scratch.ring_i32,
                &mut scratch.lane_traffic,
            ),
        };
        out.traffic.merge(&scratch.lane_traffic);

        // Decode: rescale, inverse rotation, truncate, divide by n.
        {
            let _s = gcs_trace::span(gcs_trace::Phase::Decompress, "thc_decode");
            let scales = &scratch.scales.slice(n)[0];
            let est = &mut out.mean_estimate;
            est.clear();
            est.extend(
                scratch.lanes.slice(n)[0]
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| l as f32 * scales[i / block_len] / qmax as f32),
            );
            self.rotate(est, seed, true);
            est.truncate(d);
            gcs_tensor::vector::scale(est, 1.0 / n as f32);
        }

        out.comm.clear();
        out.comm.push(CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: blocks as f64 * 2.0,
        });
        out.comm.push(CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: padded as f64 * wire_bits as f64 / 8.0,
        });
        self.scratch = scratch;
    }

    fn all_reduce_compatible(&self) -> bool {
        true
    }

    fn nominal_bits_per_coord(&self, d: u64) -> f64 {
        // Production deployments rotate per bucket, so padding adds <1
        // block per bucket — negligible at paper scale. Account with `d`.
        let block = self.block_len_for(self.padded_for(d as usize)) as u64;
        let blocks = d.max(1).div_ceil(block);
        (d as f64 * self.wire_bits() as f64 + blocks as f64 * 16.0) / d as f64
    }

    fn comm_events(&self, d: u64) -> Vec<CommEvent> {
        let block = self.block_len_for(self.padded_for(d as usize)) as u64;
        let blocks = d.max(1).div_ceil(block);
        vec![
            CommEvent {
                collective: Collective::RingAllReduce,
                payload_bytes: blocks as f64 * 2.0,
            },
            CommEvent {
                collective: Collective::RingAllReduce,
                payload_bytes: d as f64 * self.wire_bits() as f64 / 8.0,
            },
        ]
    }

    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64 {
        // `iterations` relative to the full-vector padding: Full runs
        // log2(d) stages (multi-pass), Partial exactly its block stages
        // (single pass).
        let pow2 = padded_len(d.max(1) as usize);
        let iters = self.rotation.iterations(pow2);
        // Forward rotation + quantize on the send side; dequantize + inverse
        // rotation on the receive side.
        2.0 * ops::fwht(d, iters, device).seconds(device)
            + ops::quantize(d, self.q).seconds(device)
            + ops::dequantize(d, self.q).seconds(device)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_tensor::vector::{mean, vnmse};
    use rand::SeedableRng;

    fn ctx(round: u64) -> RoundContext {
        RoundContext::new(99, round)
    }

    fn gaussian_grads(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        // Box-Muller-ish: sum of uniforms.
                        let s: f32 = (0..6).map(|_| rng.gen_range(-0.5f32..0.5)).sum();
                        s * 0.5
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn high_precision_quantization_is_accurate() {
        let grads = gaussian_grads(4, 200, 3);
        let exact = mean(&grads);
        let mut s = Thc::new(8, RotationMode::Full, ThcAggregation::Widened { b: 12 }, 4);
        let out = s.aggregate_round(&grads, &ctx(0));
        let err = vnmse(&out.mean_estimate, &exact);
        assert!(err < 5e-3, "q=8 widened vNMSE = {err}");
    }

    #[test]
    fn saturation_close_to_widened_after_rotation() {
        // §3.2.2's claim: post-RHT, saturation adds little error vs the
        // widened (exact-sum) aggregation at the same q.
        let grads = gaussian_grads(4, 512, 5);
        let exact = mean(&grads);
        let mut sat = Thc::new(4, RotationMode::Full, ThcAggregation::Saturating, 4);
        let mut wide = Thc::new(4, RotationMode::Full, ThcAggregation::Widened { b: 8 }, 4);
        let e_sat = vnmse(&sat.aggregate_round(&grads, &ctx(0)).mean_estimate, &exact);
        let e_wide = vnmse(&wide.aggregate_round(&grads, &ctx(0)).mean_estimate, &exact);
        assert!(
            e_sat < 2.0 * e_wide + 1e-3,
            "saturation error {e_sat} should be near widened error {e_wide}"
        );
    }

    #[test]
    fn rotation_helps_spiky_gradients() {
        // One giant coordinate: without rotation the global scale is huge
        // and everything else quantizes to noise; rotation spreads it.
        let mut grads = gaussian_grads(2, 1024, 7);
        for g in &mut grads {
            g[100] = 50.0;
        }
        let exact = mean(&grads);
        let mut rotated = Thc::new(4, RotationMode::Full, ThcAggregation::Widened { b: 8 }, 2);
        let mut unrotated = Thc::new(4, RotationMode::None, ThcAggregation::Widened { b: 8 }, 2);
        let e_rot = vnmse(
            &rotated.aggregate_round(&grads, &ctx(0)).mean_estimate,
            &exact,
        );
        let e_none = vnmse(
            &unrotated.aggregate_round(&grads, &ctx(0)).mean_estimate,
            &exact,
        );
        assert!(
            e_rot < e_none,
            "rotation should reduce error: rot={e_rot} none={e_none}"
        );
    }

    #[test]
    fn partial_rotation_between_none_and_full() {
        let mut grads = gaussian_grads(2, 2048, 11);
        for g in &mut grads {
            g[5] = 30.0;
        }
        let exact = mean(&grads);
        let mut err = std::collections::BTreeMap::new();
        for (name, mode) in [
            ("full", RotationMode::Full),
            ("partial", RotationMode::Partial { block_log2: 6 }),
            ("none", RotationMode::None),
        ] {
            let mut s = Thc::new(4, mode, ThcAggregation::Widened { b: 8 }, 2);
            // Average a few rounds to tame stochastic-rounding noise.
            let mut e = 0.0;
            for r in 0..5 {
                e += vnmse(&s.aggregate_round(&grads, &ctx(r)).mean_estimate, &exact);
            }
            err.insert(name, e / 5.0);
        }
        assert!(err["partial"] <= err["none"] * 1.1, "{err:?}");
        // Partial localizes the spike's damage to one block.
        assert!(err["partial"] < 10.0 * err["full"] + 1e-3, "{err:?}");
    }

    #[test]
    fn quantization_is_unbiased() {
        // Averaging the estimate over many rounds converges to the truth.
        let grads = vec![vec![0.37f32; 64]];
        let mut s = Thc::new(3, RotationMode::None, ThcAggregation::Widened { b: 8 }, 1);
        let mut acc = vec![0.0f64; 64];
        let rounds = 400;
        for r in 0..rounds {
            let out = s.aggregate_round(&grads, &ctx(r));
            for (a, &x) in acc.iter_mut().zip(&out.mean_estimate) {
                *a += x as f64;
            }
        }
        let avg = acc[0] / rounds as f64;
        assert!(
            (avg - 0.37).abs() < 0.01,
            "stochastic rounding is biased: {avg}"
        );
    }

    #[test]
    fn saturation_saves_half_the_traffic_of_b8() {
        let grads = gaussian_grads(4, 256, 13);
        let mut sat = Thc::new(4, RotationMode::Full, ThcAggregation::Saturating, 4);
        let mut wide = Thc::new(4, RotationMode::Full, ThcAggregation::Widened { b: 8 }, 4);
        let t_sat = sat.aggregate_round(&grads, &ctx(0)).traffic.total();
        let t_wide = wide.aggregate_round(&grads, &ctx(0)).traffic.total();
        // The lane payload halves; scale metadata is shared.
        assert!(
            (t_wide as f64) > 1.7 * (t_sat as f64),
            "wide={t_wide} sat={t_sat}"
        );
    }

    #[test]
    fn bits_per_coord_accounting() {
        let s = Thc::new(4, RotationMode::Full, ThcAggregation::Saturating, 4);
        // d = 4096 (already a power of two): b = 4 + 16/4096.
        let b = s.nominal_bits_per_coord(4096);
        assert!((b - 4.004).abs() < 0.01, "b = {b}");
        let wide = Thc::baseline(4, 4);
        assert!((wide.nominal_bits_per_coord(4096) - 8.0).abs() < 0.1);
    }

    #[test]
    fn many_workers_stress_saturation() {
        // The paper's caveat: larger n increases overflow probability. At
        // n = 32 and q = 2 the saturated aggregate should show real error.
        let grads = gaussian_grads(32, 256, 17);
        let exact = mean(&grads);
        let mut s = Thc::new(2, RotationMode::Full, ThcAggregation::Saturating, 32);
        let e = vnmse(&s.aggregate_round(&grads, &ctx(0)).mean_estimate, &exact);
        assert!(e > 0.01, "expected visible saturation error, got {e}");
    }
}
