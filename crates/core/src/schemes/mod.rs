//! The compression schemes of the case study (§3) plus literature
//! baselines.
//!
//! | module | scheme | family | aggregation |
//! |---|---|---|---|
//! | [`baseline`] | FP32 / FP16 | none | ring all-reduce |
//! | [`topk`] | TopK \[12, 51\] | sparsification | all-gather |
//! | [`topkc`] | **TopKC** (ours, §3.1.2) | sparsification | ring all-reduce |
//! | [`thc`] | THC \[34\] + **saturation/partial rotation** (§3.2.2) | quantization | ring all-reduce |
//! | [`powersgd`] | PowerSGD \[57\] | low-rank | ring all-reduce |
//! | [`topkc_q`] | **TopKC-Q** (extension, §3.1.2's generalization note) | sparsification + quantization | ring all-reduce |
//! | [`sketch`] | FetchSGD-style linear sketching (extension) | sketching | ring all-reduce |
//! | [`literature`] | QSGD, TernGrad, signSGD+EF, RandomK, DRIVE | various | various |

pub mod baseline;
pub mod literature;
pub mod powersgd;
pub mod sketch;
pub mod thc;
pub mod topk;
pub mod topkc;
pub mod topkc_q;

pub use baseline::{CommPrecision, PrecisionBaseline};
pub use literature::{Drive, Qsgd, RandomK, SignSgdEf, TernGrad};
pub use powersgd::PowerSgd;
pub use sketch::SketchScheme;
pub use thc::{Thc, ThcAggregation};
pub use topk::TopK;
pub use topkc::TopKC;
pub use topkc_q::TopKCQ;
