//! Local TopK sparsification with all-gather aggregation — the incumbent
//! sparsifier (§3.1.1).
//!
//! Each worker selects its `K` largest-magnitude coordinates and transmits
//! `(index, value)` pairs: 32-bit indices + FP16 values = 48 bits per
//! selected coordinate, following the typical implementations the paper
//! cites (\[28, 48\]), so `b = 48K/d`. Because different workers select
//! different indices, the payloads cannot be summed coordinate-wise at
//! intermediate hops — TopK is **not** all-reduce compatible and falls back
//! to all-gather, whose traffic grows with `n` and whose many-to-one
//! patterns congest (§2.1). Error feedback accumulates what was left
//! behind.

use crate::ef::ErrorFeedback;
use crate::scheme::{AggregationOutcome, CommEvent, CompressionScheme, RoundContext};
use gcs_collectives::all_gather_into;
use gcs_gpusim::{ops, DeviceSpec};
use gcs_netsim::Collective;
use gcs_tensor::half::F16;
use gcs_tensor::pool::WorkerBufs;
use gcs_tensor::vector::{top_k_indices, top_k_indices_into, TopKScratch};

/// A sparse payload entry: 32-bit coordinate index + FP16 value (48 bits
/// total on the wire).
#[derive(Clone, Copy, Debug)]
pub struct SparseEntry {
    /// Coordinate index.
    pub index: u32,
    /// FP16-rounded value.
    pub value: F16,
}

/// Wire bytes per sparse entry (4-byte index + 2-byte value).
pub const SPARSE_ENTRY_BYTES: f64 = 6.0;

/// How TopK encodes coordinate indices on the wire.
///
/// The paper's footnote 2: 32-bit absolute indices are the practical
/// default; 16-bit **delta** encoding (sorted indices, consecutive
/// differences, padding coordinates inserted wherever a gap exceeds
/// `u16::MAX`) halves index traffic to 32 bits/entry but requires a
/// sequential scan that is GPU-unfriendly — "the TTA may not improve".
/// Both are implemented so the trade-off is measurable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexEncoding {
    /// 32-bit absolute indices (48 bits per entry with the FP16 value).
    Absolute32,
    /// 16-bit deltas with gap-filling padding entries (32 bits per entry).
    Delta16,
}

impl IndexEncoding {
    /// Wire bits per (index, value) entry.
    pub fn entry_bits(self) -> f64 {
        match self {
            IndexEncoding::Absolute32 => 48.0,
            IndexEncoding::Delta16 => 32.0,
        }
    }
}

/// Per-worker selection workspace (each parallel selection task owns one,
/// so the fan-out stays allocation-free).
#[derive(Clone, Debug, Default)]
struct SelectScratch {
    topk: TopKScratch,
    idx: Vec<usize>,
}

/// Round scratch owned across rounds: EF staging, per-worker selection
/// workspaces and payloads, the gathered union, and EF sent buffers.
#[derive(Clone, Debug, Default)]
struct TopKRoundScratch {
    corrected: Vec<Vec<f32>>,
    selects: Vec<SelectScratch>,
    payloads: WorkerBufs<SparseEntry>,
    sent: WorkerBufs<f32>,
    gathered: Vec<SparseEntry>,
}

/// TopK sparsification, parameterized by target bits-per-coordinate.
#[derive(Clone, Debug)]
pub struct TopK {
    bits: f64,
    encoding: IndexEncoding,
    ef: ErrorFeedback,
    scratch: TopKRoundScratch,
}

impl TopK {
    /// Creates TopK targeting `bits` bits per coordinate (`K = b·d/48`,
    /// 32-bit absolute indices — the typical implementation).
    ///
    /// # Panics
    /// Panics if `bits <= 0`.
    pub fn with_bits(bits: f64, n_workers: usize, error_feedback: bool) -> TopK {
        assert!(bits > 0.0, "TopK: bits must be positive");
        TopK {
            bits,
            encoding: IndexEncoding::Absolute32,
            ef: ErrorFeedback::new(n_workers, error_feedback),
            scratch: TopKRoundScratch::default(),
        }
    }

    /// Switches to 16-bit delta-encoded indices (footnote 2). `K` is then
    /// derived as `b·d/32`, before gap-filling padding.
    pub fn with_delta_indices(mut self) -> TopK {
        self.encoding = IndexEncoding::Delta16;
        self
    }

    /// The index encoding in use.
    pub fn encoding(&self) -> IndexEncoding {
        self.encoding
    }

    /// The `K` used for a gradient of dimension `d`.
    pub fn k_for(&self, d: usize) -> usize {
        (((self.bits * d as f64) / self.encoding.entry_bits()).round() as usize).clamp(1, d)
    }

    /// For delta encoding: the selected indices (sorted) plus padding
    /// entries wherever a gap exceeds `u16::MAX`. Returns the padded,
    /// sorted index list actually transmitted.
    pub fn delta_pad(mut indices: Vec<usize>) -> Vec<usize> {
        indices.sort_unstable();
        let mut out = Vec::with_capacity(indices.len());
        let mut prev = 0usize;
        for idx in indices {
            let mut gap = idx - prev;
            while gap > u16::MAX as usize {
                prev += u16::MAX as usize;
                out.push(prev); // padding coordinate (value 0)
                gap = idx - prev;
            }
            out.push(idx);
            prev = idx;
        }
        out.dedup();
        out
    }
}

impl CompressionScheme for TopK {
    fn name(&self) -> String {
        format!("TopK(b={})", self.bits)
    }

    fn aggregate_round(&mut self, grads: &[Vec<f32>], ctx: &RoundContext) -> AggregationOutcome {
        let mut out = AggregationOutcome::default();
        self.aggregate_round_into(grads, ctx, &mut out);
        out
    }

    fn aggregate_round_into(
        &mut self,
        grads: &[Vec<f32>],
        _ctx: &RoundContext,
        out: &mut AggregationOutcome,
    ) {
        let _round_timer = gcs_metrics::timer("scheme/topk/round_ns");
        let n = grads.len();
        let d = grads[0].len();
        let k = self.k_for(d);
        let encoding = self.encoding;

        // All per-round buffers live in the owned scratch, so the steady
        // state allocates nothing (Delta16 gap-padding, an ablation, still
        // does).
        let mut scratch = std::mem::take(&mut self.scratch);

        // Compress: each worker selects its own top-K of the EF-corrected
        // gradient and rounds values to FP16 for the wire. Delta encoding
        // additionally sorts and gap-pads the index list (footnote 2).
        // Workers are independent, so selection fans out across them (the
        // per-vector top-k kernel itself parallelizes when workers are few).
        self.ef.corrected_all_into(grads, &mut scratch.corrected);
        if scratch.selects.len() < n {
            scratch.selects.resize_with(n, SelectScratch::default);
        }
        {
            let _span = gcs_trace::span(gcs_trace::Phase::Compress, "topk_select");
            let corrected_all = &scratch.corrected;
            gcs_tensor::parallel::for_each_chunk_mut(&mut scratch.selects[..n], 1, |w, slot| {
                let ws = &mut slot[0];
                let corrected = &corrected_all[w];
                match encoding {
                    IndexEncoding::Absolute32 => {
                        top_k_indices_into(corrected, k, &mut ws.topk, &mut ws.idx);
                    }
                    IndexEncoding::Delta16 => {
                        ws.idx = TopK::delta_pad(top_k_indices(corrected, k));
                    }
                }
            });
            let selects = &scratch.selects;
            let payloads = scratch.payloads.prepare(n);
            gcs_tensor::parallel::for_each_chunk_mut(payloads, 1, |w, slot| {
                let corrected = &corrected_all[w];
                slot[0].extend(selects[w].idx.iter().map(|&i| SparseEntry {
                    index: i as u32,
                    value: F16::from_f32(corrected[i]),
                }));
            });
        }

        // Aggregate: all-gather the sparse payloads, then every worker
        // scatter-adds the union locally (up to nK distinct coordinates,
        // §3.1.1).
        let entry_bytes = self.encoding.entry_bits() / 8.0;
        all_gather_into(
            scratch.payloads.slice(n),
            entry_bytes,
            &mut scratch.gathered,
            &mut out.traffic,
        );
        {
            let _span = gcs_trace::span(gcs_trace::Phase::Decompress, "topk_scatter_add");
            let mean = &mut out.mean_estimate;
            mean.clear();
            mean.resize(d, 0.0);
            for e in &scratch.gathered {
                mean[e.index as usize] += e.value.to_f32();
            }
            for m in mean.iter_mut() {
                *m /= n as f32;
            }
        }

        // EF update: what each worker actually contributed.
        if self.ef.enabled() {
            {
                let payloads = scratch.payloads.slice(n);
                let sent_bufs = scratch.sent.prepare(n);
                gcs_tensor::parallel::for_each_chunk_mut(sent_bufs, 1, |w, slot| {
                    let sent = &mut slot[0];
                    sent.resize(d, 0.0);
                    for e in &payloads[w] {
                        sent[e.index as usize] = e.value.to_f32();
                    }
                });
            }
            self.ef
                .update_all(&scratch.corrected, scratch.sent.slice(n));
        }

        out.comm.clear();
        out.comm.push(CommEvent {
            collective: Collective::AllGather,
            payload_bytes: k as f64 * entry_bytes,
        });
        self.scratch = scratch;
    }

    fn all_reduce_compatible(&self) -> bool {
        false
    }

    fn nominal_bits_per_coord(&self, d: u64) -> f64 {
        self.k_for(d as usize) as f64 * self.encoding.entry_bits() / d as f64
    }

    fn comm_events(&self, d: u64) -> Vec<CommEvent> {
        vec![CommEvent {
            collective: Collective::AllGather,
            payload_bytes: self.k_for(d as usize) as f64 * self.encoding.entry_bits() / 8.0,
        }]
    }

    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64 {
        let k = self.k_for(d as usize) as u64;
        let n = self.ef.n_workers().max(2) as u64;
        // Selection + compaction, then scatter-adding the gathered union.
        let base = ops::topk_select(d, k).seconds(device)
            + ops::sparse_gather_scatter(k).seconds(device)
            + ops::sparse_gather_scatter(n * k).seconds(device);
        match self.encoding {
            IndexEncoding::Absolute32 => base,
            // Footnote 2's caveat, modelled: delta encoding needs a sort of
            // K indices plus an inherently sequential prefix scan to emit
            // deltas / reconstruct absolutes — poorly suited to the GPU.
            IndexEncoding::Delta16 => {
                let n_workers = self.ef.n_workers().max(2) as f64;
                let sort = gcs_gpusim::KernelCost {
                    flops: 2.0 * k as f64 * (k.max(2) as f64).log2(),
                    bytes: 8.0 * k as f64 * (k.max(2) as f64).log2(),
                    coalesced: false,
                    serial_steps: (k.max(2) as f64).log2().ceil(),
                    precision: None,
                };
                let scan = gcs_gpusim::KernelCost {
                    flops: 2.0 * n_workers * k as f64,
                    bytes: 8.0 * n_workers * k as f64,
                    coalesced: false,
                    serial_steps: 32.0, // multi-pass prefix sums
                    precision: None,
                };
                base + sort.seconds(device) + scan.seconds(device)
            }
        }
    }

    fn reset(&mut self) {
        self.ef.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_tensor::vector::vnmse;

    fn ctx() -> RoundContext {
        RoundContext::new(7, 0)
    }

    #[test]
    fn aggregate_round_is_timed_per_scheme_family() {
        let grads = vec![vec![1.0f32, -2.0, 0.5], vec![0.5, 1.0, -0.25]];
        let (_, reg) = gcs_metrics::with_capture(|| {
            let mut s = TopK::with_bits(8.0, 2, true);
            s.aggregate_round(&grads, &ctx());
            s.aggregate_round(&grads, &RoundContext::new(7, 1));
        });
        if !gcs_metrics::is_captured() {
            return;
        }
        let h = reg.hist("scheme/topk/round_ns").unwrap();
        assert_eq!(h.count(), 2);
        assert!(h.min().unwrap() >= 0.0);
    }

    #[test]
    fn dense_k_recovers_exact_mean() {
        // b = 48 => K = d: lossless up to f16 rounding.
        let grads = vec![vec![1.0f32, -2.0, 0.5], vec![0.5, 1.0, -0.25]];
        let mut s = TopK::with_bits(48.0, 2, true);
        let out = s.aggregate_round(&grads, &ctx());
        let exact = gcs_tensor::vector::mean(&grads);
        assert!(vnmse(&out.mean_estimate, &exact) < 1e-5);
    }

    #[test]
    fn sparse_k_keeps_largest() {
        let grads = vec![vec![10.0f32, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1]];
        let mut s = TopK::with_bits(6.0, 1, false); // K = 1
        let out = s.aggregate_round(&grads, &ctx());
        assert!((out.mean_estimate[0] - 10.0).abs() < 0.01);
        assert!(out.mean_estimate[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn error_feedback_eventually_sends_small_coords() {
        // One large coordinate and one small: with EF, the small one's
        // memory grows until it wins a round.
        let grads = vec![vec![1.0f32, 0.3]];
        let mut s = TopK::with_bits(24.0, 1, true); // K = 1 of d = 2
        let mut small_sent = false;
        for round in 0..5 {
            let out = s.aggregate_round(&grads, &RoundContext::new(7, round));
            if out.mean_estimate[1] != 0.0 {
                small_sent = true;
                break;
            }
        }
        assert!(small_sent, "EF never flushed the small coordinate");
    }

    #[test]
    fn without_ef_small_coordinate_starves() {
        let grads = vec![vec![1.0f32, 0.3]];
        let mut s = TopK::with_bits(24.0, 1, false);
        for round in 0..5 {
            let out = s.aggregate_round(&grads, &RoundContext::new(7, round));
            assert_eq!(out.mean_estimate[1], 0.0);
        }
    }

    #[test]
    fn traffic_grows_with_workers() {
        let d = 96;
        let make = |n: usize| {
            let grads: Vec<Vec<f32>> = (0..n)
                .map(|w| (0..d).map(|i| ((w * d + i) as f32).sin()).collect())
                .collect();
            let mut s = TopK::with_bits(4.0, n, false);
            s.aggregate_round(&grads, &ctx()).traffic.total()
        };
        let t2 = make(2);
        let t4 = make(4);
        // all-gather total traffic ~ n(n-1): 4 workers >> 2x the 2-worker traffic.
        assert!(t4 > 3 * t2, "t2={t2} t4={t4}");
    }

    #[test]
    fn delta_padding_keeps_gaps_representable() {
        let idx = vec![10usize, 200_000, 70_000];
        let padded = TopK::delta_pad(idx);
        let mut prev = 0usize;
        for &i in &padded {
            assert!(i - prev <= u16::MAX as usize, "gap {} too wide", i - prev);
            prev = i;
        }
        // Original indices all survive.
        for want in [10usize, 70_000, 200_000] {
            assert!(padded.contains(&want));
        }
    }

    #[test]
    fn delta_encoding_fits_more_coordinates_but_costs_more_compute() {
        use gcs_gpusim::DeviceSpec;
        let d = 1_000_000u64;
        let abs = TopK::with_bits(2.0, 4, false);
        let delta = TopK::with_bits(2.0, 4, false).with_delta_indices();
        assert!(delta.k_for(d as usize) > abs.k_for(d as usize));
        assert!((delta.nominal_bits_per_coord(d) - 2.0).abs() < 0.05);
        let device = DeviceSpec::a100();
        assert!(
            delta.compute_seconds(d, &device) > abs.compute_seconds(d, &device),
            "footnote 2: delta encoding must cost extra compute"
        );
    }

    #[test]
    fn delta_variant_aggregates_correctly() {
        let grads = vec![vec![1.0f32, -2.0, 0.5, 3.0], vec![0.5, 1.0, -0.25, -1.0]];
        let mut s = TopK::with_bits(32.0, 2, false).with_delta_indices(); // K = d
        let out = s.aggregate_round(&grads, &ctx());
        let exact = gcs_tensor::vector::mean(&grads);
        assert!(vnmse(&out.mean_estimate, &exact) < 1e-4);
    }

    #[test]
    fn bits_accounting_matches_nominal() {
        let d = 4800usize;
        let s = TopK::with_bits(2.0, 2, false);
        let b = s.nominal_bits_per_coord(d as u64);
        assert!((b - 2.0).abs() < 0.05, "b = {b}");
        assert!(!s.all_reduce_compatible());
    }
}
