//! A statistical model of large-model gradients, for controlled
//! compression-error studies.
//!
//! The paper measures vNMSE on live BERT-large gradients (Tables 4 and 7).
//! We cannot run BERT-large; our mini models train too cleanly (their
//! gradient energy is far more concentrated than a 345 M-parameter model's),
//! so live mini-model vNMSE under-shoots the paper's absolute values. This
//! module provides the documented substitution: gradients drawn from a
//! generative model with the three properties that drive sparsifier
//! behaviour, each independently controllable:
//!
//! 1. **Heavy-tailed energy** — block energies follow a Zipf law
//!    `E_rank ∝ rank^{−a}`. The exponent is calibrated (see
//!    [`GradientModel::bert_like`]) so plain TopK's vNMSE-vs-b curve matches
//!    the paper's Table 7 TopK row; every other number is then a
//!    *prediction* of the model, not a fit.
//! 2. **Spatial locality** — energy is assigned per contiguous block of
//!    [`GradientModel::block`] coordinates (envelope constant within a
//!    block), mirroring how transformer gradients concentrate in embedding
//!    /projection rows. The permutation ablation destroys exactly this.
//! 3. **Worker disagreement** — each worker sees the shared signal plus
//!    private Gaussian noise of relative power
//!    [`GradientModel::worker_noise`], which is what separates local TopK
//!    selections across workers.

use gcs_tensor::rng::SharedSeed;
use rand::Rng;

/// Generative model for per-worker gradients.
#[derive(Clone, Debug)]
pub struct GradientModel {
    /// Gradient dimensionality.
    pub d: usize,
    /// Envelope block length (locality scale), in coordinates.
    pub block: usize,
    /// Zipf exponent of sorted block energies (larger = more concentrated).
    pub zipf_a: f64,
    /// Per-worker noise power relative to the signal power.
    pub worker_noise: f32,
    /// Within-block magnitude spread `w ∈ \[0, 1\]`: coordinate magnitude is
    /// `(1−w) + w·|N(0,1)|` times the block scale. `w = 1` gives fully
    /// Gaussian coordinates (heavy within-block variation, favouring exact
    /// per-coordinate selection); small `w` gives near-uniform magnitudes
    /// inside a block (how energy spreads across a hot embedding row,
    /// favouring block-aligned selection).
    pub magnitude_spread: f32,
}

impl GradientModel {
    /// The BERT-like calibration. The Zipf exponent is tuned so plain
    /// TopK's vNMSE-vs-b curve lands near the paper's Table 7 TopK row
    /// (0.303 / 0.185 / 0.0865 at b = 0.5 / 2 / 8); block 256 puts the
    /// locality scale at embedding-row width (wider than any chunk size the
    /// paper uses); moderate within-block spread and 10% worker noise model
    /// row-level energy sharing and small-batch gradient variance. With
    /// the TopK row fixed, the TopKC and permutation numbers are
    /// *predictions* of the model, not fits.
    pub fn bert_like(d: usize) -> GradientModel {
        GradientModel {
            d,
            block: 256,
            zipf_a: 1.20,
            worker_noise: 0.10,
            magnitude_spread: 0.6,
        }
    }

    /// Generates `n` workers' gradients for a given round seed. All
    /// structure (envelope, signal) is shared; only the noise is private.
    pub fn generate(&self, n_workers: usize, seed: SharedSeed) -> Vec<Vec<f32>> {
        let mut rng = seed.rng();
        let blocks = self.d.div_ceil(self.block);
        // Sorted Zipf energies, then shuffled to random block positions.
        let mut energies: Vec<f64> = (0..blocks)
            .map(|r| ((r + 1) as f64).powf(-self.zipf_a))
            .collect();
        // Fisher-Yates with the shared rng.
        for i in (1..blocks).rev() {
            let j = rng.gen_range(0..=i);
            energies.swap(i, j);
        }
        // Shared signal: per-coordinate magnitude `(1−w) + w·|N(0,1)|`
        // scaled by the block energy, with random sign.
        let w = self.magnitude_spread.clamp(0.0, 1.0);
        let mut signal = Vec::with_capacity(self.d);
        for i in 0..self.d {
            let e = energies[i / self.block];
            let std = (e / self.block as f64).sqrt() as f32;
            let magnitude = (1.0 - w) + w * gaussian(&mut rng).abs();
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            signal.push(std * magnitude * sign);
        }
        let signal_power = gcs_tensor::vector::squared_norm(&signal) / self.d.max(1) as f32;
        let noise_std = (signal_power * self.worker_noise).sqrt();
        (0..n_workers)
            .map(|w| {
                let mut wrng = gcs_tensor::rng::worker_rng(seed.value() ^ 0x6e01, w, 0);
                signal
                    .iter()
                    .map(|&s| s + noise_std * gaussian(&mut wrng))
                    .collect()
            })
            .collect()
    }

    /// The exact fraction of signal energy contained in the top `f`
    /// fraction of blocks — the theoretical capture ceiling for a
    /// block-aligned sparsifier.
    pub fn block_energy_fraction(&self, f: f64) -> f64 {
        let blocks = self.d.div_ceil(self.block);
        let take = ((blocks as f64 * f).round() as usize).min(blocks);
        let total: f64 = (0..blocks)
            .map(|r| ((r + 1) as f64).powf(-self.zipf_a))
            .sum();
        let top: f64 = (0..take).map(|r| ((r + 1) as f64).powf(-self.zipf_a)).sum();
        top / total
    }
}

/// Standard normal via Box-Muller (two uniforms).
fn gaussian(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7f32..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{CompressionScheme, RoundContext};
    use crate::schemes::topk::TopK;
    use crate::schemes::topkc::TopKC;
    use gcs_tensor::vector::{mean, vnmse};

    fn model() -> GradientModel {
        GradientModel::bert_like(1 << 18)
    }

    fn measure(scheme: &mut dyn CompressionScheme, rounds: u64) -> f64 {
        let m = model();
        let mut sum = 0.0;
        for r in 0..rounds {
            let grads = m.generate(4, SharedSeed::new(100 + r));
            let exact = mean(&grads);
            let out = scheme.aggregate_round(&grads, &RoundContext::new(9, r));
            sum += vnmse(&out.mean_estimate, &exact);
        }
        sum / rounds as f64
    }

    #[test]
    fn calibration_matches_paper_topk_row() {
        // The calibration target: TopK vNMSE ~ 0.303 / 0.185 / 0.0865.
        for (b, paper) in [(0.5, 0.303), (2.0, 0.185), (8.0, 0.0865)] {
            let mut topk = TopK::with_bits(b, 4, false);
            let v = measure(&mut topk, 3);
            assert!(
                (v - paper).abs() / paper < 0.35,
                "b={b}: calibrated TopK vNMSE {v} too far from paper {paper}"
            );
        }
    }

    #[test]
    fn topkc_beats_topk_under_the_model() {
        for b in [0.5, 2.0, 8.0] {
            let c = if b < 1.0 { 128 } else { 64 };
            let mut topk = TopK::with_bits(b, 4, false);
            let mut topkc = TopKC::with_bits(b, c, 4, false);
            let v_topk = measure(&mut topk, 3);
            let v_topkc = measure(&mut topkc, 3);
            assert!(
                v_topkc < v_topk,
                "b={b}: TopKC {v_topkc} should beat TopK {v_topk}"
            );
        }
    }

    #[test]
    fn permutation_destroys_locality_advantage() {
        let b = 2.0;
        let mut plain = TopKC::with_bits(b, 64, 4, false);
        let mut permuted = TopKC::with_bits(b, 64, 4, false).with_permutation();
        let v_plain = measure(&mut plain, 3);
        let v_perm = measure(&mut permuted, 3);
        assert!(
            v_perm > 1.5 * v_plain,
            "permuted {v_perm} vs plain {v_plain}"
        );
    }

    #[test]
    fn energy_fraction_is_monotone_and_normalized() {
        let m = model();
        assert!(m.block_energy_fraction(0.0) < 1e-9);
        assert!((m.block_energy_fraction(1.0) - 1.0).abs() < 1e-9);
        assert!(m.block_energy_fraction(0.01) < m.block_energy_fraction(0.1));
        // Heavy tail: 1% of blocks hold a large share of the energy.
        assert!(m.block_energy_fraction(0.01) > 0.5);
    }

    #[test]
    fn workers_share_signal_but_differ_in_noise() {
        let m = model();
        let grads = m.generate(2, SharedSeed::new(5));
        assert_ne!(grads[0], grads[1]);
        let corr = gcs_tensor::vector::dot(&grads[0], &grads[1])
            / (gcs_tensor::vector::norm(&grads[0]) * gcs_tensor::vector::norm(&grads[1]));
        assert!(corr > 0.8, "workers should be highly correlated: {corr}");
    }
}
