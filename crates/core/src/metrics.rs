//! The paper's evaluation framework: TTA curves, vNMSE, early stopping, and
//! the utility score.
//!
//! §2.2's argument, made executable:
//!
//! * **TTA is a curve, not a point.** [`TtaCurve`] stores (time, metric)
//!   points; [`TtaCurve::time_to_target`] answers "how long to reach
//!   accuracy X" for *any* X, and [`compare`] reports crossovers between two
//!   schemes instead of a single winner.
//! * **Rolling averages** smooth the raw evaluation series exactly as the
//!   paper does for its figures (0.3 epochs for BERT, 10 for VGG).
//! * **Early stopping** uses Prechelt's GL criterion \[39\], the paper's cited
//!   convergence standard.
//! * **Utility** is TTA improvement over the *FP16* baseline — the paper's
//!   headline definition (§1): a scheme whose TTA merely beats FP32 has not
//!   demonstrated utility.
//! * **vNMSE** (re-exported from `gcs-tensor`) is the cheap proxy for
//!   parameter tuning.

pub use gcs_tensor::vector::vnmse;

/// Whether larger metric values are better (accuracy) or worse (perplexity,
/// loss).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Higher is better (e.g. top-1 accuracy).
    HigherIsBetter,
    /// Lower is better (e.g. perplexity).
    LowerIsBetter,
}

impl Direction {
    /// True if `a` is at least as good as `b`.
    pub fn at_least_as_good(self, a: f64, b: f64) -> bool {
        match self {
            Direction::HigherIsBetter => a >= b,
            Direction::LowerIsBetter => a <= b,
        }
    }

    /// The better of two values.
    pub fn better(self, a: f64, b: f64) -> f64 {
        if self.at_least_as_good(a, b) {
            a
        } else {
            b
        }
    }
}

/// A time-to-accuracy curve: the fundamental end-to-end evaluation object.
#[derive(Clone, Debug)]
pub struct TtaCurve {
    /// (wall-clock seconds, metric value), time strictly increasing.
    pub points: Vec<(f64, f64)>,
    /// Metric direction.
    pub direction: Direction,
    /// Label for reports.
    pub label: String,
}

impl TtaCurve {
    /// Creates an empty curve.
    pub fn new(label: impl Into<String>, direction: Direction) -> TtaCurve {
        TtaCurve {
            points: Vec::new(),
            direction,
            label: label.into(),
        }
    }

    /// Appends an evaluation point.
    ///
    /// # Panics
    /// Panics if `time` does not increase.
    pub fn push(&mut self, time: f64, metric: f64) {
        if let Some(&(t, _)) = self.points.last() {
            assert!(time > t, "TtaCurve: time must increase ({time} after {t})");
        }
        self.points.push((time, metric));
    }

    /// Returns a new curve whose metric is the rolling average over a
    /// window of `window` points (the paper smooths over 3750 rounds for
    /// BERT, 7810 for VGG before plotting).
    pub fn rolling_average(&self, window: usize) -> TtaCurve {
        let window = window.max(1);
        let mut out = TtaCurve::new(self.label.clone(), self.direction);
        let mut sum = 0.0;
        let mut buf: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
        for &(t, m) in &self.points {
            buf.push_back(m);
            sum += m;
            if buf.len() > window {
                sum -= buf.pop_front().unwrap();
            }
            out.points.push((t, sum / buf.len() as f64));
        }
        out
    }

    /// Earliest time at which the (already smoothed) metric reaches
    /// `target`; `None` if it never does — the paper's point that not every
    /// scheme can meet every accuracy target.
    pub fn time_to_target(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, m)| self.direction.at_least_as_good(m, target))
            .map(|&(t, _)| t)
    }

    /// The best metric value achieved anywhere on the curve.
    pub fn best_metric(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, m)| m)
            .reduce(|a, b| self.direction.better(a, b))
    }

    /// The first recorded metric. `None` when the curve is empty — a run
    /// that crashed before its first eval produces exactly that, so
    /// consumers must not unwrap.
    pub fn first_metric(&self) -> Option<f64> {
        self.points.first().map(|&(_, m)| m)
    }

    /// The final (last-point) metric.
    pub fn final_metric(&self) -> Option<f64> {
        self.points.last().map(|&(_, m)| m)
    }

    /// Total trained time.
    pub fn total_time(&self) -> f64 {
        self.points.last().map(|&(t, _)| t).unwrap_or(0.0)
    }
}

impl TtaCurve {
    /// Serializes the curve as CSV lines `label,time,metric` (no header).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for &(t, m) in &self.points {
            out.push_str(&format!("{},{t},{m}\n", self.label));
        }
        out
    }

    /// Parses a curve from [`TtaCurve::to_csv`] output (all lines must
    /// share one label).
    ///
    /// # Errors
    /// Returns a description of the first malformed line — including lines
    /// whose time does not strictly increase, which would otherwise violate
    /// the curve's monotonicity invariant.
    pub fn from_csv(csv: &str, direction: Direction) -> Result<TtaCurve, String> {
        let mut curve: Option<TtaCurve> = None;
        for (lineno, line) in csv.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, ',');
            let label = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: empty"))?;
            let t: f64 = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing time"))?
                .trim()
                .parse()
                .map_err(|e| format!("line {lineno}: bad time: {e}"))?;
            let m: f64 = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing metric"))?
                .trim()
                .parse()
                .map_err(|e| format!("line {lineno}: bad metric: {e}"))?;
            let c = curve.get_or_insert_with(|| TtaCurve::new(label, direction));
            if c.label != label {
                return Err(format!("line {lineno}: label changed mid-file"));
            }
            if let Some(&(prev, _)) = c.points.last() {
                if t <= prev {
                    return Err(format!(
                        "line {lineno}: time {t} does not increase (previous {prev})"
                    ));
                }
            }
            c.push(t, m);
        }
        curve.ok_or_else(|| "empty csv".to_string())
    }
}

/// The utility of `scheme` relative to `baseline` at a given `target`:
/// `baseline_TTA / scheme_TTA` (>1 means the scheme is useful). Returns:
///
/// * `None` if the *baseline* never reaches the target (the target is
///   unreasonable) — or reaches it at `t <= 0`, i.e. before any training
///   time elapsed, in which case the target discriminates nothing and every
///   ratio against it would be 0/0-shaped noise;
/// * `Some(0.0)` if the baseline reaches it but the scheme never does — the
///   compression destroyed final accuracy, the failure mode §2.2 warns
///   about;
/// * `Some(f64::INFINITY)` if the scheme reaches it at `t <= 0` (instantly)
///   while the baseline needs real time;
/// * `Some(ratio)` otherwise.
pub fn utility(scheme: &TtaCurve, baseline: &TtaCurve, target: f64) -> Option<f64> {
    let base = baseline.time_to_target(target)?;
    if base <= 0.0 {
        return None;
    }
    match scheme.time_to_target(target) {
        Some(t) if t > 0.0 => Some(base / t),
        Some(_) => Some(f64::INFINITY),
        None => Some(0.0),
    }
}

/// A crossover-aware comparison of two TTA curves over a grid of targets
/// between the weaker and stronger curve's best metric. Returns, per
/// target, which curve wins — making the paper's "curves can intersect"
/// point (§2.2) directly visible.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// (target metric, winner label, tta_a, tta_b).
    pub rows: Vec<(f64, String, Option<f64>, Option<f64>)>,
}

/// Compares two curves on `targets`.
pub fn compare(a: &TtaCurve, b: &TtaCurve, targets: &[f64]) -> Comparison {
    let mut rows = Vec::new();
    for &target in targets {
        let ta = a.time_to_target(target);
        let tb = b.time_to_target(target);
        let winner = match (ta, tb) {
            (Some(x), Some(y)) => {
                if x <= y {
                    a.label.clone()
                } else {
                    b.label.clone()
                }
            }
            (Some(_), None) => a.label.clone(),
            (None, Some(_)) => b.label.clone(),
            (None, None) => "neither".to_string(),
        };
        rows.push((target, winner, ta, tb));
    }
    Comparison { rows }
}

/// Early stopping via Prechelt's GL (generalization loss) criterion \[39\]:
/// stop when the validation loss exceeds the best seen so far by more than
/// `alpha` percent for `patience` consecutive evaluations.
///
/// Metrics with [`Direction::HigherIsBetter`] are internally negated.
#[derive(Clone, Debug)]
pub struct EarlyStopping {
    alpha: f64,
    patience: usize,
    direction: Direction,
    best: Option<f64>,
    strikes: usize,
    min_evals: usize,
    seen: usize,
}

impl EarlyStopping {
    /// Creates the stopper. `alpha` is the GL threshold in percent (Prechelt
    /// suggests ~5); `patience` the consecutive violations required;
    /// `min_evals` a warm-up before stopping is allowed.
    pub fn new(
        alpha: f64,
        patience: usize,
        min_evals: usize,
        direction: Direction,
    ) -> EarlyStopping {
        EarlyStopping {
            alpha,
            patience: patience.max(1),
            direction,
            best: None,
            strikes: 0,
            min_evals,
            seen: 0,
        }
    }

    /// Feeds one validation metric; returns true when training should stop.
    pub fn observe(&mut self, metric: f64) -> bool {
        // Convert to a loss (lower is better). Negation — not `1 - metric` —
        // keeps the conversion valid for metrics on any scale (accuracy in
        // [0, 1] or [0, 100], BLEU, etc.); `1 - metric` went negative beyond
        // 1.0 and silently disabled the GL criterion.
        let loss = match self.direction {
            Direction::LowerIsBetter => metric,
            Direction::HigherIsBetter => -metric,
        };
        self.seen += 1;
        let best = self.best.get_or_insert(loss);
        if loss < *best {
            *best = loss;
            self.strikes = 0;
            return false;
        }
        // Scale-invariant GL: relative regression from the best loss, in
        // percent. For positive `best` this is exactly Prechelt's
        // `100·(loss/best − 1)`; normalizing by |best| extends it to the
        // negated-metric (and zero-crossing) cases.
        let gl = if *best != 0.0 {
            100.0 * (loss - *best) / best.abs()
        } else {
            100.0 * (loss - *best)
        };
        if gl > self.alpha {
            self.strikes += 1;
        } else {
            self.strikes = 0;
        }
        self.seen >= self.min_evals && self.strikes >= self.patience
    }

    /// Best (lowest) internal loss seen so far.
    pub fn best_loss(&self) -> Option<f64> {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(f64, f64)], dir: Direction) -> TtaCurve {
        let mut c = TtaCurve::new("c", dir);
        for &(t, m) in points {
            c.push(t, m);
        }
        c
    }

    #[test]
    fn time_to_target_interpolates_forward() {
        let c = curve(
            &[(1.0, 0.2), (2.0, 0.5), (3.0, 0.7)],
            Direction::HigherIsBetter,
        );
        assert_eq!(c.time_to_target(0.5), Some(2.0));
        assert_eq!(c.time_to_target(0.6), Some(3.0));
        assert_eq!(c.time_to_target(0.9), None);
        assert_eq!(c.best_metric(), Some(0.7));
    }

    #[test]
    fn perplexity_direction() {
        let c = curve(
            &[(1.0, 9.0), (2.0, 6.0), (3.0, 5.0)],
            Direction::LowerIsBetter,
        );
        assert_eq!(c.time_to_target(6.0), Some(2.0));
        assert_eq!(c.time_to_target(4.0), None);
        assert_eq!(c.best_metric(), Some(5.0));
    }

    #[test]
    fn rolling_average_smooths() {
        let c = curve(
            &[(1.0, 0.0), (2.0, 1.0), (3.0, 0.0), (4.0, 1.0)],
            Direction::HigherIsBetter,
        );
        let r = c.rolling_average(2);
        assert_eq!(r.points[0].1, 0.0);
        assert_eq!(r.points[1].1, 0.5);
        assert_eq!(r.points[2].1, 0.5);
        // Window of 1 is identity.
        let id = c.rolling_average(1);
        assert_eq!(id.points, c.points);
    }

    #[test]
    fn utility_ratios() {
        let fast = curve(&[(1.0, 0.5), (2.0, 0.9)], Direction::HigherIsBetter);
        let slow = curve(&[(2.0, 0.5), (4.0, 0.9)], Direction::HigherIsBetter);
        // fast reaches 0.9 at t=2, slow at t=4: utility of fast vs slow = 2.
        assert_eq!(utility(&fast, &slow, 0.9), Some(2.0));
        // A scheme that never converges has utility 0.
        let broken = curve(&[(1.0, 0.3), (2.0, 0.3)], Direction::HigherIsBetter);
        assert_eq!(utility(&broken, &slow, 0.9), Some(0.0));
        // Unreachable target: None.
        assert_eq!(utility(&fast, &slow, 0.99), None);
    }

    #[test]
    fn comparison_reports_crossovers() {
        // a converges fast to 0.6; b converges slower but higher (0.9):
        // the canonical crossing-curves example from §2.2.
        let a = curve(&[(1.0, 0.6), (10.0, 0.61)], Direction::HigherIsBetter);
        let b = curve(&[(2.0, 0.3), (5.0, 0.9)], Direction::HigherIsBetter);
        let cmp = compare(&a, &b, &[0.5, 0.8]);
        assert_eq!(cmp.rows[0].1, "c"); // both labelled "c"... use labels:
        let mut a = a;
        a.label = "A".into();
        let mut b = b;
        b.label = "B".into();
        let cmp = compare(&a, &b, &[0.5, 0.8]);
        assert_eq!(cmp.rows[0].1, "A"); // low target: fast converger wins
        assert_eq!(cmp.rows[1].1, "B"); // high target: only B gets there
    }

    #[test]
    fn csv_round_trip() {
        let mut c = TtaCurve::new("scheme-x", Direction::LowerIsBetter);
        c.push(1.5, 30.0);
        c.push(3.0, 12.25);
        let csv = c.to_csv();
        let back = TtaCurve::from_csv(&csv, Direction::LowerIsBetter).unwrap();
        assert_eq!(back.label, "scheme-x");
        assert_eq!(back.points, c.points);
        assert!(TtaCurve::from_csv("", Direction::LowerIsBetter).is_err());
        assert!(TtaCurve::from_csv("a,1,nope", Direction::LowerIsBetter).is_err());
    }

    /// Regression: a CSV whose time column does not strictly increase used
    /// to panic inside `push` (violating the documented error contract);
    /// `from_csv` must return a malformed-line error instead.
    #[test]
    fn from_csv_rejects_non_increasing_time_as_error() {
        let err =
            TtaCurve::from_csv("x,2.0,0.5\nx,2.0,0.6\n", Direction::HigherIsBetter).unwrap_err();
        assert!(err.contains("line 1"), "error should cite the line: {err}");
        assert!(err.contains("does not increase"), "got: {err}");
        let err =
            TtaCurve::from_csv("x,3.0,0.5\nx,1.0,0.6\n", Direction::HigherIsBetter).unwrap_err();
        assert!(err.contains("does not increase"), "got: {err}");
    }

    /// Regression: `utility` divided by a baseline TTA of 0 when the
    /// baseline's first recorded point already met the target, producing a
    /// meaningless 0 (or NaN-shaped) score. A target the baseline meets
    /// before any time elapses discriminates nothing: `None`.
    #[test]
    fn utility_rejects_zero_time_baseline() {
        let instant = curve(&[(0.0, 0.9), (1.0, 0.95)], Direction::HigherIsBetter);
        let scheme = curve(&[(2.0, 0.9)], Direction::HigherIsBetter);
        assert_eq!(utility(&scheme, &instant, 0.9), None);
        // The scheme reaching the target instantly is infinite speed-up.
        let slow_base = curve(&[(4.0, 0.9)], Direction::HigherIsBetter);
        assert_eq!(utility(&instant, &slow_base, 0.9), Some(f64::INFINITY));
    }

    /// Regression: `1 − metric` as the internal loss made any
    /// higher-is-better metric above 1.0 (accuracy in percent, BLEU, …)
    /// yield a negative "loss", and the GL criterion silently never fired.
    /// The negated-metric conversion must stop at the same evaluation for a
    /// metric expressed on the 0–1 and 0–100 scales.
    #[test]
    fn early_stopping_is_scale_invariant_for_accuracy_metrics() {
        // Accuracy rises then regresses hard — a clear stop signal.
        let series = [0.50, 0.80, 0.55, 0.50, 0.45];
        let stop_round = |scale: f64| -> Option<usize> {
            let mut es = EarlyStopping::new(5.0, 2, 0, Direction::HigherIsBetter);
            series.iter().position(|&m| es.observe(m * scale))
        };
        let unit = stop_round(1.0);
        let percent = stop_round(100.0);
        assert!(unit.is_some(), "GL never fired on the 0-1 scale");
        assert_eq!(
            unit, percent,
            "stopping decision must not depend on the metric's scale"
        );
    }

    #[test]
    fn early_stopping_stops_on_plateau() {
        let mut es = EarlyStopping::new(5.0, 2, 3, Direction::LowerIsBetter);
        assert!(!es.observe(10.0));
        assert!(!es.observe(8.0));
        assert!(!es.observe(9.0)); // 12.5% worse: strike 1
        assert!(es.observe(9.5)); // strike 2 -> stop
        assert_eq!(es.best_loss(), Some(8.0));
    }

    #[test]
    fn early_stopping_resets_on_improvement() {
        let mut es = EarlyStopping::new(5.0, 2, 0, Direction::LowerIsBetter);
        assert!(!es.observe(10.0));
        assert!(!es.observe(11.0)); // strike 1
        assert!(!es.observe(9.0)); // new best: strikes reset
        assert!(!es.observe(10.0)); // strike 1 again
        assert!(es.observe(10.0)); // strike 2
    }

    #[test]
    fn early_stopping_accuracy_direction() {
        let mut es = EarlyStopping::new(5.0, 1, 0, Direction::HigherIsBetter);
        assert!(!es.observe(0.5));
        assert!(!es.observe(0.8));
        assert!(es.observe(0.5)); // loss 0.5 vs best 0.2: way past 5%
    }

    #[test]
    #[should_panic(expected = "time must increase")]
    fn non_monotone_time_rejected() {
        let mut c = TtaCurve::new("x", Direction::HigherIsBetter);
        c.push(1.0, 0.1);
        c.push(1.0, 0.2);
    }
}
