//! The compression-scheme interface.
//!
//! A [`CompressionScheme`] is a *distributed algorithm*, not a codec: its
//! unit of work is one aggregation **round** over all workers' gradients,
//! executed through real collectives from `gcs-collectives`. This framing is
//! deliberate — the paper's design issues (all-reduce compatibility,
//! aggregation-time overflow, consensus on coordinates) only exist at the
//! round level, and a per-worker `compress()/decompress()` API would hide
//! them.
//!
//! Besides the functional result (the mean-gradient estimate every worker
//! receives), a round reports:
//!
//! * [`CommEvent`]s — which collective was invoked with how many payload
//!   bytes per worker (the paper's `b` accounting, Table 3);
//! * measured [`Traffic`] from the collectives layer;
//! * the compression compute cost, for the throughput model.

use gcs_collectives::Traffic;
use gcs_gpusim::DeviceSpec;
use gcs_netsim::{ClusterSpec, Collective};

/// Identifies one aggregation round for shared-randomness derivation.
#[derive(Clone, Copy, Debug)]
pub struct RoundContext {
    /// Monotone round counter.
    pub round: u64,
    /// The experiment's master seed (all workers share it).
    pub experiment_seed: u64,
}

impl RoundContext {
    /// Convenience constructor.
    pub fn new(experiment_seed: u64, round: u64) -> RoundContext {
        RoundContext {
            round,
            experiment_seed,
        }
    }
}

/// One collective invocation's description, sufficient for timing.
#[derive(Clone, Copy, Debug)]
pub struct CommEvent {
    /// Which collective ran.
    pub collective: Collective,
    /// Input payload per worker, in bytes (the all-reduce *input* size; wire
    /// amplification is the timing model's job).
    pub payload_bytes: f64,
}

impl CommEvent {
    /// Seconds this event takes on `cluster`.
    pub fn seconds(&self, cluster: &ClusterSpec) -> f64 {
        cluster.collective_seconds(self.collective, self.payload_bytes)
    }
}

/// Result of one distributed aggregation round.
#[derive(Clone, Debug, Default)]
pub struct AggregationOutcome {
    /// The estimate of the workers' **average** gradient that every worker
    /// holds after the round (identical across workers by construction).
    pub mean_estimate: Vec<f32>,
    /// Collective invocations performed, in order.
    pub comm: Vec<CommEvent>,
    /// Exact measured traffic from the collectives layer.
    pub traffic: Traffic,
}

impl AggregationOutcome {
    /// Total payload bits per gradient coordinate — the paper's `b`.
    pub fn bits_per_coord(&self, d: u64) -> f64 {
        let bits: f64 = self.comm.iter().map(|e| e.payload_bytes * 8.0).sum();
        bits / d as f64
    }

    /// Total communication seconds on `cluster`.
    pub fn comm_seconds(&self, cluster: &ClusterSpec) -> f64 {
        self.comm.iter().map(|e| e.seconds(cluster)).sum()
    }
}

/// A gradient compression scheme, viewed as a distributed aggregation
/// algorithm plus the static metadata the evaluation framework needs.
pub trait CompressionScheme {
    /// Short human-readable name, e.g. `"TopKC(b=2, C=64)"`.
    fn name(&self) -> String;

    /// Runs one aggregation round over `grads[worker]` (all equal length).
    /// Stateful: error-feedback memories, PowerSGD's `Q`, etc. live inside
    /// the scheme.
    fn aggregate_round(&mut self, grads: &[Vec<f32>], ctx: &RoundContext) -> AggregationOutcome;

    /// Runs one aggregation round writing into a caller-owned, reusable
    /// [`AggregationOutcome`] (fields cleared and refilled in place). The
    /// pooled schemes override this as their primary path — together with
    /// their internal round scratch it makes the steady state allocation-
    /// free; the default simply delegates to [`CompressionScheme::aggregate_round`].
    fn aggregate_round_into(
        &mut self,
        grads: &[Vec<f32>],
        ctx: &RoundContext,
        out: &mut AggregationOutcome,
    ) {
        *out = self.aggregate_round(grads, ctx);
    }

    /// Whether the scheme's dominant collective is an all-reduce
    /// (vs all-gather / parameter server) — Table 1's compatibility column.
    fn all_reduce_compatible(&self) -> bool;

    /// Nominal payload bits per coordinate at gradient dimension `d`
    /// (the paper's `b`), *without* running any data.
    fn nominal_bits_per_coord(&self, d: u64) -> f64;

    /// Collective invocations a round performs at dimension `d`, for
    /// paper-scale timing without paper-scale data.
    fn comm_events(&self, d: u64) -> Vec<CommEvent>;

    /// Compression + decompression compute seconds per round at dimension
    /// `d` on `device` (paper-scale cost model).
    fn compute_seconds(&self, d: u64, device: &DeviceSpec) -> f64;

    /// Resets all per-training state (EF memories, low-rank warm starts).
    fn reset(&mut self);
}

/// Computes per-round step time at paper scale:
/// `model compute + compression compute + communication`.
pub fn step_seconds(
    scheme: &dyn CompressionScheme,
    d: u64,
    model_compute: f64,
    device: &DeviceSpec,
    cluster: &ClusterSpec,
) -> f64 {
    let comm: f64 = scheme
        .comm_events(d)
        .iter()
        .map(|e| e.seconds(cluster))
        .sum();
    model_compute + scheme.compute_seconds(d, device) + comm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_coord_accounting() {
        let outcome = AggregationOutcome {
            mean_estimate: vec![0.0; 4],
            comm: vec![
                CommEvent {
                    collective: Collective::RingAllReduce,
                    payload_bytes: 100.0,
                },
                CommEvent {
                    collective: Collective::RingAllReduce,
                    payload_bytes: 25.0,
                },
            ],
            traffic: Traffic::default(),
        };
        assert!((outcome.bits_per_coord(1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comm_event_times_via_cluster() {
        let cluster = ClusterSpec::paper_testbed();
        let e = CommEvent {
            collective: Collective::RingAllReduce,
            payload_bytes: 1e9,
        };
        let t = e.seconds(&cluster);
        // 2*(3/4)*1e9 / 9.53e9 plus latency.
        assert!((t - 1.5e9 / 9.53e9).abs() < 1e-3, "t = {t}");
    }
}
