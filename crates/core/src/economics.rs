//! Cost-to-accuracy and power-to-accuracy — the paper's proposed future
//! direction (§4), implemented.
//!
//! TTA treats a second of a 4-GPU testbed and a second of a 1024-GPU pod as
//! equal; it also ignores that compression changes *what the cluster is
//! doing* during a round (tensor cores idle during communication, NICs idle
//! during Gram–Schmidt). This module converts a TTA curve plus a step-time
//! breakdown into:
//!
//! * **CTA** — dollars to reach an accuracy target, under a
//!   [`CostModel`] (per-GPU-hour price plus per-byte egress pricing, the
//!   cloud billing shape);
//! * **PTA** — joules to reach a target, under a [`PowerModel`] with
//!   distinct draw for compute-active, communication-active, and idle
//!   phases.
//!
//! The interesting consequence, which the `ablation_economics` bench
//! demonstrates: schemes can *reorder* between TTA and PTA/CTA. A scheme
//! that wins wall-clock by burning GPU time on compression compute (e.g.
//! PowerSGD at high rank) looks worse under power; a scheme that wins by
//! shrinking communication (TopKC, THC+Sat) looks even better under egress
//! pricing.

use crate::metrics::TtaCurve;

/// Billing model for a training cluster.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Number of GPUs (billing accrues on all of them for the full run).
    pub n_gpus: usize,
    /// Price per GPU-hour, dollars.
    pub gpu_hour_price: f64,
    /// Price per GiB crossing the network, dollars (0 for on-prem,
    /// nonzero for cloud cross-AZ traffic).
    pub per_gib_price: f64,
}

impl CostModel {
    /// On-demand A100 cloud pricing, cross-AZ traffic billed.
    pub fn cloud_a100(n_gpus: usize) -> CostModel {
        CostModel {
            n_gpus,
            gpu_hour_price: 4.10,
            per_gib_price: 0.01,
        }
    }

    /// On-premises: capital amortization only, traffic free.
    pub fn on_prem_a100(n_gpus: usize) -> CostModel {
        CostModel {
            n_gpus,
            gpu_hour_price: 1.20,
            per_gib_price: 0.0,
        }
    }

    /// Dollars for a training prefix of `seconds` wall-clock during which
    /// `wire_bytes` crossed the network in total.
    pub fn dollars(&self, seconds: f64, wire_bytes: f64) -> f64 {
        let gpu = self.n_gpus as f64 * seconds / 3600.0 * self.gpu_hour_price;
        let net = wire_bytes / (1u64 << 30) as f64 * self.per_gib_price;
        gpu + net
    }
}

/// Electrical model for one worker (GPU + NIC share).
#[derive(Clone, Debug)]
pub struct PowerModel {
    /// Number of GPUs.
    pub n_gpus: usize,
    /// Draw while the GPU computes (forward/backward/compression), watts.
    pub compute_watts: f64,
    /// Draw while the GPU waits on communication, watts (HBM + NIC active,
    /// SMs mostly idle).
    pub comm_watts: f64,
}

impl PowerModel {
    /// A100-SXM4 figures: ~400 W at full tilt, ~120 W while blocked on
    /// NCCL.
    pub fn a100(n_gpus: usize) -> PowerModel {
        PowerModel {
            n_gpus,
            compute_watts: 400.0,
            comm_watts: 120.0,
        }
    }

    /// Joules for one training round whose step decomposes into
    /// `compute_seconds` of busy GPU time and `comm_seconds` of
    /// communication-blocked time, across the cluster.
    pub fn round_joules(&self, compute_seconds: f64, comm_seconds: f64) -> f64 {
        self.n_gpus as f64 * (compute_seconds * self.compute_watts + comm_seconds * self.comm_watts)
    }
}

/// Per-round resource usage of a scheme (from the throughput model).
#[derive(Clone, Copy, Debug)]
pub struct RoundResources {
    /// GPU-busy seconds per round (model compute + compression kernels).
    pub busy_seconds: f64,
    /// Communication-blocked seconds per round.
    pub comm_seconds: f64,
    /// Bytes crossing the network per round, summed over workers.
    pub wire_bytes: f64,
}

impl RoundResources {
    /// Wall-clock seconds per round (no overlap, matching the TTA model).
    pub fn step_seconds(&self) -> f64 {
        self.busy_seconds + self.comm_seconds
    }
}

/// Converts a TTA curve (time axis = `resources.step_seconds()` per round)
/// into a cost-to-accuracy curve in dollars.
pub fn cost_curve(tta: &TtaCurve, resources: RoundResources, cost: &CostModel) -> TtaCurve {
    let step = resources.step_seconds();
    let mut out = TtaCurve::new(format!("{} [$]", tta.label), tta.direction);
    for &(t, m) in &tta.points {
        let rounds = t / step;
        let dollars = cost.dollars(t, rounds * resources.wire_bytes);
        out.points.push((dollars, m));
    }
    out
}

/// Converts a TTA curve into a power-to-accuracy curve in joules.
pub fn energy_curve(tta: &TtaCurve, resources: RoundResources, power: &PowerModel) -> TtaCurve {
    let step = resources.step_seconds();
    let mut out = TtaCurve::new(format!("{} [J]", tta.label), tta.direction);
    for &(t, m) in &tta.points {
        let rounds = t / step;
        let joules = rounds * power.round_joules(resources.busy_seconds, resources.comm_seconds);
        out.points.push((joules, m));
    }
    out
}

/// Dollars to reach `target` (None if never reached).
pub fn cost_to_accuracy(
    tta: &TtaCurve,
    resources: RoundResources,
    cost: &CostModel,
    target: f64,
) -> Option<f64> {
    cost_curve(tta, resources, cost).time_to_target(target)
}

/// Joules to reach `target` (None if never reached).
pub fn power_to_accuracy(
    tta: &TtaCurve,
    resources: RoundResources,
    power: &PowerModel,
    target: f64,
) -> Option<f64> {
    energy_curve(tta, resources, power).time_to_target(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Direction;

    fn curve(step: f64, rounds: usize) -> TtaCurve {
        let mut c = TtaCurve::new("s", Direction::HigherIsBetter);
        for i in 1..=rounds {
            c.push(i as f64 * step, i as f64 / rounds as f64);
        }
        c
    }

    #[test]
    fn cost_accumulates_gpu_time_and_traffic() {
        let cost = CostModel {
            n_gpus: 4,
            gpu_hour_price: 3.6, // 1 cent per gpu-second
            per_gib_price: 1.0,
        };
        // 1 hour, 2 GiB.
        let d = cost.dollars(3600.0, 2.0 * (1u64 << 30) as f64);
        assert!((d - (4.0 * 3.6 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn comm_heavy_schemes_win_more_under_power_than_wall_clock() {
        // Two schemes reach the target in the SAME wall-clock, but one
        // spends its step communicating (cheap watts) and the other
        // computing (expensive watts): PTA must prefer the former.
        let power = PowerModel::a100(4);
        let comm_heavy = RoundResources {
            busy_seconds: 0.1,
            comm_seconds: 0.3,
            wire_bytes: 1e9,
        };
        let compute_heavy = RoundResources {
            busy_seconds: 0.3,
            comm_seconds: 0.1,
            wire_bytes: 1e7,
        };
        let tta = curve(0.4, 10);
        let j_comm = power_to_accuracy(&tta, comm_heavy, &power, 0.9).unwrap();
        let j_comp = power_to_accuracy(&tta, compute_heavy, &power, 0.9).unwrap();
        assert!(j_comm < j_comp, "{j_comm} vs {j_comp}");
    }

    #[test]
    fn egress_pricing_flips_preferences() {
        // Scheme A: slightly faster wall-clock but 10x the traffic.
        // On-prem prefers A; cloud egress pricing prefers B.
        let fast_heavy = RoundResources {
            busy_seconds: 0.10,
            comm_seconds: 0.08,
            wire_bytes: 40e9,
        };
        let slow_light = RoundResources {
            busy_seconds: 0.10,
            comm_seconds: 0.10,
            wire_bytes: 4e9,
        };
        let tta_a = curve(fast_heavy.step_seconds(), 100);
        let tta_b = curve(slow_light.step_seconds(), 100);
        let on_prem = CostModel::on_prem_a100(4);
        let cloud = CostModel {
            per_gib_price: 0.05,
            ..CostModel::cloud_a100(4)
        };
        let a_prem = cost_to_accuracy(&tta_a, fast_heavy, &on_prem, 0.9).unwrap();
        let b_prem = cost_to_accuracy(&tta_b, slow_light, &on_prem, 0.9).unwrap();
        assert!(a_prem < b_prem, "on-prem should prefer the faster scheme");
        let a_cloud = cost_to_accuracy(&tta_a, fast_heavy, &cloud, 0.9).unwrap();
        let b_cloud = cost_to_accuracy(&tta_b, slow_light, &cloud, 0.9).unwrap();
        assert!(
            b_cloud < a_cloud,
            "egress pricing should prefer the lighter scheme"
        );
    }

    #[test]
    fn unreachable_targets_give_none() {
        let tta = curve(1.0, 3); // metric tops out at 1.0
        let res = RoundResources {
            busy_seconds: 0.5,
            comm_seconds: 0.5,
            wire_bytes: 1e6,
        };
        assert!(cost_to_accuracy(&tta, res, &CostModel::on_prem_a100(4), 2.0).is_none());
        assert!(power_to_accuracy(&tta, res, &PowerModel::a100(4), 2.0).is_none());
    }

    #[test]
    fn on_prem_ignores_traffic() {
        let c = CostModel::on_prem_a100(8);
        let with_traffic = c.dollars(100.0, 1e12);
        let without = c.dollars(100.0, 0.0);
        assert_eq!(with_traffic, without);
    }

    #[test]
    fn curves_preserve_metric_values() {
        let tta = curve(0.5, 4);
        let res = RoundResources {
            busy_seconds: 0.3,
            comm_seconds: 0.2,
            wire_bytes: 1e6,
        };
        let cc = cost_curve(&tta, res, &CostModel::on_prem_a100(4));
        assert_eq!(cc.points.len(), 4);
        for (orig, conv) in tta.points.iter().zip(&cc.points) {
            assert_eq!(orig.1, conv.1);
        }
        // Monotone cost axis.
        for w in cc.points.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }
}
