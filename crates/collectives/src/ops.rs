//! The collective algorithms, operating on real data.
//!
//! Each function takes one buffer per worker and performs the collective by
//! actually moving (cloning) data between buffers in the algorithm's
//! step/segment structure, applying a [`ReduceOp`] at intermediate hops —
//! so non-associativity effects (FP16 rounding order, saturation at partial
//! aggregates) appear exactly where a real deployment would produce them.
//!
//! Every operation returns a [`Traffic`] record with exact per-worker byte
//! counts; the timing layer (`gcs-netsim`) turns those into seconds.
//!
//! Each collective has two entry points: the original allocating signature
//! (`ring_all_reduce`, …) and a `_into` variant that writes into
//! caller-owned scratch ([`RingScratch`], a reused [`Traffic`], reused
//! output vectors). The `_into` variants are the steady-state hot path —
//! after warm-up they perform **zero heap allocations** (asserted by
//! `tests/alloc_budget.rs` under a counting global allocator); the
//! allocating wrappers simply delegate with fresh scratch.

use crate::reduce::ReduceOp;

/// Exact communication accounting for one collective invocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Bytes sent by each worker.
    pub sent: Vec<u64>,
    /// Bytes received by each worker.
    pub received: Vec<u64>,
    /// Number of synchronous communication steps.
    pub steps: u32,
}

impl Traffic {
    #[cfg(test)]
    fn new(n: usize) -> Traffic {
        Traffic {
            sent: vec![0; n],
            received: vec![0; n],
            steps: 0,
        }
    }

    /// Resets to `n` workers with zeroed counters, reusing the existing
    /// allocations when capacity suffices (no heap traffic at steady state).
    pub fn reset(&mut self, n: usize) {
        self.sent.clear();
        self.sent.resize(n, 0);
        self.received.clear();
        self.received.resize(n, 0);
        self.steps = 0;
    }

    fn record(&mut self, from: usize, to: usize, bytes: u64) {
        self.sent[from] += bytes;
        self.received[to] += bytes;
    }

    /// The heaviest single worker's sent bytes (the bandwidth bottleneck).
    pub fn max_sent(&self) -> u64 {
        self.sent.iter().copied().max().unwrap_or(0)
    }

    /// Total bytes crossing the network.
    pub fn total(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Merges another collective's traffic (sequential composition).
    ///
    /// # Panics
    /// Panics if worker counts differ.
    pub fn merge(&mut self, other: &Traffic) {
        assert_eq!(
            self.sent.len(),
            other.sent.len(),
            "Traffic::merge: n mismatch"
        );
        for (a, b) in self.sent.iter_mut().zip(&other.sent) {
            *a += b;
        }
        for (a, b) in self.received.iter_mut().zip(&other.received) {
            *a += b;
        }
        self.steps += other.steps;
    }
}

/// Persistent staging for the in-flight segments of one ring step.
///
/// The ring captures every worker's outgoing segment before applying any
/// reduction (all sends within a step are simultaneous). Instead of one
/// fresh `to_vec()` per worker per step, the segments are packed
/// back-to-back into `staging` with `offsets` delimiting them — after the
/// first step the allocation is at its high-water mark (≤ buffer length
/// plus one extra element per worker) and is reused for every subsequent
/// step and round.
#[derive(Clone, Debug)]
pub struct RingScratch<T> {
    staging: Vec<T>,
    offsets: Vec<usize>,
}

impl<T> Default for RingScratch<T> {
    fn default() -> Self {
        RingScratch {
            staging: Vec::new(),
            offsets: Vec::new(),
        }
    }
}

impl<T> RingScratch<T> {
    pub fn new() -> Self {
        Self::default()
    }
}

fn segment_bounds(len: usize, n: usize, seg: usize) -> (usize, usize) {
    // Segments as even as possible: first (len % n) segments get one extra.
    let base = len / n;
    let extra = len % n;
    let start = seg * base + seg.min(extra);
    let size = base + usize::from(seg < extra);
    (start, start + size)
}

/// Ring all-reduce: reduce-scatter followed by all-gather, `2(n−1)` steps.
///
/// On return every worker's buffer holds the identical reduction of all
/// inputs. The reduction order for segment `s` is fixed by the ring
/// (worker `s+1, s+2, …` folding into the running partial), so
/// non-associative operators give deterministic, realistic results.
///
/// # Panics
/// Panics if buffers have unequal lengths or `bufs` is empty.
pub fn ring_all_reduce<T: Clone>(
    bufs: &mut [Vec<T>],
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
) -> Traffic {
    let mut scratch = RingScratch::new();
    let mut traffic = Traffic::default();
    ring_all_reduce_into(bufs, op, bytes_per_elem, &mut scratch, &mut traffic);
    traffic
}

/// [`ring_all_reduce`] writing into caller-owned scratch: zero heap
/// allocations once `scratch` and `traffic` have reached their high-water
/// marks. Bitwise-identical to the allocating version (same segment walk,
/// same reduction order).
pub fn ring_all_reduce_into<T: Clone>(
    bufs: &mut [Vec<T>],
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
    scratch: &mut RingScratch<T>,
    traffic: &mut Traffic,
) {
    let _span = gcs_trace::span(gcs_trace::Phase::Network, "ring_all_reduce");
    let _timer = gcs_metrics::timer("collective/ring_all_reduce/latency_ns");
    let n = bufs.len();
    assert!(n > 0, "ring_all_reduce: no workers");
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "ring_all_reduce: ragged buffers"
    );
    traffic.reset(n);
    if n == 1 || len == 0 {
        return;
    }

    // Reduce-scatter: at step k, worker i sends segment (i - k) to i+1,
    // which folds it into its own copy. After n-1 steps worker i owns the
    // full reduction of segment (i + 1) mod n.
    for k in 0..n - 1 {
        // Capture the sends before mutating (simultaneous steps).
        scratch.staging.clear();
        scratch.offsets.clear();
        scratch.offsets.push(0);
        for (i, buf) in bufs.iter().enumerate() {
            let seg = (i + n - k) % n;
            let (lo, hi) = segment_bounds(len, n, seg);
            let dst = (i + 1) % n;
            scratch.staging.extend_from_slice(&buf[lo..hi]);
            scratch.offsets.push(scratch.staging.len());
            traffic.record(i, dst, ((hi - lo) as f64 * bytes_per_elem).ceil() as u64);
        }
        for i in 0..n {
            let seg = (i + n - k) % n;
            let (lo, hi) = segment_bounds(len, n, seg);
            let dst = (i + 1) % n;
            let data = &scratch.staging[scratch.offsets[i]..scratch.offsets[i + 1]];
            op.reduce_slice(&mut bufs[dst][lo..hi], data);
        }
        traffic.steps += 1;
    }

    // All-gather: worker i owns segment (i+1); circulate finished segments.
    for k in 0..n - 1 {
        scratch.staging.clear();
        scratch.offsets.clear();
        scratch.offsets.push(0);
        for (i, buf) in bufs.iter().enumerate() {
            let seg = (i + 1 + n - k) % n;
            let (lo, hi) = segment_bounds(len, n, seg);
            let dst = (i + 1) % n;
            scratch.staging.extend_from_slice(&buf[lo..hi]);
            scratch.offsets.push(scratch.staging.len());
            traffic.record(i, dst, ((hi - lo) as f64 * bytes_per_elem).ceil() as u64);
        }
        for i in 0..n {
            let seg = (i + 1 + n - k) % n;
            let (lo, hi) = segment_bounds(len, n, seg);
            let dst = (i + 1) % n;
            let data = &scratch.staging[scratch.offsets[i]..scratch.offsets[i + 1]];
            bufs[dst][lo..hi].clone_from_slice(data);
        }
        traffic.steps += 1;
    }
    gcs_trace::counter("wire_bytes", traffic.total() as f64);
    gcs_metrics::counter_add(
        "collective/ring_all_reduce/wire_bytes_total",
        traffic.total() as f64,
    );
    gcs_metrics::observe(
        "collective/ring_all_reduce/wire_bytes",
        traffic.total() as f64,
    );
}

/// Tree (recursive-halving/doubling style) all-reduce for any `n`: reduce
/// to worker 0 up a binomial tree, then broadcast down. `2·ceil(log2 n)`
/// steps; `2×` the payload on the busiest link.
///
/// # Panics
/// Panics on ragged or empty input.
pub fn tree_all_reduce<T: Clone>(
    bufs: &mut [Vec<T>],
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
) -> Traffic {
    let mut traffic = Traffic::default();
    tree_all_reduce_into(bufs, op, bytes_per_elem, &mut traffic);
    traffic
}

/// [`tree_all_reduce`] with a caller-owned [`Traffic`]. Fully in-place:
/// both tree phases borrow source and destination disjointly
/// (`split_at_mut`), and broadcast-down copies with `clone_from`, so no
/// per-step buffer is ever allocated.
pub fn tree_all_reduce_into<T: Clone>(
    bufs: &mut [Vec<T>],
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
    traffic: &mut Traffic,
) {
    let _span = gcs_trace::span(gcs_trace::Phase::Network, "tree_all_reduce");
    let _timer = gcs_metrics::timer("collective/tree_all_reduce/latency_ns");
    let n = bufs.len();
    assert!(n > 0, "tree_all_reduce: no workers");
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "tree_all_reduce: ragged buffers"
    );
    traffic.reset(n);
    if n == 1 || len == 0 {
        return;
    }
    let payload = (len as f64 * bytes_per_elem).ceil() as u64;

    // Reduce up: at distance d, workers with (i % 2d == d) send to i - d.
    // The sender index is always strictly above the receiver, so splitting
    // the slice at the sender gives disjoint &mut/& borrows — no clone.
    let mut d = 1;
    while d < n {
        for i in 0..n {
            if i % (2 * d) == d {
                let dst = i - d;
                let (head, tail) = bufs.split_at_mut(i);
                op.reduce_slice(&mut head[dst], &tail[0]);
                traffic.record(i, dst, payload);
            }
        }
        traffic.steps += 1;
        d *= 2;
    }
    // Broadcast down, mirroring the reduce tree. `clone_from` reuses the
    // receiver's existing capacity (lengths are equal here).
    while d > 1 {
        d /= 2;
        for i in 0..n {
            if i % (2 * d) == d {
                let src = i - d;
                let (head, tail) = bufs.split_at_mut(i);
                tail[0].clone_from(&head[src]);
                traffic.record(src, i, payload);
            }
        }
        traffic.steps += 1;
    }
    gcs_trace::counter("wire_bytes", traffic.total() as f64);
    gcs_metrics::counter_add(
        "collective/tree_all_reduce/wire_bytes_total",
        traffic.total() as f64,
    );
    gcs_metrics::observe(
        "collective/tree_all_reduce/wire_bytes",
        traffic.total() as f64,
    );
}

/// All-gather: returns each worker's concatenated view `[w0 | w1 | …]`
/// (identical across workers, so a single copy is returned), plus traffic:
/// every worker sends its payload to all `n−1` peers.
///
/// # Panics
/// Panics if `inputs` is empty. Ragged inputs are allowed (TopK payload
/// sizes can differ per worker after ties).
pub fn all_gather<T: Clone>(inputs: &[Vec<T>], bytes_per_elem: f64) -> (Vec<T>, Traffic) {
    let mut out = Vec::new();
    let mut traffic = Traffic::default();
    all_gather_into(inputs, bytes_per_elem, &mut out, &mut traffic);
    (out, traffic)
}

/// [`all_gather`] writing the concatenation into a caller-owned `out`
/// (cleared first; capacity reused) with a caller-owned [`Traffic`].
pub fn all_gather_into<T: Clone>(
    inputs: &[Vec<T>],
    bytes_per_elem: f64,
    out: &mut Vec<T>,
    traffic: &mut Traffic,
) {
    let _span = gcs_trace::span(gcs_trace::Phase::Network, "all_gather");
    let _timer = gcs_metrics::timer("collective/all_gather/latency_ns");
    let n = inputs.len();
    assert!(n > 0, "all_gather: no workers");
    traffic.reset(n);
    out.clear();
    for (i, inp) in inputs.iter().enumerate() {
        let bytes = (inp.len() as f64 * bytes_per_elem).ceil() as u64;
        for j in 0..n {
            if j != i {
                traffic.record(i, j, bytes);
            }
        }
        out.extend_from_slice(inp);
    }
    traffic.steps = (n - 1) as u32;
    gcs_trace::counter("wire_bytes", traffic.total() as f64);
    gcs_metrics::counter_add(
        "collective/all_gather/wire_bytes_total",
        traffic.total() as f64,
    );
    gcs_metrics::observe("collective/all_gather/wire_bytes", traffic.total() as f64);
}

/// Reduce-scatter: worker `i` ends with segment `i` of the reduction.
/// Returns the per-worker segments; `(n−1)/n` of the payload crosses each
/// link.
///
/// # Panics
/// Panics on ragged or empty input.
pub fn reduce_scatter<T: Clone>(
    bufs: &[Vec<T>],
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
) -> (Vec<Vec<T>>, Traffic) {
    let mut out = Vec::new();
    let mut traffic = Traffic::default();
    reduce_scatter_into(bufs, op, bytes_per_elem, &mut out, &mut traffic);
    (out, traffic)
}

/// [`reduce_scatter`] writing segments into caller-owned `out` vectors
/// (resized to `n`; each segment cleared and refilled in place, so the
/// steady state reuses every allocation).
pub fn reduce_scatter_into<T: Clone>(
    bufs: &[Vec<T>],
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
    out: &mut Vec<Vec<T>>,
    traffic: &mut Traffic,
) {
    let _span = gcs_trace::span(gcs_trace::Phase::Network, "reduce_scatter");
    let _timer = gcs_metrics::timer("collective/reduce_scatter/latency_ns");
    let n = bufs.len();
    assert!(n > 0, "reduce_scatter: no workers");
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "reduce_scatter: ragged buffers"
    );
    traffic.reset(n);
    if out.len() != n {
        out.resize_with(n, Vec::new);
    }
    for (i, acc) in out.iter_mut().enumerate() {
        let (lo, hi) = segment_bounds(len, n, i);
        acc.clear();
        acc.extend_from_slice(&bufs[i][lo..hi]);
        for j in 1..n {
            let src = (i + j) % n;
            op.reduce_slice(acc, &bufs[src][lo..hi]);
            traffic.record(src, i, ((hi - lo) as f64 * bytes_per_elem).ceil() as u64);
        }
    }
    traffic.steps = (n - 1) as u32;
    gcs_trace::counter("wire_bytes", traffic.total() as f64);
    gcs_metrics::counter_add(
        "collective/reduce_scatter/wire_bytes_total",
        traffic.total() as f64,
    );
    gcs_metrics::observe(
        "collective/reduce_scatter/wire_bytes",
        traffic.total() as f64,
    );
}

/// One-to-all broadcast from `root`. In place: receivers `clone_from` the
/// root's buffer through disjoint borrows, reusing their capacity.
///
/// # Panics
/// Panics if `root >= n`.
pub fn broadcast<T: Clone>(bufs: &mut [Vec<T>], root: usize, bytes_per_elem: f64) -> Traffic {
    let mut traffic = Traffic::default();
    broadcast_into(bufs, root, bytes_per_elem, &mut traffic);
    traffic
}

/// [`broadcast`] with a caller-owned [`Traffic`].
pub fn broadcast_into<T: Clone>(
    bufs: &mut [Vec<T>],
    root: usize,
    bytes_per_elem: f64,
    traffic: &mut Traffic,
) {
    let _span = gcs_trace::span(gcs_trace::Phase::Network, "broadcast");
    let _timer = gcs_metrics::timer("collective/broadcast/latency_ns");
    let n = bufs.len();
    assert!(root < n, "broadcast: root {root} out of range");
    traffic.reset(n);
    let (head, rest) = bufs.split_at_mut(root);
    let (root_buf, tail) = rest.split_first_mut().expect("root < n");
    let bytes = (root_buf.len() as f64 * bytes_per_elem).ceil() as u64;
    for (i, buf) in head.iter_mut().enumerate() {
        buf.clone_from(root_buf);
        traffic.record(root, i, bytes);
    }
    for (j, buf) in tail.iter_mut().enumerate() {
        buf.clone_from(root_buf);
        traffic.record(root, root + 1 + j, bytes);
    }
    traffic.steps = 1;
    gcs_trace::counter("wire_bytes", traffic.total() as f64);
    gcs_metrics::counter_add(
        "collective/broadcast/wire_bytes_total",
        traffic.total() as f64,
    );
    gcs_metrics::observe("collective/broadcast/wire_bytes", traffic.total() as f64);
}

/// Centralized parameter-server aggregation: all workers push to a PS
/// (node outside the worker set), which reduces **in full precision head
/// room** (the PS can allocate wider accumulators, §3.2.1) and pushes the
/// result back. Returns the reduced vector.
///
/// # Panics
/// Panics on ragged or empty input.
pub fn parameter_server<T: Clone>(
    bufs: &[Vec<T>],
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
) -> (Vec<T>, Traffic) {
    let mut acc = Vec::new();
    let mut traffic = Traffic::default();
    parameter_server_into(bufs, op, bytes_per_elem, &mut acc, &mut traffic);
    (acc, traffic)
}

/// [`parameter_server`] accumulating into a caller-owned `acc` (cleared
/// and refilled in place) with a caller-owned [`Traffic`].
pub fn parameter_server_into<T: Clone>(
    bufs: &[Vec<T>],
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
    acc: &mut Vec<T>,
    traffic: &mut Traffic,
) {
    let _span = gcs_trace::span(gcs_trace::Phase::Network, "parameter_server");
    let _timer = gcs_metrics::timer("collective/parameter_server/latency_ns");
    let n = bufs.len();
    assert!(n > 0, "parameter_server: no workers");
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "parameter_server: ragged buffers"
    );
    traffic.reset(n);
    let bytes = (len as f64 * bytes_per_elem).ceil() as u64;
    acc.clear();
    acc.extend_from_slice(&bufs[0]);
    for b in bufs.iter().skip(1) {
        op.reduce_slice(acc, b);
    }
    // Push: every worker's send. Pull: every worker's receive. We count the
    // PS-side congestion in the timing model, not here.
    for i in 0..n {
        traffic.sent[i] += bytes;
        traffic.received[i] += bytes;
    }
    traffic.steps = 2;
    gcs_trace::counter("wire_bytes", traffic.total() as f64);
    gcs_metrics::counter_add(
        "collective/parameter_server/wire_bytes_total",
        traffic.total() as f64,
    );
    gcs_metrics::observe(
        "collective/parameter_server/wire_bytes",
        traffic.total() as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::{F32Sum, SaturatingIntSum};

    fn worker_bufs(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|w| {
                (0..len)
                    .map(|i| (w * len + i) as f32 * 0.01 - 1.0)
                    .collect()
            })
            .collect()
    }

    fn exact_sum(bufs: &[Vec<f32>]) -> Vec<f32> {
        let mut out = vec![0.0f32; bufs[0].len()];
        for b in bufs {
            for (o, x) in out.iter_mut().zip(b) {
                *o += x;
            }
        }
        out
    }

    #[test]
    fn ring_all_reduce_computes_the_sum() {
        for n in [1usize, 2, 3, 4, 7] {
            for len in [0usize, 1, 5, 64, 97] {
                let mut bufs = worker_bufs(n, len);
                let expect = exact_sum(&bufs);
                ring_all_reduce(&mut bufs, &F32Sum, 4.0);
                for b in &bufs {
                    for (x, e) in b.iter().zip(&expect) {
                        assert!((x - e).abs() < 1e-4, "n={n} len={len}");
                    }
                }
            }
        }
    }

    /// The pre-pool reference ring, preserved verbatim (per-step
    /// `to_vec()` staging) to pin that the staged rewrite is
    /// bitwise-identical.
    fn reference_ring_all_reduce<T: Clone>(bufs: &mut [Vec<T>], op: &dyn ReduceOp<T>) {
        let n = bufs.len();
        let len = bufs[0].len();
        if n == 1 || len == 0 {
            return;
        }
        for k in 0..n - 1 {
            let mut pending: Vec<(usize, usize, Vec<T>)> = Vec::with_capacity(n);
            for (i, buf) in bufs.iter().enumerate() {
                let seg = (i + n - k) % n;
                let (lo, hi) = segment_bounds(len, n, seg);
                pending.push(((i + 1) % n, seg, buf[lo..hi].to_vec()));
            }
            for (dst, seg, data) in pending {
                let (lo, hi) = segment_bounds(len, n, seg);
                op.reduce_slice(&mut bufs[dst][lo..hi], &data);
            }
        }
        for k in 0..n - 1 {
            let mut pending: Vec<(usize, usize, Vec<T>)> = Vec::with_capacity(n);
            for (i, buf) in bufs.iter().enumerate() {
                let seg = (i + 1 + n - k) % n;
                let (lo, hi) = segment_bounds(len, n, seg);
                pending.push(((i + 1) % n, seg, buf[lo..hi].to_vec()));
            }
            for (dst, seg, data) in pending {
                let (lo, hi) = segment_bounds(len, n, seg);
                bufs[dst][lo..hi].clone_from_slice(&data);
            }
        }
    }

    #[test]
    fn staged_ring_is_bitwise_identical_to_reference() {
        for n in [2usize, 3, 4, 7] {
            for len in [1usize, 5, 64, 97] {
                let mut a = worker_bufs(n, len);
                let mut b = a.clone();
                ring_all_reduce(&mut a, &F32Sum, 4.0);
                reference_ring_all_reduce(&mut b, &F32Sum);
                for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "n={n} len={len}");
                }
            }
        }
    }

    #[test]
    fn ring_into_scratch_reuse_is_stable_across_rounds() {
        let mut scratch = RingScratch::new();
        let mut traffic = Traffic::default();
        let mut expect_traffic = None;
        for round in 0..3 {
            let mut bufs = worker_bufs(4, 97);
            let expect = {
                let mut r = bufs.clone();
                reference_ring_all_reduce(&mut r, &F32Sum);
                r
            };
            ring_all_reduce_into(&mut bufs, &F32Sum, 4.0, &mut scratch, &mut traffic);
            for (x, y) in bufs.iter().flatten().zip(expect.iter().flatten()) {
                assert_eq!(x.to_bits(), y.to_bits(), "round={round}");
            }
            match &expect_traffic {
                None => expect_traffic = Some(traffic.clone()),
                Some(t) => assert_eq!(&traffic, t, "traffic must reset per call"),
            }
        }
    }

    #[test]
    fn collectives_emit_per_op_wire_and_latency_metrics() {
        let (traffic, reg) = gcs_metrics::with_capture(|| {
            let mut bufs = worker_bufs(4, 64);
            ring_all_reduce(&mut bufs, &F32Sum, 4.0)
        });
        if !gcs_metrics::is_captured() {
            return;
        }
        let wire = traffic.total() as f64;
        assert_eq!(
            reg.counter("collective/ring_all_reduce/wire_bytes_total"),
            Some(wire)
        );
        let bytes_hist = reg.hist("collective/ring_all_reduce/wire_bytes").unwrap();
        assert_eq!(bytes_hist.count(), 1);
        assert_eq!(bytes_hist.max(), Some(wire));
        let lat = reg.hist("collective/ring_all_reduce/latency_ns").unwrap();
        assert_eq!(lat.count(), 1);
        assert!(lat.max().unwrap() > 0.0);
    }

    #[test]
    fn collective_spans_are_tagged_network_phase() {
        gcs_trace::clear();
        let trace = gcs_trace::with_recording(|| {
            let mut bufs = worker_bufs(3, 32);
            ring_all_reduce(&mut bufs, &F32Sum, 4.0);
        });
        if trace.spans.is_empty() {
            return; // trace capture disabled
        }
        assert!(trace
            .spans
            .iter()
            .any(|s| s.phase == gcs_trace::Phase::Network && s.name == "ring_all_reduce"));
        assert!(!trace
            .spans
            .iter()
            .any(|s| s.phase == gcs_trace::Phase::Reduce));
    }

    #[test]
    fn ring_traffic_matches_closed_form() {
        let n = 4;
        let len = 100;
        let mut bufs = worker_bufs(n, len);
        let t = ring_all_reduce(&mut bufs, &F32Sum, 4.0);
        assert_eq!(t.steps, 2 * (n as u32 - 1));
        // Each worker sends ~2(n-1)/n * len elements * 4 bytes.
        let expect = (2.0 * (n as f64 - 1.0) / n as f64 * len as f64 * 4.0) as u64;
        for &s in &t.sent {
            assert!(
                (s as i64 - expect as i64).unsigned_abs() <= 8,
                "{s} vs {expect}"
            );
        }
    }

    #[test]
    fn tree_all_reduce_matches_ring_result() {
        for n in [2usize, 3, 4, 5, 8] {
            let mut a = worker_bufs(n, 33);
            let mut b = a.clone();
            ring_all_reduce(&mut a, &F32Sum, 4.0);
            tree_all_reduce(&mut b, &F32Sum, 4.0);
            for (x, y) in a[0].iter().zip(&b[0]) {
                assert!((x - y).abs() < 1e-4);
            }
            // All workers identical after tree all-reduce.
            for w in &b {
                assert_eq!(w, &b[0]);
            }
        }
    }

    /// Behavior preservation for the in-place tree rewrite (satellite
    /// fix): same values and traffic as the old clone-based version,
    /// whose logic is reproduced here.
    #[test]
    fn in_place_tree_matches_cloning_reference() {
        for n in [2usize, 3, 4, 5, 6, 7, 8, 9] {
            let mut a = worker_bufs(n, 33);
            let b_src = a.clone();
            let t = tree_all_reduce(&mut a, &F32Sum, 4.0);

            // Reference: the pre-rewrite clone-per-hop implementation.
            let mut b = b_src;
            let mut expect_t = Traffic::new(n);
            let payload = (33.0f64 * 4.0).ceil() as u64;
            let mut d = 1;
            while d < n {
                for i in 0..n {
                    if i % (2 * d) == d {
                        let dst = i - d;
                        let data = b[i].clone();
                        F32Sum.reduce_slice(&mut b[dst], &data);
                        expect_t.record(i, dst, payload);
                    }
                }
                expect_t.steps += 1;
                d *= 2;
            }
            while d > 1 {
                d /= 2;
                for i in 0..n {
                    if i % (2 * d) == d {
                        let src = i - d;
                        b[i] = b[src].clone();
                        expect_t.record(src, i, payload);
                    }
                }
                expect_t.steps += 1;
            }

            for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n}");
            }
            assert_eq!(t, expect_t, "n={n}");
        }
    }

    #[test]
    fn all_gather_concatenates_and_counts() {
        let inputs = vec![vec![1i32, 2], vec![3], vec![4, 5, 6]];
        let (out, t) = all_gather(&inputs, 4.0);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(t.sent, vec![16, 8, 24]); // payload * (n-1)
        assert_eq!(t.received[0], 4 + 12);
    }

    #[test]
    fn all_gather_into_reuses_output() {
        let inputs = vec![vec![1i32, 2], vec![3], vec![4, 5, 6]];
        let mut out = Vec::with_capacity(16);
        let ptr = out.as_ptr();
        let mut traffic = Traffic::default();
        for _ in 0..2 {
            all_gather_into(&inputs, 4.0, &mut out, &mut traffic);
            assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
            assert_eq!(out.as_ptr(), ptr, "output allocation must be reused");
        }
    }

    #[test]
    fn reduce_scatter_segments_sum() {
        let bufs = worker_bufs(3, 10);
        let expect = exact_sum(&bufs);
        let (segs, t) = reduce_scatter(&bufs, &F32Sum, 4.0);
        let flat: Vec<f32> = segs.concat();
        for (x, e) in flat.iter().zip(&expect) {
            assert!((x - e).abs() < 1e-4);
        }
        assert_eq!(t.steps, 2);
    }

    #[test]
    fn reduce_scatter_into_reuses_segments() {
        let bufs = worker_bufs(3, 10);
        let (expect_segs, expect_t) = reduce_scatter(&bufs, &F32Sum, 4.0);
        let mut out = Vec::new();
        let mut traffic = Traffic::default();
        reduce_scatter_into(&bufs, &F32Sum, 4.0, &mut out, &mut traffic);
        let ptrs: Vec<*const f32> = out.iter().map(|s| s.as_ptr()).collect();
        // Second call: identical result, identical allocations.
        reduce_scatter_into(&bufs, &F32Sum, 4.0, &mut out, &mut traffic);
        assert_eq!(out, expect_segs);
        assert_eq!(traffic, expect_t);
        for (s, &p) in out.iter().zip(&ptrs) {
            assert_eq!(s.as_ptr(), p, "segment allocation must be reused");
        }
    }

    #[test]
    fn broadcast_copies_root() {
        let mut bufs = vec![vec![0.0f32; 4], vec![1.0; 4], vec![2.0; 4]];
        let t = broadcast(&mut bufs, 1, 4.0);
        for b in &bufs {
            assert_eq!(b, &vec![1.0; 4]);
        }
        assert_eq!(t.sent[1], 32);
    }

    #[test]
    fn broadcast_from_every_root_position() {
        for root in 0..4 {
            let mut bufs: Vec<Vec<f32>> = (0..4).map(|w| vec![w as f32; 6]).collect();
            let t = broadcast(&mut bufs, root, 4.0);
            for b in &bufs {
                assert_eq!(b, &vec![root as f32; 6]);
            }
            assert_eq!(t.sent[root], 3 * 24);
            assert_eq!(t.steps, 1);
        }
    }

    #[test]
    fn parameter_server_reduces() {
        let bufs = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let (out, t) = parameter_server(&bufs, &F32Sum, 4.0);
        assert_eq!(out, vec![4.0, 6.0]);
        assert_eq!(t.sent, vec![8, 8]);
    }

    #[test]
    fn saturating_ring_all_reduce_stays_in_range() {
        // Four workers each contribute +6 in 4-bit lanes: the exact sum (24)
        // saturates at 7 somewhere along the ring — and every worker agrees
        // on the final (clamped) value.
        let op = SaturatingIntSum::new(4);
        let mut bufs: Vec<Vec<i32>> = (0..4).map(|_| vec![6i32; 8]).collect();
        ring_all_reduce(&mut bufs, &op, 0.5);
        for b in &bufs {
            assert_eq!(b, &vec![7i32; 8]);
        }
    }

    #[test]
    fn ring_with_uneven_segments() {
        // len=5, n=4: segments of 2,1,1,1.
        let mut bufs = worker_bufs(4, 5);
        let expect = exact_sum(&bufs);
        ring_all_reduce(&mut bufs, &F32Sum, 4.0);
        for (x, e) in bufs[2].iter().zip(&expect) {
            assert!((x - e).abs() < 1e-4);
        }
    }

    #[test]
    fn traffic_merge_accumulates() {
        let mut a = Traffic::new(2);
        a.record(0, 1, 10);
        a.steps = 1;
        let mut b = Traffic::new(2);
        b.record(1, 0, 5);
        b.steps = 2;
        a.merge(&b);
        assert_eq!(a.sent, vec![10, 5]);
        assert_eq!(a.received, vec![5, 10]);
        assert_eq!(a.steps, 3);
        assert_eq!(a.total(), 15);
        assert_eq!(a.max_sent(), 10);
    }

    #[test]
    fn traffic_reset_reuses_and_zeroes() {
        let mut t = Traffic::new(4);
        t.record(0, 1, 10);
        t.steps = 3;
        let ptr = t.sent.as_ptr();
        t.reset(4);
        assert_eq!(t, Traffic::new(4));
        assert_eq!(t.sent.as_ptr(), ptr, "reset must reuse the allocation");
        // Growing is allowed (allocates once), shrinking reuses.
        t.reset(2);
        assert_eq!(t, Traffic::new(2));
    }
}
