//! Socket transport: the collectives over real localhost TCP, with elastic
//! membership (ISSUE 7 tentpole, ROADMAP item 2).
//!
//! The PR 5 [`MessageLinks`] seam made the worker bodies
//! ([`crate::transport::ring_all_reduce_worker`] & friends) generic over the
//! transport; this module supplies the second implementation — real sockets
//! instead of in-process channels — without touching those bodies. Layers,
//! bottom-up:
//!
//! * [`WireElem`] — fixed-width little-endian encoding of element types, so
//!   a reduction over TCP is bitwise-comparable to one over channels.
//! * `FramedStream` (private) — length-prefixed frames over a `TcpStream`,
//!   with bounded blocking reads (a dead or wedged peer surfaces as a typed
//!   [`CollectiveError`], never a hung socket read).
//! * [`TcpMesh`] — a connection-per-directed-link mesh: worker *i* dials one
//!   stream to every peer *j* (used only for `i → j` traffic) and accepts
//!   one from every peer (used only for `j → i`). Handshakes carry
//!   `(epoch, from)` so stale connections from a previous membership epoch
//!   are rejected during a rebuild.
//! * [`TcpLinks`] — the [`MessageLinks`] adapter over a mesh; the worker
//!   bodies run unchanged and count traffic identically, which is what makes
//!   the `tcp_vs_threaded` differential tests meaningful.
//! * [`Registry`] / [`FleetWorker`] — rendezvous and elastic membership: a
//!   registry assigns stable worker ids, runs a per-round barrier, and
//!   renumbers ranks over the *live* membership each round. This generalizes
//!   the PR 5 crash-survivor renumbering: workers can now *join* mid-run
//!   (epoch bumps, meshes rebuild, ranks stay dense) as well as die.
//!
//! ## Registry protocol (line-based, one TCP connection per worker)
//!
//! ```text
//! worker → registry   JOIN <listen_addr>      register; listener already bound
//! registry → worker   ID <worker_id>
//! worker → registry   BEGIN <train_round>     barrier for the next round
//! registry → worker   ROUND <round> <epoch> <rank> <n> <addr_0> … <addr_{n-1}>
//! worker → registry   LEAVE                   graceful exit
//! registry → worker   BYE
//! ```
//!
//! The barrier releases when every *live* registered worker has sent
//! `BEGIN`. Deaths are detected by registry-connection EOF (a SIGKILLed
//! process's sockets are closed by the kernel), joins by new `JOIN`s; either
//! changes the member set, which bumps `epoch` at the next release. Ranks
//! are the index of each worker id in the sorted live-id roster — dense,
//! deterministic, and stable for survivors in the common suffix sense that
//! PR 5's renumbering established. `round` is the max `train_round` offered
//! at the barrier, so a late joiner (offering 0) adopts the survivors'
//! training clock.
//!
//! Liveness note: a worker killed *between* `BEGIN` and the `ROUND` reply is
//! still included in that release (the registry learns of the death when the
//! reply write fails); the survivors' mesh build then fails, they re-enter
//! the barrier, and the next release excludes the corpse. One wasted round,
//! no deadlock — the chaos and fleet tests pin this.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::CollectiveError;
use crate::transport::MessageLinks;

/// Handshake magic ("GCSL" little-endian) prefixed to every mesh link.
const MESH_MAGIC: u32 = 0x4C53_4347;
/// Upper bound on a single frame's payload; larger lengths are treated as a
/// protocol violation (corrupt length prefix), not an allocation request.
const MAX_FRAME_BYTES: usize = 1 << 30;
/// Polling granularity for bounded accept/connect/read loops.
const POLL_SLEEP: Duration = Duration::from_millis(1);

// ---------------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------------

/// Element types that can cross a byte-oriented transport with fixed width
/// and exact round-tripping. Encoding is little-endian, so a value reduced
/// over TCP is bit-identical to the same value reduced in process — the
/// property the differential suite asserts.
pub trait WireElem: Clone + Send + 'static {
    /// Encoded width in bytes.
    const BYTES: usize;
    /// Appends this element's encoding to `out`.
    fn write_to(&self, out: &mut Vec<u8>);
    /// Decodes one element from exactly [`WireElem::BYTES`] bytes.
    fn read_from(bytes: &[u8]) -> Self;
}

impl WireElem for f32 {
    const BYTES: usize = 4;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_from(bytes: &[u8]) -> Self {
        f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
    }
}

impl WireElem for u32 {
    const BYTES: usize = 4;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_from(bytes: &[u8]) -> Self {
        u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
    }
}

/// Encodes a slice of elements into a contiguous little-endian payload.
pub fn encode_elems<T: WireElem>(data: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * T::BYTES);
    for v in data {
        v.write_to(&mut out);
    }
    out
}

/// Encodes into a caller-owned buffer (cleared first, capacity reused) —
/// the zero-allocation counterpart of [`encode_elems`] used by the mesh's
/// persistent send scratch (ISSUE 9).
pub fn encode_elems_into<T: WireElem>(data: &[T], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(data.len() * T::BYTES);
    for v in data {
        v.write_to(out);
    }
}

/// Decodes a payload produced by [`encode_elems`]. A length that is not a
/// multiple of the element width is a framing bug on `peer`'s side.
pub fn decode_elems<T: WireElem>(bytes: &[u8], peer: usize) -> Result<Vec<T>, CollectiveError> {
    if !bytes.len().is_multiple_of(T::BYTES) {
        return Err(CollectiveError::Protocol {
            peer,
            detail: format!(
                "payload of {} bytes is not a multiple of element width {}",
                bytes.len(),
                T::BYTES
            ),
        });
    }
    Ok(bytes.chunks_exact(T::BYTES).map(T::read_from).collect())
}

/// Decodes a payload produced by [`encode_elems`] directly into `out` —
/// no owned `Vec` materialized. The payload must hold *exactly*
/// `out.len()` elements; a width mismatch or element-count mismatch is a
/// framing bug on `peer`'s side and surfaces as a typed protocol error.
pub fn decode_elems_into<T: WireElem>(
    bytes: &[u8],
    out: &mut [T],
    peer: usize,
) -> Result<(), CollectiveError> {
    if !bytes.len().is_multiple_of(T::BYTES) {
        return Err(CollectiveError::Protocol {
            peer,
            detail: format!(
                "payload of {} bytes is not a multiple of element width {}",
                bytes.len(),
                T::BYTES
            ),
        });
    }
    let elems = bytes.len() / T::BYTES;
    if elems != out.len() {
        return Err(CollectiveError::Protocol {
            peer,
            detail: format!("expected {} elements, peer sent {elems}", out.len()),
        });
    }
    for (slot, chunk) in out.iter_mut().zip(bytes.chunks_exact(T::BYTES)) {
        *slot = T::read_from(chunk);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Framed stream
// ---------------------------------------------------------------------------

/// Why a frame read ended without a frame.
#[derive(Debug)]
pub enum RecvFail {
    /// The peer closed the connection (process exit, SIGKILL, reset).
    Closed,
    /// Nothing (or an incomplete frame) arrived within the deadline.
    TimedOut,
    /// The peer sent bytes that cannot be a frame.
    Malformed(String),
}

/// A `TcpStream` carrying `u32`-length-prefixed frames, with a read-side
/// reassembly buffer so bounded reads never lose partial frames.
pub struct FramedStream {
    stream: TcpStream,
    rbuf: Vec<u8>,
}

impl FramedStream {
    pub fn new(stream: TcpStream) -> FramedStream {
        let _ = stream.set_nodelay(true);
        FramedStream {
            stream,
            rbuf: Vec::new(),
        }
    }

    /// Writes one frame as a vectored `[header, payload]` gather write —
    /// the payload is never copied into a staging buffer (ISSUE 9 zero-copy
    /// framing). Partial writes resume at the exact byte offset across the
    /// logical `header ++ payload` sequence, so a short kernel write can
    /// never tear a frame.
    pub fn send_frame(&mut self, payload: &[u8]) -> std::io::Result<()> {
        use std::io::IoSlice;
        let header = (payload.len() as u32).to_le_bytes();
        let total = header.len() + payload.len();
        let mut done = 0usize;
        while done < total {
            let wrote = if done < header.len() {
                let bufs = [IoSlice::new(&header[done..]), IoSlice::new(payload)];
                self.stream.write_vectored(&bufs)
            } else {
                self.stream.write(&payload[done - header.len()..])
            };
            match wrote {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes mid-frame",
                    ))
                }
                Ok(k) => done += k,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Length of the complete frame at the head of the reassembly buffer,
    /// if one has fully arrived. Shared validation for the owned and
    /// in-place receive paths.
    fn peek_frame_len(&self) -> Result<Option<usize>, RecvFail> {
        if self.rbuf.len() < 4 {
            return Ok(None);
        }
        let len =
            u32::from_le_bytes([self.rbuf[0], self.rbuf[1], self.rbuf[2], self.rbuf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(RecvFail::Malformed(format!(
                "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte bound"
            )));
        }
        if self.rbuf.len() < 4 + len {
            return Ok(None);
        }
        Ok(Some(len))
    }

    /// Pops a complete frame from the reassembly buffer, if one is there.
    pub fn pop_frame(&mut self) -> Result<Option<Vec<u8>>, RecvFail> {
        match self.peek_frame_len()? {
            None => Ok(None),
            Some(len) => {
                let payload = self.rbuf[4..4 + len].to_vec();
                self.rbuf.drain(..4 + len);
                Ok(Some(payload))
            }
        }
    }

    /// Blocks for up to `deadline` assembling one frame.
    pub fn recv_frame(&mut self, deadline: Duration) -> Result<Vec<u8>, RecvFail> {
        self.recv_frame_with(deadline, |payload| payload.to_vec())
    }

    /// Blocks for up to `deadline` assembling one frame, then hands its
    /// payload to `consume` *in place* in the reassembly buffer — the
    /// zero-allocation receive path (ISSUE 9): the payload bytes are
    /// decoded where they landed and drained afterwards, never copied into
    /// an owned `Vec`.
    pub fn recv_frame_with<R>(
        &mut self,
        deadline: Duration,
        consume: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, RecvFail> {
        let t0 = Instant::now();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some(len) = self.peek_frame_len()? {
                let out = consume(&self.rbuf[4..4 + len]);
                self.rbuf.drain(..4 + len);
                return Ok(out);
            }
            let remaining = deadline
                .checked_sub(t0.elapsed())
                .ok_or(RecvFail::TimedOut)?;
            // recv(2) timeouts of zero mean "block forever"; clamp up.
            let _ = self
                .stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))));
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(RecvFail::Closed),
                Ok(k) => self.rbuf.extend_from_slice(&chunk[..k]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(RecvFail::TimedOut)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(RecvFail::Closed),
            }
        }
    }

    /// Non-blocking poll: drains whatever bytes are ready, then pops at most
    /// one frame.
    pub fn try_recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvFail> {
        let mut chunk = [0u8; 64 * 1024];
        let _ = self.stream.set_nonblocking(true);
        let drained = loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => break Err(RecvFail::Closed),
                Ok(k) => {
                    self.rbuf.extend_from_slice(&chunk[..k]);
                    if k < chunk.len() {
                        break Ok(());
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break Err(RecvFail::Closed),
            }
        };
        let _ = self.stream.set_nonblocking(false);
        match (self.pop_frame()?, drained) {
            // A buffered frame is still deliverable even off a closed stream.
            (Some(frame), _) => Ok(Some(frame)),
            (None, Err(fail)) => Err(fail),
            (None, Ok(())) => Ok(None),
        }
    }
}

// ---------------------------------------------------------------------------
// Mesh
// ---------------------------------------------------------------------------

/// Default bound on blocking mesh receives.
pub const DEFAULT_TCP_RECV_DEADLINE: Duration = Duration::from_secs(30);

/// Default pipelining chunk (bytes): large messages are streamed through
/// the collective bodies in pieces of at most this size so reduce compute
/// overlaps wire transfer. Overridden by `GCS_TCP_CHUNK`.
pub const DEFAULT_TCP_CHUNK_BYTES: usize = 64 * 1024;

/// Parses a positive integer environment knob; unset/garbage → `None`.
fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&v| v > 0)
}

/// Best-effort `SO_SNDBUF`/`SO_RCVBUF` sizing from the
/// `GCS_TCP_SNDBUF`/`GCS_TCP_RCVBUF` knobs (values in bytes; the kernel
/// doubles and clamps them). std's `TcpStream` exposes no setter and the
/// tree is dependency-free, so on Linux this goes through a direct
/// `setsockopt(2)` declaration; elsewhere it is a no-op and the kernel
/// defaults stand.
fn apply_sock_bufs(stream: &TcpStream, sndbuf: Option<usize>, rcvbuf: Option<usize>) {
    #[cfg(target_os = "linux")]
    {
        use std::os::fd::AsRawFd;
        const SOL_SOCKET: i32 = 1;
        const SO_SNDBUF: i32 = 7;
        const SO_RCVBUF: i32 = 8;
        extern "C" {
            fn setsockopt(
                fd: i32,
                level: i32,
                optname: i32,
                optval: *const core::ffi::c_void,
                optlen: u32,
            ) -> i32;
        }
        let set = |opt: i32, bytes: usize| {
            let v = bytes.min(i32::MAX as usize) as i32;
            // Failure just leaves the kernel default — never fatal.
            let _ = unsafe {
                setsockopt(
                    stream.as_raw_fd(),
                    SOL_SOCKET,
                    opt,
                    (&v as *const i32).cast(),
                    core::mem::size_of::<i32>() as u32,
                )
            };
        };
        if let Some(b) = sndbuf {
            set(SO_SNDBUF, b);
        }
        if let Some(b) = rcvbuf {
            set(SO_RCVBUF, b);
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (stream, sndbuf, rcvbuf);
    }
}

/// The connection-per-directed-link TCP fabric of one worker for one
/// membership epoch: `out[j]` carries `rank → j` traffic, `inn[j]` carries
/// `j → rank`. Byte-level send/recv lives here so higher layers (the typed
/// [`TcpLinks`] adapter, `gcs-faults`' frame carrier) share one socket
/// discipline.
pub struct TcpMesh {
    rank: usize,
    n: usize,
    epoch: u64,
    out: Vec<Option<FramedStream>>,
    inn: Vec<Option<FramedStream>>,
    recv_deadline: Duration,
    /// Pipelining chunk bound (bytes) advertised to the collective bodies;
    /// read once from `GCS_TCP_CHUNK` at build (env lookups allocate, so
    /// they are banned from the steady-state path).
    chunk_bytes: usize,
    /// Persistent send-side encode scratch: every typed send encodes into
    /// this buffer, so the steady state never touches the heap (ISSUE 9).
    sbuf: Vec<u8>,
}

impl TcpMesh {
    /// Dials every peer and accepts every peer's dial, validating the
    /// `(epoch, from)` handshake on accepted connections. `peers[rank]` is
    /// this worker's own (ignored) address; `listener` must already be the
    /// bound listener whose address was advertised — binding *before*
    /// advertising is what makes the dial/accept rendezvous deadlock-free.
    pub fn connect(
        listener: &TcpListener,
        rank: usize,
        n: usize,
        epoch: u64,
        peers: &[SocketAddr],
        build_deadline: Duration,
    ) -> Result<TcpMesh, CollectiveError> {
        assert_eq!(peers.len(), n, "mesh: roster size mismatch");
        assert!(rank < n, "mesh: rank out of range");
        let t0 = Instant::now();
        // Environment knobs are read once here, never on the data path.
        let sndbuf = env_usize("GCS_TCP_SNDBUF");
        let rcvbuf = env_usize("GCS_TCP_RCVBUF");
        let chunk_bytes = env_usize("GCS_TCP_CHUNK").unwrap_or(DEFAULT_TCP_CHUNK_BYTES);
        let mut out: Vec<Option<FramedStream>> = (0..n).map(|_| None).collect();
        let mut inn: Vec<Option<FramedStream>> = (0..n).map(|_| None).collect();

        // Dial out-links. Peers registered only after binding their
        // listeners, so refusals are transient (SYN backlog churn at worst);
        // retry inside the build deadline.
        for (peer, addr) in peers.iter().enumerate() {
            if peer == rank {
                continue;
            }
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(_) if t0.elapsed() < build_deadline => std::thread::sleep(POLL_SLEEP),
                    Err(_) => return Err(CollectiveError::PeerLost { peer }),
                }
            };
            apply_sock_bufs(&stream, sndbuf, rcvbuf);
            let mut fs = FramedStream::new(stream);
            let mut hello = [0u8; 16];
            hello[..4].copy_from_slice(&MESH_MAGIC.to_le_bytes());
            hello[4..12].copy_from_slice(&epoch.to_le_bytes());
            hello[12..16].copy_from_slice(&(rank as u32).to_le_bytes());
            fs.stream
                .write_all(&hello)
                .map_err(|_| CollectiveError::PeerLost { peer })?;
            out[peer] = Some(fs);
        }

        // Accept in-links until every peer has handshaken for *this* epoch.
        // Stale connections (previous epoch's mesh, or a peer's abandoned
        // build attempt) are dropped on sight.
        listener
            .set_nonblocking(true)
            .map_err(|e| CollectiveError::Protocol {
                peer: rank,
                detail: format!("listener nonblocking: {e}"),
            })?;
        let accept_result = (|| loop {
            if inn
                .iter()
                .enumerate()
                .all(|(p, s)| p == rank || s.is_some())
            {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let mut hello = [0u8; 16];
                    let mut s = stream;
                    if s.read_exact(&mut hello).is_err() {
                        continue;
                    }
                    let magic = u32::from_le_bytes([hello[0], hello[1], hello[2], hello[3]]);
                    let peer_epoch = u64::from_le_bytes([
                        hello[4], hello[5], hello[6], hello[7], hello[8], hello[9], hello[10],
                        hello[11],
                    ]);
                    let from =
                        u32::from_le_bytes([hello[12], hello[13], hello[14], hello[15]]) as usize;
                    if magic != MESH_MAGIC || peer_epoch != epoch || from >= n || from == rank {
                        continue; // stale or bogus; drop it
                    }
                    let _ = s.set_read_timeout(None);
                    apply_sock_bufs(&s, sndbuf, rcvbuf);
                    inn[from] = Some(FramedStream::new(s));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if t0.elapsed() >= build_deadline {
                        let missing = inn
                            .iter()
                            .enumerate()
                            .find(|(p, s)| *p != rank && s.is_none())
                            .map(|(p, _)| p)
                            .unwrap_or((rank + 1) % n);
                        return Err(CollectiveError::Timeout {
                            peer: missing,
                            attempts: 1,
                        });
                    }
                    std::thread::sleep(POLL_SLEEP);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(CollectiveError::Protocol {
                        peer: rank,
                        detail: format!("accept: {e}"),
                    })
                }
            }
        })();
        let _ = listener.set_nonblocking(false);
        accept_result?;

        Ok(TcpMesh {
            rank,
            n,
            epoch,
            out,
            inn,
            recv_deadline: DEFAULT_TCP_RECV_DEADLINE,
            chunk_bytes,
            sbuf: Vec::new(),
        })
    }

    /// This worker's rank in the current epoch.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Cluster size in the current epoch.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Membership epoch this mesh was built for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bounds blocking receives (see [`TcpMesh::recv_raw`]).
    pub fn set_recv_deadline(&mut self, deadline: Duration) {
        self.recv_deadline = deadline;
    }

    /// The deadline currently bounding blocking receives.
    pub fn recv_deadline(&self) -> Duration {
        self.recv_deadline
    }

    /// Pipelining chunk bound (bytes) the collective bodies will stream
    /// large messages at over this mesh.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Overrides the pipelining chunk bound. Normally set once from
    /// `GCS_TCP_CHUNK` at build; tests and benches use this to force tiny
    /// chunks (chunking-boundary coverage) or effectively disable chunking
    /// (stop-and-wait baselines). Every rank must use the same value — both
    /// ends of a link derive the frame count from it.
    pub fn set_chunk_bytes(&mut self, bytes: usize) {
        self.chunk_bytes = bytes.max(1);
    }

    /// Typed send: encodes `data` into the mesh's persistent scratch and
    /// writes one vectored frame. At steady state (scratch warm) this does
    /// not allocate.
    pub fn send_elems<T: WireElem>(
        &mut self,
        peer: usize,
        data: &[T],
    ) -> Result<(), CollectiveError> {
        // Take the scratch to sidestep the self-borrow; a Vec move is three
        // words, no heap traffic.
        let mut sbuf = std::mem::take(&mut self.sbuf);
        encode_elems_into(data, &mut sbuf);
        let res = self.send_raw(peer, &sbuf);
        self.sbuf = sbuf;
        res
    }

    /// Typed receive straight into `out`: the frame payload is decoded in
    /// place in the link's reassembly buffer — no owned `Vec`, no copy
    /// beyond the element decode itself.
    pub fn recv_elems_into<T: WireElem>(
        &mut self,
        peer: usize,
        out: &mut [T],
    ) -> Result<(), CollectiveError> {
        let deadline = self.recv_deadline;
        match self
            .in_link(peer)
            .recv_frame_with(deadline, |payload| decode_elems_into(payload, out, peer))
        {
            Ok(decoded) => decoded,
            Err(RecvFail::Closed) => Err(CollectiveError::PeerLost { peer }),
            Err(RecvFail::TimedOut) => Err(CollectiveError::Timeout { peer, attempts: 1 }),
            Err(RecvFail::Malformed(detail)) => Err(CollectiveError::Protocol { peer, detail }),
        }
    }

    fn out_link(&mut self, peer: usize) -> &mut FramedStream {
        assert!(
            peer != self.rank && peer < self.n,
            "mesh send: bad peer {peer}"
        );
        self.out[peer].as_mut().expect("out link present")
    }

    fn in_link(&mut self, peer: usize) -> &mut FramedStream {
        assert!(
            peer != self.rank && peer < self.n,
            "mesh recv: bad peer {peer}"
        );
        self.inn[peer].as_mut().expect("in link present")
    }

    /// Sends one raw frame to `peer`. A write failure means the peer's
    /// process is gone (or its socket reset): [`CollectiveError::PeerLost`].
    pub fn send_raw(&mut self, peer: usize, payload: &[u8]) -> Result<(), CollectiveError> {
        let wire = 4 + payload.len();
        self.out_link(peer)
            .send_frame(payload)
            .map_err(|_| CollectiveError::PeerLost { peer })?;
        gcs_metrics::counter_add("transport/tcp/wire_bytes_total", wire as f64);
        Ok(())
    }

    /// Receives one raw frame from `peer`, blocking up to `deadline`.
    pub fn recv_raw_timeout(
        &mut self,
        peer: usize,
        deadline: Duration,
    ) -> Result<Vec<u8>, CollectiveError> {
        match self.in_link(peer).recv_frame(deadline) {
            Ok(frame) => Ok(frame),
            Err(RecvFail::Closed) => Err(CollectiveError::PeerLost { peer }),
            Err(RecvFail::TimedOut) => Err(CollectiveError::Timeout { peer, attempts: 1 }),
            Err(RecvFail::Malformed(detail)) => Err(CollectiveError::Protocol { peer, detail }),
        }
    }

    /// Receives one raw frame from `peer`, blocking up to the mesh's
    /// configured receive deadline.
    pub fn recv_raw(&mut self, peer: usize) -> Result<Vec<u8>, CollectiveError> {
        let deadline = self.recv_deadline;
        self.recv_raw_timeout(peer, deadline)
    }

    /// Non-blocking receive: `Ok(None)` when no complete frame from `peer`
    /// is queued.
    pub fn try_recv_raw(&mut self, peer: usize) -> Result<Option<Vec<u8>>, CollectiveError> {
        match self.in_link(peer).try_recv_frame() {
            Ok(frame) => Ok(frame),
            Err(RecvFail::Closed) => Err(CollectiveError::PeerLost { peer }),
            Err(RecvFail::TimedOut) => Ok(None),
            Err(RecvFail::Malformed(detail)) => Err(CollectiveError::Protocol { peer, detail }),
        }
    }
}

// ---------------------------------------------------------------------------
// MessageLinks adapter
// ---------------------------------------------------------------------------

/// [`MessageLinks`] over a [`TcpMesh`]: the adapter that lets
/// `ring_all_reduce_worker` & friends run over sockets unchanged. Borrows
/// the mesh so elastic callers ([`FleetWorker`]) can keep the mesh across
/// rounds and hand out fresh typed views.
pub struct TcpLinks<'m, T: WireElem> {
    mesh: &'m mut TcpMesh,
    _elem: PhantomData<T>,
}

impl<'m, T: WireElem> TcpLinks<'m, T> {
    /// Wraps a mesh in a typed links view.
    pub fn new(mesh: &'m mut TcpMesh) -> TcpLinks<'m, T> {
        TcpLinks {
            mesh,
            _elem: PhantomData,
        }
    }
}

impl<T: WireElem> MessageLinks<T> for TcpLinks<'_, T> {
    fn rank(&self) -> usize {
        self.mesh.rank()
    }

    fn n(&self) -> usize {
        self.mesh.n()
    }

    fn send(&mut self, peer: usize, data: Vec<T>) -> Result<(), CollectiveError> {
        self.mesh.send_elems(peer, &data)
    }

    fn recv(&mut self, peer: usize) -> Result<Vec<T>, CollectiveError> {
        let payload = self.mesh.recv_raw(peer)?;
        decode_elems(&payload, peer)
    }

    fn send_slice(&mut self, peer: usize, data: &[T]) -> Result<(), CollectiveError>
    where
        T: Clone,
    {
        self.mesh.send_elems(peer, data)
    }

    fn recv_into(&mut self, peer: usize, out: &mut [T]) -> Result<(), CollectiveError>
    where
        T: Clone,
    {
        self.mesh.recv_elems_into(peer, out)
    }

    fn chunk_elems(&self) -> usize {
        (self.mesh.chunk_bytes() / T::BYTES).max(1)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A registered worker, as the registry sees it.
struct Member {
    addr: String,
    /// `Some(train_round)` once the worker has sent `BEGIN` for the next
    /// barrier.
    waiting: Option<u64>,
    /// The `ROUND` line computed for this worker at the last release, not
    /// yet picked up by its connection handler.
    reply: Option<String>,
}

struct RegState {
    next_id: u64,
    members: BTreeMap<u64, Member>,
    epoch: u64,
    round: u64,
    last_roster: Vec<u64>,
    /// The very first barrier waits for at least this many workers, so a
    /// fast founder cannot form a cluster of one before the rest of the
    /// initial fleet has joined. Later barriers are purely membership-driven
    /// (crashes may legitimately shrink the fleet below this).
    min_first: usize,
}

impl RegState {
    /// Releases the barrier if every live member is waiting at it.
    fn try_release(&mut self) {
        if self.members.is_empty() || !self.members.values().all(|m| m.waiting.is_some()) {
            return;
        }
        if self.epoch == 0 && self.members.len() < self.min_first {
            return;
        }
        let roster: Vec<u64> = self.members.keys().copied().collect();
        if roster != self.last_roster {
            self.epoch += 1;
            self.last_roster = roster.clone();
        }
        // Survivors agree on the training clock; a fresh joiner offers 0 and
        // adopts theirs.
        self.round = self
            .members
            .values()
            .filter_map(|m| m.waiting)
            .max()
            .unwrap_or(0);
        let n = roster.len();
        let addrs: Vec<String> = self.members.values().map(|m| m.addr.clone()).collect();
        for (rank, id) in roster.iter().enumerate() {
            let m = self.members.get_mut(id).expect("roster member exists");
            m.waiting = None;
            m.reply = Some(format!(
                "ROUND {} {} {} {} {}",
                self.round,
                self.epoch,
                rank,
                n,
                addrs.join(" ")
            ));
        }
    }
}

/// The rendezvous/membership service: assigns worker ids, runs the
/// per-round barrier, and renumbers ranks over the live membership. Runs
/// accept + per-connection handler threads in-process; the fleet example
/// and tests host it in the parent process of the worker fleet.
pub struct Registry {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<(Mutex<RegState>, Condvar)>,
}

impl Registry {
    /// Binds a listener on an ephemeral localhost port and starts serving.
    /// The first barrier waits for at least `min_workers` joiners (later
    /// barriers track live membership, however small).
    pub fn spawn(min_workers: usize) -> std::io::Result<Registry> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new((
            Mutex::new(RegState {
                next_id: 0,
                members: BTreeMap::new(),
                epoch: 0,
                round: 0,
                last_roster: Vec::new(),
                min_first: min_workers,
            }),
            Condvar::new(),
        ));
        {
            let shutdown = Arc::clone(&shutdown);
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let shutdown = Arc::clone(&shutdown);
                            let state = Arc::clone(&state);
                            std::thread::spawn(move || {
                                Registry::serve_conn(stream, &state, &shutdown);
                            });
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_SLEEP);
                        }
                        Err(_) => break,
                    }
                }
            });
        }
        Ok(Registry {
            addr,
            shutdown,
            state,
        })
    }

    /// The address workers dial to join.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current number of live registered workers (observability/tests).
    pub fn live_workers(&self) -> usize {
        self.state.0.lock().expect("registry state").members.len()
    }

    /// Stops accepting and unblocks handler threads.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.state.1.notify_all();
    }

    fn serve_conn(
        stream: TcpStream,
        state: &Arc<(Mutex<RegState>, Condvar)>,
        shutdown: &Arc<AtomicBool>,
    ) {
        let mut conn = LineConn::new(stream);
        let (lock, cvar) = (&state.0, &state.1);
        // First line must be JOIN.
        let id = match conn.read_line_bounded(Duration::from_secs(10), shutdown) {
            Ok(line) if line.starts_with("JOIN ") => {
                let addr = line[5..].trim().to_string();
                let mut st = lock.lock().expect("registry state");
                let id = st.next_id;
                st.next_id += 1;
                st.members.insert(
                    id,
                    Member {
                        addr,
                        waiting: None,
                        reply: None,
                    },
                );
                gcs_metrics::counter_add("transport/tcp/joins_total", 1.0);
                cvar.notify_all();
                drop(st);
                if conn.write_line(&format!("ID {id}")).is_err() {
                    Registry::drop_member(state, id);
                    return;
                }
                id
            }
            _ => return,
        };
        loop {
            let line = match conn.read_line_bounded(Duration::from_secs(3600), shutdown) {
                Ok(line) => line,
                Err(_) => {
                    // EOF, reset or shutdown: the worker is gone. Remove it
                    // and re-check the barrier — survivors must not wait on
                    // a corpse.
                    Registry::drop_member(state, id);
                    return;
                }
            };
            if let Some(round) = line.strip_prefix("BEGIN ") {
                let train_round: u64 = round.trim().parse().unwrap_or(0);
                let mut st = lock.lock().expect("registry state");
                if let Some(m) = st.members.get_mut(&id) {
                    m.waiting = Some(train_round);
                }
                st.try_release();
                cvar.notify_all();
                // Wait for this member's reply to be computed.
                let reply = loop {
                    if shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    match st.members.get_mut(&id) {
                        None => return, // removed concurrently
                        Some(m) => {
                            if let Some(r) = m.reply.take() {
                                break r;
                            }
                        }
                    }
                    let (next, _) = cvar
                        .wait_timeout(st, Duration::from_millis(50))
                        .expect("registry state");
                    st = next;
                };
                drop(st);
                if conn.write_line(&reply).is_err() {
                    // Died between BEGIN and the reply; the roster heals at
                    // the next barrier.
                    Registry::drop_member(state, id);
                    return;
                }
            } else if line.trim() == "LEAVE" {
                Registry::drop_member(state, id);
                let _ = conn.write_line("BYE");
                return;
            }
            // Unknown lines are ignored (forward compatibility).
        }
    }

    fn drop_member(state: &Arc<(Mutex<RegState>, Condvar)>, id: u64) {
        let mut st = state.0.lock().expect("registry state");
        st.members.remove(&id);
        st.try_release();
        state.1.notify_all();
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Line-oriented connection (registry protocol carrier)
// ---------------------------------------------------------------------------

/// Newline-delimited text over a `TcpStream`, with bounded reads that keep
/// partial lines across timeouts (no `BufReader`, whose buffer state is
/// unspecified after an errored read).
struct LineConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    /// Persistent line-assembly buffer: `write_line` reuses its capacity
    /// instead of building a fresh `Vec` per protocol line (ISSUE 9
    /// satellite — the registry handles every barrier of every worker, so
    /// per-line allocations compound).
    wbuf: Vec<u8>,
}

impl LineConn {
    fn new(stream: TcpStream) -> LineConn {
        let _ = stream.set_nodelay(true);
        LineConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
        }
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.wbuf.clear();
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
        self.stream.write_all(&self.wbuf)
    }

    fn pop_line(&mut self) -> Option<String> {
        let nl = self.rbuf.iter().position(|&b| b == b'\n')?;
        let line = String::from_utf8_lossy(&self.rbuf[..nl]).into_owned();
        self.rbuf.drain(..=nl);
        Some(line)
    }

    /// Reads one line, blocking up to `deadline` (and aborting early if
    /// `shutdown` flips). Errors mean the connection is unusable: EOF,
    /// reset, deadline exceeded, or shutdown.
    fn read_line_bounded(
        &mut self,
        deadline: Duration,
        shutdown: &AtomicBool,
    ) -> Result<String, std::io::Error> {
        let t0 = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(line) = self.pop_line() {
                return Ok(line);
            }
            if shutdown.load(Ordering::Relaxed) || t0.elapsed() >= deadline {
                return Err(std::io::Error::new(ErrorKind::TimedOut, "line deadline"));
            }
            let _ = self
                .stream
                .set_read_timeout(Some(Duration::from_millis(100)));
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "peer closed")),
                Ok(k) => self.rbuf.extend_from_slice(&chunk[..k]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet worker (registry client + elastic mesh)
// ---------------------------------------------------------------------------

/// Deadlines governing a [`FleetWorker`]'s patience. The defaults suit
/// multi-process runs on a loaded machine; tests shrink them to keep
/// failure cases fast.
#[derive(Clone, Copy, Debug)]
pub struct TcpTimeouts {
    /// How long to wait at the registry barrier for the rest of the fleet.
    pub barrier: Duration,
    /// How long a mesh build (dial + accept all links) may take.
    pub mesh_build: Duration,
    /// Bound on each blocking mesh receive during a collective.
    pub recv: Duration,
}

impl Default for TcpTimeouts {
    fn default() -> TcpTimeouts {
        TcpTimeouts {
            barrier: Duration::from_secs(120),
            mesh_build: Duration::from_secs(10),
            recv: Duration::from_secs(10),
        }
    }
}

impl TcpTimeouts {
    /// Tight deadlines for in-process tests.
    pub fn fast_test() -> TcpTimeouts {
        TcpTimeouts {
            barrier: Duration::from_secs(20),
            mesh_build: Duration::from_secs(5),
            recv: Duration::from_secs(5),
        }
    }
}

/// What the registry told this worker about the round it may now run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundStart {
    /// Training-clock round agreed at the barrier (max over participants).
    pub round: u64,
    /// Membership epoch; changes whenever the live member set changes.
    pub epoch: u64,
    /// This worker's dense rank within the epoch's roster.
    pub rank: usize,
    /// Live cluster size for this epoch.
    pub n: usize,
    /// True when the mesh was (re)built for this round — i.e. the epoch
    /// changed, so ranks may have moved and state sync may be needed.
    pub rebuilt: bool,
}

/// One elastic fleet participant: joins via the registry, then alternates
/// barrier (`next_round`) and collective work over the epoch's [`TcpMesh`].
/// Crash recovery and mid-run joins both reduce to "the epoch changed,
/// rebuild the mesh, ranks are reassigned" — the generalization of PR 5's
/// survivor renumbering.
pub struct FleetWorker {
    conn: LineConn,
    listener: TcpListener,
    shutdown: AtomicBool, // never set; satisfies the bounded-read interface
    /// Registry-assigned stable id (rank changes across epochs; this never).
    pub worker_id: u64,
    timeouts: TcpTimeouts,
    mesh: Option<TcpMesh>,
    last_epoch: u64,
}

impl FleetWorker {
    /// Binds this worker's mesh listener, then registers with the registry.
    /// The bind-before-register order guarantees every address a `ROUND`
    /// roster advertises is already accepting connections.
    pub fn join(
        registry: SocketAddr,
        timeouts: TcpTimeouts,
    ) -> Result<FleetWorker, CollectiveError> {
        let fail = |detail: String| CollectiveError::Protocol { peer: 0, detail };
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| fail(format!("bind listener: {e}")))?;
        let listen_addr = listener
            .local_addr()
            .map_err(|e| fail(format!("listener addr: {e}")))?;
        let stream =
            TcpStream::connect(registry).map_err(|e| fail(format!("dial registry: {e}")))?;
        let mut conn = LineConn::new(stream);
        conn.write_line(&format!("JOIN {listen_addr}"))
            .map_err(|e| fail(format!("send JOIN: {e}")))?;
        let shutdown = AtomicBool::new(false);
        let reply = conn
            .read_line_bounded(timeouts.barrier, &shutdown)
            .map_err(|e| fail(format!("read ID: {e}")))?;
        let worker_id = reply
            .strip_prefix("ID ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| fail(format!("bad ID reply {reply:?}")))?;
        Ok(FleetWorker {
            conn,
            listener,
            shutdown,
            worker_id,
            timeouts,
            mesh: None,
            last_epoch: 0,
        })
    }

    /// Barriers with the fleet for the next round, rebuilding the mesh when
    /// membership changed. Mesh-build failures (a peer died between the
    /// barrier release and the build) re-enter the barrier a bounded number
    /// of times — the registry notices the death and the next release
    /// excludes it.
    pub fn next_round(&mut self, train_round: u64) -> Result<RoundStart, CollectiveError> {
        let fail = |detail: String| CollectiveError::Protocol { peer: 0, detail };
        let mut last_err = None;
        for _attempt in 0..10 {
            self.conn
                .write_line(&format!("BEGIN {train_round}"))
                .map_err(|e| fail(format!("send BEGIN: {e}")))?;
            let reply = self
                .conn
                .read_line_bounded(self.timeouts.barrier, &self.shutdown)
                .map_err(|e| fail(format!("read ROUND: {e}")))?;
            let mut parts = reply.split_whitespace();
            let (round, epoch, rank, n) = match (
                parts.next(),
                parts.next().and_then(|s| s.parse::<u64>().ok()),
                parts.next().and_then(|s| s.parse::<u64>().ok()),
                parts.next().and_then(|s| s.parse::<usize>().ok()),
                parts.next().and_then(|s| s.parse::<usize>().ok()),
            ) {
                (Some("ROUND"), Some(round), Some(epoch), Some(rank), Some(n)) => {
                    (round, epoch, rank, n)
                }
                _ => return Err(fail(format!("bad ROUND reply {reply:?}"))),
            };
            let addrs: Result<Vec<SocketAddr>, _> = parts.map(|s| s.parse()).collect();
            let addrs = addrs.map_err(|e| fail(format!("bad roster addr: {e}")))?;
            if addrs.len() != n || rank >= n {
                return Err(fail(format!("inconsistent ROUND reply {reply:?}")));
            }
            if epoch == self.last_epoch && self.mesh.is_some() {
                return Ok(RoundStart {
                    round,
                    epoch,
                    rank,
                    n,
                    rebuilt: false,
                });
            }
            let rebuilt_before = self.mesh.take().is_some();
            match TcpMesh::connect(
                &self.listener,
                rank,
                n,
                epoch,
                &addrs,
                self.timeouts.mesh_build,
            ) {
                Ok(mut mesh) => {
                    mesh.set_recv_deadline(self.timeouts.recv);
                    self.mesh = Some(mesh);
                    self.last_epoch = epoch;
                    if rebuilt_before {
                        gcs_metrics::counter_add("transport/tcp/reconnects_total", 1.0);
                    }
                    return Ok(RoundStart {
                        round,
                        epoch,
                        rank,
                        n,
                        rebuilt: true,
                    });
                }
                Err(e) => {
                    // A roster member vanished mid-build; re-barrier.
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or(CollectiveError::Timeout {
            peer: 0,
            attempts: 10,
        }))
    }

    /// The current epoch's mesh. Panics if called before a successful
    /// [`FleetWorker::next_round`] (caller bug, not a fabric condition).
    pub fn mesh_mut(&mut self) -> &mut TcpMesh {
        self.mesh.as_mut().expect("next_round before mesh access")
    }

    /// Typed links over the current mesh for the collective worker bodies.
    pub fn links<T: WireElem>(&mut self) -> TcpLinks<'_, T> {
        TcpLinks::new(self.mesh_mut())
    }

    /// Gracefully deregisters (peers renumber at the next barrier without a
    /// timeout hiccup, unlike a crash).
    pub fn leave(mut self) -> Result<(), CollectiveError> {
        self.conn
            .write_line("LEAVE")
            .map_err(|e| CollectiveError::Protocol {
                peer: 0,
                detail: format!("send LEAVE: {e}"),
            })?;
        let _ = self
            .conn
            .read_line_bounded(Duration::from_secs(2), &self.shutdown);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// In-process cluster harness
// ---------------------------------------------------------------------------

/// In-process analogue of [`crate::transport::ThreadedCluster`] over real
/// sockets: a registry plus one worker *thread* per rank, each with its own
/// listener, mesh and [`TcpLinks`]. The fast path for differential tests
/// and benches; the multi-process story lives in the `gcs_tcp_worker`
/// binary and `tests/tcp_fleet.rs`.
pub struct TcpCluster;

impl TcpCluster {
    /// Runs `body(rank, links)` on `n` socket-connected worker threads and
    /// returns the outputs in rank order.
    ///
    /// # Panics
    /// Panics if the registry cannot bind, a worker fails rendezvous, or a
    /// worker thread panics.
    pub fn run<T, R, F>(n: usize, body: F) -> Vec<R>
    where
        T: WireElem,
        R: Send + 'static,
        F: Fn(usize, &mut TcpLinks<'_, T>) -> R + Send + Sync + 'static,
    {
        assert!(n > 0, "TcpCluster: n must be positive");
        let registry = Registry::spawn(n).expect("registry bind");
        let addr = registry.addr();
        let body = Arc::new(body);
        let results: Arc<Mutex<Vec<Option<R>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let mut handles = Vec::new();
        for _ in 0..n {
            let body = Arc::clone(&body);
            let results = Arc::clone(&results);
            handles.push(std::thread::spawn(move || {
                let mut worker =
                    FleetWorker::join(addr, TcpTimeouts::fast_test()).expect("worker join");
                let rs = worker.next_round(0).expect("rendezvous round");
                assert_eq!(rs.n, n, "cluster formed with wrong size");
                let mut links = worker.links::<T>();
                let out = body(rs.rank, &mut links);
                results.lock().expect("results mutex")[rs.rank] = Some(out);
                worker.leave().expect("leave");
            }));
        }
        for h in handles {
            h.join().expect("tcp worker thread panicked");
        }
        registry.shutdown();
        Arc::try_unwrap(results)
            .unwrap_or_else(|_| panic!("worker results still shared"))
            .into_inner()
            .expect("results mutex")
            .into_iter()
            .map(|r| r.expect("worker produced no result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::F32Sum;
    use crate::transport::{
        all_gather_worker, broadcast_worker, ring_all_reduce_worker, threaded_ring_all_reduce,
    };

    fn bufs(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|w| (0..len).map(|i| ((w * len + i) as f32).sin()).collect())
            .collect()
    }

    #[test]
    fn wire_roundtrip_is_exact() {
        let vals = vec![0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::MAX, -1e-37];
        let enc = encode_elems(&vals);
        let dec: Vec<f32> = decode_elems(&enc, 0).expect("aligned payload");
        for (a, b) in vals.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_elems::<f32>(&enc[..enc.len() - 1], 3).is_err());
    }

    #[test]
    fn tcp_ring_all_reduce_matches_threaded_bitwise() {
        for n in [2usize, 3, 5] {
            let inputs = bufs(n, 41);
            let (expect, _) =
                threaded_ring_all_reduce(inputs.clone(), F32Sum, 4.0).expect("threaded");
            let inputs = Arc::new(inputs);
            let results = TcpCluster::run(n, move |rank, links: &mut TcpLinks<'_, f32>| {
                ring_all_reduce_worker(links, inputs[rank].clone(), &F32Sum, 4.0)
            });
            for (rank, r) in results.into_iter().enumerate() {
                let (buf, sent, recv) = r.expect("healthy tcp cluster");
                assert_eq!(buf, expect[rank], "n={n} rank={rank}");
                assert!(sent > 0 && recv > 0);
            }
        }
    }

    #[test]
    fn tcp_broadcast_and_all_gather_match_reference() {
        let n = 4;
        let payload: Vec<f32> = (0..17).map(|i| (i as f32).cos()).collect();
        let root_payload = payload.clone();
        let results = TcpCluster::run(n, move |rank, links: &mut TcpLinks<'_, f32>| {
            let buf = if rank == 2 {
                root_payload.clone()
            } else {
                Vec::new()
            };
            broadcast_worker(links, buf, 2, 4.0)
        });
        for r in results {
            assert_eq!(r.expect("broadcast").0, payload);
        }

        let inputs = bufs(n, 6);
        let (reference, _) = crate::ops::all_gather(&inputs, 4.0);
        let inputs = Arc::new(inputs);
        let results = TcpCluster::run(n, move |rank, links: &mut TcpLinks<'_, f32>| {
            all_gather_worker(links, inputs[rank].clone(), 4.0)
        });
        for r in results {
            assert_eq!(r.expect("all-gather").0, reference);
        }
    }

    #[test]
    fn killed_peer_surfaces_typed_error_and_survivors_renumber() {
        let registry = Registry::spawn(3).expect("registry");
        let addr = registry.addr();
        let n = 3;
        let mut handles = Vec::new();
        for _ in 0..n {
            handles.push(std::thread::spawn(move || {
                let mut timeouts = TcpTimeouts::fast_test();
                timeouts.recv = Duration::from_millis(500);
                let mut worker = FleetWorker::join(addr, timeouts).expect("join");
                let rs = worker.next_round(0).expect("round 0");
                if rs.rank == 1 {
                    // Die abruptly: drop everything without LEAVE, like a
                    // SIGKILL (sockets close, registry sees EOF).
                    return (rs.rank, None, 0usize);
                }
                let mut links = worker.links::<f32>();
                let buf: Vec<f32> = (0..16).map(|i| (rs.rank * 16 + i) as f32).collect();
                let err = ring_all_reduce_worker(&mut links, buf, &F32Sum, 4.0)
                    .expect_err("dead peer must surface");
                assert!(err.is_peer_failure(), "unexpected error {err:?}");
                // Re-barrier: the registry must renumber the survivors.
                let rs2 = worker.next_round(1).expect("survivor round");
                assert_eq!(rs2.n, 2, "survivors renumbered to n=2");
                assert!(rs2.rebuilt);
                let mut links = worker.links::<f32>();
                let buf: Vec<f32> = (0..16).map(|i| (rs2.rank * 16 + i) as f32).collect();
                let (out, _, _) =
                    ring_all_reduce_worker(&mut links, buf, &F32Sum, 4.0).expect("survivor ring");
                worker.leave().expect("leave");
                (rs.rank, Some(err), out.len())
            }));
        }
        let mut results: Vec<(usize, Option<CollectiveError>, usize)> = Vec::new();
        for h in handles {
            results.push(h.join().expect("worker thread"));
        }
        registry.shutdown();
        let survivors: Vec<_> = results.iter().filter(|(_, e, _)| e.is_some()).collect();
        assert_eq!(survivors.len(), 2);
        for (_, _, out_len) in survivors {
            assert_eq!(*out_len, 16);
        }
    }

    #[test]
    fn late_joiner_is_admitted_next_round() {
        let registry = Registry::spawn(2).expect("registry");
        let addr = registry.addr();
        // Two founding workers run a round alone, then a third joins.
        let founders: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut w = FleetWorker::join(addr, TcpTimeouts::fast_test()).expect("join");
                    let r0 = w.next_round(0).expect("round 0");
                    assert_eq!(r0.n, 2);
                    (w, r0)
                })
            })
            .collect();
        let mut founders: Vec<_> = founders
            .into_iter()
            .map(|h| h.join().expect("founder"))
            .collect();

        // Register the joiner *before* the founders barrier again, so the
        // admission is deterministic (a JOIN races with BEGINs in general;
        // it simply lands at whichever barrier it precedes).
        let late = FleetWorker::join(addr, TcpTimeouts::fast_test()).expect("join late");
        let joiner = std::thread::spawn(move || {
            let mut w = late;
            let rs = w.next_round(0).expect("joiner round");
            assert_eq!(rs.n, 3, "joiner sees the full fleet");
            assert_eq!(rs.round, 1, "joiner adopts the survivors' clock");
            let mut links = w.links::<f32>();
            let (out, _, _) =
                ring_all_reduce_worker(&mut links, vec![1.0f32; 8], &F32Sum, 4.0).expect("ring");
            w.leave().expect("leave");
            out
        });
        let founder_handles: Vec<_> = founders
            .drain(..)
            .map(|(mut w, _)| {
                std::thread::spawn(move || {
                    let rs = w.next_round(1).expect("round 1");
                    assert_eq!(rs.n, 3, "founder sees the joiner");
                    assert!(rs.rebuilt, "epoch change rebuilds the mesh");
                    let mut links = w.links::<f32>();
                    let (out, _, _) =
                        ring_all_reduce_worker(&mut links, vec![1.0f32; 8], &F32Sum, 4.0)
                            .expect("ring");
                    w.leave().expect("leave");
                    out
                })
            })
            .collect();
        let mut outs = vec![joiner.join().expect("joiner thread")];
        for h in founder_handles {
            outs.push(h.join().expect("founder thread"));
        }
        registry.shutdown();
        for out in outs {
            assert_eq!(out, vec![3.0f32; 8], "n=3 sum of ones");
        }
    }

    /// Connected localhost socket pair for framing-layer tests.
    fn stream_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("dial");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn vectored_writer_frames_survive_boundary_sizes() {
        let (a, b) = stream_pair();
        let mut tx = FramedStream::new(a);
        let mut rx = FramedStream::new(b);
        // Sizes straddling the vectored header/payload split and the
        // reader's 64 KiB drain chunk.
        let sizes = [
            0usize,
            1,
            3,
            4,
            4096,
            64 * 1024 - 4,
            64 * 1024,
            64 * 1024 + 5,
        ];
        for &len in &sizes {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            tx.send_frame(&payload).expect("send");
        }
        for &len in &sizes {
            let got = rx.recv_frame(Duration::from_secs(5)).expect("recv");
            assert_eq!(got.len(), len, "frame length must round-trip");
            assert!(got.iter().enumerate().all(|(i, &v)| v == (i % 251) as u8));
        }
    }

    #[test]
    fn truncated_frame_times_out_then_completes() {
        let (mut raw, b) = stream_pair();
        let mut rx = FramedStream::new(b);
        // Header promises 8 bytes; deliver only 3 — the frame must neither
        // be delivered short nor hang forever.
        raw.write_all(&8u32.to_le_bytes()).expect("header");
        raw.write_all(&[1, 2, 3]).expect("partial payload");
        assert!(matches!(
            rx.recv_frame(Duration::from_millis(50)),
            Err(RecvFail::TimedOut)
        ));
        // The partial bytes stay in the reassembly buffer: completing the
        // frame later delivers the original payload intact.
        raw.write_all(&[4, 5, 6, 7, 8]).expect("rest of payload");
        let got = rx
            .recv_frame(Duration::from_secs(5))
            .expect("completed frame");
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn oversized_frame_length_is_malformed_not_an_allocation() {
        let (mut raw, b) = stream_pair();
        let mut rx = FramedStream::new(b);
        raw.write_all(&u32::MAX.to_le_bytes())
            .expect("bogus header");
        match rx.recv_frame(Duration::from_secs(5)) {
            Err(RecvFail::Malformed(detail)) => {
                assert!(detail.contains("exceeds"), "unexpected detail {detail}")
            }
            Err(_) => panic!("oversized length must be Malformed"),
            Ok(_) => panic!("oversized length must not deliver a frame"),
        }
    }

    #[test]
    fn slice_send_and_recv_into_roundtrip_bitwise() {
        let payload: Vec<f32> = (0..100)
            .map(|i| if i == 7 { f32::NAN } else { (i as f32).sin() })
            .collect();
        let expect = payload.clone();
        let results = TcpCluster::run(2, move |rank, links: &mut TcpLinks<'_, f32>| {
            if rank == 0 {
                links.send_slice(1, &payload).expect("send_slice");
                Vec::new()
            } else {
                let mut out = vec![0.0f32; 100];
                links.recv_into(0, &mut out).expect("recv_into");
                out
            }
        });
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&results[1]), bits(&expect), "NaN bits must survive");
    }

    #[test]
    fn recv_into_length_mismatch_is_protocol_error() {
        let results = TcpCluster::run(2, move |rank, links: &mut TcpLinks<'_, f32>| {
            if rank == 0 {
                links.send_slice(1, &[1.0f32, 2.0]).expect("send_slice");
                None
            } else {
                let mut out = vec![0.0f32; 3];
                Some(links.recv_into(0, &mut out).expect_err("length mismatch"))
            }
        });
        assert!(matches!(
            results[1],
            Some(CollectiveError::Protocol { peer: 0, .. })
        ));
    }

    #[test]
    fn tiny_chunks_keep_ring_bitwise_identical() {
        // Force 2-element chunks so every segment crosses multiple chunk
        // boundaries (len 41 is deliberately not chunk- or n-aligned).
        for n in [2usize, 3] {
            let inputs = bufs(n, 41);
            let (expect, _) =
                threaded_ring_all_reduce(inputs.clone(), F32Sum, 4.0).expect("threaded");
            let inputs = Arc::new(inputs);
            let registry = Registry::spawn(n).expect("registry");
            let addr = registry.addr();
            let mut handles = Vec::new();
            for _ in 0..n {
                let inputs = Arc::clone(&inputs);
                handles.push(std::thread::spawn(move || {
                    let mut w = FleetWorker::join(addr, TcpTimeouts::fast_test()).expect("join");
                    let rs = w.next_round(0).expect("round");
                    w.mesh_mut().set_chunk_bytes(8); // two f32 lanes per frame
                    let mut links = w.links::<f32>();
                    let out =
                        ring_all_reduce_worker(&mut links, inputs[rs.rank].clone(), &F32Sum, 4.0)
                            .expect("chunked ring");
                    w.leave().expect("leave");
                    (rs.rank, out)
                }));
            }
            let mut results: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("worker thread"))
                .collect();
            registry.shutdown();
            results.sort_by_key(|(rank, _)| *rank);
            for (rank, (buf, sent, recv)) in results.into_iter().map(|(r, o)| (r, o)) {
                assert_eq!(buf, expect[rank], "n={n} rank={rank} under tiny chunks");
                // Traffic is counted per segment, so chunking must not
                // change the accounting either.
                assert!(sent > 0 && recv > 0);
            }
        }
    }

    #[test]
    fn mesh_recv_times_out_on_silent_peer() {
        let results = TcpCluster::run(2, move |rank, links: &mut TcpLinks<'_, f32>| {
            if rank == 0 {
                // Wedge: never send; peer must time out, not hang.
                std::thread::sleep(Duration::from_millis(300));
                Ok(vec![])
            } else {
                links.mesh.set_recv_deadline(Duration::from_millis(50));
                MessageLinks::recv(links, 0)
            }
        });
        assert!(matches!(
            results[1],
            Err(CollectiveError::Timeout { peer: 0, .. })
        ));
    }
}
