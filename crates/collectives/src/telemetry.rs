//! The fleet telemetry plane's transport: cross-process metric/trace
//! shipping, the live Prometheus scrape endpoint, and collector-side crash
//! detection.
//!
//! One [`TelemetryCollector`] runs next to the rendezvous [`Registry`]
//! (usually in the same process); every fleet worker holds a
//! [`TelemetryShipper`]. The wire is a second, independent TCP connection
//! per worker — telemetry never rides the collective mesh, so a slow
//! scrape cannot stall an all-reduce.
//!
//! # Protocol
//!
//! A connecting client writes a 4-byte magic. `"GCST"` starts a framed
//! telemetry session (`u32`-length-prefixed frames, the same
//! [`FramedStream`] machinery as the mesh); `"GET "` is sniffed as an HTTP
//! request and answered with a Prometheus text exposition of the merged
//! fleet registry — `curl http://addr/metrics` works mid-run. Frame
//! payloads begin with a tag byte:
//!
//! | tag | frame | body |
//! |-----|-------|------|
//! | 0x01 | PING | `t0:u64` (shipper clock, ns) |
//! | 0x02 | PONG | `t0:u64` echoed, `t_c:u64` (collector clock, ns) |
//! | 0x03 | HELLO | `worker_id:u64`, `offset:i64`, `err:u64` |
//! | 0x04 | SNAPSHOT | `rank:u64`, `epoch:u64`, [`encode_registry`] bytes |
//! | 0x05 | TRACE | `rank:u64`, [`encode_trace`] bytes |
//! | 0x06 | EVENT | `rank:u64`, `kind:str`, `detail:str` |
//! | 0x07 | FLIGHT | `rank:u64`, flight-recorder JSONL |
//! | 0x08 | BYE | empty |
//!
//! # Clock alignment
//!
//! [`TelemetryShipper::connect`] runs five PING/PONG rounds and keeps the
//! minimum-RTT sample: `offset = t_c − (t0 + t1)/2`, so
//! `collector_time ≈ worker_time + offset`, with error bounded by half
//! that round's RTT (the collector could have stamped `t_c` anywhere
//! inside it). On loopback this is microseconds — far below the
//! millisecond-scale spans it aligns. Both sides stamp with
//! [`gcs_trace::now_ns`], the same origin span timestamps use, so the
//! offset applies to shipped spans directly.
//!
//! # Crash detection
//!
//! Workers ship their bounded flight recorder every round. When a
//! connection dies without a BYE (SIGKILL, panic, network loss), the
//! collector marks the worker dead, records a `death` membership event,
//! and dumps the worker's *last shipped* flight JSONL to the configured
//! directory — the post-mortem survives even though the victim never got
//! to write anything.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gcs_metrics::fleet::{decode_registry, encode_registry, FleetAggregator};
use gcs_metrics::Registry as MetricsRegistry;
use gcs_trace::wire::{decode_trace, encode_trace, merged_chrome_json, OwnedTrace, RankTrace};

use crate::tcp::{FramedStream, RecvFail};

/// Magic written by a telemetry client immediately after connect. Chosen
/// to differ from HTTP's `"GET "` at the first byte, so one listener
/// serves both.
pub const TELEMETRY_MAGIC: [u8; 4] = *b"GCST";

/// Ping/pong rounds in the connect handshake; minimum-RTT sample wins.
const CLOCK_SYNC_ROUNDS: usize = 5;

/// How long a blocking collector read waits before re-checking shutdown.
const POLL_SLICE: Duration = Duration::from_millis(200);

/// Handshake and ship deadlines.
const IO_DEADLINE: Duration = Duration::from_secs(10);

const TAG_PING: u8 = 0x01;
const TAG_PONG: u8 = 0x02;
const TAG_HELLO: u8 = 0x03;
const TAG_SNAPSHOT: u8 = 0x04;
const TAG_TRACE: u8 = 0x05;
const TAG_EVENT: u8 = 0x06;
const TAG_FLIGHT: u8 = 0x07;
const TAG_BYE: u8 = 0x08;

// -- tiny frame-body codec ---------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Body<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Body<'a> {
    fn new(buf: &'a [u8]) -> Body<'a> {
        Body { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or("telemetry frame truncated")?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u64()? as usize;
        if len > self.buf.len() - self.pos {
            return Err("telemetry frame: string length exceeds payload".into());
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| "telemetry frame: non-UTF-8 string".to_string())
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

// -- collector ---------------------------------------------------------------

/// Collector tuning knobs.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Where death-triggered flight-recorder dumps are written
    /// (`flight_worker<id>.jsonl`); `None` disables collector-side dumps.
    pub flight_dir: Option<PathBuf>,
    /// A connection silent for this long is treated as dead.
    pub idle_timeout: Duration,
    /// Per-worker bound on retained merged-trace events (oldest dropped).
    pub max_spans_per_worker: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            flight_dir: None,
            idle_timeout: Duration::from_secs(60),
            max_spans_per_worker: 1 << 16,
        }
    }
}

/// A membership or fault event observed by the collector, in arrival order.
#[derive(Clone, Debug)]
pub struct FleetEvent {
    /// Worker the event concerns (0 before its HELLO named it).
    pub worker_id: u64,
    /// The worker's last-known rank.
    pub rank: u64,
    /// Event kind: `join`, `leave`, `death`, or a worker-reported kind
    /// (`collective_error`, `epoch_change`, `fatal`, …).
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

#[derive(Default)]
struct CollectorState {
    agg: FleetAggregator,
    /// Per-worker `(rank, retained events)` for the merged trace.
    traces: BTreeMap<u64, (u64, OwnedTrace)>,
    /// Per-worker last shipped flight-recorder JSONL.
    flights: BTreeMap<u64, String>,
    events: Vec<FleetEvent>,
    scrapes: u64,
    malformed: u64,
}

/// The collector: one TCP listener accepting telemetry sessions and HTTP
/// scrapes, aggregating everything into a [`FleetAggregator`].
pub struct TelemetryCollector {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<Mutex<CollectorState>>,
    config: TelemetryConfig,
    accept: Option<JoinHandle<()>>,
}

impl TelemetryCollector {
    /// Binds `127.0.0.1:0` and starts the accept loop.
    pub fn spawn(config: TelemetryConfig) -> std::io::Result<TelemetryCollector> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(CollectorState::default()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let state = Arc::clone(&state);
            let config = config.clone();
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let shutdown = Arc::clone(&shutdown);
                            let state = Arc::clone(&state);
                            let config = config.clone();
                            std::thread::spawn(move || {
                                serve_connection(stream, &state, &shutdown, &config);
                            });
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(TelemetryCollector {
            addr,
            shutdown,
            state,
            config,
            accept: Some(accept),
        })
    }

    /// The address workers connect (and scrapers `GET /metrics`) to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn state(&self) -> MutexGuard<'_, CollectorState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The merged fleet registry: every member's latest snapshot folded
    /// together plus derived `fleet/*` metrics (see
    /// [`FleetAggregator::fleet_registry`]) and the collector's own scrape
    /// and malformed-connection counters.
    pub fn fleet_registry(&self) -> MetricsRegistry {
        let st = self.state();
        let mut reg = st.agg.fleet_registry();
        reg.counter_add("fleet/telemetry/scrapes_total", st.scrapes as f64);
        reg.counter_add("fleet/telemetry/malformed_total", st.malformed as f64);
        reg
    }

    /// Prometheus text exposition of [`TelemetryCollector::fleet_registry`]
    /// — the same body the HTTP endpoint serves.
    pub fn prometheus(&self) -> String {
        self.fleet_registry().to_prometheus()
    }

    /// One merged Chrome trace: every worker's shipped spans with
    /// `pid = rank` and clock-offset-aligned timestamps.
    pub fn merged_chrome_json(&self) -> String {
        let st = self.state();
        let ranks: Vec<RankTrace> = st
            .traces
            .iter()
            .map(|(&worker_id, (rank, trace))| RankTrace {
                pid: *rank,
                label: format!("rank {rank} (worker {worker_id})"),
                clock_offset_ns: st
                    .agg
                    .member(worker_id)
                    .map(|m| m.clock_offset_ns)
                    .unwrap_or(0),
                trace: trace.clone(),
            })
            .collect();
        merged_chrome_json(&ranks)
    }

    /// Writes the merged Chrome trace to `path`.
    pub fn write_merged_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.merged_chrome_json())
    }

    /// Membership and fault events in arrival order.
    pub fn events(&self) -> Vec<FleetEvent> {
        self.state().events.clone()
    }

    /// A snapshot of the membership aggregator.
    pub fn aggregator(&self) -> FleetAggregator {
        self.state().agg.clone()
    }

    /// The last flight-recorder JSONL shipped by `worker_id`, if any.
    pub fn flight_of(&self, worker_id: u64) -> Option<String> {
        self.state().flights.get(&worker_id).cloned()
    }

    /// HTTP scrapes served so far.
    pub fn scrapes(&self) -> u64 {
        self.state().scrapes
    }

    /// Connections dropped for protocol violations so far.
    pub fn malformed(&self) -> u64 {
        self.state().malformed
    }
}

impl Drop for TelemetryCollector {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept loop promptly (it also polls every 10ms).
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = &self.config;
    }
}

fn lock<'a>(state: &'a Mutex<CollectorState>) -> MutexGuard<'a, CollectorState> {
    state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Sniffs the 4-byte magic and dispatches to the framed telemetry session
/// or the HTTP scrape handler.
fn serve_connection(
    mut stream: TcpStream,
    state: &Mutex<CollectorState>,
    shutdown: &AtomicBool,
    config: &TelemetryConfig,
) {
    let _ = stream.set_read_timeout(Some(IO_DEADLINE));
    let mut magic = [0u8; 4];
    if stream.read_exact(&mut magic).is_err() {
        return; // includes the self-connect that unblocks shutdown
    }
    if magic == TELEMETRY_MAGIC {
        serve_telemetry(stream, state, shutdown, config);
    } else if &magic == b"GET " {
        serve_scrape(stream, state);
    } else {
        lock(state).malformed += 1;
    }
}

/// Answers one HTTP request with the Prometheus exposition. Any `GET` path
/// gets the metrics body — there is only one resource.
fn serve_scrape(mut stream: TcpStream, state: &Mutex<CollectorState>) {
    // Drain the request head (bounded) so the client's write never blocks.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while head.len() < 8192 && !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => break,
        }
    }
    let body = {
        let mut st = lock(state);
        st.scrapes += 1;
        let mut reg = st.agg.fleet_registry();
        reg.counter_add("fleet/telemetry/scrapes_total", st.scrapes as f64);
        reg.counter_add("fleet/telemetry/malformed_total", st.malformed as f64);
        reg.to_prometheus()
    };
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Runs one worker's framed telemetry session to completion.
fn serve_telemetry(
    stream: TcpStream,
    state: &Mutex<CollectorState>,
    shutdown: &AtomicBool,
    config: &TelemetryConfig,
) {
    let mut fs = FramedStream::new(stream);
    let mut worker_id: Option<u64> = None;
    let mut rank: u64 = 0;
    let mut last_frame = Instant::now();
    let clean_bye = loop {
        match fs.recv_frame(POLL_SLICE) {
            Ok(frame) => {
                last_frame = Instant::now();
                match handle_frame(&frame, &mut fs, state, config, &mut worker_id, &mut rank) {
                    FrameOutcome::Continue => {}
                    FrameOutcome::Bye => break true,
                    FrameOutcome::Malformed => {
                        lock(state).malformed += 1;
                        break false;
                    }
                }
            }
            Err(RecvFail::TimedOut) => {
                if shutdown.load(Ordering::Relaxed) || last_frame.elapsed() > config.idle_timeout {
                    break false;
                }
            }
            Err(RecvFail::Closed) => break false,
            Err(RecvFail::Malformed(_)) => {
                lock(state).malformed += 1;
                break false;
            }
        }
    };
    let Some(id) = worker_id else { return };
    if clean_bye {
        let mut st = lock(state);
        st.agg.on_leave(id);
        st.events.push(FleetEvent {
            worker_id: id,
            rank,
            kind: "leave".into(),
            detail: String::new(),
        });
        return;
    }
    // Connection lost without BYE: the worker died. Record it and dump its
    // last shipped flight recorder as the post-mortem artifact.
    let mut st = lock(state);
    if st.agg.on_death(id) {
        st.events.push(FleetEvent {
            worker_id: id,
            rank,
            kind: "death".into(),
            detail: "connection lost without BYE".into(),
        });
        if let (Some(dir), Some(jsonl)) = (&config.flight_dir, st.flights.get(&id)) {
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(dir.join(format!("flight_worker{id}.jsonl")), jsonl);
        }
    }
}

enum FrameOutcome {
    Continue,
    Bye,
    Malformed,
}

fn handle_frame(
    frame: &[u8],
    fs: &mut FramedStream,
    state: &Mutex<CollectorState>,
    config: &TelemetryConfig,
    worker_id: &mut Option<u64>,
    rank: &mut u64,
) -> FrameOutcome {
    let Some((&tag, body)) = frame.split_first() else {
        return FrameOutcome::Malformed;
    };
    lock(state).agg.note_frame(frame.len() as u64);
    let mut b = Body::new(body);
    match tag {
        TAG_PING => {
            let Ok(t0) = b.u64() else {
                return FrameOutcome::Malformed;
            };
            let mut pong = vec![TAG_PONG];
            put_u64(&mut pong, t0);
            put_u64(&mut pong, gcs_trace::now_ns());
            if fs.send_frame(&pong).is_err() {
                return FrameOutcome::Malformed;
            }
            FrameOutcome::Continue
        }
        TAG_HELLO => {
            let (Ok(id), Ok(offset_bits), Ok(err)) = (b.u64(), b.u64(), b.u64()) else {
                return FrameOutcome::Malformed;
            };
            *worker_id = Some(id);
            let mut st = lock(state);
            st.agg.on_join(id, offset_bits as i64, err);
            st.events.push(FleetEvent {
                worker_id: id,
                rank: *rank,
                kind: "join".into(),
                detail: format!("clock offset {} ns (±{} ns)", offset_bits as i64, err),
            });
            FrameOutcome::Continue
        }
        TAG_SNAPSHOT => {
            let (Ok(r), Ok(epoch)) = (b.u64(), b.u64()) else {
                return FrameOutcome::Malformed;
            };
            let Ok(reg) = decode_registry(b.rest()) else {
                return FrameOutcome::Malformed;
            };
            let Some(id) = *worker_id else {
                return FrameOutcome::Malformed; // snapshot before HELLO
            };
            *rank = r;
            lock(state).agg.on_snapshot(id, r, epoch, reg);
            FrameOutcome::Continue
        }
        TAG_TRACE => {
            let Ok(r) = b.u64() else {
                return FrameOutcome::Malformed;
            };
            let Ok(trace) = decode_trace(b.rest()) else {
                return FrameOutcome::Malformed;
            };
            let Some(id) = *worker_id else {
                return FrameOutcome::Malformed;
            };
            *rank = r;
            let mut st = lock(state);
            let entry = st
                .traces
                .entry(id)
                .or_insert_with(|| (r, OwnedTrace::default()));
            entry.0 = r;
            entry.1.extend(trace);
            entry.1.truncate_oldest(config.max_spans_per_worker);
            FrameOutcome::Continue
        }
        TAG_EVENT => {
            let (Ok(r), Ok(kind), Ok(detail)) = (b.u64(), b.str(), b.str()) else {
                return FrameOutcome::Malformed;
            };
            let Some(id) = *worker_id else {
                return FrameOutcome::Malformed;
            };
            *rank = r;
            lock(state).events.push(FleetEvent {
                worker_id: id,
                rank: r,
                kind,
                detail,
            });
            FrameOutcome::Continue
        }
        TAG_FLIGHT => {
            let (Ok(r), Ok(jsonl)) = (b.u64(), b.str()) else {
                return FrameOutcome::Malformed;
            };
            let Some(id) = *worker_id else {
                return FrameOutcome::Malformed;
            };
            *rank = r;
            lock(state).flights.insert(id, jsonl);
            FrameOutcome::Continue
        }
        TAG_BYE => FrameOutcome::Bye,
        _ => FrameOutcome::Malformed,
    }
}

// -- shipper -----------------------------------------------------------------

/// The worker-side end of the telemetry plane: one connection, periodic
/// snapshot/trace/flight shipping, clean BYE on exit. All methods return
/// `Err` (never panic) on a lost collector, so telemetry failure can never
/// take down training.
pub struct TelemetryShipper {
    fs: FramedStream,
    worker_id: u64,
    clock_offset_ns: i64,
    clock_err_ns: u64,
}

impl TelemetryShipper {
    /// Connects, estimates the clock offset over [`CLOCK_SYNC_ROUNDS`]
    /// ping/pongs (minimum-RTT sample wins), and announces `worker_id`.
    pub fn connect(addr: SocketAddr, worker_id: u64) -> Result<TelemetryShipper, String> {
        let mut stream = TcpStream::connect_timeout(&addr, IO_DEADLINE)
            .map_err(|e| format!("telemetry connect: {e}"))?;
        stream
            .write_all(&TELEMETRY_MAGIC)
            .map_err(|e| format!("telemetry magic: {e}"))?;
        let mut fs = FramedStream::new(stream);
        let mut best_rtt = u64::MAX;
        let mut offset: i64 = 0;
        for _ in 0..CLOCK_SYNC_ROUNDS {
            let t0 = gcs_trace::now_ns();
            let mut ping = vec![TAG_PING];
            put_u64(&mut ping, t0);
            fs.send_frame(&ping)
                .map_err(|e| format!("telemetry ping: {e}"))?;
            let frame = match fs.recv_frame(IO_DEADLINE) {
                Ok(f) => f,
                Err(_) => return Err("telemetry pong: no response".into()),
            };
            let t1 = gcs_trace::now_ns();
            let mut b = Body::new(frame.get(1..).unwrap_or(&[]));
            if frame.first() != Some(&TAG_PONG) {
                return Err("telemetry pong: unexpected frame".into());
            }
            let (Ok(t0_echo), Ok(t_c)) = (b.u64(), b.u64()) else {
                return Err("telemetry pong: truncated".into());
            };
            if t0_echo != t0 {
                return Err("telemetry pong: echo mismatch".into());
            }
            let rtt = t1.saturating_sub(t0);
            if rtt < best_rtt {
                best_rtt = rtt;
                let midpoint = (t0 as i128 + t1 as i128) / 2;
                offset = (t_c as i128 - midpoint) as i64;
            }
        }
        let clock_err_ns = best_rtt / 2;
        let mut hello = vec![TAG_HELLO];
        put_u64(&mut hello, worker_id);
        put_u64(&mut hello, offset as u64);
        put_u64(&mut hello, clock_err_ns);
        fs.send_frame(&hello)
            .map_err(|e| format!("telemetry hello: {e}"))?;
        Ok(TelemetryShipper {
            fs,
            worker_id,
            clock_offset_ns: offset,
            clock_err_ns,
        })
    }

    /// This shipper's worker id.
    pub fn worker_id(&self) -> u64 {
        self.worker_id
    }

    /// Estimated `collector − worker` clock offset in nanoseconds.
    pub fn clock_offset_ns(&self) -> i64 {
        self.clock_offset_ns
    }

    /// Half-RTT error bound on the offset estimate, nanoseconds.
    pub fn clock_err_ns(&self) -> u64 {
        self.clock_err_ns
    }

    /// Ships a full registry snapshot (the collector replaces, not merges).
    pub fn ship_snapshot(
        &mut self,
        rank: u64,
        epoch: u64,
        reg: &MetricsRegistry,
    ) -> Result<(), String> {
        let mut frame = vec![TAG_SNAPSHOT];
        put_u64(&mut frame, rank);
        put_u64(&mut frame, epoch);
        frame.extend_from_slice(&encode_registry(reg));
        self.fs
            .send_frame(&frame)
            .map_err(|e| format!("telemetry snapshot: {e}"))
    }

    /// Ships a batch of trace events (no-op for an empty trace).
    pub fn ship_trace(&mut self, rank: u64, trace: &gcs_trace::Trace) -> Result<(), String> {
        if trace.spans.is_empty() && trace.counters.is_empty() {
            return Ok(());
        }
        let mut frame = vec![TAG_TRACE];
        put_u64(&mut frame, rank);
        frame.extend_from_slice(&encode_trace(trace));
        self.fs
            .send_frame(&frame)
            .map_err(|e| format!("telemetry trace: {e}"))
    }

    /// Ships a fault/membership/lifecycle event.
    pub fn ship_event(&mut self, rank: u64, kind: &str, detail: &str) -> Result<(), String> {
        let mut frame = vec![TAG_EVENT];
        put_u64(&mut frame, rank);
        put_str(&mut frame, kind);
        put_str(&mut frame, detail);
        self.fs
            .send_frame(&frame)
            .map_err(|e| format!("telemetry event: {e}"))
    }

    /// Ships the current flight-recorder JSONL (collector keeps the latest).
    pub fn ship_flight(&mut self, rank: u64, jsonl: &str) -> Result<(), String> {
        let mut frame = vec![TAG_FLIGHT];
        put_u64(&mut frame, rank);
        put_str(&mut frame, jsonl);
        self.fs
            .send_frame(&frame)
            .map_err(|e| format!("telemetry flight: {e}"))
    }

    /// Announces a clean departure (the collector records `leave`, not
    /// `death`).
    pub fn bye(&mut self) -> Result<(), String> {
        self.fs
            .send_frame(&[TAG_BYE])
            .map_err(|e| format!("telemetry bye: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_metrics::fleet::{FlightRecorder, ROUND_HIST, WIRE_BYTES_COUNTER};

    fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
        let t0 = Instant::now();
        while !ok() {
            assert!(
                t0.elapsed() < Duration::from_secs(20),
                "timed out waiting for {what}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn sample_registry(latency_ns: f64) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for _ in 0..10 {
            reg.observe(ROUND_HIST, latency_ns);
        }
        reg.counter_add(WIRE_BYTES_COUNTER, 4096.0);
        reg
    }

    fn sample_trace() -> gcs_trace::Trace {
        gcs_trace::Trace {
            spans: vec![gcs_trace::SpanRecord {
                phase: gcs_trace::Phase::Network,
                name: "ring_all_reduce",
                start_ns: 5_000,
                dur_ns: 2_000,
                round: 1,
                tid: 0,
            }],
            counters: Vec::new(),
        }
    }

    #[test]
    fn end_to_end_ship_scrape_death_and_flight_dump() {
        let dir = std::env::temp_dir().join(format!("gcs_tele_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let collector = TelemetryCollector::spawn(TelemetryConfig {
            flight_dir: Some(dir.clone()),
            ..TelemetryConfig::default()
        })
        .unwrap();

        // Worker 11 (rank 0): ships then departs cleanly.
        let mut a = TelemetryShipper::connect(collector.addr(), 11).unwrap();
        assert!(
            a.clock_offset_ns().unsigned_abs() < 1_000_000_000,
            "loopback offset must be sub-second, got {} ns",
            a.clock_offset_ns()
        );
        a.ship_snapshot(0, 1, &sample_registry(1000.0)).unwrap();
        a.ship_trace(0, &sample_trace()).unwrap();
        a.bye().unwrap();
        drop(a);

        // Worker 12 (rank 1): ships a flight recorder, then vanishes
        // without a BYE — a SIGKILL as the collector sees it.
        let mut b = TelemetryShipper::connect(collector.addr(), 12).unwrap();
        b.ship_snapshot(1, 1, &sample_registry(3000.0)).unwrap();
        b.ship_trace(1, &sample_trace()).unwrap();
        let mut fr = FlightRecorder::with_capacity(8);
        fr.record_event("collective_error", "peer 0 closed");
        b.ship_flight(1, &fr.to_jsonl()).unwrap();
        drop(b);

        wait_until("leave + death events", || {
            let kinds: Vec<String> = collector.events().iter().map(|e| e.kind.clone()).collect();
            kinds.contains(&"leave".to_string()) && kinds.contains(&"death".to_string())
        });

        let agg = collector.aggregator();
        let (joins, deaths, leaves, _) = agg.membership_totals();
        assert_eq!((joins, deaths, leaves), (2, 1, 1));
        assert!(!agg.member(12).unwrap().alive);

        // Merged trace: both ranks present as distinct pids.
        let merged = collector.merged_chrome_json();
        assert!(merged.contains("\"pid\":0"), "{merged}");
        assert!(merged.contains("\"pid\":1"), "{merged}");
        assert!(merged.contains("rank 1 (worker 12)"));

        // Fleet registry carries per-rank gauges and membership counters.
        let text = collector.prometheus();
        assert!(text.contains("gcs_fleet_rank_0_round_p50_ns"), "{text}");
        assert!(text.contains("gcs_fleet_rank_1_round_p50_ns"), "{text}");
        assert!(
            text.contains("gcs_fleet_membership_deaths_total 1"),
            "{text}"
        );

        // The victim's flight recorder was dumped collector-side.
        let dumped = std::fs::read_to_string(dir.join("flight_worker12.jsonl")).unwrap();
        assert!(dumped.contains("collective_error"));
        assert_eq!(collector.flight_of(12).as_deref(), Some(dumped.as_str()));
        drop(collector);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn http_scrape_serves_prometheus_text() {
        let collector = TelemetryCollector::spawn(TelemetryConfig::default()).unwrap();
        let mut w = TelemetryShipper::connect(collector.addr(), 7).unwrap();
        w.ship_snapshot(0, 1, &sample_registry(2000.0)).unwrap();
        wait_until("snapshot applied", || {
            collector.aggregator().member(7).map(|m| m.snapshots) == Some(1)
        });

        let mut sock = TcpStream::connect(collector.addr()).unwrap();
        sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        sock.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain"));
        assert!(response.contains("gcs_fleet_members 1"), "{response}");
        assert!(
            response.contains("gcs_fleet_rank_0_round_p50_ns"),
            "{response}"
        );
        assert!(response.contains("gcs_fleet_telemetry_scrapes_total 1"));
        assert_eq!(collector.scrapes(), 1);
        w.bye().unwrap();
    }

    #[test]
    fn malformed_connections_are_counted_and_ignored() {
        let collector = TelemetryCollector::spawn(TelemetryConfig::default()).unwrap();
        let mut sock = TcpStream::connect(collector.addr()).unwrap();
        sock.write_all(b"JUNKJUNKJUNK").unwrap();
        drop(sock);
        wait_until("malformed counted", || collector.malformed() >= 1);
        // The listener still works afterwards.
        let mut w = TelemetryShipper::connect(collector.addr(), 1).unwrap();
        w.ship_event(0, "probe", "still alive").unwrap();
        wait_until("event after junk", || {
            collector.events().iter().any(|e| e.kind == "probe")
        });
    }
}
