//! # gcs-collectives
//!
//! Data-moving collective communication, the substrate NCCL provides on the
//! paper's testbed.
//!
//! Unlike `gcs-netsim` (which models *time*), this crate moves *actual
//! bytes*: the compression schemes run their aggregation through these
//! collectives so that all-reduce compatibility — the paper's central design
//! constraint (§2.1) — is enforced by construction, not by assumption. A
//! scheme that would need decompress/recompress at intermediate hops simply
//! cannot be expressed through [`ops`]'s reduction interface.
//!
//! * [`reduce`] — reduction operators: exact f32 sum, FP16-precision sum
//!   (NCCL `ncclFloat16` semantics), and the saturating / wrapping / widened
//!   q-bit integer sums that THC-style quantization needs.
//! * [`ops`] — the collective algorithms themselves (ring all-reduce as
//!   reduce-scatter + all-gather, binomial-tree all-reduce, all-gather,
//!   reduce-scatter, broadcast, parameter-server), implemented generically
//!   over element type and reduction operator, with exact per-worker
//!   traffic accounting.
//! * [`transport`] — message-passing execution: an mpsc-channel
//!   [`transport::ThreadedCluster`] runs one thread per worker; integration
//!   tests assert the threaded ring all-reduce is bit-identical to the
//!   sequential reference.
//! * [`error`] — typed collective failures ([`CollectiveError`]): peer
//!   loss, retry exhaustion, injected crashes. Transports return these
//!   instead of panicking, which is what lets the `gcs-faults` layer and
//!   the chaos suite exercise degraded fabrics.
//! * [`telemetry`] — the fleet telemetry plane: each worker ships registry
//!   snapshots, trace spans, and its crash flight recorder over a second
//!   framed TCP connection to a [`telemetry::TelemetryCollector`], which
//!   merges fleet-wide aggregates, aligns clocks, serves a live Prometheus
//!   `GET /metrics` scrape, and dumps a dead worker's last flight recorder.
//! * [`tcp`] — the socket transport: length-prefixed frames over localhost
//!   TCP in a connection-per-directed-link mesh, plus the rendezvous
//!   registry and join/leave membership protocol that make the fleet
//!   *elastic* (workers can die **or join** mid-run; ranks renumber over
//!   the live roster each epoch). The same worker bodies run over
//!   [`tcp::TcpLinks`] and [`transport::WorkerLinks`], differential-tested
//!   bitwise.

pub mod advanced;
pub mod error;
pub mod ops;
pub mod reduce;
pub mod tcp;
pub mod telemetry;
pub mod transport;

pub use advanced::{
    double_tree_all_reduce, double_tree_all_reduce_into, hierarchical_ring_all_reduce,
    hierarchical_ring_all_reduce_into,
};
pub use error::CollectiveError;
pub use ops::{
    all_gather, all_gather_into, broadcast, broadcast_into, parameter_server,
    parameter_server_into, reduce_scatter, reduce_scatter_into, ring_all_reduce,
    ring_all_reduce_into, tree_all_reduce, tree_all_reduce_into, RingScratch, Traffic,
};
pub use reduce::{
    copy_lanes, reduce_lanes, F16Sum, F32Max, F32Sum, ReduceOp, SaturatingIntSum, WideIntSum,
    WrappingIntSum,
};
pub use tcp::{
    decode_elems, decode_elems_into, encode_elems, encode_elems_into, FleetWorker, FramedStream,
    RecvFail, Registry, RoundStart, TcpCluster, TcpLinks, TcpMesh, TcpTimeouts, WireElem,
    DEFAULT_TCP_CHUNK_BYTES,
};
pub use telemetry::{
    FleetEvent, TelemetryCollector, TelemetryConfig, TelemetryShipper, TELEMETRY_MAGIC,
};
pub use transport::{
    all_gather_worker, broadcast_worker, ring_all_reduce_worker, ring_all_reduce_worker_into,
    threaded_ring_all_reduce, MessageLinks, ThreadedCluster, WorkerLinks,
};
