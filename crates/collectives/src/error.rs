//! Typed failure modes of distributed collectives.
//!
//! The seed transport panicked on any peer disconnect
//! (`expect("peer disconnected during collective")`), which made every
//! degraded-network scenario — stragglers, message loss, worker crashes —
//! unrepresentable. [`CollectiveError`] is the typed surface those scenarios
//! flow through instead: transports return it, the fault-injection layer
//! (`gcs-faults`) maps exhausted retries and injected crashes onto it, and
//! the chaos suite asserts that *every* degraded execution ends in one of
//! these variants rather than a panic or a deadlock.

use std::fmt;

/// Why a collective participant could not complete its round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollectiveError {
    /// The channel to `peer` disconnected: the peer's thread exited (crash,
    /// early return, or error propagation) while this worker still needed it.
    PeerLost {
        /// Rank of the vanished peer.
        peer: usize,
    },
    /// No (ack for a) message from `peer` arrived within the retry budget.
    Timeout {
        /// Rank of the unresponsive peer.
        peer: usize,
        /// Send attempts performed before giving up (1 = no retries).
        attempts: u32,
    },
    /// This worker was killed by an injected crash; it must abandon the
    /// collective immediately (its peers will observe `PeerLost`/`Timeout`).
    WorkerCrashed {
        /// Rank of the crashed worker (== the reporting worker).
        rank: usize,
    },
    /// A malformed frame arrived: sequencing was violated in a way the
    /// sliding-window protocol cannot have produced (indicates a bug, not an
    /// injected fault — still surfaced as an error so chaos runs never panic).
    Protocol {
        /// Offending peer.
        peer: usize,
        /// Description of the violation.
        detail: String,
    },
}

impl CollectiveError {
    /// The peer this error is about (for `WorkerCrashed`, the worker itself).
    pub fn peer(&self) -> usize {
        match self {
            CollectiveError::PeerLost { peer }
            | CollectiveError::Timeout { peer, .. }
            | CollectiveError::Protocol { peer, .. } => *peer,
            CollectiveError::WorkerCrashed { rank } => *rank,
        }
    }

    /// True for errors caused by a vanished or unresponsive peer — the
    /// recoverable-by-reconfiguration class (drop the peer, renormalize the
    /// ring over survivors, continue).
    pub fn is_peer_failure(&self) -> bool {
        matches!(
            self,
            CollectiveError::PeerLost { .. } | CollectiveError::Timeout { .. }
        )
    }
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::PeerLost { peer } => {
                write!(f, "peer {peer} disconnected during collective")
            }
            CollectiveError::Timeout { peer, attempts } => {
                write!(f, "peer {peer} unresponsive after {attempts} attempts")
            }
            CollectiveError::WorkerCrashed { rank } => {
                write!(f, "worker {rank} crashed (injected fault)")
            }
            CollectiveError::Protocol { peer, detail } => {
                write!(f, "protocol violation from peer {peer}: {detail}")
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_peer() {
        let e = CollectiveError::PeerLost { peer: 3 };
        assert!(e.to_string().contains("peer 3"));
        assert_eq!(e.peer(), 3);
        assert!(e.is_peer_failure());
    }

    #[test]
    fn crash_is_not_a_peer_failure() {
        let e = CollectiveError::WorkerCrashed { rank: 1 };
        assert!(!e.is_peer_failure());
        assert_eq!(e.peer(), 1);
        let t = CollectiveError::Timeout {
            peer: 2,
            attempts: 5,
        };
        assert!(t.is_peer_failure());
        assert!(t.to_string().contains("5 attempts"));
    }
}
