//! Reduction operators for collective aggregation.
//!
//! All-reduce compatibility (§2.1) boils down to one question: *what
//! operation do intermediate hops apply to partially aggregated payloads?*
//! This module makes that operation a first-class value. A compression
//! scheme is all-reduce-compatible exactly when its wire format admits a
//! [`ReduceOp`] — no decompress/recompress, no growing payloads.
//!
//! Operators provided:
//!
//! * [`F32Sum`] — exact float sum (the FP32 baseline).
//! * [`F16Sum`] — sum rounded to binary16 after every addition, NCCL's
//!   FP16 all-reduce semantics (the paper's stronger baseline, and TopKC's
//!   chunk aggregation).
//! * [`WideIntSum`] — plain integer sum for widened payloads (THC's
//!   "simple adaptation": communicate `b > q` bits so sums cannot
//!   overflow).
//! * [`SaturatingIntSum`] — the paper's `Sat(x,y)` operator (§3.2.2):
//!   clamp to `[−(2^{b−1}−1), 2^{b−1}−1]`, enabling `b = q`.
//! * [`WrappingIntSum`] — what naive q-bit summation would do; exists so
//!   tests/ablations can demonstrate the overflow corruption that motivates
//!   the other two.

use gcs_tensor::F16;

/// An associative-enough binary reduction over elements of type `T`.
///
/// "Enough": FP16 and saturating sums are *not* exactly associative; the
/// collectives apply them in a deterministic order, mirroring real NCCL
/// behaviour where reduction order is topology-determined.
pub trait ReduceOp<T>: Sync {
    /// Folds `x` into the accumulator.
    fn reduce(&self, acc: &mut T, x: &T);

    /// Reduces a pair of equal-length slices element-wise into `acc`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn reduce_slice(&self, acc: &mut [T], xs: &[T]) {
        assert_eq!(acc.len(), xs.len(), "reduce_slice: length mismatch");
        for (a, x) in acc.iter_mut().zip(xs) {
            self.reduce(a, x);
        }
    }
}

/// Disjoint `(dst, src)` lane access into a set of worker buffers — the
/// split-borrow that lets in-process collective simulations reduce one
/// worker's segment into another's without cloning either side.
fn lane_pair<T>(bufs: &mut [Vec<T>], dst: usize, src: usize) -> (&mut Vec<T>, &Vec<T>) {
    assert_ne!(dst, src, "lane_pair: dst and src must differ");
    if dst < src {
        let (lo, hi) = bufs.split_at_mut(src);
        (&mut lo[dst], &hi[0])
    } else {
        let (lo, hi) = bufs.split_at_mut(dst);
        (&mut hi[0], &lo[src])
    }
}

/// Reduces `bufs[src][lo..hi]` into `bufs[dst][lo..hi]` in place.
///
/// The in-process collective simulations (double tree, hierarchical ring)
/// previously staged every such segment through an `a.to_vec()` clone; this
/// operates directly on the two lanes via a split borrow, so the simulated
/// data path allocates nothing per hop — the property the `alloc_budget`
/// suite asserts (ISSUE 9 satellite).
///
/// # Panics
/// Panics if `dst == src` or the range is out of bounds for either lane.
pub fn reduce_lanes<T>(
    bufs: &mut [Vec<T>],
    op: &dyn ReduceOp<T>,
    dst: usize,
    src: usize,
    lo: usize,
    hi: usize,
) {
    let (d, s) = lane_pair(bufs, dst, src);
    op.reduce_slice(&mut d[lo..hi], &s[lo..hi]);
}

/// Copies `bufs[src][lo..hi]` over `bufs[dst][lo..hi]` in place — the
/// broadcast-down counterpart of [`reduce_lanes`], same split-borrow, same
/// zero-allocation guarantee.
///
/// # Panics
/// Panics if `dst == src` or the range is out of bounds for either lane.
pub fn copy_lanes<T: Clone>(bufs: &mut [Vec<T>], dst: usize, src: usize, lo: usize, hi: usize) {
    let (d, s) = lane_pair(bufs, dst, src);
    d[lo..hi].clone_from_slice(&s[lo..hi]);
}

/// Exact f32 addition.
#[derive(Clone, Copy, Debug, Default)]
pub struct F32Sum;

impl ReduceOp<f32> for F32Sum {
    fn reduce(&self, acc: &mut f32, x: &f32) {
        *acc += *x;
    }
}

/// Binary16 addition: the sum is rounded back to f16 after every step, as
/// NCCL's `ncclFloat16` reduction does on tensor-core hardware.
#[derive(Clone, Copy, Debug, Default)]
pub struct F16Sum;

impl ReduceOp<F16> for F16Sum {
    fn reduce(&self, acc: &mut F16, x: &F16) {
        *acc = acc.add_f16(*x);
    }
}

/// Plain i32 addition (for widened integer payloads where overflow is
/// impossible by construction).
#[derive(Clone, Copy, Debug, Default)]
pub struct WideIntSum;

impl ReduceOp<i32> for WideIntSum {
    fn reduce(&self, acc: &mut i32, x: &i32) {
        *acc += *x;
    }
}

/// The paper's saturation operator over `b`-bit signed lanes:
/// `Sat(x, y) = min(2^{b−1}−1, max(−2^{b−1}+1, x+y))`.
#[derive(Clone, Copy, Debug)]
pub struct SaturatingIntSum {
    hi: i32,
}

impl SaturatingIntSum {
    /// Creates the operator for `b`-bit lanes (`2 <= b <= 31`).
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn new(b: u32) -> SaturatingIntSum {
        assert!(
            (2..=31).contains(&b),
            "SaturatingIntSum: b={b} out of range"
        );
        SaturatingIntSum {
            hi: (1i32 << (b - 1)) - 1,
        }
    }

    /// The symmetric clamp bound `2^{b−1}−1`.
    pub fn bound(&self) -> i32 {
        self.hi
    }
}

impl ReduceOp<i32> for SaturatingIntSum {
    fn reduce(&self, acc: &mut i32, x: &i32) {
        *acc = (*acc + *x).clamp(-self.hi, self.hi);
    }
}

/// Element-wise f32 maximum. Used to agree on quantization scales across
/// workers (a max-all-reduce of per-block ranges) without a parameter
/// server.
#[derive(Clone, Copy, Debug, Default)]
pub struct F32Max;

impl ReduceOp<f32> for F32Max {
    fn reduce(&self, acc: &mut f32, x: &f32) {
        if *x > *acc {
            *acc = *x;
        }
    }
}

/// Wrapping (mod `2^b`) addition over `b`-bit signed lanes — included only
/// to demonstrate overflow corruption.
#[derive(Clone, Copy, Debug)]
pub struct WrappingIntSum {
    b: u32,
}

impl WrappingIntSum {
    /// Creates the operator for `b`-bit lanes (`2 <= b <= 31`).
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn new(b: u32) -> WrappingIntSum {
        assert!((2..=31).contains(&b), "WrappingIntSum: b={b} out of range");
        WrappingIntSum { b }
    }
}

impl ReduceOp<i32> for WrappingIntSum {
    fn reduce(&self, acc: &mut i32, x: &i32) {
        let mask = (1i64 << self.b) - 1;
        let sum = ((*acc as i64) + (*x as i64)) & mask;
        // Sign-extend from b bits.
        let shift = 64 - self.b;
        *acc = ((sum << shift) >> shift) as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_sum_is_exact() {
        let op = F32Sum;
        let mut acc = vec![1.0f32, 2.0];
        op.reduce_slice(&mut acc, &[0.5, -2.0]);
        assert_eq!(acc, vec![1.5, 0.0]);
    }

    #[test]
    fn f16_sum_rounds_each_step() {
        let op = F16Sum;
        // 2048 + 1 is not representable in f16: the addend vanishes.
        let mut acc = F16::from_f32(2048.0);
        op.reduce(&mut acc, &F16::from_f32(1.0));
        assert_eq!(acc.to_f32(), 2048.0);
    }

    #[test]
    fn saturating_sum_clamps() {
        let op = SaturatingIntSum::new(4); // lanes in [-7, 7]
        let mut acc = 6i32;
        op.reduce(&mut acc, &5);
        assert_eq!(acc, 7);
        let mut acc = -6i32;
        op.reduce(&mut acc, &-5);
        assert_eq!(acc, -7);
        let mut acc = 6i32;
        op.reduce(&mut acc, &-5);
        assert_eq!(acc, 1);
    }

    #[test]
    fn saturating_matches_packed_int_vec_semantics() {
        // The collectives' i32 lanes and the wire-format PackedIntVec must
        // agree on what Sat() means.
        use gcs_tensor::PackedIntVec;
        let q = 4u32;
        let a = [7i32, -7, 3, -3, 0];
        let b = [5i32, -5, 5, -5, 7];
        let mut lanes = a.to_vec();
        let op = SaturatingIntSum::new(q);
        op.reduce_slice(&mut lanes, &b);
        let mut packed = PackedIntVec::from_signed(q, &a);
        packed.add_saturating(&PackedIntVec::from_signed(q, &b));
        assert_eq!(lanes, packed.to_signed_vec());
    }

    #[test]
    fn wrapping_sum_wraps() {
        let op = WrappingIntSum::new(4);
        let mut acc = 7i32;
        op.reduce(&mut acc, &5);
        assert_eq!(acc, -4); // 12 wraps in 4-bit two's complement
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn saturating_rejects_bad_width() {
        SaturatingIntSum::new(1);
    }

    #[test]
    fn reduce_lanes_is_in_place_and_direction_agnostic() {
        let mut bufs = vec![vec![1.0f32, 2.0, 3.0], vec![10.0, 20.0, 30.0]];
        reduce_lanes(&mut bufs, &F32Sum, 0, 1, 1, 3); // dst < src
        assert_eq!(bufs[0], vec![1.0, 22.0, 33.0]);
        assert_eq!(bufs[1], vec![10.0, 20.0, 30.0], "src untouched");
        reduce_lanes(&mut bufs, &F32Sum, 1, 0, 0, 1); // dst > src
        assert_eq!(bufs[1], vec![11.0, 20.0, 30.0]);
    }

    #[test]
    fn copy_lanes_overwrites_only_the_range() {
        let mut bufs = vec![vec![1i32, 2, 3], vec![7, 8, 9]];
        copy_lanes(&mut bufs, 1, 0, 0, 2);
        assert_eq!(bufs[1], vec![1, 2, 9]);
    }

    #[test]
    #[should_panic(expected = "dst and src must differ")]
    fn lane_helpers_reject_aliased_lanes() {
        let mut bufs = vec![vec![0.0f32; 2]; 2];
        reduce_lanes(&mut bufs, &F32Sum, 1, 1, 0, 1);
    }
}
