//! Advanced all-reduce algorithms: the double binary tree of Sanders,
//! Speck & Träff \[42\] (cited by the paper as "tree all-reduce") and the
//! two-level hierarchical ring that NCCL uses across NVLink islands.
//!
//! Both compute exactly the same reduction as [`crate::ops::ring_all_reduce`]
//! (same per-segment fold order is *not* guaranteed — only ring vs ring is
//! bit-identical; cross-algorithm equality holds for associative ops and is
//! tested within float tolerance).

use crate::ops::Traffic;
use crate::reduce::{copy_lanes, reduce_lanes, ReduceOp};

/// Double binary tree all-reduce \[42\]: the payload is split in half; each
/// half is reduced up + broadcast down a different binary tree, with the
/// trees chosen so every node is an inner node in one tree and a leaf in
/// the other — achieving full bandwidth (every link busy) at logarithmic
/// latency, unlike the single tree whose leaves idle half the time.
///
/// Tree A over ranks is the standard heap layout; tree B is the mirror
/// (rank `i` maps to `n-1-i`), which suffices for the inner/leaf swap
/// property when `n` is even and is a good approximation otherwise.
///
/// # Panics
/// Panics on ragged or empty input.
pub fn double_tree_all_reduce<T: Clone>(
    bufs: &mut [Vec<T>],
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
) -> Traffic {
    let mut traffic = Traffic::default();
    double_tree_all_reduce_into(bufs, op, bytes_per_elem, &mut traffic);
    traffic
}

/// [`double_tree_all_reduce`] with a caller-owned traffic accumulator:
/// after the first round the simulated data path is allocation-free — the
/// per-segment staging `to_vec()`s are replaced by in-place
/// [`reduce_lanes`] / [`copy_lanes`] split-borrow hops (ISSUE 9
/// satellite), and `traffic` is [`Traffic::reset`] rather than rebuilt.
pub fn double_tree_all_reduce_into<T: Clone>(
    bufs: &mut [Vec<T>],
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
    traffic: &mut Traffic,
) {
    let _span = gcs_trace::span(gcs_trace::Phase::Network, "double_tree_all_reduce");
    let _timer = gcs_metrics::timer("collective/double_tree_all_reduce/latency_ns");
    let n = bufs.len();
    assert!(n > 0, "double_tree_all_reduce: no workers");
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "double_tree_all_reduce: ragged buffers"
    );
    traffic.reset(n);
    if n == 1 || len == 0 {
        return;
    }
    let half = len / 2;

    // Reduce+broadcast one half over a tree defined by a rank mapping.
    let mut run_half = |lo: usize, hi: usize, map: &dyn Fn(usize) -> usize| {
        if lo >= hi {
            return 0u32;
        }
        let bytes = ((hi - lo) as f64 * bytes_per_elem).ceil() as u64;
        let mut steps = 0u32;
        // Reduce up the binomial tree on mapped ranks.
        let mut dstep = 1usize;
        while dstep < n {
            for v in 0..n {
                if v % (2 * dstep) == dstep {
                    let src = map(v);
                    let dst = map(v - dstep);
                    reduce_lanes(bufs, op, dst, src, lo, hi);
                    traffic.sent[src] += bytes;
                    traffic.received[dst] += bytes;
                }
            }
            steps += 1;
            dstep *= 2;
        }
        // Broadcast down.
        while dstep > 1 {
            dstep /= 2;
            for v in 0..n {
                if v % (2 * dstep) == dstep {
                    let src = map(v - dstep);
                    let dst = map(v);
                    copy_lanes(bufs, dst, src, lo, hi);
                    traffic.sent[src] += bytes;
                    traffic.received[dst] += bytes;
                }
            }
            steps += 1;
        }
        steps
    };

    let s1 = run_half(0, half, &|v| v);
    let s2 = run_half(half, len, &|v| n - 1 - v);
    traffic.steps = s1.max(s2); // the two trees run concurrently
    gcs_trace::counter("wire_bytes", traffic.total() as f64);
    gcs_metrics::counter_add(
        "collective/double_tree_all_reduce/wire_bytes_total",
        traffic.total() as f64,
    );
    gcs_metrics::observe(
        "collective/double_tree_all_reduce/wire_bytes",
        traffic.total() as f64,
    );
}

/// Two-level hierarchical ring all-reduce: ranks are grouped into nodes of
/// `group` consecutive ranks; phase 1 reduce-scatters within each node,
/// phase 2 runs an inter-node ring all-reduce per shard (driven by the
/// shard's owner in each node), phase 3 all-gathers within each node.
///
/// Matches NCCL's behaviour on NVLink+NIC clusters; the inter-node phase is
/// what the per-node NIC actually carries (see
/// `gcs_netsim::timing::HierarchicalSpec`).
///
/// # Panics
/// Panics if `group` does not divide the worker count, or on ragged input.
pub fn hierarchical_ring_all_reduce<T: Clone>(
    bufs: &mut [Vec<T>],
    group: usize,
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
) -> Traffic {
    let mut traffic = Traffic::default();
    hierarchical_ring_all_reduce_into(bufs, group, op, bytes_per_elem, &mut traffic);
    traffic
}

/// [`hierarchical_ring_all_reduce`] with a caller-owned traffic
/// accumulator; the per-shard staging `to_vec()`s of all three phases go
/// through [`reduce_lanes`] / [`copy_lanes`] instead, so reruns are
/// allocation-free (ISSUE 9 satellite).
pub fn hierarchical_ring_all_reduce_into<T: Clone>(
    bufs: &mut [Vec<T>],
    group: usize,
    op: &dyn ReduceOp<T>,
    bytes_per_elem: f64,
    traffic: &mut Traffic,
) {
    let _span = gcs_trace::span(gcs_trace::Phase::Network, "hierarchical_ring_all_reduce");
    let _timer = gcs_metrics::timer("collective/hierarchical_ring_all_reduce/latency_ns");
    let n = bufs.len();
    assert!(n > 0 && group > 0, "hierarchical_ring: bad sizes");
    assert!(
        n.is_multiple_of(group),
        "hierarchical_ring: group {group} must divide n {n}"
    );
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "hierarchical_ring: ragged buffers"
    );
    let nodes = n / group;
    traffic.reset(n);
    if len == 0 {
        return;
    }

    let shard_bounds = |s: usize| -> (usize, usize) {
        let base = len / group;
        let extra = len % group;
        let start = s * base + s.min(extra);
        (start, start + base + usize::from(s < extra))
    };

    // Phase 1: intra-node reduce-scatter — shard s of node m accumulates at
    // rank m*group + s.
    for node in 0..nodes {
        for s in 0..group {
            let owner = node * group + s;
            let (lo, hi) = shard_bounds(s);
            let bytes = ((hi - lo) as f64 * bytes_per_elem).ceil() as u64;
            for j in 1..group {
                let src = node * group + (s + j) % group;
                reduce_lanes(bufs, op, owner, src, lo, hi);
                traffic.sent[src] += bytes;
                traffic.received[owner] += bytes;
            }
        }
    }
    traffic.steps += (group - 1) as u32;

    // Phase 2: inter-node ring all-reduce per shard among the owners.
    if nodes > 1 {
        for s in 0..group {
            let (lo, hi) = shard_bounds(s);
            let bytes = ((hi - lo) as f64 * bytes_per_elem).ceil() as u64;
            // Gather-reduce around the node ring, then broadcast back.
            let owner0 = s; // node 0's owner of shard s
            for node in 1..nodes {
                let src = node * group + s;
                reduce_lanes(bufs, op, owner0, src, lo, hi);
                traffic.sent[src] += bytes;
                traffic.received[owner0] += bytes;
            }
            for node in 1..nodes {
                let dst = node * group + s;
                copy_lanes(bufs, dst, owner0, lo, hi);
                traffic.sent[owner0] += bytes;
                traffic.received[dst] += bytes;
            }
        }
        traffic.steps += 2 * (nodes as u32 - 1);
    }

    // Phase 3: intra-node all-gather from each shard's owner.
    for node in 0..nodes {
        for s in 0..group {
            let owner = node * group + s;
            let (lo, hi) = shard_bounds(s);
            let bytes = ((hi - lo) as f64 * bytes_per_elem).ceil() as u64;
            for j in 1..group {
                let dst = node * group + (s + j) % group;
                copy_lanes(bufs, dst, owner, lo, hi);
                traffic.sent[owner] += bytes;
                traffic.received[dst] += bytes;
            }
        }
    }
    traffic.steps += (group - 1) as u32;
    gcs_trace::counter("wire_bytes", traffic.total() as f64);
    gcs_metrics::counter_add(
        "collective/hierarchical_ring_all_reduce/wire_bytes_total",
        traffic.total() as f64,
    );
    gcs_metrics::observe(
        "collective/hierarchical_ring_all_reduce/wire_bytes",
        traffic.total() as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ring_all_reduce;
    use crate::reduce::F32Sum;

    fn grads(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|w| {
                (0..len)
                    .map(|i| ((w * len + i) as f32 * 0.311).cos())
                    .collect()
            })
            .collect()
    }

    fn assert_matches_ring(mut bufs: Vec<Vec<f32>>, got: &[Vec<f32>]) {
        ring_all_reduce(&mut bufs, &F32Sum, 4.0);
        for (w, (a, b)) in got.iter().zip(&bufs).enumerate() {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert!(
                    (x - y).abs() < 1e-3 * y.abs().max(1.0),
                    "worker {w} coord {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn double_tree_matches_ring_for_various_n() {
        for n in [2usize, 3, 4, 6, 8] {
            let orig = grads(n, 57);
            let mut bufs = orig.clone();
            double_tree_all_reduce(&mut bufs, &F32Sum, 4.0);
            assert_matches_ring(orig, &bufs);
        }
    }

    #[test]
    fn double_tree_balances_send_load_better_than_single_tree() {
        // In the single binomial tree, rank 0 sends the full payload down;
        // in the double tree, send load spreads. Compare max/mean skew.
        let n = 8;
        let mut bufs = grads(n, 1024);
        let t = double_tree_all_reduce(&mut bufs, &F32Sum, 4.0);
        let mut single = grads(n, 1024);
        let t_single = crate::ops::tree_all_reduce(&mut single, &F32Sum, 4.0);
        let skew = |tr: &Traffic| {
            let max = *tr.sent.iter().max().unwrap() as f64;
            let mean = tr.sent.iter().sum::<u64>() as f64 / tr.sent.len() as f64;
            max / mean
        };
        assert!(
            skew(&t) < skew(&t_single),
            "double-tree skew {} vs single-tree {}",
            skew(&t),
            skew(&t_single)
        );
    }

    #[test]
    fn hierarchical_matches_ring() {
        for (n, group) in [(4usize, 2usize), (8, 2), (8, 4), (6, 3), (4, 4), (4, 1)] {
            let orig = grads(n, 83);
            let mut bufs = orig.clone();
            hierarchical_ring_all_reduce(&mut bufs, group, &F32Sum, 4.0);
            assert_matches_ring(orig, &bufs);
        }
    }

    #[test]
    fn hierarchical_cuts_inter_node_traffic() {
        // Count bytes crossing node boundaries: hierarchical should move
        // only ~2 payloads per node pair vs the flat ring's interleaved
        // crossings at n=8, group=4.
        let n = 8;
        let group = 4;
        let len = 1000;
        let mut bufs = grads(n, len);
        let t_h = hierarchical_ring_all_reduce(&mut bufs, group, &F32Sum, 4.0);
        // Inter-node traffic = what shard owners exchange: per shard,
        // (nodes-1) sends each way. Total here: 2 * (2-1) * payload.
        let payload = (len * 4) as u64;
        let inter: u64 = {
            // Approximate: owners are ranks 0..group (node 0) and
            // group..2*group (node 1); inter-node bytes = total sent minus
            // intra-node phases (2*(group-1)/group * payload per worker).
            let intra_per_worker =
                (2.0 * (group as f64 - 1.0) / group as f64 * payload as f64) as u64;
            t_h.total().saturating_sub(n as u64 * intra_per_worker)
        };
        assert!(
            inter <= 3 * payload,
            "inter-node bytes {inter} should be ~2x payload {payload}"
        );
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn hierarchical_rejects_uneven_groups() {
        let mut bufs = grads(6, 10);
        hierarchical_ring_all_reduce(&mut bufs, 4, &F32Sum, 4.0);
    }
}
