//! Message transports: run the ring algorithm over real message-passing.
//!
//! [`crate::ops`] implements collectives as array shuffles for speed and
//! determinism. This module provides the *distributed* execution path: each
//! worker is an independent execution context that can only `send`/`recv`
//! typed messages to peers. Two implementations:
//!
//! * [`ThreadedCluster`] — one OS thread per worker, `std::sync::mpsc`
//!   channels as links. This is the "it actually works concurrently" proof:
//!   integration tests assert that a threaded ring all-reduce produces
//!   bit-identical results to the sequential reference.
//! * The sequential reference lives in `ops`; equivalence is the test.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

use crate::ops::Traffic;
use crate::reduce::ReduceOp;

/// A worker's view of the cluster: typed point-to-point links to every peer.
pub struct WorkerLinks<T> {
    rank: usize,
    n: usize,
    senders: Vec<Sender<Vec<T>>>,
    receivers: Vec<Receiver<Vec<T>>>,
}

impl<T: Send + 'static> WorkerLinks<T> {
    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of workers in the cluster.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sends a message to `peer` (non-blocking, unbounded queue).
    ///
    /// # Panics
    /// Panics if `peer` is this worker or out of range, or if the peer has
    /// hung up.
    pub fn send(&self, peer: usize, data: Vec<T>) {
        assert!(peer != self.rank && peer < self.n, "send: bad peer {peer}");
        self.senders[peer]
            .send(data)
            .expect("peer disconnected during collective");
    }

    /// Blocks until a message from `peer` arrives.
    ///
    /// # Panics
    /// Panics if `peer` is this worker or out of range, or if the peer has
    /// hung up.
    pub fn recv(&self, peer: usize) -> Vec<T> {
        assert!(peer != self.rank && peer < self.n, "recv: bad peer {peer}");
        self.receivers[peer]
            .recv()
            .expect("peer disconnected during collective")
    }
}

/// A cluster of `n` workers connected all-to-all with typed channels.
pub struct ThreadedCluster<T> {
    links: Vec<WorkerLinks<T>>,
}

impl<T: Send + 'static> ThreadedCluster<T> {
    /// Builds the all-to-all channel mesh for `n` workers.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> ThreadedCluster<T> {
        assert!(n > 0, "ThreadedCluster: n must be positive");
        // channel[from][to]
        let mut senders: Vec<Vec<Option<Sender<Vec<T>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<Receiver<Vec<T>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    let (tx, rx) = channel();
                    senders[from][to] = Some(tx);
                    // receivers indexed by [owner][peer]: owner `to` receives
                    // from peer `from`.
                    receivers[to][from] = Some(rx);
                }
            }
        }
        let links = (0..n)
            .map(|rank| {
                let s: Vec<Sender<Vec<T>>> = senders[rank]
                    .iter_mut()
                    .enumerate()
                    .map(|(to, slot)| {
                        slot.take().unwrap_or_else(|| {
                            // Self-link: a dangling channel never used (send
                            // to self is forbidden by WorkerLinks::send).
                            let (tx, _rx) = channel();
                            let _ = to;
                            tx
                        })
                    })
                    .collect();
                let r: Vec<Receiver<Vec<T>>> = receivers[rank]
                    .iter_mut()
                    .map(|slot| {
                        slot.take().unwrap_or_else(|| {
                            let (_tx, rx) = channel();
                            rx
                        })
                    })
                    .collect();
                WorkerLinks {
                    rank,
                    n,
                    senders: s,
                    receivers: r,
                }
            })
            .collect();
        ThreadedCluster { links }
    }

    /// Runs `body(rank, links)` on one thread per worker and returns each
    /// worker's output, in rank order.
    ///
    /// # Panics
    /// Propagates any worker panic.
    pub fn run<R, F>(self, body: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize, &WorkerLinks<T>) -> R + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let results: Arc<Mutex<Vec<Option<R>>>> =
            Arc::new(Mutex::new((0..self.links.len()).map(|_| None).collect()));
        let mut handles = Vec::new();
        for links in self.links {
            let body = Arc::clone(&body);
            let results = Arc::clone(&results);
            handles.push(std::thread::spawn(move || {
                let rank = links.rank();
                let out = body(rank, &links);
                results.lock().expect("results mutex poisoned")[rank] = Some(out);
            }));
        }
        for h in handles {
            h.join().expect("worker thread panicked");
        }
        Arc::try_unwrap(results)
            .unwrap_or_else(|_| panic!("worker results still shared"))
            .into_inner()
            .expect("results mutex poisoned")
            .into_iter()
            .map(|r| r.expect("worker produced no result"))
            .collect()
    }
}

/// Ring all-reduce executed by one worker over message-passing links.
///
/// The algorithm (and therefore the reduction order) matches
/// [`crate::ops::ring_all_reduce`] exactly, so results are bit-identical —
/// the integration tests rely on this.
///
/// Returns the fully reduced buffer and this worker's traffic counts
/// `(bytes_sent, bytes_received)`.
pub fn ring_all_reduce_worker<T, O>(
    links: &WorkerLinks<T>,
    mut buf: Vec<T>,
    op: &O,
    bytes_per_elem: f64,
) -> (Vec<T>, u64, u64)
where
    T: Clone + Send + 'static,
    O: ReduceOp<T>,
{
    let n = links.n();
    let i = links.rank();
    let len = buf.len();
    let mut sent = 0u64;
    let mut received = 0u64;
    if n == 1 || len == 0 {
        return (buf, 0, 0);
    }
    let seg_bounds = |seg: usize| -> (usize, usize) {
        let base = len / n;
        let extra = len % n;
        let start = seg * base + seg.min(extra);
        (start, start + base + usize::from(seg < extra))
    };
    let next = (i + 1) % n;
    let prev = (i + n - 1) % n;

    // Reduce-scatter.
    for k in 0..n - 1 {
        let send_seg = (i + n - k) % n;
        let (lo, hi) = seg_bounds(send_seg);
        links.send(next, buf[lo..hi].to_vec());
        sent += ((hi - lo) as f64 * bytes_per_elem).ceil() as u64;
        let recv_seg = (prev + n - k) % n;
        let data = links.recv(prev);
        let (lo, hi) = seg_bounds(recv_seg);
        received += ((hi - lo) as f64 * bytes_per_elem).ceil() as u64;
        op.reduce_slice(&mut buf[lo..hi], &data);
    }
    // All-gather.
    for k in 0..n - 1 {
        let send_seg = (i + 1 + n - k) % n;
        let (lo, hi) = seg_bounds(send_seg);
        links.send(next, buf[lo..hi].to_vec());
        sent += ((hi - lo) as f64 * bytes_per_elem).ceil() as u64;
        let recv_seg = (prev + 1 + n - k) % n;
        let data = links.recv(prev);
        let (lo, hi) = seg_bounds(recv_seg);
        received += ((hi - lo) as f64 * bytes_per_elem).ceil() as u64;
        buf[lo..hi].clone_from_slice(&data);
    }
    (buf, sent, received)
}

/// Convenience: runs a full threaded ring all-reduce over the given worker
/// buffers, returning each worker's reduced buffer plus aggregate traffic.
pub fn threaded_ring_all_reduce<T, O>(
    bufs: Vec<Vec<T>>,
    op: O,
    bytes_per_elem: f64,
) -> (Vec<Vec<T>>, Traffic)
where
    T: Clone + Send + 'static,
    O: ReduceOp<T> + Send + Sync + Clone + 'static,
{
    let _span = gcs_trace::span(gcs_trace::Phase::Network, "threaded_ring_all_reduce");
    let _timer = gcs_metrics::timer("collective/threaded_ring_all_reduce/latency_ns");
    let n = bufs.len();
    let cluster: ThreadedCluster<T> = ThreadedCluster::new(n);
    let bufs = Arc::new(Mutex::new(
        bufs.into_iter().map(Some).collect::<Vec<Option<Vec<T>>>>(),
    ));
    let bufs_for_run = Arc::clone(&bufs);
    let results = cluster.run(move |rank, links| {
        let buf = bufs_for_run.lock().expect("buffer mutex poisoned")[rank]
            .take()
            .expect("buffer taken twice");
        ring_all_reduce_worker(links, buf, &op, bytes_per_elem)
    });
    let mut traffic = Traffic {
        sent: vec![0; n],
        received: vec![0; n],
        steps: 2 * (n as u32).saturating_sub(2) + 2,
    };
    let mut out = Vec::with_capacity(n);
    for (rank, (buf, s, r)) in results.into_iter().enumerate() {
        traffic.sent[rank] = s;
        traffic.received[rank] = r;
        out.push(buf);
    }
    gcs_trace::counter("wire_bytes", traffic.total() as f64);
    gcs_metrics::counter_add(
        "collective/threaded_ring_all_reduce/wire_bytes_total",
        traffic.total() as f64,
    );
    gcs_metrics::observe(
        "collective/threaded_ring_all_reduce/wire_bytes",
        traffic.total() as f64,
    );
    (out, traffic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::F32Sum;

    #[test]
    fn threaded_matches_sequential_reference() {
        for n in [2usize, 3, 4, 6] {
            let bufs: Vec<Vec<f32>> = (0..n)
                .map(|w| (0..37).map(|i| ((w * 37 + i) as f32).sin()).collect())
                .collect();
            let mut reference = bufs.clone();
            crate::ops::ring_all_reduce(&mut reference, &F32Sum, 4.0);
            let (threaded, traffic) = threaded_ring_all_reduce(bufs, F32Sum, 4.0);
            for (t, r) in threaded.iter().zip(&reference) {
                assert_eq!(t, r, "n={n}: threaded != sequential");
            }
            assert_eq!(traffic.sent.len(), n);
            assert!(traffic.sent.iter().all(|&s| s > 0));
        }
    }

    #[test]
    fn single_worker_is_identity() {
        let bufs = vec![vec![1.0f32, 2.0, 3.0]];
        let (out, traffic) = threaded_ring_all_reduce(bufs.clone(), F32Sum, 4.0);
        assert_eq!(out, bufs);
        assert_eq!(traffic.total(), 0);
    }

    #[test]
    fn links_reject_self_send() {
        let cluster: ThreadedCluster<f32> = ThreadedCluster::new(2);
        let results = cluster.run(|rank, links| {
            if rank == 0 {
                links.send(1, vec![1.0]);
                0usize
            } else {
                links.recv(0).len()
            }
        });
        assert_eq!(results, vec![0, 1]);
    }
}
