//! Message transports: run collective algorithms over real message-passing.
//!
//! [`crate::ops`] implements collectives as array shuffles for speed and
//! determinism. This module provides the *distributed* execution path: each
//! worker is an independent execution context that can only `send`/`recv`
//! typed messages to peers. Two implementations:
//!
//! * [`ThreadedCluster`] — one OS thread per worker, `std::sync::mpsc`
//!   channels as links. This is the "it actually works concurrently" proof:
//!   integration tests assert that a threaded ring all-reduce produces
//!   bit-identical results to the sequential reference.
//! * The sequential reference lives in `ops`; equivalence is the test.
//!
//! Failure semantics: the seed version of this module *panicked* on any
//! peer disconnect, which made degraded-fabric scenarios untestable. Every
//! link operation now returns [`CollectiveError`] instead — a vanished peer
//! surfaces as [`CollectiveError::PeerLost`] on whichever worker observes
//! it first, and the per-op worker functions propagate it. The
//! [`MessageLinks`] trait is the seam the fault-injection layer
//! (`gcs-faults`) plugs into: the same worker bodies run unchanged over
//! healthy [`WorkerLinks`] or a lossy, delaying, crashing wrapper.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::CollectiveError;
use crate::ops::Traffic;
use crate::reduce::ReduceOp;

/// A worker's view of some transport: typed point-to-point links to every
/// peer, with typed failures. Implemented by [`WorkerLinks`] (healthy mpsc
/// mesh) and by `gcs-faults`' `FaultyLinks` (injected delay / drop /
/// duplication / crash with ack-and-resend recovery).
///
/// The per-op worker functions ([`ring_all_reduce_worker`],
/// [`broadcast_worker`], [`all_gather_worker`]) are generic over this trait,
/// so a faulty execution runs the *same* algorithm as the reference — which
/// is what makes "recovered run is bitwise-identical" a meaningful test.
pub trait MessageLinks<T> {
    /// This worker's rank.
    fn rank(&self) -> usize;
    /// Number of workers in the cluster.
    fn n(&self) -> usize;
    /// Sends a message to `peer`. May block (e.g. settling delivery of a
    /// previous frame under a reliability protocol).
    fn send(&mut self, peer: usize, data: Vec<T>) -> Result<(), CollectiveError>;
    /// Blocks until a message from `peer` arrives (bounded by the
    /// implementation's timeout discipline, if any).
    fn recv(&mut self, peer: usize) -> Result<Vec<T>, CollectiveError>;
    /// Settles any outstanding delivery guarantees before the worker
    /// returns (no-op for transports with fire-and-forget sends).
    fn flush(&mut self) -> Result<(), CollectiveError> {
        Ok(())
    }
    /// Borrow-based send (ISSUE 9): transmits `data` without taking
    /// ownership. The default routes through the owned [`MessageLinks::send`]
    /// — one clone, exactly what the pre-seam worker bodies paid — so
    /// channel transports and `gcs-faults`' `FaultyLinks` work unchanged.
    /// Byte-oriented transports override this to encode straight from the
    /// caller's slice into persistent scratch (zero allocations per send).
    fn send_slice(&mut self, peer: usize, data: &[T]) -> Result<(), CollectiveError>
    where
        T: Clone,
    {
        self.send(peer, data.to_vec())
    }
    /// Borrow-based receive (ISSUE 9): blocks for one message from `peer`
    /// and decodes it into `out`, which must be exactly the message's
    /// element count (a mismatch is a [`CollectiveError::Protocol`] framing
    /// bug, not a resize request). The default routes through the owned
    /// [`MessageLinks::recv`]; byte-oriented transports override it to
    /// decode in place from their reassembly buffer.
    fn recv_into(&mut self, peer: usize, out: &mut [T]) -> Result<(), CollectiveError>
    where
        T: Clone,
    {
        let data = self.recv(peer)?;
        if data.len() != out.len() {
            return Err(CollectiveError::Protocol {
                peer,
                detail: format!(
                    "recv_into expected {} elements, peer sent {}",
                    out.len(),
                    data.len()
                ),
            });
        }
        out.clone_from_slice(&data);
        Ok(())
    }
    /// Preferred elements-per-message for pipelined segment streaming.
    /// Worker bodies split larger transfers into messages of at most this
    /// many elements, posting the next message's send while the previous
    /// receive drains — which is what lets reduce compute overlap wire
    /// transfer on a socket transport. The default (`usize::MAX`) disables
    /// chunking: in-process channels gain nothing from it, and the fault
    /// layer's frame protocol keeps its one-message-per-hop shape.
    ///
    /// Both sides of a link derive the chunk count from the same value
    /// (process-wide config) and the same element count, so the frame
    /// sequence always agrees without any length prelude on the wire.
    fn chunk_elems(&self) -> usize {
        usize::MAX
    }
}

/// Default bound on a blocking [`WorkerLinks::recv`]. Generous enough that
/// no healthy in-process collective ever hits it, small enough that a wedged
/// peer (thread alive, never sends) surfaces as a typed
/// [`CollectiveError::Timeout`] instead of hanging the run forever.
pub const DEFAULT_RECV_DEADLINE: Duration = Duration::from_secs(30);

/// A worker's view of the cluster: typed point-to-point links to every peer.
pub struct WorkerLinks<T> {
    rank: usize,
    n: usize,
    senders: Vec<Sender<Vec<T>>>,
    receivers: Vec<Receiver<Vec<T>>>,
    recv_deadline: Duration,
}

impl<T: Send + 'static> WorkerLinks<T> {
    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of workers in the cluster.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sends a message to `peer` (non-blocking, unbounded queue).
    ///
    /// Returns [`CollectiveError::PeerLost`] if the peer's receiving end has
    /// been dropped (its thread exited).
    ///
    /// # Panics
    /// Panics if `peer` is this worker or out of range (those are caller
    /// bugs, not runtime fabric conditions).
    pub fn send(&self, peer: usize, data: Vec<T>) -> Result<(), CollectiveError> {
        assert!(peer != self.rank && peer < self.n, "send: bad peer {peer}");
        self.senders[peer]
            .send(data)
            .map_err(|_| CollectiveError::PeerLost { peer })
    }

    /// Blocks until a message from `peer` arrives, bounded by the link's
    /// receive deadline ([`DEFAULT_RECV_DEADLINE`] unless overridden via
    /// [`WorkerLinks::set_recv_deadline`]).
    ///
    /// Returns [`CollectiveError::PeerLost`] if the peer hung up (its
    /// sending end dropped) with no message pending, and
    /// [`CollectiveError::Timeout`] if the peer is still alive but sent
    /// nothing within the deadline — a wedged peer must surface as a typed
    /// error, never as a hung collective.
    ///
    /// # Panics
    /// Panics if `peer` is this worker or out of range.
    pub fn recv(&self, peer: usize) -> Result<Vec<T>, CollectiveError> {
        self.recv_timeout(peer, self.recv_deadline)
    }

    /// Overrides the deadline that bounds blocking [`WorkerLinks::recv`]
    /// calls on this worker's links. Tests use a short deadline to pin the
    /// wedged-peer behaviour without waiting out the generous default.
    pub fn set_recv_deadline(&mut self, deadline: Duration) {
        self.recv_deadline = deadline;
    }

    /// The deadline currently bounding blocking receives.
    pub fn recv_deadline(&self) -> Duration {
        self.recv_deadline
    }

    /// Non-blocking receive: returns `Ok(None)` when no message from `peer`
    /// is queued. A disconnected peer reports [`CollectiveError::PeerLost`];
    /// pollers that merely service side traffic may choose to ignore it and
    /// let a blocking op that *needs* the peer surface the loss.
    ///
    /// # Panics
    /// Panics if `peer` is this worker or out of range.
    pub fn try_recv(&self, peer: usize) -> Result<Option<Vec<T>>, CollectiveError> {
        assert!(peer != self.rank && peer < self.n, "recv: bad peer {peer}");
        match self.receivers[peer].try_recv() {
            Ok(data) => Ok(Some(data)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(CollectiveError::PeerLost { peer }),
        }
    }

    /// Like [`WorkerLinks::recv`] but gives up after `timeout`, returning
    /// [`CollectiveError::Timeout`]. The building block of the fault layer's
    /// bounded-wait discipline (no blocking wait in a degraded cluster may
    /// be unbounded, or a crash upstream becomes a deadlock here).
    ///
    /// # Panics
    /// Panics if `peer` is this worker or out of range.
    pub fn recv_timeout(&self, peer: usize, timeout: Duration) -> Result<Vec<T>, CollectiveError> {
        assert!(peer != self.rank && peer < self.n, "recv: bad peer {peer}");
        self.receivers[peer]
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => CollectiveError::Timeout { peer, attempts: 1 },
                RecvTimeoutError::Disconnected => CollectiveError::PeerLost { peer },
            })
    }
}

impl<T: Send + 'static> MessageLinks<T> for WorkerLinks<T> {
    fn rank(&self) -> usize {
        WorkerLinks::rank(self)
    }

    fn n(&self) -> usize {
        WorkerLinks::n(self)
    }

    fn send(&mut self, peer: usize, data: Vec<T>) -> Result<(), CollectiveError> {
        WorkerLinks::send(self, peer, data)
    }

    fn recv(&mut self, peer: usize) -> Result<Vec<T>, CollectiveError> {
        WorkerLinks::recv(self, peer)
    }
}

/// A cluster of `n` workers connected all-to-all with typed channels.
pub struct ThreadedCluster<T> {
    links: Vec<WorkerLinks<T>>,
}

impl<T: Send + 'static> ThreadedCluster<T> {
    /// Builds the all-to-all channel mesh for `n` workers.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> ThreadedCluster<T> {
        assert!(n > 0, "ThreadedCluster: n must be positive");
        // channel[from][to]
        let mut senders: Vec<Vec<Option<Sender<Vec<T>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<Receiver<Vec<T>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    let (tx, rx) = channel();
                    senders[from][to] = Some(tx);
                    // receivers indexed by [owner][peer]: owner `to` receives
                    // from peer `from`.
                    receivers[to][from] = Some(rx);
                }
            }
        }
        let links = (0..n)
            .map(|rank| {
                let s: Vec<Sender<Vec<T>>> = senders[rank]
                    .iter_mut()
                    .enumerate()
                    .map(|(to, slot)| {
                        slot.take().unwrap_or_else(|| {
                            // Self-link: a dangling channel never used (send
                            // to self is forbidden by WorkerLinks::send).
                            let (tx, _rx) = channel();
                            let _ = to;
                            tx
                        })
                    })
                    .collect();
                let r: Vec<Receiver<Vec<T>>> = receivers[rank]
                    .iter_mut()
                    .map(|slot| {
                        slot.take().unwrap_or_else(|| {
                            let (_tx, rx) = channel();
                            rx
                        })
                    })
                    .collect();
                WorkerLinks {
                    rank,
                    n,
                    senders: s,
                    receivers: r,
                    recv_deadline: DEFAULT_RECV_DEADLINE,
                }
            })
            .collect();
        ThreadedCluster { links }
    }

    /// Overrides the blocking-receive deadline on every worker's links
    /// (see [`WorkerLinks::set_recv_deadline`]).
    pub fn set_recv_deadline(&mut self, deadline: Duration) {
        for links in &mut self.links {
            links.set_recv_deadline(deadline);
        }
    }

    /// Runs `body(rank, links)` on one thread per worker and returns each
    /// worker's output, in rank order. Each worker *owns* its links, so a
    /// worker that returns early (crash, error) drops its endpoints and its
    /// peers observe [`CollectiveError::PeerLost`] instead of hanging.
    ///
    /// # Panics
    /// Propagates any worker panic. (Workers that *fail* should return a
    /// `Result` rather than panic; the chaos suite enforces this.)
    pub fn run<R, F>(self, body: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize, WorkerLinks<T>) -> R + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let results: Arc<Mutex<Vec<Option<R>>>> =
            Arc::new(Mutex::new((0..self.links.len()).map(|_| None).collect()));
        let mut handles = Vec::new();
        for links in self.links {
            let body = Arc::clone(&body);
            let results = Arc::clone(&results);
            handles.push(std::thread::spawn(move || {
                let rank = links.rank();
                let out = body(rank, links);
                results.lock().expect("results mutex poisoned")[rank] = Some(out);
            }));
        }
        for h in handles {
            h.join().expect("worker thread panicked");
        }
        Arc::try_unwrap(results)
            .unwrap_or_else(|_| panic!("worker results still shared"))
            .into_inner()
            .expect("results mutex poisoned")
            .into_iter()
            .map(|r| r.expect("worker produced no result"))
            .collect()
    }
}

/// Ring all-reduce executed by one worker over message-passing links.
///
/// The algorithm (and therefore the reduction order) matches
/// [`crate::ops::ring_all_reduce`] exactly, so results are bit-identical —
/// the integration tests (and the chaos suite's recovered-run identity
/// check) rely on this.
///
/// Returns the fully reduced buffer and this worker's traffic counts
/// `(bytes_sent, bytes_received)`, or the first [`CollectiveError`] the
/// transport surfaced.
pub fn ring_all_reduce_worker<T, O, L>(
    links: &mut L,
    mut buf: Vec<T>,
    op: &O,
    bytes_per_elem: f64,
) -> Result<(Vec<T>, u64, u64), CollectiveError>
where
    T: Clone + Send + 'static,
    O: ReduceOp<T>,
    L: MessageLinks<T>,
{
    let mut scratch = Vec::new();
    let (sent, received) =
        ring_all_reduce_worker_into(links, &mut buf, op, bytes_per_elem, &mut scratch)?;
    Ok((buf, sent, received))
}

/// How many messages a transfer of `len` elements becomes under `chunk`.
/// Zero-length transfers still cost one (empty) message, preserving the
/// per-hop frame count of the unchunked algorithm.
fn chunk_count(len: usize, chunk: usize) -> usize {
    len.div_ceil(chunk).max(1)
}

/// Zero-allocation ring all-reduce worker body (ISSUE 9 tentpole): reduces
/// `buf` in place, staging incoming reduce-scatter segments in the
/// caller-owned `scratch` (sized once to the largest segment; no heap
/// traffic at steady state when `scratch` is reused across rounds).
///
/// Segments stream through the borrow-based [`MessageLinks::send_slice`] /
/// [`MessageLinks::recv_into`] entry points in chunks of at most
/// [`MessageLinks::chunk_elems`] elements, with chunk `c`'s send posted
/// before chunk `c`'s receive is drained and each received chunk reduced
/// (or, in the all-gather phase, decoded straight into its final position
/// in `buf`) before the next chunk is awaited — the pipelining that lets
/// reduce compute overlap wire transfer on a socket transport.
///
/// Bitwise identity with the unchunked algorithm holds because chunking
/// never reorders anything: chunks of a segment are sent, received and
/// reduced in ascending offset order over a FIFO link, and `reduce_slice`
/// is elementwise, so the per-element fold order is exactly that of
/// [`crate::ops::ring_all_reduce`]. Traffic is counted per segment (not per
/// chunk), so `(sent, received)` match the channel transport exactly — the
/// differential suite's accounting identity.
pub fn ring_all_reduce_worker_into<T, O, L>(
    links: &mut L,
    buf: &mut [T],
    op: &O,
    bytes_per_elem: f64,
    scratch: &mut Vec<T>,
) -> Result<(u64, u64), CollectiveError>
where
    T: Clone,
    O: ReduceOp<T>,
    L: MessageLinks<T>,
{
    let n = links.n();
    let i = links.rank();
    let len = buf.len();
    let mut sent = 0u64;
    let mut received = 0u64;
    if n == 1 || len == 0 {
        return Ok((0, 0));
    }
    let seg_bounds = |seg: usize| -> (usize, usize) {
        let base = len / n;
        let extra = len % n;
        let start = seg * base + seg.min(extra);
        (start, start + base + usize::from(seg < extra))
    };
    let next = (i + 1) % n;
    let prev = (i + n - 1) % n;
    let chunk = links.chunk_elems().max(1);
    // Size the staging buffer to the largest segment once; recv_into
    // overwrites every element it covers, so stale contents are harmless.
    let max_seg = len / n + usize::from(!len.is_multiple_of(n));
    if scratch.len() < max_seg {
        scratch.resize(max_seg, buf[0].clone());
    }

    // Reduce-scatter.
    for k in 0..n - 1 {
        let (slo, shi) = seg_bounds((i + n - k) % n);
        let (rlo, rhi) = seg_bounds((prev + n - k) % n);
        let (send_chunks, recv_chunks) =
            (chunk_count(shi - slo, chunk), chunk_count(rhi - rlo, chunk));
        for c in 0..send_chunks.max(recv_chunks) {
            if c < send_chunks {
                let lo = slo + c * chunk;
                let hi = shi.min(lo.saturating_add(chunk));
                links.send_slice(next, &buf[lo..hi])?;
            }
            if c < recv_chunks {
                let o0 = c * chunk;
                let o1 = (rhi - rlo).min(o0.saturating_add(chunk));
                links.recv_into(prev, &mut scratch[o0..o1])?;
                op.reduce_slice(&mut buf[rlo + o0..rlo + o1], &scratch[o0..o1]);
            }
        }
        sent += ((shi - slo) as f64 * bytes_per_elem).ceil() as u64;
        received += ((rhi - rlo) as f64 * bytes_per_elem).ceil() as u64;
    }
    // All-gather: received chunks decode straight into their final position.
    for k in 0..n - 1 {
        let (slo, shi) = seg_bounds((i + 1 + n - k) % n);
        let (rlo, rhi) = seg_bounds((prev + 1 + n - k) % n);
        let (send_chunks, recv_chunks) =
            (chunk_count(shi - slo, chunk), chunk_count(rhi - rlo, chunk));
        for c in 0..send_chunks.max(recv_chunks) {
            if c < send_chunks {
                let lo = slo + c * chunk;
                let hi = shi.min(lo.saturating_add(chunk));
                links.send_slice(next, &buf[lo..hi])?;
            }
            if c < recv_chunks {
                let lo = rlo + c * chunk;
                let hi = rhi.min(lo.saturating_add(chunk));
                links.recv_into(prev, &mut buf[lo..hi])?;
            }
        }
        sent += ((shi - slo) as f64 * bytes_per_elem).ceil() as u64;
        received += ((rhi - rlo) as f64 * bytes_per_elem).ceil() as u64;
    }
    links.flush()?;
    Ok((sent, received))
}

/// Broadcast executed by one worker: the root sends its buffer to every
/// peer (ascending rank order), everyone else receives from the root.
/// Result matches [`crate::ops::broadcast`]: every worker returns the
/// root's buffer.
pub fn broadcast_worker<T, L>(
    links: &mut L,
    buf: Vec<T>,
    root: usize,
    bytes_per_elem: f64,
) -> Result<(Vec<T>, u64, u64), CollectiveError>
where
    T: Clone + Send + 'static,
    L: MessageLinks<T>,
{
    let n = links.n();
    let i = links.rank();
    assert!(root < n, "broadcast_worker: root {root} out of range");
    if n == 1 {
        return Ok((buf, 0, 0));
    }
    let bytes = (buf.len() as f64 * bytes_per_elem).ceil() as u64;
    if i == root {
        for peer in 0..n {
            if peer != root {
                links.send_slice(peer, &buf)?;
            }
        }
        links.flush()?;
        Ok((buf, bytes * (n as u64 - 1), 0))
    } else {
        let data = links.recv(root)?;
        let bytes = (data.len() as f64 * bytes_per_elem).ceil() as u64;
        links.flush()?;
        Ok((data, 0, bytes))
    }
}

/// All-gather executed by one worker: sends its buffer to every peer and
/// returns the concatenation of all workers' buffers in rank order —
/// matching [`crate::ops::all_gather`]'s output exactly.
pub fn all_gather_worker<T, L>(
    links: &mut L,
    buf: Vec<T>,
    bytes_per_elem: f64,
) -> Result<(Vec<T>, u64, u64), CollectiveError>
where
    T: Clone + Send + 'static,
    L: MessageLinks<T>,
{
    let n = links.n();
    let i = links.rank();
    if n == 1 {
        return Ok((buf, 0, 0));
    }
    let own_bytes = (buf.len() as f64 * bytes_per_elem).ceil() as u64;
    let mut sent = 0u64;
    let mut received = 0u64;
    // Push to peers in ring order starting after self (spreads instantaneous
    // fan-in across the mesh; delivery order per pair is what matters).
    for k in 1..n {
        let peer = (i + k) % n;
        links.send_slice(peer, &buf)?;
        sent += own_bytes;
    }
    let mut parts: Vec<Option<Vec<T>>> = (0..n).map(|_| None).collect();
    parts[i] = Some(buf);
    for k in 1..n {
        let peer = (i + k) % n;
        let data = links.recv(peer)?;
        received += (data.len() as f64 * bytes_per_elem).ceil() as u64;
        parts[peer] = Some(data);
    }
    links.flush()?;
    let mut out = Vec::new();
    for p in parts {
        out.extend(p.expect("all parts present"));
    }
    Ok((out, sent, received))
}

/// Convenience: runs a full threaded ring all-reduce over the given worker
/// buffers, returning each worker's reduced buffer plus aggregate traffic,
/// or the first worker error (lowest rank) on a degraded cluster.
pub fn threaded_ring_all_reduce<T, O>(
    bufs: Vec<Vec<T>>,
    op: O,
    bytes_per_elem: f64,
) -> Result<(Vec<Vec<T>>, Traffic), CollectiveError>
where
    T: Clone + Send + 'static,
    O: ReduceOp<T> + Send + Sync + Clone + 'static,
{
    let _span = gcs_trace::span(gcs_trace::Phase::Network, "threaded_ring_all_reduce");
    let _timer = gcs_metrics::timer("collective/threaded_ring_all_reduce/latency_ns");
    let n = bufs.len();
    let cluster: ThreadedCluster<T> = ThreadedCluster::new(n);
    let bufs = Arc::new(Mutex::new(
        bufs.into_iter().map(Some).collect::<Vec<Option<Vec<T>>>>(),
    ));
    let bufs_for_run = Arc::clone(&bufs);
    let results = cluster.run(move |rank, mut links| {
        let buf = bufs_for_run.lock().expect("buffer mutex poisoned")[rank]
            .take()
            .expect("buffer taken twice");
        ring_all_reduce_worker(&mut links, buf, &op, bytes_per_elem)
    });
    let mut traffic = Traffic {
        sent: vec![0; n],
        received: vec![0; n],
        steps: 2 * (n as u32).saturating_sub(2) + 2,
    };
    let mut out = Vec::with_capacity(n);
    for (rank, result) in results.into_iter().enumerate() {
        let (buf, s, r) = result?;
        traffic.sent[rank] = s;
        traffic.received[rank] = r;
        out.push(buf);
    }
    gcs_trace::counter("wire_bytes", traffic.total() as f64);
    gcs_metrics::counter_add(
        "collective/threaded_ring_all_reduce/wire_bytes_total",
        traffic.total() as f64,
    );
    gcs_metrics::observe(
        "collective/threaded_ring_all_reduce/wire_bytes",
        traffic.total() as f64,
    );
    Ok((out, traffic))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::F32Sum;

    #[test]
    fn threaded_matches_sequential_reference() {
        for n in [2usize, 3, 4, 6] {
            let bufs: Vec<Vec<f32>> = (0..n)
                .map(|w| (0..37).map(|i| ((w * 37 + i) as f32).sin()).collect())
                .collect();
            let mut reference = bufs.clone();
            crate::ops::ring_all_reduce(&mut reference, &F32Sum, 4.0);
            let (threaded, traffic) =
                threaded_ring_all_reduce(bufs, F32Sum, 4.0).expect("healthy cluster");
            for (t, r) in threaded.iter().zip(&reference) {
                assert_eq!(t, r, "n={n}: threaded != sequential");
            }
            assert_eq!(traffic.sent.len(), n);
            assert!(traffic.sent.iter().all(|&s| s > 0));
        }
    }

    #[test]
    fn single_worker_is_identity() {
        let bufs = vec![vec![1.0f32, 2.0, 3.0]];
        let (out, traffic) =
            threaded_ring_all_reduce(bufs.clone(), F32Sum, 4.0).expect("healthy cluster");
        assert_eq!(out, bufs);
        assert_eq!(traffic.total(), 0);
    }

    #[test]
    fn links_reject_self_send() {
        let cluster: ThreadedCluster<f32> = ThreadedCluster::new(2);
        let results = cluster.run(|rank, links| {
            if rank == 0 {
                links.send(1, vec![1.0]).expect("peer alive");
                0usize
            } else {
                links.recv(0).expect("peer alive").len()
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn threaded_broadcast_matches_reference() {
        let n = 4;
        let payload: Vec<f32> = (0..13).map(|i| (i as f32).cos()).collect();
        let cluster: ThreadedCluster<f32> = ThreadedCluster::new(n);
        let root_payload = payload.clone();
        let results = cluster.run(move |rank, mut links| {
            let buf = if rank == 1 {
                root_payload.clone()
            } else {
                Vec::new()
            };
            broadcast_worker(&mut links, buf, 1, 4.0)
        });
        for r in results {
            let (buf, _, _) = r.expect("healthy cluster");
            assert_eq!(buf, payload);
        }
    }

    #[test]
    fn threaded_all_gather_matches_reference() {
        let n = 3;
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|w| (0..5).map(|i| (w * 5 + i) as f32).collect())
            .collect();
        let (reference, _) = crate::ops::all_gather(&inputs, 4.0);
        let cluster: ThreadedCluster<f32> = ThreadedCluster::new(n);
        let inputs_for_run = inputs.clone();
        let results = cluster.run(move |rank, mut links| {
            all_gather_worker(&mut links, inputs_for_run[rank].clone(), 4.0)
        });
        for r in results {
            let (buf, _, _) = r.expect("healthy cluster");
            assert_eq!(buf, reference);
        }
    }

    /// Regression (ISSUE 5 satellite): a worker that disappears before the
    /// collective must surface as `CollectiveError::PeerLost` on the
    /// survivors — never a panic, never a hang. The seed code panicked here
    /// with "peer disconnected during collective".
    #[test]
    fn dropped_worker_surfaces_peer_lost_not_panic() {
        let n = 3;
        let cluster: ThreadedCluster<f32> = ThreadedCluster::new(n);
        let results = cluster.run(move |rank, mut links| {
            if rank == 0 {
                // Simulated pre-collective death: drop all links immediately.
                return Err(CollectiveError::WorkerCrashed { rank });
            }
            let buf: Vec<f32> = (0..24).map(|i| (rank * 24 + i) as f32).collect();
            ring_all_reduce_worker(&mut links, buf, &F32Sum, 4.0).map(|_| ())
        });
        assert_eq!(results[0], Err(CollectiveError::WorkerCrashed { rank: 0 }));
        for (rank, r) in results.iter().enumerate().skip(1) {
            match r {
                Err(CollectiveError::PeerLost { .. }) => {}
                other => panic!("worker {rank}: expected PeerLost, got {other:?}"),
            }
        }
    }

    /// Regression (ISSUE 7 satellite): a *wedged* peer — thread alive,
    /// links held open, but never sending — used to hang `recv` forever
    /// because the blocking path had no deadline. It must now surface as a
    /// typed `CollectiveError::Timeout` within the configured deadline.
    #[test]
    fn wedged_peer_surfaces_timeout_not_hang() {
        use std::sync::mpsc::channel;
        let mut cluster: ThreadedCluster<f32> = ThreadedCluster::new(2);
        cluster.set_recv_deadline(Duration::from_millis(30));
        let (release_tx, release_rx) = channel::<()>();
        let release_rx = Mutex::new(Some(release_rx));
        let results = cluster.run(move |rank, mut links| {
            if rank == 0 {
                // Wedge: keep the links alive (so no PeerLost fires) and
                // send nothing until the peer has had time to give up.
                let rx = release_rx
                    .lock()
                    .expect("release rx lock")
                    .take()
                    .expect("single wedged worker");
                let _ = rx.recv_timeout(Duration::from_secs(5));
                Ok(vec![])
            } else {
                let out = MessageLinks::recv(&mut links, 0);
                let _ = release_tx.send(());
                out
            }
        });
        assert!(
            matches!(results[1], Err(CollectiveError::Timeout { peer: 0, .. })),
            "expected Timeout from a wedged peer, got {:?}",
            results[1]
        );
    }

    #[test]
    fn recv_timeout_times_out_on_silent_peer() {
        let cluster: ThreadedCluster<f32> = ThreadedCluster::new(2);
        let results = cluster.run(|rank, links| {
            if rank == 0 {
                // Never sends; peer 1 must time out rather than hang.
                std::thread::sleep(Duration::from_millis(20));
                Ok(vec![])
            } else {
                links.recv_timeout(0, Duration::from_millis(5))
            }
        });
        assert!(matches!(
            results[1],
            Err(CollectiveError::Timeout { peer: 0, .. })
        ));
    }
}
