//! Concurrency stress and property tests for the collectives.

use gcs_collectives::{
    double_tree_all_reduce, hierarchical_ring_all_reduce, ring_all_reduce,
    threaded_ring_all_reduce, tree_all_reduce, F16Sum, F32Sum, SaturatingIntSum,
};
use gcs_tensor::half::encode_f16;
use proptest::prelude::*;

#[test]
fn threaded_ring_survives_many_concurrent_invocations() {
    // Launch several threaded all-reduces back to back with varying shapes;
    // any deadlock or cross-talk between channel meshes would hang or
    // corrupt results.
    for round in 0..20 {
        let n = 2 + (round % 5);
        let len = 17 + round * 13;
        let bufs: Vec<Vec<f32>> = (0..n)
            .map(|w| {
                (0..len)
                    .map(|i| ((w * len + i + round) as f32).sin())
                    .collect()
            })
            .collect();
        let mut reference = bufs.clone();
        ring_all_reduce(&mut reference, &F32Sum, 4.0);
        let (threaded, traffic) =
            threaded_ring_all_reduce(bufs, F32Sum, 4.0).expect("healthy cluster");
        assert_eq!(threaded, reference, "round {round}");
        assert_eq!(traffic.sent.len(), n);
    }
}

#[test]
fn threaded_ring_handles_large_payloads() {
    let n = 4;
    let len = 200_000;
    let bufs: Vec<Vec<f32>> = (0..n)
        .map(|w| (0..len).map(|i| ((w + i) % 17) as f32 * 0.125).collect())
        .collect();
    let mut reference = bufs.clone();
    ring_all_reduce(&mut reference, &F32Sum, 4.0);
    let (threaded, _) = threaded_ring_all_reduce(bufs, F32Sum, 4.0).expect("healthy cluster");
    assert_eq!(threaded, reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_allreduce_algorithms_agree(
        n in 2usize..9,
        data in prop::collection::vec(-100.0f32..100.0, 4..120),
    ) {
        let bufs: Vec<Vec<f32>> = (0..n)
            .map(|w| data.iter().map(|x| x * (w as f32 + 0.5)).collect())
            .collect();
        let mut ring = bufs.clone();
        ring_all_reduce(&mut ring, &F32Sum, 4.0);
        let mut tree = bufs.clone();
        tree_all_reduce(&mut tree, &F32Sum, 4.0);
        let mut dtree = bufs.clone();
        double_tree_all_reduce(&mut dtree, &F32Sum, 4.0);
        for (a, b) in ring[0].iter().zip(&tree[0]) {
            prop_assert!((a - b).abs() < 1e-2 * a.abs().max(1.0));
        }
        for (a, b) in ring[0].iter().zip(&dtree[0]) {
            prop_assert!((a - b).abs() < 1e-2 * a.abs().max(1.0));
        }
        // Hierarchical for every divisor group size.
        for group in 1..=n {
            if n % group != 0 {
                continue;
            }
            let mut h = bufs.clone();
            hierarchical_ring_all_reduce(&mut h, group, &F32Sum, 4.0);
            for (a, b) in ring[0].iter().zip(&h[0]) {
                prop_assert!((a - b).abs() < 1e-2 * a.abs().max(1.0), "group {group}");
            }
        }
    }

    #[test]
    fn f16_threaded_equals_sequential_for_random_inputs(
        n in 2usize..6,
        data in prop::collection::vec(-100.0f32..100.0, 8..60),
    ) {
        let bufs: Vec<Vec<gcs_tensor::F16>> = (0..n)
            .map(|w| {
                let v: Vec<f32> = data.iter().map(|x| x + w as f32).collect();
                encode_f16(&v)
            })
            .collect();
        let mut reference = bufs.clone();
        ring_all_reduce(&mut reference, &F16Sum, 2.0);
        let (threaded, _) = threaded_ring_all_reduce(bufs, F16Sum, 2.0).expect("healthy cluster");
        prop_assert_eq!(threaded, reference);
    }

    #[test]
    fn saturating_allreduce_result_independent_of_start_rank_symmetry(
        n in 2usize..6,
        lanes in prop::collection::vec(-7i32..=7, 8..40),
    ) {
        // All workers identical: the saturated sum must equal the clamped
        // n*value per lane.
        let bufs: Vec<Vec<i32>> = (0..n).map(|_| lanes.clone()).collect();
        let op = SaturatingIntSum::new(4);
        let mut out = bufs.clone();
        ring_all_reduce(&mut out, &op, 0.5);
        for (lane, &orig) in out[0].iter().zip(&lanes) {
            let expect = (orig * n as i32).clamp(-7, 7);
            prop_assert_eq!(*lane, expect);
        }
    }

    #[test]
    fn traffic_is_conserved(
        n in 2usize..8,
        len in 1usize..200,
    ) {
        let bufs: Vec<Vec<f32>> = (0..n).map(|w| vec![w as f32; len]).collect();
        let mut b = bufs.clone();
        let t = ring_all_reduce(&mut b, &F32Sum, 4.0);
        let sent: u64 = t.sent.iter().sum();
        let recv: u64 = t.received.iter().sum();
        prop_assert_eq!(sent, recv, "bytes sent must equal bytes received");
    }
}
