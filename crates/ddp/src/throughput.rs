//! Paper-scale throughput estimation (rounds/second).
//!
//! Combines the three cost models — model compute (calibrated, Table 2),
//! compression compute (`gcs-gpusim` roofline), and collective time
//! (`gcs-netsim` alpha–beta) — into per-round step times. All throughput
//! tables (2, 5, 6, 8, 9) are produced through this module.
//!
//! The model is deliberately non-overlapping (`step = compute +
//! compression + communication`): the paper's prototypes hook the full
//! gradient after backward, which serializes these phases.

use gcs_core::scheme::CompressionScheme;
use gcs_gpusim::{DeviceSpec, ModelProfile, Precision};
use gcs_netsim::{ClusterSpec, Collective};

/// The composed cost model.
#[derive(Clone, Debug)]
pub struct ThroughputModel {
    /// Per-GPU compute/kernels model.
    pub device: DeviceSpec,
    /// Collective timing model.
    pub cluster: ClusterSpec,
}

/// One step's time decomposition, seconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepBreakdown {
    /// Model forward+backward+optimizer.
    pub compute: f64,
    /// Compression/decompression kernels.
    pub compression: f64,
    /// Collective communication.
    pub communication: f64,
}

impl StepBreakdown {
    /// Total step seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.compression + self.communication
    }

    /// Rounds per second.
    ///
    /// A degenerate breakdown whose total is zero (or negative, from bad
    /// calibration inputs) models "no work per round"; rather than returning
    /// `inf`/`NaN` and poisoning downstream tables, this reports 0.0 —
    /// throughput is undefined, not infinite.
    pub fn rounds_per_sec(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        1.0 / total
    }

    /// The compression-overhead fraction the paper's Table 6 reports:
    /// compression compute time over total step time. Returns 0.0 when the
    /// total is non-positive (no step time means no overhead to attribute).
    pub fn compression_fraction(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        self.compression / total
    }
}

impl ThroughputModel {
    /// The paper's testbed (A100 × 4, 100 Gbps).
    pub fn paper_testbed() -> ThroughputModel {
        ThroughputModel {
            device: DeviceSpec::a100(),
            cluster: ClusterSpec::paper_testbed(),
        }
    }

    /// Step breakdown for a compression scheme on a model profile. Each
    /// component lands in a `throughput/step_*_s` telemetry histogram, so a
    /// sweep over schemes/models leaves its modelled step-time distribution
    /// in the registry.
    pub fn step(
        &self,
        scheme: &dyn CompressionScheme,
        model: &ModelProfile,
        train: Precision,
    ) -> StepBreakdown {
        let d = model.params;
        let breakdown = StepBreakdown {
            compute: model.compute_seconds(train),
            compression: scheme.compute_seconds(d, &self.device),
            communication: scheme
                .comm_events(d)
                .iter()
                .map(|e| e.seconds(&self.cluster))
                .sum(),
        };
        gcs_metrics::observe("throughput/step_compute_s", breakdown.compute);
        gcs_metrics::observe("throughput/step_compression_s", breakdown.compression);
        gcs_metrics::observe("throughput/step_communication_s", breakdown.communication);
        gcs_metrics::observe("throughput/step_total_s", breakdown.total());
        breakdown
    }

    /// Rounds/second for a scheme (Table 5/8/9 cells).
    pub fn rounds_per_sec(
        &self,
        scheme: &dyn CompressionScheme,
        model: &ModelProfile,
        train: Precision,
    ) -> f64 {
        self.step(scheme, model, train).rounds_per_sec()
    }

    /// Table 2 cell: an uncompressed baseline at (training precision,
    /// communication precision).
    pub fn baseline_rounds_per_sec(
        &self,
        model: &ModelProfile,
        train: Precision,
        comm_bits: f64,
    ) -> f64 {
        let comm = self.cluster.collective_seconds_bits(
            Collective::RingAllReduce,
            comm_bits,
            model.params,
        );
        1.0 / (model.compute_seconds(train) + comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::schemes::baseline::PrecisionBaseline;
    use gcs_core::schemes::topk::TopK;
    use gcs_core::schemes::topkc::TopKC;

    fn model() -> ModelProfile {
        ModelProfile::bert_large()
    }

    #[test]
    fn table2_bert_row_reproduced_within_ten_percent() {
        let tm = ThroughputModel::paper_testbed();
        let m = model();
        let cells = [
            (Precision::Tf32, 16.0, 3.32),
            (Precision::Tf32, 32.0, 2.44),
            (Precision::Fp32, 16.0, 3.17),
            (Precision::Fp32, 32.0, 2.36),
        ];
        for (train, bits, paper) in cells {
            let ours = tm.baseline_rounds_per_sec(&m, train, bits);
            assert!(
                (ours - paper).abs() / paper < 0.10,
                "train={train:?} bits={bits}: ours {ours:.2} vs paper {paper}"
            );
        }
    }

    #[test]
    fn table2_vgg_row_reproduced_within_ten_percent() {
        let tm = ThroughputModel::paper_testbed();
        let m = ModelProfile::vgg19();
        let cells = [
            (Precision::Tf32, 16.0, 9.31),
            (Precision::Tf32, 32.0, 6.59),
            (Precision::Fp32, 16.0, 8.73),
            (Precision::Fp32, 32.0, 6.37),
        ];
        for (train, bits, paper) in cells {
            let ours = tm.baseline_rounds_per_sec(&m, train, bits);
            assert!(
                (ours - paper).abs() / paper < 0.10,
                "train={train:?} bits={bits}: ours {ours:.2} vs paper {paper}"
            );
        }
    }

    #[test]
    fn topkc_beats_topk_at_every_bit_budget() {
        // Table 5's headline shape.
        let tm = ThroughputModel::paper_testbed();
        let m = model();
        for b in [0.5, 2.0, 8.0] {
            let topk = TopK::with_bits(b, 4, true);
            let topkc = TopKC::paper_config(b, 4);
            let r_topk = tm.rounds_per_sec(&topk, &m, Precision::Tf32);
            let r_topkc = tm.rounds_per_sec(&topkc, &m, Precision::Tf32);
            assert!(
                r_topkc > r_topk,
                "b={b}: TopKC {r_topkc:.2} should beat TopK {r_topk:.2}"
            );
        }
    }

    #[test]
    fn topk_degrades_faster_with_b_than_topkc() {
        let tm = ThroughputModel::paper_testbed();
        let m = model();
        let ratio = |scheme: &dyn CompressionScheme| tm.rounds_per_sec(scheme, &m, Precision::Tf32);
        let topk_drop =
            ratio(&TopK::with_bits(0.5, 4, true)) / ratio(&TopK::with_bits(8.0, 4, true));
        let topkc_drop = ratio(&TopKC::paper_config(0.5, 4)) / ratio(&TopKC::paper_config(8.0, 4));
        assert!(topk_drop > topkc_drop, "{topk_drop} vs {topkc_drop}");
    }

    #[test]
    fn fp16_baseline_beats_fp32_baseline() {
        let tm = ThroughputModel::paper_testbed();
        let m = model();
        let fp16 = PrecisionBaseline::fp16();
        let fp32 = PrecisionBaseline::fp32();
        assert!(
            tm.rounds_per_sec(&fp16, &m, Precision::Tf32)
                > tm.rounds_per_sec(&fp32, &m, Precision::Tf32)
        );
    }

    #[test]
    fn breakdown_sums() {
        let tm = ThroughputModel::paper_testbed();
        let m = model();
        let s = tm.step(&TopK::with_bits(2.0, 4, true), &m, Precision::Tf32);
        assert!(s.compute > 0.0 && s.compression > 0.0 && s.communication > 0.0);
        assert!((s.total() - (s.compute + s.compression + s.communication)).abs() < 1e-12);
        assert!(s.compression_fraction() > 0.0 && s.compression_fraction() < 1.0);
    }

    #[test]
    fn step_breakdown_is_observed_into_histograms() {
        let tm = ThroughputModel::paper_testbed();
        let m = model();
        let (s, reg) = gcs_metrics::with_capture(|| {
            tm.step(&TopK::with_bits(2.0, 4, true), &m, Precision::Tf32)
        });
        if !gcs_metrics::is_captured() {
            return;
        }
        let total = reg.hist("throughput/step_total_s").unwrap();
        assert!(total.count() >= 1);
        assert!((total.max().unwrap() - s.total()).abs() <= s.total() * 1e-12);
        assert!(reg.hist("throughput/step_communication_s").is_some());
    }

    #[test]
    fn zero_total_breakdown_is_finite() {
        // An all-zero breakdown (e.g. a placeholder row before calibration)
        // must not produce inf/NaN that poisons a table.
        let z = StepBreakdown::default();
        assert_eq!(z.total(), 0.0);
        assert_eq!(z.rounds_per_sec(), 0.0);
        assert_eq!(z.compression_fraction(), 0.0);
        assert!(z.rounds_per_sec().is_finite());
        assert!(z.compression_fraction().is_finite());
    }

    #[test]
    fn negative_total_breakdown_is_finite() {
        // Bad calibration inputs can go negative; still no inf/NaN.
        let b = StepBreakdown {
            compute: -1.0,
            compression: 0.25,
            communication: 0.25,
        };
        assert!(b.total() < 0.0);
        assert_eq!(b.rounds_per_sec(), 0.0);
        assert_eq!(b.compression_fraction(), 0.0);
    }
}
