//! # gcs-ddp
//!
//! The distributed data-parallel training engine: ties the NN substrate, the
//! compression schemes, the collectives, and the cost models into end-to-end
//! experiments.
//!
//! * [`engine`] — the training loop: n workers compute real gradients on
//!   their shards, a compression scheme aggregates them (for real), the
//!   shared model steps, and the simulated clock advances by
//!   `compute + compression + communication` time at *paper scale*.
//! * [`throughput`] — closed-form round-rate estimation used by the paper's
//!   throughput tables (2, 5, 6, 8, 9).
//! * [`bucketing`] — PyTorch-DDP-style gradient buckets and a pipelined
//!   (comm/compute-overlapping) step-time model, quantifying how much of a
//!   compression scheme's advantage survives overlap (the Espresso/CUPCAKE
//!   dimension of Table 1).
//! * [`experiments`] — canned configurations reproducing each figure.
//! * [`fleet`] — transport-generic training rounds over the `MessageLinks`
//!   seam: the same round body runs in-process (`ThreadedCluster`) or
//!   across processes (`TcpLinks`), with a parameter checksum for bitwise
//!   cross-transport comparison and elastic re-sync after membership
//!   changes.

pub mod bucketing;
pub mod engine;
pub mod experiments;
pub mod fleet;
pub mod throughput;

pub use bucketing::{bucket_ranges, PipelineModel};
pub use engine::{FaultEvent, OptimizerKind, TrainLog, Trainer, TrainerConfig};
pub use experiments::{ExperimentPlan, Task};
pub use fleet::{fleet_round, param_checksum, sync_params, FleetRoundOutcome};
pub use throughput::{StepBreakdown, ThroughputModel};
