//! Transport-generic data-parallel training rounds for elastic fleets.
//!
//! The [`Trainer`](crate::engine::Trainer) in [`engine`](crate::engine)
//! simulates a cluster inside one process with a simulated clock — ideal
//! for TTA studies, useless for exercising a *real* transport. This module
//! is the other half: one training round expressed against the
//! [`MessageLinks`] seam, so the exact same round body runs over
//! `ThreadedCluster` channels (the in-process reference) or `TcpLinks`
//! (the multi-process socket mesh), and the results can be compared
//! bitwise.
//!
//! Determinism contract — the basis of the tcp-vs-threaded differential
//! tests:
//!
//! * every worker constructs the same model from the same seed, so initial
//!   parameters are identical without any startup broadcast;
//! * `Model::train_batch(batch, rank, round)` is a pure function of its
//!   arguments, so shards depend only on *logical* identity, not transport;
//! * the ring all-reduce reduces in a fixed order, so the summed gradient
//!   is bit-identical on every worker and across transports;
//! * the mean divides by the same `n` everywhere, and `Sgd::step_into` is
//!   sequential scalar code.
//!
//! Hence after any number of rounds, [`param_checksum`] agrees across all
//! workers and across transports — and any divergence pinpoints a
//! transport bug, not float noise.
//!
//! Elasticity: when membership changes mid-run (crash or join), ranks are
//! renumbered and the survivors' parameters are authoritative. Callers
//! re-sync with [`sync_params`] (rank 0 broadcasts; everyone resets
//! optimizer state so momentum stays identical fleet-wide) and then resume
//! [`fleet_round`] under the new `(rank, n)`.

use gcs_collectives::error::CollectiveError;
use gcs_collectives::transport::{broadcast_worker, ring_all_reduce_worker, MessageLinks};
use gcs_collectives::F32Sum;
use gcs_nn::{Model, Sgd};
use gcs_tensor::rng::splitmix64;

/// What one successful [`fleet_round`] produced on this worker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetRoundOutcome {
    /// This worker's local training loss for the round (pre-aggregation).
    pub loss: f32,
    /// Payload bytes this worker sent during the all-reduce.
    pub bytes_sent: u64,
    /// Payload bytes this worker received during the all-reduce.
    pub bytes_received: u64,
}

/// Runs one synchronous data-parallel SGD round over any transport.
///
/// Shard → backward → ring all-reduce (exact `F32Sum`) → mean → SGD step.
/// The model is only mutated *after* the all-reduce succeeds, so a failed
/// round (peer crash, timeout) leaves parameters untouched and the round
/// can be retried wholesale after the fleet renumbers — rounds are atomic.
pub fn fleet_round<L: MessageLinks<f32>>(
    model: &mut dyn Model,
    opt: &mut Sgd,
    links: &mut L,
    batch_per_worker: usize,
    round: u64,
) -> Result<FleetRoundOutcome, CollectiveError> {
    let rank = links.rank();
    let n = links.n();
    let (loss, grads) = {
        let _s = gcs_trace::span(gcs_trace::Phase::Compute, "fleet_compute");
        let batch = model.train_batch(batch_per_worker, rank, round);
        let loss = model.forward_backward(&batch);
        (loss, model.grads_flat().to_vec())
    };
    let (mut sum, bytes_sent, bytes_received) = {
        let _s = gcs_trace::span(gcs_trace::Phase::Network, "fleet_all_reduce");
        ring_all_reduce_worker(links, grads, &F32Sum, 4.0)?
    };
    gcs_trace::counter("fleet_wire_bytes", (bytes_sent + bytes_received) as f64);
    {
        let _s = gcs_trace::span(gcs_trace::Phase::Optimizer, "fleet_sgd_step");
        let inv = 1.0 / n as f32;
        for g in &mut sum {
            *g *= inv;
        }
        opt.step_into(model.params_flat_mut(), &sum);
    }
    Ok(FleetRoundOutcome {
        loss,
        bytes_sent,
        bytes_received,
    })
}

/// Re-synchronizes a renumbered fleet: rank 0's parameters are broadcast
/// and adopted by everyone, and *every* worker resets its optimizer state.
///
/// The reset is what keeps the fleet deterministic after an elastic event:
/// a late joiner has zero momentum while survivors carry history, so
/// without the fleet-wide reset their SGD steps — and therefore their
/// parameters — would silently diverge on the very next round.
pub fn sync_params<L: MessageLinks<f32>>(
    model: &mut dyn Model,
    opt: &mut Sgd,
    links: &mut L,
) -> Result<(), CollectiveError> {
    let _s = gcs_trace::span(gcs_trace::Phase::Network, "fleet_sync_params");
    let params = model.params_flat().to_vec();
    let (params, _, _) = broadcast_worker(links, params, 0, 4.0)?;
    model.set_flat_params(&params);
    opt.reset();
    Ok(())
}

/// Order-sensitive checksum of the model's parameter bits: a SplitMix64
/// fold over `f32::to_bits`. Two models agree iff their parameters are
/// bitwise identical — the cross-process equality assertion of the fleet
/// tests, cheap enough to print every run.
pub fn param_checksum(model: &dyn Model) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for p in model.params_flat() {
        acc = splitmix64(acc ^ u64::from(p.to_bits()));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_collectives::transport::ThreadedCluster;
    use gcs_nn::VggMini;

    fn train_threaded(n: usize, rounds: u64, seed: u64) -> Vec<(u64, Vec<f32>)> {
        let cluster = ThreadedCluster::<f32>::new(n);
        cluster.run(move |_rank, mut links| {
            let mut model = VggMini::new(seed);
            let mut opt = Sgd::new(0.05, 0.9, 0.0);
            let mut losses = Vec::new();
            for round in 0..rounds {
                let out = fleet_round(&mut model, &mut opt, &mut links, 4, round)
                    .expect("healthy cluster");
                losses.push(out.loss);
            }
            (param_checksum(&model), losses)
        })
    }

    #[test]
    fn fleet_round_is_deterministic_and_fleet_wide_identical() {
        let a = train_threaded(3, 2, 11);
        let b = train_threaded(3, 2, 11);
        // All workers end bitwise identical, and reruns reproduce exactly.
        assert!(a.iter().all(|(c, _)| *c == a[0].0));
        assert_eq!(a, b);
    }

    #[test]
    fn sync_params_aligns_a_diverged_worker() {
        let results = ThreadedCluster::<f32>::new(2).run(|rank, mut links| {
            // Worker 1 starts from a different seed — a stand-in for a
            // late joiner with no training history.
            let mut model = VggMini::new(if rank == 0 { 7 } else { 8 });
            let mut opt = Sgd::new(0.05, 0.9, 0.0);
            sync_params(&mut model, &mut opt, &mut links).expect("healthy cluster");
            let after_sync = param_checksum(&model);
            let out = fleet_round(&mut model, &mut opt, &mut links, 4, 0).expect("healthy cluster");
            (after_sync, out.loss, param_checksum(&model))
        });
        assert_eq!(results[0].0, results[1].0, "sync must align parameters");
        assert_eq!(results[0].2, results[1].2, "post-round params must agree");
    }
}
