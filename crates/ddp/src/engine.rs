//! The distributed data-parallel training loop.
//!
//! One [`Trainer`] run is the paper's unit of end-to-end evaluation: a model
//! trained to convergence under a compression scheme, producing a
//! [`TtaCurve`]. Per round:
//!
//! 1. every worker computes a *real* gradient on its own batch shard
//!    (same parameters, different data — exactly DDP's data parallelism);
//! 2. the compression scheme runs a *real* distributed aggregation round
//!    (error feedback, consensus, quantization, saturation — all live);
//! 3. the shared parameters take an SGD step on the aggregated estimate;
//! 4. the simulated clock advances by the **paper-scale** step time, so the
//!    x-axis of the resulting curve is "wall-clock seconds on the paper's
//!    testbed" while the y-axis is genuine convergence of the mini model.
//!
//! This factorization (convergence measured, time modelled) is the
//! substitution documented in `DESIGN.md` §2.

use gcs_core::metrics::{Direction, EarlyStopping, TtaCurve};
use gcs_core::scheme::{AggregationOutcome, CompressionScheme, RoundContext};
use gcs_faults::TrainFaultPlan;
use gcs_nn::{Adam, LrSchedule, Model, Sgd};
use gcs_tensor::vector::vnmse;

/// Configuration of one training run.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Number of DDP workers.
    pub n_workers: usize,
    /// Per-worker batch size.
    pub batch_per_worker: usize,
    /// Master seed (drives data sharding and shared randomness).
    pub seed: u64,
    /// Hard cap on training rounds.
    pub max_rounds: u64,
    /// Evaluate the task metric every this many rounds.
    pub eval_every: u64,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Early stopping (GL threshold %, patience, min evals); `None` trains
    /// to `max_rounds`.
    pub early_stopping: Option<(f64, usize, usize)>,
    /// Measure vNMSE on every k-th round (0 disables); measuring requires
    /// an extra exact reduction, so sampling keeps runs fast.
    pub vnmse_every: u64,
    /// Which optimizer consumes the aggregated gradient.
    pub optimizer: OptimizerKind,
    /// Learning-rate schedule applied on top of `lr`.
    pub lr_schedule: LrSchedule,
    /// Injected worker crashes (`None`/empty = healthy run). On a crash the
    /// trainer renormalizes the ring over the survivors and keeps training;
    /// see [`TrainLog::fault_events`].
    pub faults: Option<TrainFaultPlan>,
}

/// Optimizer selection for a training run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptimizerKind {
    /// SGD with momentum (the paper's VGG-style setting).
    Sgd,
    /// AdamW (the practical choice for transformer LMs).
    Adam,
}

/// Internal: unified optimizer dispatch.
enum AnyOptimizer {
    Sgd(Sgd),
    Adam(Adam),
}

impl AnyOptimizer {
    fn new(cfg: &TrainerConfig) -> AnyOptimizer {
        match cfg.optimizer {
            OptimizerKind::Sgd => {
                AnyOptimizer::Sgd(Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay))
            }
            OptimizerKind::Adam => AnyOptimizer::Adam(Adam::new(cfg.lr, cfg.weight_decay)),
        }
    }

    /// Takes one scheduled-LR step in place on the model's flat parameter
    /// slice — no delta vector, no allocation in steady state.
    fn step_into(&mut self, params: &mut [f32], grad: &[f32], lr_factor: f32) {
        match self {
            AnyOptimizer::Sgd(o) => {
                let base = o.lr;
                o.lr = base * lr_factor;
                o.step_into(params, grad);
                o.lr = base;
            }
            AnyOptimizer::Adam(o) => {
                let base = o.lr;
                o.lr = base * lr_factor;
                o.step_into(params, grad);
                o.lr = base;
            }
        }
    }
}

impl Default for TrainerConfig {
    fn default() -> TrainerConfig {
        TrainerConfig {
            n_workers: 4,
            batch_per_worker: 8,
            seed: 1,
            max_rounds: 400,
            eval_every: 10,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            early_stopping: None,
            vnmse_every: 10,
            optimizer: OptimizerKind::Sgd,
            lr_schedule: LrSchedule::Constant,
            faults: None,
        }
    }
}

/// One graceful-degradation event recorded during training: a worker
/// crashed, the ring was renormalized over the survivors, training went on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Round at whose start the crash fired.
    pub round: u64,
    /// Worker id that crashed (pre-renormalization numbering of that round).
    pub worker: usize,
    /// Active workers *after* renormalization (0 = the run had to stop).
    pub survivors: usize,
}

/// The result of a training run.
#[derive(Clone, Debug)]
pub struct TrainLog {
    /// Raw (un-smoothed) TTA curve; x = simulated seconds, y = task metric.
    pub curve: TtaCurve,
    /// Per-round training-loss history `(round, loss)`.
    pub loss_history: Vec<(u64, f32)>,
    /// Mean vNMSE of the aggregated gradient over sampled rounds.
    pub mean_vnmse: f64,
    /// Rounds actually executed.
    pub rounds: u64,
    /// Mean measured payload bits per coordinate.
    pub bits_per_coord: f64,
    /// Whether early stopping triggered.
    pub early_stopped: bool,
    /// Final task metric.
    pub final_metric: f64,
    /// Injected worker crashes the run absorbed, in firing order.
    pub fault_events: Vec<FaultEvent>,
    /// Workers still active at the end of the run.
    pub survivors: usize,
}

impl TrainLog {
    /// First recorded eval metric, or `None` when the run crashed before
    /// its first eval (empty curve). Reporters must treat `None` as a
    /// null field, not a panic — all-workers-dead-at-round-0 is a valid
    /// degraded outcome.
    pub fn first_metric(&self) -> Option<f64> {
        self.curve.first_metric()
    }

    /// Last *recorded* eval metric, or `None` on an empty curve. Unlike
    /// [`TrainLog::final_metric`] (which falls back to a fresh
    /// `model.evaluate()`), this reflects only what the curve captured.
    pub fn last_eval(&self) -> Option<f64> {
        self.curve.final_metric()
    }
}

/// One worker replica plus its per-round outputs, used by the parallel
/// gradient path. `grads` is a persistent buffer refilled by
/// `copy_from_slice` every round, so the steady state allocates nothing.
struct WorkerSlot {
    model: Box<dyn Model + Send>,
    loss: f32,
    grads: Vec<f32>,
}

/// Builds per-worker model replicas when the parallel gradient path is
/// usable: more than one worker, a multi-threaded runtime, and a model that
/// supports replication ([`Model::clone_boxed`]). Returns an empty vec to
/// select the sequential fallback.
fn make_worker_slots(model: &dyn Model, n_workers: usize) -> Vec<WorkerSlot> {
    if n_workers <= 1 || gcs_tensor::parallel::max_threads() <= 1 {
        return Vec::new();
    }
    let mut slots = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        match model.clone_boxed() {
            Some(m) => slots.push(WorkerSlot {
                model: m,
                loss: 0.0,
                grads: Vec::new(),
            }),
            None => return Vec::new(),
        }
    }
    slots
}

/// Computes all per-worker gradients for one round into the caller's
/// persistent `grads` buffers: in parallel on the replicas in `slots`
/// (synced to `model`'s current parameters with one whole-arena
/// `copy_from_slice`), or sequentially on `model` itself when `slots` is
/// empty. Buffers are sized on first use and refilled in place afterwards,
/// so the steady state performs no heap allocation.
///
/// Both paths produce bitwise-identical losses and gradients: a worker's
/// gradient depends only on (parameters, batch), each replica carries the
/// same parameters the shared model would, and losses are folded in worker
/// order regardless of which thread computed them.
fn worker_gradients(
    model: &mut dyn Model,
    slots: &mut [WorkerSlot],
    grads: &mut Vec<Vec<f32>>,
    batch_per_worker: usize,
    n_workers: usize,
    round: u64,
) -> f32 {
    let d = model.param_count();
    if grads.len() != n_workers {
        grads.resize_with(n_workers, Vec::new);
    }
    if slots.is_empty() {
        let mut loss_acc = 0.0f32;
        for (w, gbuf) in grads.iter_mut().enumerate() {
            let batch = model.train_batch(batch_per_worker, w, round);
            loss_acc += model.forward_backward(&batch);
            if gbuf.len() != d {
                gbuf.resize(d, 0.0);
            }
            gbuf.copy_from_slice(model.grads_flat());
        }
        return loss_acc;
    }
    // Replica sync is one contiguous copy of the parameter arena per worker.
    let params: &[f32] = model.params_flat();
    gcs_tensor::parallel::for_each_chunk_mut(slots, 1, |w, slot| {
        let s = &mut slot[0];
        s.model.set_flat_params(params);
        let batch = s.model.train_batch(batch_per_worker, w, round);
        s.loss = s.model.forward_backward(&batch);
        if s.grads.len() != d {
            s.grads.resize(d, 0.0);
        }
        s.grads.copy_from_slice(s.model.grads_flat());
    });
    let mut loss_acc = 0.0f32;
    for (s, gbuf) in slots.iter_mut().zip(grads.iter_mut()) {
        loss_acc += s.loss;
        // Alternate ownership of the two full-size buffers instead of
        // copying: allocation-free once both are warm.
        std::mem::swap(&mut s.grads, gbuf);
    }
    loss_acc
}

/// Drives a model + scheme to convergence.
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainerConfig) -> Trainer {
        Trainer { config }
    }

    /// Runs the full training loop. `step_seconds` is the simulated
    /// paper-scale time per round for this scheme (from
    /// [`crate::throughput::ThroughputModel`]).
    pub fn train(
        &self,
        model: &mut dyn Model,
        scheme: &mut dyn CompressionScheme,
        step_seconds: f64,
    ) -> TrainLog {
        let cfg = &self.config;
        assert!(cfg.n_workers > 0, "Trainer: need at least one worker");
        assert!(step_seconds > 0.0, "Trainer: step time must be positive");
        scheme.reset();
        let direction = if model.higher_is_better() {
            Direction::HigherIsBetter
        } else {
            Direction::LowerIsBetter
        };
        let mut curve = TtaCurve::new(scheme.name(), direction);
        let mut opt = AnyOptimizer::new(cfg);
        let mut stopper = cfg.early_stopping.map(|(alpha, patience, min_evals)| {
            EarlyStopping::new(alpha, patience, min_evals, direction)
        });

        let d = model.param_count();
        let mut loss_history = Vec::new();
        let mut vnmse_sum = 0.0f64;
        let mut vnmse_n = 0u64;
        let mut bits_sum = 0.0f64;
        let mut early_stopped = false;
        let mut rounds_done = 0u64;
        let mut last_eval_round = 0u64;
        let mut slots = make_worker_slots(model, cfg.n_workers);
        // One reusable outcome and one set of per-worker gradient buffers
        // across rounds: with the pooled schemes the steady-state
        // aggregation path performs no heap allocation.
        let mut outcome = AggregationOutcome::default();
        let mut grads: Vec<Vec<f32>> = Vec::new();
        // Graceful degradation state: `active` shrinks when an injected
        // crash fires; survivors are renumbered 0..active-1, which is the
        // shard assignment an `active`-worker clean run would use.
        let mut active = cfg.n_workers;
        let mut fault_events: Vec<FaultEvent> = Vec::new();

        for round in 0..cfg.max_rounds {
            gcs_trace::set_round(round);
            let _round_timer = gcs_metrics::timer("train/round_latency_ns");

            // 0. Injected worker crashes scheduled at the top of this round:
            //    record the event, renormalize the ring over the survivors,
            //    and keep training. Only a cluster with zero survivors stops.
            if let Some(plan) = &cfg.faults {
                for crash in plan.crashes_at(round) {
                    if crash.worker >= active {
                        continue; // stale id: that slot is already gone
                    }
                    gcs_metrics::counter_add("faults/injected_total", 1.0);
                    gcs_metrics::counter_add("faults/worker_crash_total", 1.0);
                    active -= 1;
                    fault_events.push(FaultEvent {
                        round,
                        worker: crash.worker,
                        survivors: active,
                    });
                    if active > 0 {
                        gcs_metrics::counter_add("faults/recovered_total", 1.0);
                    } else {
                        gcs_metrics::counter_add("faults/train_aborted_total", 1.0);
                    }
                }
                slots.truncate(active);
            }
            if active == 0 {
                break;
            }

            // 1. Per-worker gradients on disjoint shards (parallel across
            //    workers when the model supports replication).
            let loss_acc = {
                let _s = gcs_trace::span(gcs_trace::Phase::Compute, "worker_gradients");
                worker_gradients(
                    model,
                    &mut slots,
                    &mut grads,
                    cfg.batch_per_worker,
                    active,
                    round,
                )
            };
            let mean_loss = loss_acc / active as f32;
            loss_history.push((round, mean_loss));
            gcs_metrics::series_push("train/loss", mean_loss as f64);

            // 2. Distributed aggregation through the scheme.
            let ctx = RoundContext::new(cfg.seed, round);
            scheme.aggregate_round_into(&grads, &ctx, &mut outcome);
            let bits = outcome.bits_per_coord(d as u64);
            bits_sum += bits;
            gcs_trace::counter("bits_per_coord", bits);
            gcs_metrics::series_push("train/bits_per_coord", bits);

            if cfg.vnmse_every > 0 && round % cfg.vnmse_every == 0 {
                let exact = gcs_tensor::vector::mean(&grads);
                let sample = vnmse(&outcome.mean_estimate, &exact);
                vnmse_sum += sample;
                vnmse_n += 1;
                gcs_trace::counter("vnmse", sample);
                gcs_metrics::series_push("train/vnmse", sample);
            }

            // 3. Optimizer step on the aggregate (scheduled LR), in place
            //    on the model's flat parameter arena.
            {
                let _s = gcs_trace::span(gcs_trace::Phase::Optimizer, "optimizer_step");
                opt.step_into(
                    model.params_flat_mut(),
                    &outcome.mean_estimate,
                    cfg.lr_schedule.factor(round),
                );
            }
            rounds_done = round + 1;

            // 4. Periodic evaluation on the simulated clock.
            if round % cfg.eval_every == cfg.eval_every - 1 {
                let t = (round + 1) as f64 * step_seconds;
                let metric = {
                    let _s = gcs_trace::span(gcs_trace::Phase::Eval, "evaluate");
                    model.evaluate()
                };
                curve.push(t, metric);
                gcs_metrics::series_push(gcs_metrics::EVAL_TIME_SERIES, t);
                gcs_metrics::series_push(gcs_metrics::EVAL_METRIC_SERIES, metric);
                last_eval_round = round + 1;
                if let Some(es) = stopper.as_mut() {
                    if es.observe(metric) {
                        early_stopped = true;
                        break;
                    }
                }
            }
        }

        // When max_rounds is not a multiple of eval_every the trailing
        // rounds trained past the last recorded point; evaluate once more at
        // the true end of training so `final_metric` (and the curve's tail)
        // reflect the parameters the run actually produced.
        if rounds_done > last_eval_round {
            let t = rounds_done as f64 * step_seconds;
            let metric = {
                let _s = gcs_trace::span(gcs_trace::Phase::Eval, "evaluate");
                model.evaluate()
            };
            curve.push(t, metric);
            gcs_metrics::series_push(gcs_metrics::EVAL_TIME_SERIES, t);
            gcs_metrics::series_push(gcs_metrics::EVAL_METRIC_SERIES, metric);
        }

        let final_metric = curve.final_metric().unwrap_or_else(|| model.evaluate());
        TrainLog {
            curve,
            loss_history,
            mean_vnmse: if vnmse_n > 0 {
                vnmse_sum / vnmse_n as f64
            } else {
                f64::NAN
            },
            rounds: rounds_done,
            bits_per_coord: bits_sum / rounds_done.max(1) as f64,
            early_stopped,
            final_metric,
            fault_events,
            survivors: active,
        }
    }

    /// Measures only the mean vNMSE of a scheme over `rounds` aggregation
    /// rounds of real training gradients (Tables 4 and 7), without
    /// recording TTA.
    pub fn measure_vnmse(
        &self,
        model: &mut dyn Model,
        scheme: &mut dyn CompressionScheme,
        rounds: u64,
    ) -> f64 {
        let cfg = &self.config;
        scheme.reset();
        let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
        let mut sum = 0.0f64;
        let mut slots = make_worker_slots(model, cfg.n_workers);
        let mut outcome = AggregationOutcome::default();
        let mut grads: Vec<Vec<f32>> = Vec::new();
        for round in 0..rounds {
            gcs_trace::set_round(round);
            {
                let _s = gcs_trace::span(gcs_trace::Phase::Compute, "worker_gradients");
                worker_gradients(
                    model,
                    &mut slots,
                    &mut grads,
                    cfg.batch_per_worker,
                    cfg.n_workers,
                    round,
                );
            }
            scheme.aggregate_round_into(&grads, &RoundContext::new(cfg.seed, round), &mut outcome);
            let exact = gcs_tensor::vector::mean(&grads);
            let sample = vnmse(&outcome.mean_estimate, &exact);
            gcs_trace::counter("vnmse", sample);
            sum += sample;
            // Keep training (on the *exact* mean, so every scheme sees the
            // same gradient distribution — the paper's vNMSE protocol
            // measures compression error, not compounded trajectories).
            opt.step_into(model.params_flat_mut(), &exact);
        }
        sum / rounds.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::schemes::baseline::PrecisionBaseline;
    use gcs_core::schemes::topkc::TopKC;
    use gcs_nn::BertMini;

    fn quick_config() -> TrainerConfig {
        TrainerConfig {
            n_workers: 2,
            batch_per_worker: 16,
            max_rounds: 150,
            eval_every: 25,
            lr: 0.01,
            momentum: 0.9,
            ..TrainerConfig::default()
        }
    }

    #[test]
    fn fp32_baseline_trains_the_lm() {
        let mut model = BertMini::new(2);
        let mut scheme = PrecisionBaseline::fp32();
        let log = Trainer::new(quick_config()).train(&mut model, &mut scheme, 0.5);
        let first = log.first_metric().expect("run recorded evals");
        let last = log.final_metric;
        assert!(last < first, "perplexity should fall: {first} -> {last}");
        assert!((log.bits_per_coord - 32.0).abs() < 0.5);
        assert!(log.mean_vnmse < 1e-10);
    }

    #[test]
    fn topkc_trains_with_nonzero_compression_error() {
        let mut model = BertMini::new(2);
        let mut scheme = TopKC::with_bits(2.0, 64, 2, true);
        let log = Trainer::new(quick_config()).train(&mut model, &mut scheme, 0.25);
        assert!(log.mean_vnmse > 1e-4, "vNMSE = {}", log.mean_vnmse);
        assert!(log.final_metric < log.first_metric().expect("run recorded evals"));
        assert!((log.bits_per_coord - 2.0).abs() < 0.5);
    }

    #[test]
    fn curve_time_axis_uses_step_seconds() {
        let mut model = BertMini::new(2);
        let mut scheme = PrecisionBaseline::fp16();
        let cfg = TrainerConfig {
            max_rounds: 40,
            eval_every: 10,
            ..quick_config()
        };
        let log = Trainer::new(cfg).train(&mut model, &mut scheme, 2.0);
        let times: Vec<f64> = log.curve.points.iter().map(|p| p.0).collect();
        assert_eq!(times, vec![20.0, 40.0, 60.0, 80.0]);
    }

    /// Regression: with `max_rounds % eval_every != 0` the run used to end
    /// with a TTA curve (and `final_metric`) frozen at the last periodic
    /// eval, ignoring the trailing rounds of training. The trainer must
    /// record one final evaluation at the true end of the run.
    #[test]
    fn final_metric_reflects_true_end_of_training() {
        let mut model = BertMini::new(2);
        let mut scheme = PrecisionBaseline::fp16();
        let cfg = TrainerConfig {
            max_rounds: 37,
            eval_every: 10,
            ..quick_config()
        };
        let step_seconds = 2.0;
        let log = Trainer::new(cfg).train(&mut model, &mut scheme, step_seconds);
        assert_eq!(log.rounds, 37);
        let times: Vec<f64> = log.curve.points.iter().map(|p| p.0).collect();
        // Periodic evals at rounds 10/20/30 plus the final one at round 37.
        assert_eq!(times, vec![20.0, 40.0, 60.0, 74.0]);
        // final_metric is the metric of that last point, i.e. the model
        // after all 37 rounds — not the stale round-30 evaluation.
        let last = log.last_eval().expect("run recorded evals");
        assert_eq!(log.final_metric, last);
        assert_eq!(log.final_metric, model.evaluate());
    }

    /// When the budget divides evenly, no duplicate end-of-run point is
    /// appended.
    #[test]
    fn no_duplicate_final_eval_when_budget_divides_evenly() {
        let mut model = BertMini::new(2);
        let mut scheme = PrecisionBaseline::fp16();
        let cfg = TrainerConfig {
            max_rounds: 40,
            eval_every: 10,
            ..quick_config()
        };
        let log = Trainer::new(cfg).train(&mut model, &mut scheme, 2.0);
        assert_eq!(log.curve.points.len(), 4);
        assert_eq!(log.curve.total_time(), 80.0);
    }

    #[test]
    fn early_stopping_cuts_training_short() {
        let mut model = BertMini::new(2);
        let mut scheme = PrecisionBaseline::fp32();
        let cfg = TrainerConfig {
            max_rounds: 2000,
            eval_every: 10,
            early_stopping: Some((2.0, 2, 5)),
            lr: 0.02,
            ..quick_config()
        };
        let log = Trainer::new(cfg).train(&mut model, &mut scheme, 0.1);
        assert!(
            log.rounds < 2000 || !log.early_stopped,
            "either it stopped early or it used the budget"
        );
    }

    #[test]
    fn adam_with_cosine_schedule_trains_the_lm() {
        let mut model = BertMini::new(2);
        let mut scheme = PrecisionBaseline::fp32();
        let cfg = TrainerConfig {
            optimizer: OptimizerKind::Adam,
            lr: 0.003,
            lr_schedule: gcs_nn::LrSchedule::WarmupCosine {
                warmup: 10,
                total: 150,
                floor: 0.1,
            },
            ..quick_config()
        };
        let log = Trainer::new(cfg).train(&mut model, &mut scheme, 0.5);
        let first = log.first_metric().expect("run recorded evals");
        assert!(
            log.final_metric < first,
            "Adam run did not improve: {first} -> {}",
            log.final_metric
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut model = BertMini::new(2);
            let mut scheme = TopKC::with_bits(2.0, 64, 2, true);
            let cfg = TrainerConfig {
                max_rounds: 30,
                ..quick_config()
            };
            Trainer::new(cfg).train(&mut model, &mut scheme, 0.5)
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_metric, b.final_metric);
        assert_eq!(a.mean_vnmse, b.mean_vnmse);
    }

    /// Tracing observes a training run without changing it: the same run
    /// with recording enabled is bitwise-identical to one with it off, and
    /// the trace covers every step phase (compute, compress, network,
    /// optimizer, eval) plus the per-round counters.
    #[test]
    fn tracing_captures_phases_without_perturbing_training() {
        let run = || {
            let mut model = BertMini::new(2);
            let mut scheme = TopKC::with_bits(2.0, 64, 2, true);
            let cfg = TrainerConfig {
                max_rounds: 12,
                eval_every: 5,
                ..quick_config()
            };
            Trainer::new(cfg).train(&mut model, &mut scheme, 0.5)
        };
        let baseline = run();
        let mut traced_log = None;
        let trace = gcs_trace::with_recording(|| traced_log = Some(run()));
        let traced = traced_log.unwrap();
        assert_eq!(baseline.loss_history, traced.loss_history);
        assert_eq!(baseline.final_metric, traced.final_metric);

        let report = gcs_trace::Report::from_trace(&trace);
        for phase in [
            gcs_trace::Phase::Compute,
            gcs_trace::Phase::Compress,
            gcs_trace::Phase::Network,
            gcs_trace::Phase::Optimizer,
            gcs_trace::Phase::Eval,
        ] {
            assert!(
                report.phase_total_ns(phase) > 0,
                "no spans recorded for phase {}",
                phase.as_str()
            );
        }
        // Lower bounds, not equalities: the trace recorder is process-global
        // and sibling tests running concurrently may record extra events
        // while this test has tracing enabled.
        assert!(report.op_calls("worker_gradients") >= 12);
        assert!(report.op_calls("optimizer_step") >= 12);
        assert!(report.counter("wire_bytes").unwrap().sum > 0.0);
        assert!(report.counter("bits_per_coord").unwrap().samples >= 12);
        assert!(report.counter("ef_residual_norm").is_some());
        assert!(report.rounds >= 12);
    }

    /// The PR 3 telemetry contract: a run with metrics recording enabled is
    /// bitwise-identical to one with it off, and the registry carries the
    /// per-round series, round-latency histogram, and collective wire-byte
    /// counters the exporters and monitors consume.
    #[test]
    fn metrics_capture_is_bitwise_invisible_to_training() {
        let run = || {
            let mut model = BertMini::new(2);
            let mut scheme = TopKC::with_bits(2.0, 64, 2, true);
            let cfg = TrainerConfig {
                max_rounds: 12,
                eval_every: 5,
                ..quick_config()
            };
            Trainer::new(cfg).train(&mut model, &mut scheme, 0.5)
        };
        let baseline = run();
        let (recorded, reg) = gcs_metrics::with_capture(run);
        assert_eq!(baseline.loss_history, recorded.loss_history);
        assert_eq!(baseline.final_metric, recorded.final_metric);
        assert_eq!(baseline.mean_vnmse, recorded.mean_vnmse);
        if !gcs_metrics::is_captured() {
            return;
        }
        // Lower bounds, not equalities: the hub is process-global and
        // sibling tests may record while capture is on.
        assert!(reg.series("train/loss").unwrap().len() >= 12);
        assert!(reg.series("train/bits_per_coord").unwrap().len() >= 12);
        assert!(reg.hist("train/round_latency_ns").unwrap().count() >= 12);
        assert!(reg
            .counter("collective/ring_all_reduce/wire_bytes_total")
            .is_some());
        let evals = reg.series(gcs_metrics::EVAL_METRIC_SERIES).unwrap().len();
        assert!(evals >= 3, "expected >= 3 eval points, got {evals}");
        // The TTA monitor rebuilds its curve from the registry series.
        let mon = gcs_metrics::TtaMonitor::from_registry(&reg, false, 2);
        assert_eq!(mon.curve().len(), evals);
        assert!(mon.latest().unwrap().is_finite());
    }

    /// Graceful degradation: an injected mid-run crash shrinks the ring,
    /// records the event, and the run finishes its full round budget over
    /// the survivors.
    #[test]
    fn injected_crash_shrinks_ring_and_training_continues() {
        let mut model = BertMini::new(2);
        let mut scheme = PrecisionBaseline::fp32();
        let cfg = TrainerConfig {
            n_workers: 3,
            max_rounds: 20,
            eval_every: 10,
            faults: Some(gcs_faults::TrainFaultPlan::crash_at(5, 1)),
            ..quick_config()
        };
        let log = Trainer::new(cfg).train(&mut model, &mut scheme, 0.5);
        assert_eq!(log.rounds, 20, "run must finish over the survivors");
        assert_eq!(log.survivors, 2);
        assert_eq!(
            log.fault_events,
            vec![FaultEvent {
                round: 5,
                worker: 1,
                survivors: 2
            }]
        );
        assert!(log.final_metric.is_finite());
    }

    /// Killing every worker stops the run at the crash round instead of
    /// panicking or dividing by zero.
    #[test]
    fn crashing_all_workers_stops_the_run() {
        let mut model = BertMini::new(2);
        let mut scheme = PrecisionBaseline::fp32();
        let cfg = TrainerConfig {
            n_workers: 2,
            max_rounds: 30,
            eval_every: 10,
            faults: Some(gcs_faults::TrainFaultPlan::crash_at(3, 0).and_crash(3, 0)),
            ..quick_config()
        };
        let log = Trainer::new(cfg).train(&mut model, &mut scheme, 0.5);
        assert_eq!(log.rounds, 3, "training stops once nobody survives");
        assert_eq!(log.survivors, 0);
        assert_eq!(log.fault_events.len(), 2);
        assert_eq!(log.fault_events[1].survivors, 0);
    }

    /// Regression for the reporter-panic bug: a run whose workers all die
    /// before the first eval produces an *empty* TTA curve. The `Option`
    /// accessors must surface that as `None` — consumers used to call
    /// `curve.points.first().unwrap()` and abort the whole report.
    #[test]
    fn run_dead_before_first_eval_yields_none_not_panic() {
        let mut model = BertMini::new(2);
        let mut scheme = PrecisionBaseline::fp32();
        let cfg = TrainerConfig {
            n_workers: 2,
            max_rounds: 30,
            eval_every: 10,
            faults: Some(gcs_faults::TrainFaultPlan::crash_at(0, 0).and_crash(0, 0)),
            ..quick_config()
        };
        let log = Trainer::new(cfg).train(&mut model, &mut scheme, 0.5);
        assert_eq!(log.rounds, 0);
        assert_eq!(log.survivors, 0);
        assert!(log.curve.points.is_empty());
        assert_eq!(log.first_metric(), None);
        assert_eq!(log.last_eval(), None);
        // The struct-level final_metric still falls back to a live eval so
        // downstream f64 consumers stay finite.
        assert!(log.final_metric.is_finite());
    }

    /// The scheme contract extended to the runtime: an entire training run —
    /// loss history, vNMSE, TTA curve — is bitwise-identical whether the
    /// per-worker gradients (and every kernel underneath the scheme) run on
    /// one thread or four.
    #[test]
    fn training_is_identical_across_thread_counts() {
        let run = |threads: usize| {
            gcs_tensor::parallel::with_threads(threads, || {
                let mut model = BertMini::new(2);
                let mut scheme = TopKC::with_bits(2.0, 64, 4, true);
                let cfg = TrainerConfig {
                    n_workers: 4,
                    max_rounds: 12,
                    ..quick_config()
                };
                Trainer::new(cfg).train(&mut model, &mut scheme, 0.5)
            })
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.loss_history, b.loss_history);
        assert_eq!(a.curve.points, b.curve.points);
        assert_eq!(a.mean_vnmse, b.mean_vnmse);
        assert_eq!(a.final_metric, b.final_metric);
    }
}
