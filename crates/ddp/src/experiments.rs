//! Canned experiment definitions shared by the bench harness and examples.
//!
//! Each paper figure is a set of (scheme, simulated step time) pairs trained
//! on the same task; each throughput table is a set of schemes evaluated
//! through [`crate::throughput::ThroughputModel`]. Centralizing the
//! configurations here keeps `EXPERIMENTS.md`, the benches, and the examples
//! consistent.

use crate::engine::TrainerConfig;
use crate::throughput::ThroughputModel;
use gcs_core::scheme::CompressionScheme;
use gcs_core::schemes::baseline::PrecisionBaseline;
use gcs_core::schemes::powersgd::PowerSgd;
use gcs_core::schemes::thc::{Thc, ThcAggregation};
use gcs_core::schemes::topk::TopK;
use gcs_core::schemes::topkc::TopKC;
use gcs_gpusim::{DeviceSpec, ModelProfile, Precision};
use gcs_nn::{BertMini, Model, VggMini};
use gcs_tensor::hadamard::RotationMode;

/// The two evaluation tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// BERT-large-like language modelling (perplexity).
    Bert,
    /// VGG19-like image classification (top-1 accuracy).
    Vgg,
}

impl Task {
    /// The paper-scale cost profile.
    pub fn profile(self) -> ModelProfile {
        match self {
            Task::Bert => ModelProfile::bert_large(),
            Task::Vgg => ModelProfile::vgg19(),
        }
    }

    /// Builds the mini training model.
    pub fn build_model(self, seed: u64) -> Box<dyn Model> {
        match self {
            Task::Bert => Box::new(BertMini::new(seed)),
            Task::Vgg => Box::new(VggMini::new(seed)),
        }
    }

    /// Trainer defaults tuned per task.
    pub fn trainer_config(self) -> TrainerConfig {
        match self {
            Task::Bert => TrainerConfig {
                n_workers: 4,
                batch_per_worker: 4, // the paper's per-worker batch for BERT
                seed: 17,
                max_rounds: 700,
                eval_every: 10,
                lr: 0.006,
                momentum: 0.9,
                weight_decay: 0.0,
                early_stopping: None,
                vnmse_every: 10,
                optimizer: crate::engine::OptimizerKind::Sgd,
                lr_schedule: gcs_nn::LrSchedule::Constant,
                faults: None,
            },
            Task::Vgg => TrainerConfig {
                n_workers: 4,
                batch_per_worker: 8,
                seed: 23,
                max_rounds: 300,
                eval_every: 15,
                lr: 0.012,
                momentum: 0.9,
                weight_decay: 1e-4,
                early_stopping: None,
                vnmse_every: 30,
                optimizer: crate::engine::OptimizerKind::Sgd,
                lr_schedule: gcs_nn::LrSchedule::Constant,
                faults: None,
            },
        }
    }

    /// Rolling-average window (in evaluation points) used for the figures —
    /// the paper smooths over 0.3 epochs (BERT) / 10 epochs (VGG).
    pub fn rolling_window(self) -> usize {
        match self {
            Task::Bert => 3,
            Task::Vgg => 5,
        }
    }
}

/// One scheme's slot in a figure: label, scheme, simulated step seconds.
pub struct ExperimentPlan {
    /// Display label.
    pub label: String,
    /// The scheme (fresh state).
    pub scheme: Box<dyn CompressionScheme>,
    /// Simulated paper-scale seconds per round.
    pub step_seconds: f64,
}

fn plan(scheme: Box<dyn CompressionScheme>, task: Task, tm: &ThroughputModel) -> ExperimentPlan {
    let profile = task.profile();
    let step = tm.step(scheme.as_ref(), &profile, Precision::Tf32).total();
    ExperimentPlan {
        label: scheme.name(),
        scheme,
        step_seconds: step,
    }
}

/// The two uncompressed baselines every figure includes.
pub fn baseline_plans(task: Task) -> Vec<ExperimentPlan> {
    let tm = ThroughputModel::paper_testbed();
    vec![
        plan(Box::new(PrecisionBaseline::fp16()), task, &tm),
        plan(Box::new(PrecisionBaseline::fp32()), task, &tm),
    ]
}

/// Figure 1: TopK vs TopKC at b ∈ {0.5, 2, 8}, plus baselines.
pub fn figure1_plans(task: Task, n_workers: usize) -> Vec<ExperimentPlan> {
    let tm = ThroughputModel::paper_testbed();
    let mut plans = baseline_plans(task);
    for b in [0.5, 2.0, 8.0] {
        plans.push(plan(
            Box::new(TopK::with_bits(b, n_workers, true)),
            task,
            &tm,
        ));
        plans.push(plan(Box::new(TopKC::paper_config(b, n_workers)), task, &tm));
    }
    plans
}

/// Figure 2: THC variants — the widened baseline (b=8, q=4) vs saturation +
/// partial rotation at b=q∈{4,2} — plus baselines.
pub fn figure2_plans(task: Task, n_workers: usize) -> Vec<ExperimentPlan> {
    let tm = ThroughputModel::paper_testbed();
    let device = DeviceSpec::a100();
    let mut plans = baseline_plans(task);
    plans.push(plan(Box::new(Thc::baseline(4, n_workers)), task, &tm));
    plans.push(plan(
        Box::new(Thc::improved(4, &device, n_workers)),
        task,
        &tm,
    ));
    plans.push(plan(
        Box::new(Thc::improved(2, &device, n_workers)),
        task,
        &tm,
    ));
    plans
}

/// Figure 3: PowerSGD at r ∈ {1, 4, 16, 64}, plus baselines. `shapes` are
/// the mini model's weight-matrix shapes (functional); the paper profile's
/// layer shapes drive the cost model.
pub fn figure3_plans(
    task: Task,
    n_workers: usize,
    shapes: &[(usize, usize)],
) -> Vec<ExperimentPlan> {
    let tm = ThroughputModel::paper_testbed();
    let profile = task.profile();
    let mut plans = baseline_plans(task);
    for r in [1u32, 4, 16, 64] {
        let scheme = PowerSgd::new(r, shapes.to_vec(), n_workers)
            .with_cost_shapes(profile.layer_shapes.clone());
        plans.push(plan(Box::new(scheme), task, &tm));
    }
    plans
}

/// Table 8's six THC configurations (rotation × saturation) plus the
/// widened baseline, as (label, scheme) pairs for the throughput model.
pub fn table8_schemes(n_workers: usize) -> Vec<(String, Thc)> {
    let device = DeviceSpec::a100();
    let partial = RotationMode::Partial {
        block_log2: device.shared_mem_block_log2(),
    };
    let mut out = Vec::new();
    for q in [2u32, 4] {
        for (rot_name, rot) in [
            ("full", RotationMode::Full),
            ("partial", partial),
            ("none", RotationMode::None),
        ] {
            let s = Thc::new(q, rot, ThcAggregation::Saturating, n_workers);
            out.push((format!("Sat b=q={q}, {rot_name} rotation"), s));
        }
    }
    out.push((
        "BL b=8, q=4, full rotation".to_string(),
        Thc::baseline(4, n_workers),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_baselines_and_six_scheme_variants() {
        let plans = figure1_plans(Task::Bert, 4);
        assert_eq!(plans.len(), 8);
        assert!(plans[0].label.contains("FP16"));
        assert!(plans.iter().all(|p| p.step_seconds > 0.0));
    }

    #[test]
    fn fp16_baseline_has_fastest_steps_of_the_baselines() {
        let plans = baseline_plans(Task::Bert);
        assert!(plans[0].step_seconds < plans[1].step_seconds);
    }

    #[test]
    fn figure3_powersgd_steps_grow_with_rank() {
        let shapes = vec![(64, 32), (128, 64)];
        let plans = figure3_plans(Task::Vgg, 4, &shapes);
        let powersgd: Vec<&ExperimentPlan> = plans
            .iter()
            .filter(|p| p.label.contains("PowerSGD"))
            .collect();
        assert_eq!(powersgd.len(), 4);
        for w in powersgd.windows(2) {
            assert!(
                w[1].step_seconds > w[0].step_seconds,
                "{} {} vs {} {}",
                w[0].label,
                w[0].step_seconds,
                w[1].label,
                w[1].step_seconds
            );
        }
    }

    #[test]
    fn table8_has_seven_rows() {
        assert_eq!(table8_schemes(4).len(), 7);
    }

    #[test]
    fn tasks_build_models() {
        assert_eq!(Task::Bert.build_model(1).name(), "BertMini");
        assert_eq!(Task::Vgg.build_model(1).name(), "VggMini");
        assert!(Task::Bert.profile().params > Task::Vgg.profile().params);
    }
}
