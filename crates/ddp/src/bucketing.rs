//! Gradient bucketing and communication/computation overlap — the system
//! dimension that Espresso \[60\] and CUPCAKE \[62\] (Table 1) optimize.
//!
//! PyTorch DDP splits the flat gradient into fixed-size **buckets** and
//! launches each bucket's all-reduce as soon as backward produces it, so
//! communication overlaps the rest of the backward pass. Compression
//! interacts with this in two ways the paper's step model (compute +
//! compress + comm, serialized) deliberately ignores:
//!
//! 1. a compressed bucket's *kernel* occupies the GPU, stealing time from
//!    backward (compute and compression don't overlap);
//! 2. buckets pipeline: bucket `i`'s communication overlaps bucket
//!    `i+1..`'s backward compute.
//!
//! [`PipelineModel`] simulates this per-bucket schedule and answers the
//! question the serialized model can't: *how much of a compression scheme's
//! step-time saving survives once the baseline is allowed to overlap?*
//! (The answer — much less than Table 5/8 suggests, unless compression
//! kernels are cheap — is one more argument for TopKC-style minimal
//! compute.) The serialized model remains the default because the paper's
//! prototypes hook the full gradient after backward.

use gcs_core::scheme::CompressionScheme;
use gcs_gpusim::{DeviceSpec, ModelProfile, Precision};
use gcs_netsim::ClusterSpec;

/// Per-bucket pipelined step-time model.
#[derive(Clone, Debug)]
pub struct PipelineModel {
    /// Device (compression kernel costs).
    pub device: DeviceSpec,
    /// Cluster (collective costs).
    pub cluster: ClusterSpec,
    /// Bucket size in gradient coordinates (PyTorch default ~25 MB / 6.5 M
    /// f32 coordinates).
    pub bucket_coords: u64,
}

/// Result of simulating one pipelined step.
#[derive(Clone, Copy, Debug)]
pub struct PipelineStep {
    /// Wall-clock seconds for the step.
    pub seconds: f64,
    /// Seconds of communication hidden under compute.
    pub overlapped: f64,
    /// Number of buckets.
    pub buckets: usize,
}

impl PipelineModel {
    /// The paper's testbed with PyTorch's default bucket size.
    pub fn paper_testbed() -> PipelineModel {
        PipelineModel {
            device: DeviceSpec::a100(),
            cluster: ClusterSpec::paper_testbed(),
            bucket_coords: 6_500_000,
        }
    }

    /// Simulates one training step of `model` under `scheme` with
    /// per-bucket pipelining.
    ///
    /// Backward produces buckets back-to-front at a uniform rate over the
    /// backward fraction (~2/3) of compute time. Each bucket is then
    /// compressed (GPU-serial: delays later buckets' production) and its
    /// collective queued on the network (network-serial: one collective at
    /// a time, NCCL stream semantics).
    pub fn step(
        &self,
        scheme: &dyn CompressionScheme,
        model: &ModelProfile,
        train: Precision,
    ) -> PipelineStep {
        let d = model.params;
        let buckets = d.div_ceil(self.bucket_coords).max(1);
        let compute = model.compute_seconds(train);
        let backward = compute * 2.0 / 3.0;
        let forward = compute - backward;
        let per_bucket_backward = backward / buckets as f64;

        // Scale per-bucket costs from the scheme's full-gradient costs.
        let full_compress = scheme.compute_seconds(d, &self.device);
        let per_bucket_compress = full_compress / buckets as f64;
        let full_comm: f64 = scheme
            .comm_events(d)
            .iter()
            .map(|e| e.seconds(&self.cluster))
            .sum();
        let per_bucket_comm = full_comm / buckets as f64;

        // GPU timeline: forward, then per bucket (backward slice +
        // compression kernel). Network timeline: a bucket's collective
        // starts when both (a) the bucket is compressed and (b) the network
        // is free.
        let mut gpu_t = forward;
        let mut net_free = 0.0f64;
        let mut net_done = 0.0f64;
        for _ in 0..buckets {
            gpu_t += per_bucket_backward + per_bucket_compress;
            let start = gpu_t.max(net_free);
            net_done = start + per_bucket_comm;
            net_free = net_done;
        }
        let seconds = gpu_t.max(net_done);
        let serialized = compute + full_compress + full_comm;
        PipelineStep {
            seconds,
            overlapped: (serialized - seconds).max(0.0),
            buckets: buckets as usize,
        }
    }

    /// Rounds per second under pipelining.
    pub fn rounds_per_sec(
        &self,
        scheme: &dyn CompressionScheme,
        model: &ModelProfile,
        train: Precision,
    ) -> f64 {
        1.0 / self.step(scheme, model, train).seconds
    }
}

/// Splits a flat gradient into bucket ranges of `bucket_coords` (the last
/// bucket may be short). Used by tests and by bucket-wise functional
/// experiments.
pub fn bucket_ranges(d: usize, bucket_coords: usize) -> Vec<std::ops::Range<usize>> {
    assert!(
        bucket_coords > 0,
        "bucket_ranges: bucket size must be positive"
    );
    let mut out = Vec::new();
    let mut lo = 0;
    while lo < d {
        let hi = (lo + bucket_coords).min(d);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::schemes::baseline::PrecisionBaseline;
    use gcs_core::schemes::powersgd::PowerSgd;
    use gcs_core::schemes::topkc::TopKC;

    fn bert() -> ModelProfile {
        ModelProfile::bert_large()
    }

    #[test]
    fn bucket_ranges_cover_exactly() {
        let r = bucket_ranges(100, 30);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], 0..30);
        assert_eq!(r[3], 90..100);
        let total: usize = r.iter().map(|x| x.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn overlap_hides_communication_for_the_baseline() {
        let pm = PipelineModel::paper_testbed();
        let fp16 = PrecisionBaseline::fp16();
        let step = pm.step(&fp16, &bert(), Precision::Tf32);
        assert!(step.buckets > 10);
        assert!(step.overlapped > 0.0, "no overlap achieved");
        // Pipelined step must beat the serialized model but can't beat pure
        // compute.
        let serialized = step.seconds + step.overlapped;
        assert!(step.seconds < serialized);
        assert!(step.seconds >= bert().compute_seconds(Precision::Tf32));
    }

    #[test]
    fn overlap_shrinks_compressions_apparent_advantage() {
        // Serialized: TopKC b=2 looks much faster than FP16. Pipelined:
        // FP16 hides most of its comm, so the gap narrows — the
        // CUPCAKE/Espresso observation.
        let pm = PipelineModel::paper_testbed();
        let tm = crate::throughput::ThroughputModel::paper_testbed();
        let fp16 = PrecisionBaseline::fp16();
        let topkc = TopKC::paper_config(2.0, 4);
        let m = bert();
        let serial_gain = tm.rounds_per_sec(&topkc, &m, Precision::Tf32)
            / tm.rounds_per_sec(&fp16, &m, Precision::Tf32);
        let pipe_gain = pm.rounds_per_sec(&topkc, &m, Precision::Tf32)
            / pm.rounds_per_sec(&fp16, &m, Precision::Tf32);
        assert!(
            pipe_gain < serial_gain,
            "pipelining should narrow the gap: serial {serial_gain:.2} vs pipe {pipe_gain:.2}"
        );
    }

    #[test]
    fn compute_heavy_compression_cannot_hide_behind_overlap() {
        // PowerSGD r=64's orthogonalization occupies the GPU, so
        // pipelining buys it little; a comm-heavy FP32 baseline overlaps
        // well. Compare overlap fractions.
        let pm = PipelineModel::paper_testbed();
        let m = bert();
        let psgd = PowerSgd::new(64, vec![(64, 64)], 4).with_cost_shapes(m.layer_shapes.clone());
        let fp32 = PrecisionBaseline::fp32();
        let s_psgd = pm.step(&psgd, &m, Precision::Tf32);
        let s_fp32 = pm.step(&fp32, &m, Precision::Tf32);
        let frac = |s: &PipelineStep| s.overlapped / (s.seconds + s.overlapped);
        assert!(
            frac(&s_fp32) > frac(&s_psgd),
            "fp32 overlap {:.3} should beat PowerSGD {:.3}",
            frac(&s_fp32),
            frac(&s_psgd)
        );
    }
}
