//! Property-based tests for the tensor substrate's core invariants.

use gcs_tensor::bitpack::PackedIntVec;
use gcs_tensor::hadamard::{fwht, fwht_iterations, rht_forward, rht_inverse};
use gcs_tensor::half::{tf32_round, F16};
use gcs_tensor::matrix::{orthonormalize_columns, Matrix};
use gcs_tensor::rng::{invert_permutation, shared_permutation, SharedSeed};
use gcs_tensor::vector::{dot, squared_norm, top_k_indices, vnmse};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    // Keep within the binary16 normal range for round-trip error bounds.
    prop_oneof![
        -60000.0f32..60000.0,
        -1.0f32..1.0,
        -1e-3f32..1e-3,
        Just(0.0f32),
    ]
}

proptest! {
    #[test]
    fn f16_round_trip_error_is_bounded(x in finite_f32()) {
        let rt = F16::from_f32(x).to_f32();
        if x == 0.0 {
            prop_assert_eq!(rt, 0.0);
        } else if x.abs() >= 6.2e-5 {
            // Normal binary16 range: relative error <= 2^-11.
            let rel = ((rt - x) / x).abs();
            prop_assert!(rel <= 2.0f32.powi(-11), "x={} rt={} rel={}", x, rt, rel);
        } else {
            // Subnormal range: absolute error <= half the subnormal spacing.
            prop_assert!((rt - x).abs() <= 2.0f32.powi(-25), "x={} rt={}", x, rt);
        }
    }

    #[test]
    fn f16_conversion_is_monotonic(a in finite_f32(), b in finite_f32()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    #[test]
    fn tf32_is_idempotent_and_no_less_precise_than_f16(x in finite_f32()) {
        let t = tf32_round(x);
        prop_assert_eq!(tf32_round(t), t);
        if x != 0.0 {
            let tf_err = (t - x).abs();
            let f16_err = (F16::from_f32(x).to_f32() - x).abs();
            prop_assert!(tf_err <= f16_err + f32::EPSILON * x.abs());
        }
    }

    #[test]
    fn fwht_is_involution_and_isometry(
        data in prop::collection::vec(-10.0f32..10.0, 1..200),
    ) {
        let padded = data.len().next_power_of_two();
        let mut v = data.clone();
        v.resize(padded, 0.0);
        let orig = v.clone();
        let before = squared_norm(&v);
        fwht(&mut v);
        let mid = squared_norm(&v);
        prop_assert!((before - mid).abs() <= 1e-3 * before.max(1.0));
        fwht(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn rht_round_trips_for_any_iteration_count(
        data in prop::collection::vec(-5.0f32..5.0, 1..128),
        seed in any::<u64>(),
        iters_frac in 0.0f64..=1.0,
    ) {
        let padded = data.len().next_power_of_two();
        let l = padded.trailing_zeros() as usize;
        let iters = ((l as f64) * iters_frac).round() as usize;
        let mut v = data.clone();
        v.resize(padded, 0.0);
        let orig = v.clone();
        let seed = SharedSeed::new(seed);
        rht_forward(&mut v, iters, seed);
        rht_inverse(&mut v, iters, seed);
        for (a, b) in v.iter().zip(&orig) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn partial_fwht_only_mixes_within_blocks(
        block_log2 in 0usize..5,
        seed in any::<u64>(),
    ) {
        // Impulse response: a single 1 at position p only spreads within its
        // aligned 2^block_log2 block.
        let n = 64usize;
        let mut rng_val = seed as usize % n;
        let mut v = vec![0.0f32; n];
        v[rng_val] = 1.0;
        fwht_iterations(&mut v, block_log2);
        let block = 1usize << block_log2;
        let start = (rng_val / block) * block;
        for (i, &x) in v.iter().enumerate() {
            if i < start || i >= start + block {
                prop_assert_eq!(x, 0.0, "leaked to index {}", i);
            }
        }
        rng_val = rng_val.wrapping_add(1); // silence unused warnings
        let _ = rng_val;
    }

    #[test]
    fn packed_int_round_trip(
        q in 1u32..=16,
        values in prop::collection::vec(any::<i32>(), 0..100),
    ) {
        let hi = if q == 32 { i32::MAX } else { (1i32 << (q - 1)) - 1 };
        let lo = -hi - 1;
        let clamped: Vec<i32> = values.iter().map(|&v| v.clamp(lo, hi)).collect();
        let packed = PackedIntVec::from_signed(q, &clamped);
        prop_assert_eq!(packed.to_signed_vec(), clamped);
    }

    #[test]
    fn saturating_add_is_commutative_and_bounded(
        q in 2u32..=8,
        pairs in prop::collection::vec((any::<i16>(), any::<i16>()), 1..50),
    ) {
        let hi = (1i32 << (q - 1)) - 1;
        let a: Vec<i32> = pairs.iter().map(|p| (p.0 as i32).clamp(-hi, hi)).collect();
        let b: Vec<i32> = pairs.iter().map(|p| (p.1 as i32).clamp(-hi, hi)).collect();
        let pa = PackedIntVec::from_signed(q, &a);
        let pb = PackedIntVec::from_signed(q, &b);
        let mut ab = pa.clone();
        ab.add_saturating(&pb);
        let mut ba = pb.clone();
        ba.add_saturating(&pa);
        prop_assert_eq!(ab.to_signed_vec(), ba.to_signed_vec());
        for v in ab.to_signed_vec() {
            prop_assert!(v.abs() <= hi);
        }
    }

    #[test]
    fn widening_then_adding_never_saturates_for_two_workers(
        values in prop::collection::vec(-7i32..=7, 1..40),
    ) {
        // q=4 payloads widened to b=8 can absorb any 2-worker sum exactly.
        let p = PackedIntVec::from_signed(4, &values);
        let mut wide = p.widen(8);
        wide.add_saturating(&p.widen(8));
        let expect: Vec<i32> = values.iter().map(|v| v * 2).collect();
        prop_assert_eq!(wide.to_signed_vec(), expect);
    }

    #[test]
    fn top_k_returns_a_true_top_set(
        values in prop::collection::vec(-100.0f32..100.0, 1..60),
        k in 0usize..60,
    ) {
        let k = k.min(values.len());
        let idx = top_k_indices(&values, k);
        prop_assert_eq!(idx.len(), k);
        // Every selected magnitude >= every unselected magnitude.
        let selected: std::collections::HashSet<usize> = idx.iter().copied().collect();
        let min_sel = idx.iter().map(|&i| values[i].abs()).fold(f32::INFINITY, f32::min);
        for (i, v) in values.iter().enumerate() {
            if !selected.contains(&i) {
                prop_assert!(v.abs() <= min_sel + 1e-6);
            }
        }
    }

    #[test]
    fn gram_schmidt_orthonormal_for_random_tall_matrices(
        rows in 2usize..12,
        cols in 1usize..6,
        seed in any::<u64>(),
    ) {
        let cols = cols.min(rows);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut m = Matrix::from_vec(rows, cols, data);
        orthonormalize_columns(&mut m);
        for c1 in 0..cols {
            for c2 in 0..cols {
                let mut d = 0.0f32;
                for r in 0..rows {
                    d += m.get(r, c1) * m.get(r, c2);
                }
                let expect = if c1 == c2 { 1.0 } else { 0.0 };
                prop_assert!((d - expect).abs() < 1e-3, "col{} . col{} = {}", c1, c2, d);
            }
        }
    }

    #[test]
    fn permutations_invert(n in 1usize..200, seed in any::<u64>()) {
        let p = shared_permutation(n, SharedSeed::new(seed));
        let inv = invert_permutation(&p);
        for i in 0..n {
            prop_assert_eq!(p[inv[i]], i);
        }
    }

    #[test]
    fn vnmse_of_scaled_estimate((s, ) in ((0.0f32..2.0), )) {
        // vNMSE(s * truth, truth) = (s - 1)^2 exactly.
        let truth = vec![1.0f32, -2.0, 3.0, 0.5];
        let est: Vec<f32> = truth.iter().map(|t| t * s).collect();
        let expect = ((s - 1.0) as f64).powi(2);
        prop_assert!((vnmse(&est, &truth) - expect).abs() < 1e-5);
    }
}

/// Deterministic pseudo-random fill (splitmix64) for the large inputs the
/// parallel kernels need — per-element `proptest` generation at 10^5
/// elements per case would dominate the run time.
fn salted_vec(len: usize, salt: u64) -> Vec<f32> {
    let mut x = salt.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect()
}

// Bitwise equivalence of the parallel kernels against their single-thread
// reference, across thread counts (including counts that do not divide the
// input evenly). Inputs sit above the per-kernel parallel thresholds so the
// multi-threaded path is actually exercised; `with_threads` forces the
// runtime, so these hold even on a single-core CI machine.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn parallel_fwht_is_bitwise_identical(salt in any::<u64>(), threads in 2usize..=8) {
        let d = 1usize << 16;
        let base = salted_vec(d, salt);
        let mut seq = base.clone();
        gcs_tensor::parallel::with_threads(1, || fwht(&mut seq));
        let mut par = base;
        gcs_tensor::parallel::with_threads(threads, || fwht(&mut par));
        for (a, b) in seq.iter().zip(&par) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn parallel_rht_is_bitwise_identical(
        salt in any::<u64>(),
        seed in any::<u64>(),
        threads in 2usize..=8,
    ) {
        let d = 1usize << 16;
        let base = salted_vec(d, salt);
        let s = SharedSeed::new(seed);
        let mut seq = base.clone();
        gcs_tensor::parallel::with_threads(1, || rht_forward(&mut seq, 4, s));
        let mut par = base;
        gcs_tensor::parallel::with_threads(threads, || rht_forward(&mut par, 4, s));
        for (a, b) in seq.iter().zip(&par) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn parallel_top_k_is_identical(salt in any::<u64>(), threads in 2usize..=8) {
        let d = (1usize << 16) + 4099; // uneven tail chunk
        let v = salted_vec(d, salt);
        let k = d / 100;
        let seq = gcs_tensor::parallel::with_threads(1, || top_k_indices(&v, k));
        let par = gcs_tensor::parallel::with_threads(threads, || top_k_indices(&v, k));
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn parallel_reductions_are_bitwise_identical(
        salt in any::<u64>(),
        threads in 2usize..=8,
    ) {
        let d = (1usize << 16) + 77;
        let a = salted_vec(d, salt);
        let b = salted_vec(d, salt ^ 0xdead);
        let seq = gcs_tensor::parallel::with_threads(1, || {
            (squared_norm(&a), dot(&a, &b), vnmse(&a, &b))
        });
        let par = gcs_tensor::parallel::with_threads(threads, || {
            (squared_norm(&a), dot(&a, &b), vnmse(&a, &b))
        });
        prop_assert_eq!(seq.0.to_bits(), par.0.to_bits());
        prop_assert_eq!(seq.1.to_bits(), par.1.to_bits());
        prop_assert_eq!(seq.2.to_bits(), par.2.to_bits());
    }

    #[test]
    fn parallel_bitpack_is_bitwise_identical(
        salt in any::<u64>(),
        q in 2u32..=12,
        threads in 2usize..=8,
    ) {
        let d = (1usize << 16) + 13;
        let hi = (1i32 << (q - 1)) - 1;
        let vals: Vec<i32> = salted_vec(d, salt)
            .iter()
            .map(|x| ((x * 2.0 * hi as f32) as i32).clamp(-hi - 1, hi))
            .collect();
        let other: Vec<i32> = salted_vec(d, salt ^ 0xbeef)
            .iter()
            .map(|x| ((x * 2.0 * hi as f32) as i32).clamp(-hi - 1, hi))
            .collect();
        let run = |threads: usize| {
            gcs_tensor::parallel::with_threads(threads, || {
                let mut p = PackedIntVec::from_signed(q, &vals);
                p.add_saturating(&PackedIntVec::from_signed(q, &other));
                (p.to_signed_vec(), p)
            })
        };
        let (seq_vals, seq_packed) = run(1);
        let (par_vals, par_packed) = run(threads);
        prop_assert_eq!(seq_vals, par_vals);
        prop_assert_eq!(seq_packed.words(), par_packed.words());
    }
}
