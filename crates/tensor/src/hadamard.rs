//! The (randomized) fast Walsh–Hadamard transform, full and **partial**.
//!
//! THC (§3.2) rotates gradients with a Randomized Hadamard Transform before
//! stochastic quantization: the rotation concentrates coordinates around zero
//! (approximately `N(0, ||∇||²/d)` entries), shrinking the `[min, max]`
//! quantization range and thereby the quantization error.
//!
//! The paper's *partial rotation* (§3.2.2) observes that stopping the
//! butterfly recursion after `l' ≤ l` of the `l = log2(d)` iterations is
//! mathematically equivalent to splitting the vector into `2^l'`-sized blocks
//! and rotating each block independently — and if `2^l'` elements fit in GPU
//! shared memory, the whole transform runs in one fast kernel. Ranges are then
//! computed per block, so an outlier only degrades precision locally.
//!
//! The transform here is normalized (`H/√2` butterflies), making it an
//! involution: applying it twice returns the input. The *randomized* variant
//! conjugates with a seeded Rademacher diagonal, which all workers derive from
//! shared randomness so rotation/derotation agree across the cluster.

use crate::rng::SharedSeed;
use rand::Rng;
use rand::SeedableRng;

/// In-place normalized fast Walsh–Hadamard transform on a power-of-two
/// length slice.
///
/// Each butterfly computes `(a+b)/√2, (a−b)/√2`, so the transform is
/// orthonormal and self-inverse.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (zero length is allowed).
pub fn fwht(data: &mut [f32]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "fwht: length {n} not a power of two");
    fwht_iterations(data, n.trailing_zeros() as usize);
}

/// Runs only the first `iters` butterfly stages of the FWHT on `data`.
///
/// After `iters` stages, element `i` has interacted exactly with the elements
/// whose index differs in the low `iters` bits — i.e. the transform is the
/// full FWHT applied independently to each aligned block of `2^iters`
/// elements. This is the paper's *partial rotation*.
///
/// # Panics
/// Panics if `data.len()` is not a power of two or `iters > log2(len)`.
pub fn fwht_iterations(data: &mut [f32], iters: usize) {
    let n = data.len();
    if n <= 1 || iters == 0 {
        return;
    }
    assert!(n.is_power_of_two(), "fwht: length {n} not a power of two");
    let max_iters = n.trailing_zeros() as usize;
    assert!(
        iters <= max_iters,
        "fwht_iterations: {iters} iterations exceed log2({n}) = {max_iters}"
    );
    let inv_sqrt2 = std::f32::consts::FRAC_1_SQRT_2;
    let mut h = 1usize;
    for _ in 0..iters {
        let mut i = 0;
        while i < n {
            for j in i..i + h {
                let a = data[j];
                let b = data[j + h];
                data[j] = (a + b) * inv_sqrt2;
                data[j + h] = (a - b) * inv_sqrt2;
            }
            i += h * 2;
        }
        h *= 2;
    }
}

/// Returns the smallest power of two that is `>= len`.
pub fn padded_len(len: usize) -> usize {
    len.next_power_of_two()
}

/// Applies a seeded Rademacher (±1) diagonal in place.
///
/// The signs are derived from `seed`, so every worker flips the same signs —
/// the "shared randomness" THC assumes. Applying the same diagonal twice is a
/// no-op, which makes the randomized transform below an involution too.
pub fn rademacher_diagonal(data: &mut [f32], seed: SharedSeed) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.value());
    // Draw 64 sign bits at a time.
    let mut i = 0;
    while i < data.len() {
        let bits: u64 = rng.gen();
        let take = 64.min(data.len() - i);
        for j in 0..take {
            if (bits >> j) & 1 == 1 {
                data[i + j] = -data[i + j];
            }
        }
        i += take;
    }
}

/// The randomized Hadamard transform: Rademacher diagonal followed by the
/// first `iters` FWHT stages (`iters = log2(len)` gives the full RHT).
pub fn rht_forward(data: &mut [f32], iters: usize, seed: SharedSeed) {
    rademacher_diagonal(data, seed);
    fwht_iterations(data, iters);
}

/// Inverse of [`rht_forward`]: FWHT stages (self-inverse) then the same
/// diagonal.
pub fn rht_inverse(data: &mut [f32], iters: usize, seed: SharedSeed) {
    fwht_iterations(data, iters);
    rademacher_diagonal(data, seed);
}

/// Describes how much of the transform to run — the paper's three settings in
/// Table 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RotationMode {
    /// Full RHT: `l = log2(d_padded)` iterations; touches global memory for
    /// large `d`.
    Full,
    /// Partial rotation with blocks of `2^l'` elements, `l'` chosen so a
    /// block fits in shared memory (`block_log2 = l'`).
    Partial {
        /// log2 of the block size; a block of `2^block_log2` f32 values must
        /// fit in GPU shared memory for the single-kernel argument to hold.
        block_log2: usize,
    },
    /// No rotation at all (quantize raw gradients).
    None,
}

impl RotationMode {
    /// Number of butterfly iterations to run for a padded vector of length
    /// `padded` (a power of two).
    pub fn iterations(self, padded: usize) -> usize {
        let l = if padded <= 1 {
            0
        } else {
            padded.trailing_zeros() as usize
        };
        match self {
            RotationMode::Full => l,
            RotationMode::Partial { block_log2 } => block_log2.min(l),
            RotationMode::None => 0,
        }
    }

    /// The effective block size over which values mix (and over which THC
    /// computes per-block `[min,max]` ranges).
    pub fn block_len(self, padded: usize) -> usize {
        1usize << self.iterations(padded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::squared_norm;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn fwht_is_involution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let orig: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut v = orig.clone();
        fwht(&mut v);
        fwht(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn fwht_preserves_norm() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut v: Vec<f32> = (0..256).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let before = squared_norm(&v);
        fwht(&mut v);
        let after = squared_norm(&v);
        assert!((before - after).abs() / before < 1e-4);
    }

    #[test]
    fn fwht_known_small() {
        // H2 * [1, 0] = [1/√2, 1/√2]
        let mut v = vec![1.0, 0.0];
        fwht(&mut v);
        let s = std::f32::consts::FRAC_1_SQRT_2;
        assert!((v[0] - s).abs() < 1e-6 && (v[1] - s).abs() < 1e-6);
    }

    #[test]
    fn partial_equals_blockwise_full() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let orig: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // Partial with block_log2 = 4 (blocks of 16)...
        let mut partial = orig.clone();
        fwht_iterations(&mut partial, 4);
        // ...equals running the full FWHT on each 16-block separately.
        let mut blockwise = orig.clone();
        for chunk in blockwise.chunks_mut(16) {
            fwht(chunk);
        }
        for (a, b) in partial.iter().zip(&blockwise) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn rht_round_trips() {
        let seed = SharedSeed::new(42);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let orig: Vec<f32> = (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for iters in [0usize, 3, 7] {
            let mut v = orig.clone();
            rht_forward(&mut v, iters, seed);
            rht_inverse(&mut v, iters, seed);
            for (a, b) in v.iter().zip(&orig) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn rht_shrinks_value_range_of_spiky_vectors() {
        // A vector with one huge coordinate: rotation spreads its energy,
        // shrinking max-min — the whole point of RHT for quantization.
        let mut v = vec![0.01f32; 1024];
        v[17] = 100.0;
        let (lo, hi) = crate::vector::min_max(&v);
        let range_before = hi - lo;
        rht_forward(&mut v, 10, SharedSeed::new(3));
        let (lo, hi) = crate::vector::min_max(&v);
        let range_after = hi - lo;
        assert!(
            range_after < range_before / 4.0,
            "range {range_before} -> {range_after}"
        );
    }

    #[test]
    fn rotation_mode_iterations() {
        assert_eq!(RotationMode::Full.iterations(1024), 10);
        assert_eq!(RotationMode::Partial { block_log2: 6 }.iterations(1024), 6);
        // Partial never exceeds the full length.
        assert_eq!(RotationMode::Partial { block_log2: 20 }.iterations(64), 6);
        assert_eq!(RotationMode::None.iterations(1024), 0);
        assert_eq!(RotationMode::Partial { block_log2: 6 }.block_len(1024), 64);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn fwht_rejects_non_power_of_two() {
        let mut v = vec![0.0; 48];
        fwht(&mut v);
    }
}
