//! The (randomized) fast Walsh–Hadamard transform, full and **partial**.
//!
//! THC (§3.2) rotates gradients with a Randomized Hadamard Transform before
//! stochastic quantization: the rotation concentrates coordinates around zero
//! (approximately `N(0, ||∇||²/d)` entries), shrinking the `[min, max]`
//! quantization range and thereby the quantization error.
//!
//! The paper's *partial rotation* (§3.2.2) observes that stopping the
//! butterfly recursion after `l' ≤ l` of the `l = log2(d)` iterations is
//! mathematically equivalent to splitting the vector into `2^l'`-sized blocks
//! and rotating each block independently — and if `2^l'` elements fit in GPU
//! shared memory, the whole transform runs in one fast kernel. Ranges are then
//! computed per block, so an outlier only degrades precision locally.
//!
//! The transform here is normalized (`H/√2` butterflies), making it an
//! involution: applying it twice returns the input. The *randomized* variant
//! conjugates with a seeded Rademacher diagonal, which all workers derive from
//! shared randomness so rotation/derotation agree across the cluster.
//!
//! Both the transform and the diagonal are multi-threaded via
//! [`crate::parallel`] above a size threshold. The butterflies are
//! element-wise per stage and the sign bits are a *counter-based* PRF of
//! `(seed, 64-element block index)`, so any partition of the work produces
//! bitwise-identical results — thread count is unobservable in the output.

use crate::parallel;
use crate::rng::{splitmix64, SharedSeed};

/// Below this length the transform runs its plain sequential loop.
const FWHT_PAR_MIN: usize = 1 << 15;

/// log2 of the blockwise phase's chunk (2^14 f32 = 64 KiB, L2-resident).
const FWHT_BLOCK_LOG2: usize = 14;

/// Chunk length for the Rademacher diagonal — a multiple of 64 so chunk
/// boundaries always fall on sign-word boundaries.
const RADEMACHER_CHUNK: usize = 1 << 15;

/// In-place normalized fast Walsh–Hadamard transform on a power-of-two
/// length slice.
///
/// Each butterfly computes `(a+b)/√2, (a−b)/√2`, so the transform is
/// orthonormal and self-inverse.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (zero length is allowed).
pub fn fwht(data: &mut [f32]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "fwht: length {n} not a power of two");
    fwht_iterations(data, n.trailing_zeros() as usize);
}

/// The sequential stage loop; also the within-chunk worker of the parallel
/// path (each aligned power-of-two chunk runs its local stages with exactly
/// this code, so parallel results are bitwise-identical). Every stage routes
/// through [`butterfly_halves`], so the SIMD fast path applies here too once
/// the stage width reaches a register.
fn fwht_seq(data: &mut [f32], iters: usize) {
    let mut h = 1usize;
    for _ in 0..iters {
        for window in data.chunks_mut(h * 2) {
            let (lo, hi) = window.split_at_mut(h);
            butterfly_halves(lo, hi);
        }
        h *= 2;
    }
}

/// One butterfly stage over an aligned `2h` window, given its two halves.
/// The butterfly is element-wise `(a+b)/√2, (a−b)/√2`, so the AVX2 path in
/// [`crate::simd`] is bitwise-identical to the scalar loop.
fn butterfly_halves(lo: &mut [f32], hi: &mut [f32]) {
    crate::simd::butterfly(lo, hi, std::f32::consts::FRAC_1_SQRT_2);
}

/// Runs only the first `iters` butterfly stages of the FWHT on `data`.
///
/// After `iters` stages, element `i` has interacted exactly with the elements
/// whose index differs in the low `iters` bits — i.e. the transform is the
/// full FWHT applied independently to each aligned block of `2^iters`
/// elements. This is the paper's *partial rotation*.
///
/// Large inputs run in two parallel phases: stages `< FWHT_BLOCK_LOG2`
/// execute blockwise (each aligned chunk runs its local stages
/// independently), and each remaining stage parallelizes over its
/// independent `2h` windows — or, when the windows are few and large, over
/// zip-chunks of each window's two halves. Every decomposition computes the
/// same per-element expressions, so the output is bitwise-identical to the
/// sequential loop for any thread count.
///
/// # Panics
/// Panics if `data.len()` is not a power of two or `iters > log2(len)`.
pub fn fwht_iterations(data: &mut [f32], iters: usize) {
    let n = data.len();
    if n <= 1 || iters == 0 {
        return;
    }
    assert!(n.is_power_of_two(), "fwht: length {n} not a power of two");
    let max_iters = n.trailing_zeros() as usize;
    assert!(
        iters <= max_iters,
        "fwht_iterations: {iters} iterations exceed log2({n}) = {max_iters}"
    );
    if n < FWHT_PAR_MIN || parallel::max_threads() <= 1 {
        fwht_seq(data, iters);
        return;
    }

    // Phase 1: blockwise. Stages < b only mix within aligned 2^b blocks, so
    // each block runs them locally, in parallel.
    let b = iters.min(FWHT_BLOCK_LOG2);
    parallel::for_each_chunk_mut(data, 1 << b, |_, chunk| fwht_seq(chunk, b));

    // Phase 2: the remaining stages, one at a time. At stage size h the
    // aligned 2h windows are independent.
    let mut h = 1usize << b;
    for _ in b..iters {
        let window = 2 * h;
        let n_windows = n / window;
        if n_windows >= parallel::max_threads() {
            parallel::for_each_chunk_mut(data, window, |_, w| {
                let (lo, hi) = w.split_at_mut(h);
                butterfly_halves(lo, hi);
            });
        } else {
            // Few large windows: parallelize inside each one by chunking the
            // zipped halves.
            for w in data.chunks_mut(window) {
                let (lo, hi) = w.split_at_mut(h);
                parallel::for_each_zip2_mut(lo, hi, 1 << FWHT_BLOCK_LOG2, |_, la, hb| {
                    butterfly_halves(la, hb);
                });
            }
        }
        h = window;
    }
}

/// Returns the smallest power of two that is `>= len`.
pub fn padded_len(len: usize) -> usize {
    len.next_power_of_two()
}

/// The 64 Rademacher sign bits for elements `[64*block, 64*block + 64)`.
///
/// A counter-based PRF (SplitMix64 finalizer over seed and block index): any
/// worker — or any thread — can generate any block's signs independently,
/// with no sequential RNG stream to advance. Bit `j` set means element
/// `64*block + j` flips sign.
pub fn rademacher_sign_bits(seed: SharedSeed, block: u64) -> u64 {
    splitmix64(seed.value() ^ block.wrapping_mul(0xa076_1d64_78bd_642f))
}

/// Applies a seeded Rademacher (±1) diagonal in place.
///
/// The signs are derived from `seed` via [`rademacher_sign_bits`], so every
/// worker flips the same signs — the "shared randomness" THC assumes — and a
/// sign depends only on `(seed, index)`, never on the slice length or on how
/// the work was partitioned. Applying the same diagonal twice is a no-op,
/// which makes the randomized transform below an involution too.
pub fn rademacher_diagonal(data: &mut [f32], seed: SharedSeed) {
    parallel::for_each_chunk_mut(data, RADEMACHER_CHUNK, |chunk_idx, chunk| {
        let first_block = (chunk_idx * RADEMACHER_CHUNK / 64) as u64;
        for (w, word) in chunk.chunks_mut(64).enumerate() {
            let bits = rademacher_sign_bits(seed, first_block + w as u64);
            for (j, x) in word.iter_mut().enumerate() {
                if (bits >> j) & 1 == 1 {
                    *x = -*x;
                }
            }
        }
    });
}

/// The randomized Hadamard transform: Rademacher diagonal followed by the
/// first `iters` FWHT stages (`iters = log2(len)` gives the full RHT).
pub fn rht_forward(data: &mut [f32], iters: usize, seed: SharedSeed) {
    rademacher_diagonal(data, seed);
    fwht_iterations(data, iters);
}

/// Inverse of [`rht_forward`]: FWHT stages (self-inverse) then the same
/// diagonal.
pub fn rht_inverse(data: &mut [f32], iters: usize, seed: SharedSeed) {
    fwht_iterations(data, iters);
    rademacher_diagonal(data, seed);
}

/// Describes how much of the transform to run — the paper's three settings in
/// Table 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RotationMode {
    /// Full RHT: `l = log2(d_padded)` iterations; touches global memory for
    /// large `d`.
    Full,
    /// Partial rotation with blocks of `2^l'` elements, `l'` chosen so a
    /// block fits in shared memory (`block_log2 = l'`).
    Partial {
        /// log2 of the block size; a block of `2^block_log2` f32 values must
        /// fit in GPU shared memory for the single-kernel argument to hold.
        block_log2: usize,
    },
    /// No rotation at all (quantize raw gradients).
    None,
}

impl RotationMode {
    /// Number of butterfly iterations to run for a padded vector of length
    /// `padded` (a power of two).
    pub fn iterations(self, padded: usize) -> usize {
        let l = if padded <= 1 {
            0
        } else {
            padded.trailing_zeros() as usize
        };
        match self {
            RotationMode::Full => l,
            RotationMode::Partial { block_log2 } => block_log2.min(l),
            RotationMode::None => 0,
        }
    }

    /// The effective block size over which values mix (and over which THC
    /// computes per-block `[min,max]` ranges).
    pub fn block_len(self, padded: usize) -> usize {
        1usize << self.iterations(padded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_threads;
    use crate::vector::squared_norm;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn fwht_is_involution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let orig: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut v = orig.clone();
        fwht(&mut v);
        fwht(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn fwht_preserves_norm() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut v: Vec<f32> = (0..256).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let before = squared_norm(&v);
        fwht(&mut v);
        let after = squared_norm(&v);
        assert!((before - after).abs() / before < 1e-4);
    }

    #[test]
    fn fwht_known_small() {
        // H2 * [1, 0] = [1/√2, 1/√2]
        let mut v = vec![1.0, 0.0];
        fwht(&mut v);
        let s = std::f32::consts::FRAC_1_SQRT_2;
        assert!((v[0] - s).abs() < 1e-6 && (v[1] - s).abs() < 1e-6);
    }

    #[test]
    fn partial_equals_blockwise_full() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let orig: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // Partial with block_log2 = 4 (blocks of 16)...
        let mut partial = orig.clone();
        fwht_iterations(&mut partial, 4);
        // ...equals running the full FWHT on each 16-block separately.
        let mut blockwise = orig.clone();
        for chunk in blockwise.chunks_mut(16) {
            fwht(chunk);
        }
        for (a, b) in partial.iter().zip(&blockwise) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn parallel_fwht_is_bitwise_identical_to_sequential() {
        // Long enough to take both parallel phases, with stages past the
        // blockwise cutoff.
        let n = 1usize << 17;
        let orig: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.137).sin()).collect();
        for iters in [10usize, FWHT_BLOCK_LOG2, 16, 17] {
            let mut reference = orig.clone();
            fwht_seq(&mut reference, iters);
            for threads in [1usize, 2, 3, 8] {
                let mut v = orig.clone();
                with_threads(threads, || fwht_iterations(&mut v, iters));
                assert!(
                    v.iter()
                        .zip(&reference)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "iters={iters} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn rht_round_trips() {
        let seed = SharedSeed::new(42);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let orig: Vec<f32> = (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for iters in [0usize, 3, 7] {
            let mut v = orig.clone();
            rht_forward(&mut v, iters, seed);
            rht_inverse(&mut v, iters, seed);
            for (a, b) in v.iter().zip(&orig) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn rht_shrinks_value_range_of_spiky_vectors() {
        // A vector with one huge coordinate: rotation spreads its energy,
        // shrinking max-min — the whole point of RHT for quantization.
        let mut v = vec![0.01f32; 1024];
        v[17] = 100.0;
        let (lo, hi) = crate::vector::min_max(&v);
        let range_before = hi - lo;
        rht_forward(&mut v, 10, SharedSeed::new(3));
        let (lo, hi) = crate::vector::min_max(&v);
        let range_after = hi - lo;
        assert!(
            range_after < range_before / 4.0,
            "range {range_before} -> {range_after}"
        );
    }

    /// Compatibility pin for the counter-based sign sequence: all workers
    /// (and all future builds) must derive exactly these signs, or rotation
    /// and derotation stop agreeing across the cluster.
    #[test]
    fn rademacher_sign_sequence_is_pinned() {
        let seed = SharedSeed::new(42);
        assert_eq!(rademacher_sign_bits(seed, 0), PINNED_BITS[0]);
        assert_eq!(rademacher_sign_bits(seed, 1), PINNED_BITS[1]);
        assert_eq!(rademacher_sign_bits(seed, 2), PINNED_BITS[2]);
        let mut v = vec![1.0f32; 24];
        rademacher_diagonal(&mut v, seed);
        let got: Vec<bool> = v.iter().map(|&x| x < 0.0).collect();
        let expect: Vec<bool> = (0..24).map(|j| (PINNED_BITS[0] >> j) & 1 == 1).collect();
        assert_eq!(got, expect);
    }

    /// Pinned `rademacher_sign_bits(SharedSeed::new(42), block)` for blocks
    /// 0..3 — regenerate only on a deliberate, documented format change.
    const PINNED_BITS: [u64; 3] = [
        0xbdd7_3226_2feb_6e95,
        0xc549_d6f3_8899_c014,
        0xcdac_ef9d_79af_ab42,
    ];

    #[test]
    fn rademacher_is_seekable_and_length_independent() {
        let seed = SharedSeed::new(7);
        let mut long = vec![1.0f32; 1000];
        rademacher_diagonal(&mut long, seed);
        // A shorter application sees the same per-index signs.
        let mut short = vec![1.0f32; 200];
        rademacher_diagonal(&mut short, seed);
        assert_eq!(&long[..200], &short[..]);
        // Applying twice is the identity.
        let orig: Vec<f32> = (0..1000).map(|i| i as f32 - 500.0).collect();
        let mut v = orig.clone();
        rademacher_diagonal(&mut v, seed);
        rademacher_diagonal(&mut v, seed);
        assert_eq!(v, orig);
    }

    #[test]
    fn rademacher_is_thread_count_invariant() {
        let seed = SharedSeed::new(13);
        let n = RADEMACHER_CHUNK * 2 + 77;
        let orig: Vec<f32> = (0..n).map(|i| (i as f32) + 0.5).collect();
        let mut reference = orig.clone();
        with_threads(1, || rademacher_diagonal(&mut reference, seed));
        for threads in [2usize, 3, 8] {
            let mut v = orig.clone();
            with_threads(threads, || rademacher_diagonal(&mut v, seed));
            assert_eq!(v, reference, "threads={threads}");
        }
    }

    #[test]
    fn rotation_mode_iterations() {
        assert_eq!(RotationMode::Full.iterations(1024), 10);
        assert_eq!(RotationMode::Partial { block_log2: 6 }.iterations(1024), 6);
        // Partial never exceeds the full length.
        assert_eq!(RotationMode::Partial { block_log2: 20 }.iterations(64), 6);
        assert_eq!(RotationMode::None.iterations(1024), 0);
        assert_eq!(RotationMode::Partial { block_log2: 6 }.block_len(1024), 64);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn fwht_rejects_non_power_of_two() {
        let mut v = vec![0.0; 48];
        fwht(&mut v);
    }
}
