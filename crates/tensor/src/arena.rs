//! Contiguous, offset-indexed parameter/gradient arena.
//!
//! Per-layer `Vec<f32>` storage forces every collective, replica sync and
//! compression round into fragmented per-layer calls — exactly the overhead
//! regime where compression stops paying for itself (HotNets'24 §3). A
//! [`ParamArena`] instead owns **one** `Box<[f32]>` per model replica plus a
//! layer-offset table, so:
//!
//! * a full model gradient is a single slice ([`ParamArena::as_slice`]),
//!   letting collectives run one pooled whole-model call per round;
//! * replica sync is a single `copy_from_slice` ([`ParamArena::copy_from`]);
//! * layers view their parameters as sub-slices ([`ParamArena::layer`]),
//!   with no storage of their own.
//!
//! Layout invariants (pinned by tests and relied on across crates):
//!
//! 1. `offsets.len() == n_layers + 1`, `offsets[0] == 0`,
//!    `offsets[n_layers] == data.len()`, offsets non-decreasing.
//! 2. Layer `i` occupies `data[offsets[i]..offsets[i + 1]]`; layers are
//!    contiguous with no padding, so concatenating the layer slices in
//!    order is bitwise-identical to the whole-arena slice.
//! 3. Offsets are expressed in `f32` elements (not bytes). `Box<[f32]>` is
//!    at least 4-byte aligned; kernels that want wider SIMD alignment must
//!    handle unaligned heads/tails themselves (they do — see
//!    `gcs_tensor::simd`).

/// One contiguous `f32` buffer shared by all layers of a model replica,
/// indexed by a layer-offset table.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamArena {
    data: Box<[f32]>,
    /// `offsets[i]..offsets[i + 1]` is layer `i`; length `n_layers + 1`.
    offsets: Vec<usize>,
}

impl ParamArena {
    /// Builds a zero-filled arena from per-layer parameter counts.
    /// Zero-length layers (parameter-free layers such as ReLU or pooling)
    /// are legal and occupy an empty slice.
    pub fn from_layer_lens(lens: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(lens.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &len in lens {
            total += len;
            offsets.push(total);
        }
        Self {
            data: vec![0.0; total].into_boxed_slice(),
            offsets,
        }
    }

    /// Number of layers the offset table describes.
    pub fn n_layers(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of `f32` elements across all layers.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the arena holds no parameters at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Start offset (in elements) of layer `i`.
    pub fn offset_of(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Element count of layer `i`.
    pub fn layer_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The offset table: `n_layers + 1` entries, first 0, last `len()`.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Layer `i` as an immutable slice.
    pub fn layer(&self, i: usize) -> &[f32] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Layer `i` as a mutable slice.
    pub fn layer_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// The whole model as one flat slice (layer-concatenation order).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole model as one flat mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Replica sync: one memcpy of the whole model. Panics if `src` length
    /// differs from this arena's.
    pub fn copy_from(&mut self, src: &[f32]) {
        self.data.copy_from_slice(src);
    }

    /// Zeroes every element (e.g. gradient clear between rounds).
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_invariants_hold() {
        let a = ParamArena::from_layer_lens(&[6, 0, 4, 10]);
        assert_eq!(a.n_layers(), 4);
        assert_eq!(a.len(), 20);
        assert_eq!(a.offsets(), &[0, 6, 6, 10, 20]);
        assert_eq!(a.layer_len(1), 0);
        assert!(a.layer(1).is_empty());
        assert_eq!(a.offset_of(2), 6);
        assert_eq!(a.layer(3).len(), 10);
    }

    #[test]
    fn layers_are_views_into_the_flat_slice() {
        let mut a = ParamArena::from_layer_lens(&[3, 2]);
        a.layer_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        a.layer_mut(1).copy_from_slice(&[4.0, 5.0]);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        // Concatenating layer views reproduces the flat slice bitwise.
        let concat: Vec<f32> = (0..a.n_layers())
            .flat_map(|i| a.layer(i).to_vec())
            .collect();
        assert_eq!(concat, a.as_slice());
    }

    #[test]
    fn copy_from_and_zero_cover_the_whole_arena() {
        let mut a = ParamArena::from_layer_lens(&[2, 2]);
        a.copy_from(&[9.0, 8.0, 7.0, 6.0]);
        assert_eq!(a.layer(1), &[7.0, 6.0]);
        a.zero();
        assert!(a.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_arena_is_legal() {
        let a = ParamArena::from_layer_lens(&[]);
        assert!(a.is_empty());
        assert_eq!(a.n_layers(), 0);
        assert_eq!(a.offsets(), &[0]);
    }
}
