//! Deterministic randomness plumbing.
//!
//! Two distinct kinds of randomness appear in gradient compression systems:
//!
//! * **Private randomness** — e.g. data shuffling on one worker. Any seeded
//!   RNG works.
//! * **Shared randomness** — values every worker must agree on *without
//!   communicating*: the RHT sign diagonal and the stochastic-rounding
//!   offsets of THC, and the chunk-permutation of the TopKC-Permutation
//!   ablation. Real systems derive these from a common seed exchanged at
//!   startup plus the round number; we model exactly that with
//!   [`SharedSeed`].
//!
//! Keeping the derivation explicit (SplitMix64 over `(experiment seed, round,
//! stream)`) makes every experiment bit-reproducible and makes it a type
//! error to confuse per-worker and shared streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seed that all workers of a training job share.
///
/// Derived deterministically from the experiment seed, the round number, and
/// a stream tag, so that (a) every worker computes the same value and (b)
/// different uses (RHT signs vs stochastic rounding) never collide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SharedSeed(u64);

/// Stream tags namespace the per-round shared randomness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stream {
    /// Rademacher diagonal of the randomized Hadamard transform.
    RhtSigns,
    /// Stochastic-rounding thresholds for quantization.
    StochasticRounding,
    /// Coordinate permutation (TopKC-Permutation ablation).
    Permutation,
    /// Anything else; carries an explicit tag.
    Custom(u32),
}

impl Stream {
    fn tag(self) -> u64 {
        match self {
            Stream::RhtSigns => 0x01,
            Stream::StochasticRounding => 0x02,
            Stream::Permutation => 0x03,
            Stream::Custom(t) => 0x1_0000 + t as u64,
        }
    }
}

impl SharedSeed {
    /// Wraps a raw seed value (used mostly in tests).
    pub fn new(value: u64) -> SharedSeed {
        SharedSeed(value)
    }

    /// Derives the shared seed for (`experiment`, `round`, `stream`).
    pub fn derive(experiment: u64, round: u64, stream: Stream) -> SharedSeed {
        let mut x = experiment;
        x = splitmix64(x ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        x = splitmix64(x ^ stream.tag());
        SharedSeed(x)
    }

    /// The raw 64-bit value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Builds a seeded [`StdRng`] from this seed.
    pub fn rng(self) -> StdRng {
        StdRng::seed_from_u64(self.0)
    }
}

/// Derives a *private* per-worker RNG for (`experiment`, `worker`, `round`).
pub fn worker_rng(experiment: u64, worker: usize, round: u64) -> StdRng {
    let mut x = experiment;
    x = splitmix64(x ^ (worker as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x = splitmix64(x ^ round.wrapping_mul(0x94d0_49bb_1331_11eb));
    StdRng::seed_from_u64(x)
}

/// The SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic Fisher–Yates permutation of `0..n` driven by a shared seed.
///
/// Used by the TopKC-Permutation ablation (Table 4): all workers must apply
/// the *same* permutation for the aggregated result to be coherent.
pub fn shared_permutation(n: usize, seed: SharedSeed) -> Vec<usize> {
    use rand::Rng;
    let mut rng = seed.rng();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Inverts a permutation: `out[perm[i]] = i`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_stream_separated() {
        let a = SharedSeed::derive(1, 5, Stream::RhtSigns);
        let b = SharedSeed::derive(1, 5, Stream::RhtSigns);
        assert_eq!(a, b);
        let c = SharedSeed::derive(1, 5, Stream::StochasticRounding);
        assert_ne!(a, c);
        let d = SharedSeed::derive(1, 6, Stream::RhtSigns);
        assert_ne!(a, d);
        let e = SharedSeed::derive(2, 5, Stream::RhtSigns);
        assert_ne!(a, e);
    }

    #[test]
    fn worker_rngs_differ_across_workers() {
        use rand::Rng;
        let x: u64 = worker_rng(1, 0, 0).gen();
        let y: u64 = worker_rng(1, 1, 0).gen();
        assert_ne!(x, y);
        // ...but are reproducible.
        let x2: u64 = worker_rng(1, 0, 0).gen();
        assert_eq!(x, x2);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let perm = shared_permutation(100, SharedSeed::new(9));
        let mut seen = [false; 100];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Not the identity (astronomically unlikely for a working shuffle).
        assert_ne!(perm, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn invert_permutation_round_trips() {
        let perm = shared_permutation(37, SharedSeed::new(4));
        let inv = invert_permutation(&perm);
        for i in 0..37 {
            assert_eq!(inv[perm[i]], i);
            assert_eq!(perm[inv[i]], i);
        }
    }

    #[test]
    fn splitmix_mixes() {
        // Adjacent inputs produce very different outputs.
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }
}
