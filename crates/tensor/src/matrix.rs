//! Dense row-major matrices and the linear algebra PowerSGD needs.
//!
//! PowerSGD (§3.3) views each layer's gradient as a matrix `M (m×n)` and
//! maintains a rank-`r` approximation `M ≈ P Qᵀ` via one step of subspace
//! iteration per round:
//!
//! 1. `P = M Q`              (m×r)
//! 2. `P̂ = orthonormalize(P)` — **the expensive Gram–Schmidt step the paper
//!    profiles at 39.7–47.4% of training time for r=64**
//! 3. `Q = Mᵀ P̂`            (n×r)
//!
//! This module supplies the matmuls and the modified Gram–Schmidt.
//!
//! The matmuls fan out over **output rows** on the [`crate::parallel`]
//! runtime: every output row is produced by exactly one task using the same
//! per-element accumulation order as the sequential loops, so results are
//! bitwise-identical for any `GCS_THREADS`.

use crate::parallel;

/// Minimum number of multiply-adds before a matmul fans out to threads.
/// Below this the spawn cost dominates; PowerSGD's P/Q products on real
/// layer shapes sit far above it.
const MATMUL_PAR_MIN: usize = 1 << 16;

/// Minimum element count before `transpose` fans out.
const TRANSPOSE_PAR_MIN: usize = 1 << 16;

/// A dense row-major `f32` matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec: size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major backing storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the row-major backing storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self * other` — returns an `m×p` product.
    ///
    /// Fans out over output rows when the flop count warrants it; each row is
    /// computed by exactly one task with the sequential accumulation order,
    /// so the product is bitwise-identical for any thread count.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// `selfᵀ * other` without materializing the transpose.
    ///
    /// Parallelized over output rows (columns of `self`) with the sequential
    /// per-element term order preserved, so the result is bitwise-identical
    /// for any thread count.
    ///
    /// # Panics
    /// Panics if row counts disagree.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul: {}x{}^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        transpose_matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        let n = self.rows * self.cols;
        if self.rows > 0 && n >= TRANSPOSE_PAR_MIN && parallel::max_threads() > 1 {
            // One output row (= input column) per chunk; pure writes, so
            // parallelism cannot affect the result.
            let rows = self.rows;
            parallel::for_each_chunk_mut(&mut out.data, rows, |c, orow| {
                for (r, o) in orow.iter_mut().enumerate() {
                    *o = self.get(r, c);
                }
            });
        } else {
            for r in 0..self.rows {
                for c in 0..self.cols {
                    out.set(c, r, self.get(r, c));
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        crate::vector::norm(&self.data)
    }
}

/// Accumulates row `i` of `A(ar×ac) · B(ac×bc)` into `crow` using the kj
/// (streaming) inner order — shared by every sequential and parallel matmul
/// path so all produce identical bits.
#[inline]
fn matmul_row(a: &[f32], ac: usize, b: &[f32], bc: usize, i: usize, crow: &mut [f32]) {
    let arow = &a[i * ac..(i + 1) * ac];
    for (k, &av) in arow.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let brow = &b[k * bc..(k + 1) * bc];
        for (c, &bv) in crow.iter_mut().zip(brow) {
            *c += av * bv;
        }
    }
}

/// Accumulates row `i` of `A(ar×ac)ᵀ · B(ar×bc)` into `crow`. Per element,
/// terms are added in ascending `k` — the sequential k-outer order.
#[inline]
fn transpose_matmul_row(
    a: &[f32],
    ar: usize,
    ac: usize,
    b: &[f32],
    bc: usize,
    i: usize,
    crow: &mut [f32],
) {
    for k in 0..ar {
        let av = a[k * ac + i];
        if av == 0.0 {
            continue;
        }
        let brow = &b[k * bc..(k + 1) * bc];
        for (c, &bv) in crow.iter_mut().zip(brow) {
            *c += av * bv;
        }
    }
}

/// `out = A(ar×ac) · B(ac×bc)` over row-major slices — the pooled-buffer
/// matmul: callers keep `out` in reusable scratch, so a steady-state round
/// performs no allocation. `out` is overwritten. Fans out over output rows
/// above the flop threshold with the same per-row accumulation order as the
/// sequential loop, so results are bitwise-identical for any thread count.
///
/// # Panics
/// Panics if slice lengths disagree with the shapes.
pub fn matmul_into(a: &[f32], ar: usize, ac: usize, b: &[f32], bc: usize, out: &mut [f32]) {
    assert_eq!(a.len(), ar * ac, "matmul_into: lhs size mismatch");
    assert_eq!(b.len(), ac * bc, "matmul_into: rhs size mismatch");
    assert_eq!(out.len(), ar * bc, "matmul_into: out size mismatch");
    out.fill(0.0);
    let work = ar * ac * bc;
    if bc > 0 && work >= MATMUL_PAR_MIN && parallel::max_threads() > 1 {
        // One output row per chunk: chunk index == row index.
        parallel::for_each_chunk_mut(out, bc, |i, crow| {
            matmul_row(a, ac, b, bc, i, crow);
        });
    } else {
        // ikj loop order: streaming access on `b` and `out` rows.
        for (i, crow) in out.chunks_exact_mut(bc.max(1)).enumerate() {
            matmul_row(a, ac, b, bc, i, crow);
        }
    }
}

/// `out = A(ar×ac)ᵀ · B(ar×bc)` over row-major slices, without
/// materializing the transpose; `out` (ac×bc) is overwritten. Same pooled,
/// thread-count-invariant contract as [`matmul_into`].
///
/// # Panics
/// Panics if slice lengths disagree with the shapes.
pub fn transpose_matmul_into(
    a: &[f32],
    ar: usize,
    ac: usize,
    b: &[f32],
    bc: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), ar * ac, "transpose_matmul_into: lhs size mismatch");
    assert_eq!(b.len(), ar * bc, "transpose_matmul_into: rhs size mismatch");
    assert_eq!(
        out.len(),
        ac * bc,
        "transpose_matmul_into: out size mismatch"
    );
    out.fill(0.0);
    let work = ar * ac * bc;
    if bc > 0 && work >= MATMUL_PAR_MIN && parallel::max_threads() > 1 {
        parallel::for_each_chunk_mut(out, bc, |i, crow| {
            transpose_matmul_row(a, ar, ac, b, bc, i, crow);
        });
    } else {
        for (i, crow) in out.chunks_exact_mut(bc.max(1)).enumerate() {
            transpose_matmul_row(a, ar, ac, b, bc, i, crow);
        }
    }
}

/// `out = A(ar×ac) · B(br×ac)ᵀ` over row-major slices; `out` (ar×br) is
/// overwritten. Every output element is a dot of two *contiguous* rows, so
/// this runs on [`crate::simd::dot_folded`] directly — no transpose is
/// materialized and no scratch is needed. The fold shape is fixed, so the
/// result is identical for any thread count or SIMD dispatch.
///
/// # Panics
/// Panics if slice lengths disagree with the shapes.
pub fn matmul_bt_into(a: &[f32], ar: usize, ac: usize, b: &[f32], br: usize, out: &mut [f32]) {
    assert_eq!(a.len(), ar * ac, "matmul_bt_into: lhs size mismatch");
    assert_eq!(b.len(), br * ac, "matmul_bt_into: rhs size mismatch");
    assert_eq!(out.len(), ar * br, "matmul_bt_into: out size mismatch");
    let work = ar * ac * br;
    let row_body = |i: usize, crow: &mut [f32]| {
        let arow = &a[i * ac..(i + 1) * ac];
        for (j, c) in crow.iter_mut().enumerate() {
            *c = crate::simd::dot_folded(arow, &b[j * ac..(j + 1) * ac]);
        }
    };
    if br > 0 && work >= MATMUL_PAR_MIN && parallel::max_threads() > 1 {
        parallel::for_each_chunk_mut(out, br, |i, crow| row_body(i, crow));
    } else {
        for (i, crow) in out.chunks_exact_mut(br.max(1)).enumerate() {
            row_body(i, crow);
        }
    }
}

/// Reusable scratch for Gram–Schmidt: a column-major staging buffer that
/// makes every inner loop run over *contiguous* memory, which is what lets
/// the [`crate::simd`] dot/axpy fast paths apply. Grown on first use and
/// reused — [`orthonormalize_columns_with`] performs no heap allocation
/// once the scratch has reached its high-water mark.
#[derive(Clone, Default, Debug)]
pub struct GsScratch {
    colmajor: Vec<f32>,
}

impl GsScratch {
    /// An empty scratch; the staging buffer grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Orthonormalizes the **columns** of `m` in place using modified
/// Gram–Schmidt.
///
/// This is the numerically stable variant PowerSGD uses; its cost is
/// `O(rows · cols²)` flops, which is exactly the superlinear term the paper
/// identifies as PowerSGD's bottleneck (§3.3, "overwhelmingly expensive
/// matrix orthogonalization").
///
/// Columns whose residual norm underflows (linearly dependent input) are
/// replaced with a deterministic unit basis vector orthogonal to nothing in
/// particular — matching the "add epsilon" fallback of practical
/// implementations and keeping downstream matmuls finite.
pub fn orthonormalize_columns(m: &mut Matrix) {
    orthonormalize_columns_with(m, &mut GsScratch::new());
}

/// [`orthonormalize_columns`] with caller-owned scratch — the
/// zero-allocation steady-state entry point for PowerSGD's per-round call.
pub fn orthonormalize_columns_with(m: &mut Matrix, scratch: &mut GsScratch) {
    let (rows, cols) = (m.rows, m.cols);
    orthonormalize_columns_slice(&mut m.data, rows, cols, scratch);
}

/// Slice form of [`orthonormalize_columns_with`] for row-major data held in
/// pooled buffers rather than a [`Matrix`].
///
/// The matrix is staged column-major in `scratch` so the Gram–Schmidt inner
/// loops (projection dots, subtraction axpys, normalization scales) all run
/// over contiguous columns and dispatch to the SIMD primitives. The dots
/// use [`crate::simd::dot_folded`]'s fixed lane-fold shape, so results are
/// identical whichever path (scalar or AVX2) executes, and the computation
/// involves no data-dependent partitioning — thread count and call site
/// cannot change a bit.
///
/// # Panics
/// Panics if `data.len() != rows * cols`.
pub fn orthonormalize_columns_slice(
    data: &mut [f32],
    rows: usize,
    cols: usize,
    scratch: &mut GsScratch,
) {
    assert_eq!(
        data.len(),
        rows * cols,
        "orthonormalize_columns_slice: size mismatch"
    );
    if rows == 0 || cols == 0 {
        return;
    }
    let buf = &mut scratch.colmajor;
    buf.clear();
    buf.resize(rows * cols, 0.0);
    for (r, row) in data.chunks_exact(cols).enumerate() {
        for (c, &v) in row.iter().enumerate() {
            buf[c * rows + r] = v;
        }
    }
    // "Twice is enough" (Kahan/Parlett): a single modified-GS pass can
    // leave O(eps·kappa) non-orthogonality for ill-conditioned inputs,
    // which downstream error feedback amplifies round over round (PowerSGD
    // at rank >> true gradient rank hits exactly this). A second pass
    // restores orthogonality to machine precision.
    orthonormalize_contig_once(buf, rows, cols);
    orthonormalize_contig_once(buf, rows, cols);
    for (r, row) in data.chunks_exact_mut(cols).enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = buf[c * rows + r];
        }
    }
}

/// One modified-GS pass over a column-major buffer with contiguous columns.
fn orthonormalize_contig_once(buf: &mut [f32], rows: usize, cols: usize) {
    for c in 0..cols {
        let (done, rest) = buf.split_at_mut(c * rows);
        let cur = &mut rest[..rows];
        // Subtract projections onto previous columns (modified GS: use the
        // already-orthonormalized columns one at a time).
        for prev in 0..c {
            let pcol = &done[prev * rows..(prev + 1) * rows];
            let proj = crate::simd::dot_folded(pcol, cur);
            crate::simd::axpy(-proj, pcol, cur);
        }
        let nrm = crate::simd::dot_folded(cur, cur).sqrt();
        if nrm > 1e-6 {
            crate::simd::scale(cur, 1.0 / nrm);
        } else {
            // Degenerate column (linearly dependent input): substitute a
            // canonical basis vector, re-orthogonalized against the
            // previous columns so the output stays orthonormal. Try basis
            // vectors until one survives the projection.
            let mut placed = false;
            for attempt in 0..rows {
                let pivot = (c + attempt) % rows;
                for (r, x) in cur.iter_mut().enumerate() {
                    *x = if r == pivot { 1.0 } else { 0.0 };
                }
                for prev in 0..c {
                    let pcol = &done[prev * rows..(prev + 1) * rows];
                    let proj = crate::simd::dot_folded(pcol, cur);
                    crate::simd::axpy(-proj, pcol, cur);
                }
                let nrm2 = crate::simd::dot_folded(cur, cur).sqrt();
                if nrm2 > 1e-4 {
                    crate::simd::scale(cur, 1.0 / nrm2);
                    placed = true;
                    break;
                }
            }
            if !placed {
                // cols > rows: no orthogonal direction remains; zero the
                // column (its contribution to any P Qᵀ product vanishes).
                cur.fill(0.0);
            }
        }
    }
}

/// Reshapes a flat gradient of length `len` into the most square matrix
/// possible: rows = ceil(len / cols) with `cols = ceil(sqrt(len))`, padding
/// with zeros. PowerSGD applies this to non-matrix parameters.
pub fn reshape_to_matrix(grad: &[f32]) -> Matrix {
    let len = grad.len();
    if len == 0 {
        return Matrix::zeros(0, 0);
    }
    let cols = (len as f64).sqrt().ceil() as usize;
    let rows = len.div_ceil(cols);
    let mut data = vec![0.0f32; rows * cols];
    data[..len].copy_from_slice(grad);
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let via_helper = a.transpose_matmul(&b);
        let via_transpose = a.transpose().matmul(&b);
        assert_eq!(via_helper, via_transpose);
    }

    #[test]
    fn gram_schmidt_produces_orthonormal_columns() {
        let mut m = Matrix::from_vec(4, 3, vec![1., 1., 0., 1., 0., 1., 0., 1., 1., 1., 1., 1.]);
        orthonormalize_columns(&mut m);
        for c1 in 0..3 {
            for c2 in 0..3 {
                let mut d = 0.0;
                for r in 0..4 {
                    d += m.get(r, c1) * m.get(r, c2);
                }
                let expect = if c1 == c2 { 1.0 } else { 0.0 };
                assert!(approx_eq(d, expect), "col {c1}·col {c2} = {d}");
            }
        }
    }

    #[test]
    fn gram_schmidt_preserves_column_span_direction() {
        // First column only gets normalized.
        let mut m = Matrix::from_vec(2, 1, vec![3.0, 4.0]);
        orthonormalize_columns(&mut m);
        assert!(approx_eq(m.get(0, 0), 0.6) && approx_eq(m.get(1, 0), 0.8));
    }

    #[test]
    fn gram_schmidt_degenerate_column_recovers() {
        // Second column is a multiple of the first.
        let mut m = Matrix::from_vec(2, 2, vec![1., 2., 1., 2.]);
        orthonormalize_columns(&mut m);
        for v in m.data() {
            assert!(v.is_finite());
        }
        // First column still unit.
        let n0 = (m.get(0, 0).powi(2) + m.get(1, 0).powi(2)).sqrt();
        assert!(approx_eq(n0, 1.0));
    }

    fn random_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| {
                let bits = crate::rng::splitmix64(i as u64 ^ salt);
                ((bits >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn parallel_matmul_is_bitwise_identical_to_sequential() {
        // PowerSGD-ish shapes: M (m×n) * Q (n×r), well above MATMUL_PAR_MIN.
        let a = random_matrix(256, 96, 0x11);
        let b = random_matrix(96, 32, 0x22);
        let reference = crate::parallel::with_threads(1, || a.matmul(&b));
        for threads in [2, 3, 8] {
            let got = crate::parallel::with_threads(threads, || a.matmul(&b));
            assert_eq!(got.rows(), reference.rows());
            assert_eq!(got.cols(), reference.cols());
            for (x, y) in got.data().iter().zip(reference.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn parallel_transpose_matmul_is_bitwise_identical_to_sequential() {
        // Mᵀ P̂ with M (m×n), P̂ (m×r).
        let a = random_matrix(256, 96, 0x33);
        let b = random_matrix(256, 32, 0x44);
        let reference = crate::parallel::with_threads(1, || a.transpose_matmul(&b));
        for threads in [2, 3, 8] {
            let got = crate::parallel::with_threads(threads, || a.transpose_matmul(&b));
            for (x, y) in got.data().iter().zip(reference.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn parallel_transpose_matches_sequential() {
        let a = random_matrix(300, 250, 0x55);
        let reference = crate::parallel::with_threads(1, || a.transpose());
        for threads in [2, 5] {
            let got = crate::parallel::with_threads(threads, || a.transpose());
            assert_eq!(got, reference);
        }
        // And transposing twice round-trips.
        assert_eq!(reference.transpose(), a);
    }

    #[test]
    fn reshape_pads_with_zeros() {
        let m = reshape_to_matrix(&[1., 2., 3., 4., 5.]);
        assert!(m.rows() * m.cols() >= 5);
        assert_eq!(&m.data()[..5], &[1., 2., 3., 4., 5.]);
        assert!(m.data()[5..].iter().all(|&x| x == 0.0));
        let empty = reshape_to_matrix(&[]);
        assert_eq!((empty.rows(), empty.cols()), (0, 0));
    }
}
